#!/usr/bin/env python3
"""Quickstart: offload one kernel from the STM32 host to PULP.

Builds the paper's heterogeneous system (STM32-L476 + PULP over QSPI),
runs the char matmul benchmark on the host alone, then offloads it to
the accelerator under the 10 mW envelope and prints the comparison.

Run:  python examples/quickstart.py
"""

from repro.core import HeterogeneousSystem
from repro.kernels import MatmulKernel
from repro.units import format_seconds, format_watts, mhz


def main() -> None:
    system = HeterogeneousSystem()
    kernel = MatmulKernel("char")

    # Baseline: the kernel on the STM32-L476 alone at 32 MHz (the
    # configuration that uses up the whole 10 mW envelope by itself).
    host = system.run_on_host(kernel)
    print("host-only baseline (STM32-L476 @ 32 MHz):")
    print(f"  {host.cycles:,.0f} cycles -> {format_seconds(host.time)} "
          f"at {format_watts(host.power)}")
    print()

    # Heterogeneous: drop the host to 8 MHz, spend the freed power on
    # PULP, and offload through the OpenMP target machinery.  Real bytes
    # travel through the wire protocol into the accelerator model; the
    # result is read back and verified.
    result = system.offload(kernel, host_frequency=mhz(8), iterations=32,
                            double_buffered=True)
    print("heterogeneous offload:")
    print(result.report())
    print()
    print(f"energy per frame on PULP: "
          f"{result.timing.energy.total_energy / 32 * 1e6:.1f} uJ "
          f"vs host-only {host.energy * 1e6:.1f} uJ")


if __name__ == "__main__":
    main()
