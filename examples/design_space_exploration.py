#!/usr/bin/env python3
"""Design-space exploration with the analytic models.

Uses the library the way an architect would: sweep the knobs the paper
discusses in Section V and quantify their effect.

1. power budget: how does the best achievable speedup scale if the
   envelope is 5 / 10 / 20 mW instead of the paper's 10 mW?
2. link width: single SPI vs QSPI across iteration counts;
3. untied link (the paper's proposed improvement): an SPI clock that no
   longer follows the MCU core clock;
4. cluster size: what if PULP had 2 or 8 cores instead of 4?

Run:  python examples/design_space_exploration.py
"""

from repro.core import HeterogeneousSystem, PowerEnvelopeSolver
from repro.core.offload import OffloadCostModel
from repro.isa.or10n import Or10nTarget
from repro.kernels import MatmulKernel
from repro.link.spi import SpiLink, SpiMode
from repro.mcu.stm32l476 import Stm32L476
from repro.power.activity import ActivityProfile
from repro.pulp.binary import KernelBinary
from repro.runtime.omp import DeviceOpenMp
from repro.units import mhz, mw


def sweep_budget() -> None:
    print("1) power budget sweep (matmul, host @ 2 MHz)")
    kernel = MatmulKernel("char")
    program = kernel.build_program()
    omp = DeviceOpenMp(Or10nTarget(), 4)
    execution = omp.execute(program)
    activity = ActivityProfile.compute(4, execution.memory_intensity)
    host_cycles = HeterogeneousSystem().host.device.lower(program).cycles
    baseline_time = host_cycles / mhz(32)
    for budget in (mw(5), mw(10), mw(20)):
        solver = PowerEnvelopeSolver(budget=budget)
        point = solver.solve(mhz(2), activity)
        speedup = baseline_time / (execution.wall_cycles
                                   / point.pulp_frequency)
        print(f"   {budget * 1e3:4.0f} mW -> PULP @ "
              f"{point.pulp_frequency / 1e6:5.0f} MHz "
              f"/ {point.pulp_voltage:.2f} V, speedup {speedup:5.1f}x")
    print()


def sweep_link() -> None:
    print("2) link width (matmul, host @ 8 MHz, serial offload)")
    kernel = MatmulKernel("char")
    for mode in (SpiMode.SINGLE, SpiMode.QUAD):
        system = HeterogeneousSystem(link=SpiLink(mode))
        for iterations in (1, 32):
            result = system.offload(kernel, host_frequency=mhz(8),
                                    iterations=iterations)
            print(f"   {mode.name:6s} x{iterations:3d}: "
                  f"efficiency {result.efficiency:6.1%}, "
                  f"end-to-end speedup {result.effective_speedup:5.1f}x")
    print()


def untied_link() -> None:
    print("3) untying the SPI clock from the MCU clock (paper Section V)")
    kernel = MatmulKernel("char")
    # Tied (the prototype): SPI clock = host core clock.
    tied = HeterogeneousSystem()
    tied_result = tied.offload(kernel, host_frequency=mhz(2), iterations=32)
    # Untied: a fixed 24 MHz serial clock regardless of host frequency.
    class UntiedHost(Stm32L476):
        def spi_clock(self, core_frequency):
            return mhz(24)

    untied = HeterogeneousSystem(host=UntiedHost())
    untied_result = untied.offload(kernel, host_frequency=mhz(2),
                                   iterations=32)
    print(f"   tied SPI   @ host 2 MHz: efficiency {tied_result.efficiency:6.1%}")
    print(f"   untied SPI @ 24 MHz:     efficiency {untied_result.efficiency:6.1%}")
    print()


def sweep_cluster_size() -> None:
    print("4) cluster size (matmul compute time at 150 MHz)")
    kernel = MatmulKernel("char")
    program = kernel.build_program()
    for threads in (1, 2, 4):
        execution = DeviceOpenMp(Or10nTarget(), threads).execute(program)
        time = execution.wall_cycles / mhz(150)
        print(f"   {threads} core(s): {execution.wall_cycles:9,.0f} cycles "
              f"({time * 1e3:.2f} ms)")
    print("   (the model is calibrated for the 4-core PULP3 cluster; larger"
          " teams would need a re-calibrated contention/power model)")


def main() -> None:
    sweep_budget()
    sweep_link()
    untied_link()
    sweep_cluster_size()


if __name__ == "__main__":
    main()
