#!/usr/bin/env python3
"""Design-space exploration with the ``repro.dse`` subsystem.

The same four Section-V sweeps as ever — power budget, link width,
untied SPI clock, cluster size — but expressed as declarative
:class:`~repro.dse.ParameterSpace` grids evaluated by the
:class:`~repro.dse.ExplorationEngine`, instead of hand-written loops.

Run:  python examples/design_space_exploration.py
"""

from repro.dse import ExplorationEngine, ParameterSpace, pareto_frontier
from repro.units import mhz

ENGINE = ExplorationEngine(jobs=1)


def sweep(**grid):
    """Evaluate one grid; returns the feasible records in grid order."""
    result = ENGINE.run(ParameterSpace(grid={k: list(v)
                                             for k, v in grid.items()}))
    return result.feasible_records


def main() -> None:
    print("1) power budget sweep (matmul, host @ 2 MHz)")
    for r in sweep(host_mhz=[2], budget_mw=[5, 10, 20]):
        m = r["metrics"]
        print(f"   {r['config']['budget_mw']:4.0f} mW -> PULP @ "
              f"{m['pulp_frequency_hz'] / 1e6:5.0f} MHz "
              f"/ {m['pulp_voltage_v']:.2f} V, "
              f"speedup {m['compute_speedup']:5.1f}x")

    print("\n2) link width (matmul, host @ 8 MHz, serial offload)")
    for r in sweep(spi_mode=["single", "quad"], iterations=[1, 32]):
        m = r["metrics"]
        print(f"   {r['config']['spi_mode'].upper():6s} "
              f"x{r['config']['iterations']:3d}: "
              f"efficiency {m['efficiency']:6.1%}, "
              f"end-to-end speedup {m['effective_speedup']:5.1f}x")

    print("\n3) untying the SPI clock (paper Section V)")
    for r in sweep(host_mhz=[2], link_tying=["tied", "untied"],
                   untied_clock_mhz=[24], iterations=[32]):
        tying = r["config"]["link_tying"]
        label = ("tied SPI   @ host 2 MHz" if tying == "tied"
                 else "untied SPI @ 24 MHz    ")
        print(f"   {label}: efficiency {r['metrics']['efficiency']:6.1%}")

    print("\n4) cluster size (matmul compute time at 150 MHz)")
    records = sweep(cluster_size=[1, 2, 4])
    for r in records:
        cycles = r["metrics"]["compute_cycles"]
        print(f"   {r['config']['cluster_size']} core(s): "
              f"{cycles:9,.0f} cycles ({cycles / mhz(150) * 1e3:.2f} ms)")

    best = pareto_frontier(records)[0]
    print(f"   Pareto-best cluster: {best['config']['cluster_size']} cores "
          f"at {best['metrics']['effective_speedup']:.1f}x end-to-end")


if __name__ == "__main__":
    main()
