#!/usr/bin/env python3
"""Biosignal classification: SVM inference duty-cycled on the node.

A wearable-monitoring scenario (the paper's second application family,
compare its references on biomedical ULP processing): feature vectors
arrive in batches from a biosignal front-end, and the node classifies
them with the fixed-point SVM.  The script compares all three SVM
kernels (linear / polynomial / RBF) under the 10 mW envelope, sweeping
the host frequency to find the most energy-efficient configuration, and
estimates battery life for a duty-cycled deployment.

Run:  python examples/biosignal_classifier.py
"""

from repro.core import HeterogeneousSystem
from repro.kernels import SvmKernel
from repro.power.battery import CR2032, DutyCycle, lifetime_years
from repro.units import format_seconds, mhz

#: One classification batch (24 windows) arrives each second.
BATCH_PERIOD = 1.0
HOST_SWEEP = (mhz(2), mhz(4), mhz(8), mhz(16))


def main() -> None:
    system = HeterogeneousSystem()

    print("SVM batch classification under the 10 mW envelope")
    print(f"(one batch of 24 feature vectors per {BATCH_PERIOD:.0f} s)")
    print()

    for variant in ("linear", "poly", "RBF"):
        kernel = SvmKernel(variant)
        print(f"svm ({variant}):")
        best = None
        for host_frequency in HOST_SWEEP:
            result = system.offload(kernel, host_frequency=host_frequency,
                                    iterations=1)
            energy = result.timing.energy.total_energy
            if best is None or energy < best[1]:
                best = (host_frequency, energy, result)
            print(f"  host {host_frequency / 1e6:5.1f} MHz: "
                  f"batch in {format_seconds(result.timing.total_time)}, "
                  f"{energy * 1e6:7.1f} uJ, "
                  f"speedup {result.compute_speedup:4.1f}x, "
                  f"verified={result.verified}")
        host_frequency, energy, result = best
        # Between batches the node sleeps in the host's stop mode.
        cycle = DutyCycle(period=BATCH_PERIOD,
                          sleep_power=system.host.sleep_power)
        cycle.add("classify", energy=energy,
                  duration=result.timing.total_time)
        years = lifetime_years(CR2032, cycle)
        print(f"  -> best at host {host_frequency / 1e6:.0f} MHz: "
              f"{cycle.energy_per_period * 1e6:.1f} uJ/batch incl. sleep, "
              f"~{years:.1f} years on a {CR2032.name}")
        print()


if __name__ == "__main__":
    main()
