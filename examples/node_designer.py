#!/usr/bin/env python3
"""IoT node designer: end-to-end system design with the library.

Walks through designing a sub-10 mW sensing node the way Section V of
the paper reasons: choose the kernel working set, plan which binaries
stay resident in the accelerator's L2, place the pipeline stages, and
inspect where the time and energy actually go.

Run:  python examples/node_designer.py
"""

from repro.app import Pipeline, Stage
from repro.app.pipeline import render_pipeline
from repro.core import HeterogeneousSystem
from repro.core.library import LibraryPlanner, render_plan
from repro.core.trace import render_gantt, trace_offload
from repro.kernels import CnnKernel, HogKernel, SvmKernel
from repro.power.breakdown import breakdown_offload, render_breakdown
from repro.units import mhz

HOST_FREQUENCY = mhz(8)


def main() -> None:
    system = HeterogeneousSystem()
    detector = HogKernel()
    classifier = CnnKernel()
    activity_monitor = SvmKernel("RBF")

    print("=== 1. workload: a smart sensing node ===")
    print("  hog       25 frames/s   (person detection features)")
    print("  cnn       25 frames/s   (classification)")
    print("  svm (RBF)  2 batches/s  (activity monitoring)")
    print()

    print("=== 2. which binaries stay resident in L2? ===")
    planner = LibraryPlanner(system.soc.l2)
    entries = planner.entries_for([
        (detector, 25.0), (classifier, 25.0), (activity_monitor, 2.0)])
    plan = planner.plan(entries)
    print(render_plan(plan,
                      spi_clock=system.host.spi_clock(HOST_FREQUENCY)))
    print()

    print("=== 3. pipeline placement and steady state ===")
    pipeline = Pipeline([Stage(detector), Stage(classifier),
                         Stage(activity_monitor)], system=system)
    report = pipeline.analyze(HOST_FREQUENCY)
    print(render_pipeline(report))
    print()

    print("=== 4. where does the energy go? (cnn stage) ===")
    result = system.offload(classifier, host_frequency=HOST_FREQUENCY,
                            iterations=16, double_buffered=True)
    print(render_breakdown(breakdown_offload(result.timing)))
    print()

    print("=== 5. what does one offload look like on the wire? ===")
    serial = system.offload(SvmKernel("RBF"),
                            host_frequency=HOST_FREQUENCY, iterations=2)
    print(render_gantt(trace_offload(serial.timing, max_iterations=2)))


if __name__ == "__main__":
    main()
