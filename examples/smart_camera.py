#!/usr/bin/env python3
"""Smart-camera node: a vision pipeline on the heterogeneous system.

The motivating IoT scenario of the paper (and of its CConvNet citation:
"Brain-inspired Classroom Occupancy Monitoring on a Low-Power Mobile
Platform"): a sensor produces frames, the MCU marshals them to the
accelerator, and two vision kernels run per frame:

1. ``hog`` extracts a dense feature descriptor;
2. ``cnn`` classifies the frame content.

The script pipelines a short frame sequence, double-buffering transfers
under compute, and reports per-frame latency, energy and achievable
frame rate within the 10 mW envelope.

Run:  python examples/smart_camera.py
"""

from repro.core import HeterogeneousSystem
from repro.kernels import CnnKernel, HogKernel
from repro.units import format_seconds, format_watts, mhz

FRAMES = 16
HOST_FREQUENCY = mhz(16)


def main() -> None:
    system = HeterogeneousSystem()
    stages = [HogKernel(), CnnKernel()]

    print(f"smart camera pipeline: {FRAMES} frames, host @ "
          f"{HOST_FREQUENCY / 1e6:.0f} MHz, 10 mW envelope")
    print()

    total_time = 0.0
    total_energy = 0.0
    for kernel in stages:
        result = system.offload(kernel, host_frequency=HOST_FREQUENCY,
                                iterations=FRAMES, double_buffered=True)
        per_frame = result.timing.total_time / FRAMES
        energy = result.timing.energy.total_energy / FRAMES
        total_time += per_frame
        total_energy += energy
        print(f"stage {kernel.name!r}:")
        print(f"  PULP @ {result.envelope.pulp_frequency / 1e6:.0f} MHz "
              f"/ {result.envelope.pulp_voltage:.2f} V, "
              f"system power {format_watts(result.envelope.total_power)}")
        print(f"  per frame: {format_seconds(per_frame)} "
              f"({energy * 1e6:.1f} uJ), "
              f"efficiency {result.efficiency:.0%}, "
              f"speedup vs host {result.compute_speedup:.1f}x")
        print(f"  outputs verified: {result.verified}")
        print()

    print(f"pipeline total: {format_seconds(total_time)}/frame "
          f"({1 / total_time:.1f} frames/s) at "
          f"{total_energy * 1e6:.1f} uJ/frame")

    # The same pipeline on the host alone, for contrast.
    host_time = sum(system.run_on_host(k).time for k in stages)
    print(f"host-only would take {format_seconds(host_time)}/frame "
          f"({1 / host_time:.2f} frames/s) — "
          f"{host_time / total_time:.1f}x slower")


if __name__ == "__main__":
    main()
