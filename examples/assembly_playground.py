#!/usr/bin/env python3
"""Assembly playground: the OR10N-mini ISS next to the analytic model.

Shows the library's two lowest abstraction levels agreeing with each
other: a hand-written assembly matmul runs instruction-by-instruction on
the OR10N-mini machine and reproduces `MatmulKernel("char")` bit-exactly,
while the loop-nest IR of the same kernel is pretty-printed with the
analytic OR10N cost annotations.

Run:  python examples/assembly_playground.py
"""

import numpy as np

from repro.isa.or10n import Or10nTarget
from repro.isa.pretty import render_program
from repro.kernels import MatmulKernel
from repro.machine import MATMUL_I8, Machine, assemble
from repro.machine.assembler import disassemble
from repro.machine.programs import run_dot_product_i8, run_matmul_i8


def matmul_bit_exactness() -> None:
    print("1) assembly matmul vs the analytic kernel (bit-exact)")
    kernel = MatmulKernel("char", n=12)
    inputs = kernel.generate_inputs(seed=42)
    expected = kernel.compute(inputs)["c"]
    out, result = run_matmul_i8(inputs["a"], inputs["b"])
    print(f"   12x12 matmul: outputs equal = {np.array_equal(out, expected)}")
    print(f"   {result.instructions:,} instructions, "
          f"{result.cycles:,.0f} cycles "
          f"({result.cycles / 12 ** 3:.2f} cycles/element, scalar code)")
    print()


def disassembly_sample() -> None:
    print("2) the matmul inner loop, disassembled")
    for line in disassemble(MATMUL_I8).splitlines()[7:13]:
        print(f"   {line}")
    print()


def custom_kernel() -> None:
    print("3) write your own: saturating absolute-difference sum")
    source = """
        ; r1 = a base, r2 = b base, r3 = n, result in r10
        addi r10, r0, 0
        hwloop r3, end
        lb   r4, 0(r1)
        lb   r5, 0(r2)
        sub  r6, r4, r5
        addi r7, r0, -1
        mul  r7, r6, r7          ; -diff
        max  r6, r6, r7          ; |diff|
        add  r10, r10, r6
        addi r1, r1, 1
        addi r2, r2, 1
    end:
        halt
    """
    program = assemble(source)
    rng = np.random.default_rng(7)
    a = rng.integers(-100, 100, 64).astype(np.int8)
    b = rng.integers(-100, 100, 64).astype(np.int8)
    machine = Machine()
    machine.write_block(0x100, a.tobytes())
    machine.write_block(0x800, b.tobytes())
    machine.registers[1] = 0x100
    machine.registers[2] = 0x800
    machine.registers[3] = len(a)
    result = machine.run(program)
    expected = int(np.abs(a.astype(np.int32) - b).sum())
    print(f"   SAD of 64 elements: {result.registers[10]} "
          f"(numpy: {expected}) in {result.cycles:.0f} cycles")
    print()


def ir_view() -> None:
    print("4) the same kernel one level up: loop-nest IR with OR10N costs")
    program = MatmulKernel("char", n=12).build_program()
    print("   " + render_program(program, Or10nTarget())
          .replace("\n", "\n   "))
    print()


def iss_vs_model() -> None:
    print("5) ISS cycles vs the analytic cost table (dot product)")
    a = np.ones(256, dtype=np.int8)
    _, result = run_dot_product_i8(a, a)
    per_element = result.cycles / 256
    print(f"   ISS: {per_element:.2f} cycles/element "
          "(lb+lb+mac+2 explicit pointer adds)")
    print("   model: 5.00 cycles/element (address updates folded into "
          "post-increment loads)")
    print("   difference = the 2 addressing instructions the mini-ISA "
          "spends explicitly")


def main() -> None:
    matmul_bit_exactness()
    disassembly_sample()
    custom_kernel()
    ir_view()
    iss_vs_model()


if __name__ == "__main__":
    main()
