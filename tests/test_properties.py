"""Cross-module property-based tests (hypothesis).

These check invariants that hold across the whole stack rather than in
one module: monotonicities of the cost/power/efficiency models,
linearity of the lowering in trip counts, and conservation properties
of the offload schedules.
"""


import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.offload import OffloadCostModel
from repro.isa.baseline import BaselineRiscTarget
from repro.isa.cortexm import CortexM4Target
from repro.isa.or10n import Or10nTarget
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import DType, addr, load, mac, store
from repro.power.activity import ActivityProfile
from repro.power.pulp_model import PulpPowerModel
from repro.pulp.timing import chunk_trips
from repro.units import mhz, mw

_ACTIVITY = ActivityProfile.matmul()
_POWER = PulpPowerModel()
_COST = OffloadCostModel()


def _loop_program(trips, inner_trips=8):
    inner = Loop(inner_trips, [Block([
        load(DType.I16), load(DType.I16), mac(DType.I16), addr(count=2)])])
    return Program("p", [Loop(trips, [inner, Block([store(DType.I16)])])])


class TestLoweringProperties:
    @given(st.integers(1, 200), st.integers(1, 200))
    @settings(max_examples=40)
    def test_cycles_monotone_in_trips(self, a, b):
        assume(a != b)
        target = Or10nTarget()
        low, high = sorted((a, b))
        assert target.lower(_loop_program(low)).cycles \
            < target.lower(_loop_program(high)).cycles

    @given(st.integers(1, 100))
    @settings(max_examples=30)
    def test_outer_trips_scale_linearly(self, trips):
        target = CortexM4Target()
        one = target.lower(_loop_program(1))
        many = target.lower(_loop_program(trips))
        # Everything except the outer loop setup scales with trips.
        setup = target.costs.loop_setup_cycles * target.costs.cycle_scale
        assert many.cycles - setup == pytest.approx(
            trips * (one.cycles - setup), rel=1e-9)

    @given(st.integers(1, 64))
    @settings(max_examples=30)
    def test_riscops_never_below_dynamic_ops(self, trips):
        program = _loop_program(trips)
        baseline = BaselineRiscTarget()
        assert baseline.risc_ops(program) >= program.total_dynamic_ops()

    @given(st.integers(0, 1000), st.integers(1, 4))
    @settings(max_examples=60)
    def test_chunk_trips_partition(self, trips, threads):
        chunks = chunk_trips(trips, threads)
        assert sum(chunks) == trips
        assert max(chunks) - min(chunks) <= 1
        assert len(chunks) == threads


class TestPowerProperties:
    @given(st.floats(0.5, 1.0), st.floats(0.5, 1.0))
    @settings(max_examples=40)
    def test_density_monotone_in_voltage(self, v1, v2):
        assume(abs(v1 - v2) > 1e-6)
        low, high = sorted((v1, v2))
        assert _POWER.dynamic_density(_ACTIVITY, low) \
            < _POWER.dynamic_density(_ACTIVITY, high)

    @given(st.floats(1e-3, 40e-3), st.floats(1e-3, 40e-3))
    @settings(max_examples=40)
    def test_max_frequency_monotone_in_budget(self, b1, b2):
        assume(abs(b1 - b2) > 1e-5)
        low, high = sorted((b1, b2))
        f_low, _ = _POWER.max_frequency_within(low, _ACTIVITY)
        f_high, _ = _POWER.max_frequency_within(high, _ACTIVITY)
        assert f_low <= f_high

    @given(st.floats(2e-3, 38e-3))
    @settings(max_examples=40)
    def test_budget_solution_is_feasible_and_tight(self, budget):
        frequency, voltage = _POWER.max_frequency_within(budget, _ACTIVITY)
        assume(frequency > 0)
        power = _POWER.total_power(frequency, voltage, _ACTIVITY)
        assert power <= budget * (1 + 1e-6)
        # Tight: 3% more frequency would either exceed f_max or budget.
        bumped = frequency * 1.03
        if bumped <= _POWER.table.f_max:
            bumped_voltage = _POWER.table.voltage_for(bumped)
            assert _POWER.total_power(bumped, bumped_voltage,
                                      _ACTIVITY) > budget


class TestOffloadProperties:
    def _timing(self, iterations, double_buffered=False,
                input_bytes=4096):
        return _COST.offload_timing(
            binary_bytes=10000, input_bytes=input_bytes, output_bytes=2048,
            compute_cycles=300e3, pulp_frequency=mhz(150),
            pulp_voltage=0.65, activity=_ACTIVITY,
            host_frequency=mhz(8), iterations=iterations,
            double_buffered=double_buffered)

    @given(st.integers(1, 200), st.integers(1, 200))
    @settings(max_examples=30)
    def test_efficiency_monotone_in_iterations(self, n1, n2):
        assume(n1 != n2)
        low, high = sorted((n1, n2))
        assert self._timing(low).efficiency <= \
            self._timing(high).efficiency + 1e-12

    @given(st.integers(1, 128), st.booleans())
    @settings(max_examples=30)
    def test_total_time_exceeds_ideal(self, iterations, double_buffered):
        timing = self._timing(iterations, double_buffered)
        assert timing.total_time >= timing.ideal_time
        assert 0 < timing.efficiency <= 1

    @given(st.integers(1, 64))
    @settings(max_examples=20)
    def test_double_buffering_never_slower(self, iterations):
        serial = self._timing(iterations)
        overlapped = self._timing(iterations, double_buffered=True)
        # Same work, overlapped transfers: wall time can only shrink
        # (up to the prologue/epilogue, covered by a small tolerance).
        assert overlapped.total_time <= serial.total_time * 1.001 \
            + serial.input_time + serial.output_time

    @given(st.integers(256, 16384))
    @settings(max_examples=20)
    def test_energy_positive_and_scales_with_payload(self, input_bytes):
        small = self._timing(4, input_bytes=256)
        large = self._timing(4, input_bytes=input_bytes)
        assert large.energy.total_energy >= small.energy.total_energy


class TestEndToEndProperties:
    @given(st.sampled_from([1, 2, 4, 8, 16, 26]))
    @settings(max_examples=10, deadline=None)
    def test_envelope_speedup_consistency(self, host_mhz):
        from repro.core.envelope import PowerEnvelopeSolver
        solver = PowerEnvelopeSolver()
        point = solver.solve(mhz(host_mhz), _ACTIVITY)
        assert point.accelerator_usable
        assert point.total_power <= mw(10) * (1 + 1e-6)
        assert point.pulp_voltage <= 1.0
        assert point.pulp_frequency <= _POWER.table.fmax_at(point.pulp_voltage) * (1 + 1e-6)
