"""Tests for the multi-accelerator serving runtime (``repro.serve``)."""

import builtins
import json

import pytest

from repro import errors
from repro.cli import main
from repro.core.system import HeterogeneousSystem
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.serve import (
    AnalyticServiceBook,
    ClosedLoopWorkload,
    MmppWorkload,
    PoissonWorkload,
    Request,
    TraceWorkload,
)
from repro.serve.engine import (
    ServeConfig,
    ServeEngine,
    default_power_budget,
)
from repro.serve.fleet import PowerTracker, ServiceBook
from repro.serve.metrics import percentile
from repro.serve.scheduler import Policy, Scheduler, SchedulerConfig
from repro.serve.workload import Lcg
from repro.sim import Simulator


@pytest.fixture(scope="module")
def book():
    """One calibrated service book shared by the whole module."""
    return AnalyticServiceBook()


def _flat_estimate(kernel, iterations):
    return 1e-3 * iterations


class ExponentialBook(ServiceBook):
    """Synthetic memoryless-service book (for queueing-theory checks)."""

    idle_power = 0.0
    host_power = 0.0

    def __init__(self, mu, seed=1):
        self.mu = mu
        self.rng = Lcg(seed)

    def active_power(self, kernel, tier):
        return 0.0

    def cold_cost(self, kernel, tier):
        return (0.0, 0.0)

    def batch_compute(self, batch, tier, droop=1.0):
        return 0.0

    def batch_service(self, batch, tier, droop=1.0):
        return (sum(self.rng.exponential(self.mu) for _ in batch), 0.0)

    def estimate(self, request):
        return 1.0 / self.mu

    def host_time(self, request):
        return 1.0 / self.mu


class FixedBook(ServiceBook):
    """Deterministic per-request service time, zero power."""

    idle_power = 0.0
    host_power = 0.0

    def __init__(self, service_s=1e-3, cold_s=0.0):
        self.service_s = service_s
        self.cold_s = cold_s

    def active_power(self, kernel, tier):
        return 0.0

    def cold_cost(self, kernel, tier):
        return (self.cold_s, 0.0)

    def batch_compute(self, batch, tier, droop=1.0):
        return self.service_s * len(batch)

    def batch_service(self, batch, tier, droop=1.0):
        return (self.service_s * len(batch) / droop, 0.0)

    def estimate(self, request):
        return self.service_s

    def host_time(self, request):
        return self.service_s * 10


class TestWorkloads:
    def test_poisson_stream_is_seeded(self):
        first = PoissonWorkload(rate=100.0, requests=50, seed=9)
        second = PoissonWorkload(rate=100.0, requests=50, seed=9)
        a = first.arrivals(_flat_estimate)
        b = second.arrivals(_flat_estimate)
        assert [r.to_dict() for r in a] == [r.to_dict() for r in b]
        other = PoissonWorkload(rate=100.0, requests=50, seed=10)
        assert [r.to_dict() for r in other.arrivals(_flat_estimate)] \
            != [r.to_dict() for r in a]

    def test_poisson_mean_rate(self):
        stream = PoissonWorkload(rate=200.0, requests=4000, seed=3) \
            .arrivals(_flat_estimate)
        measured = len(stream) / stream[-1].arrival_s
        assert measured == pytest.approx(200.0, rel=0.1)

    def test_deadlines_scale_with_estimate(self):
        stream = PoissonWorkload(rate=100.0, requests=20, seed=1,
                                 deadline_factor=10.0) \
            .arrivals(_flat_estimate)
        for request in stream:
            assert request.deadline_s == pytest.approx(
                request.arrival_s + 10.0 * 1e-3)

    def test_mmpp_is_burstier_than_poisson(self):
        poisson = PoissonWorkload(rate=300.0, requests=2000, seed=4) \
            .arrivals(_flat_estimate)
        mmpp = MmppWorkload(rates=(100.0, 1000.0), dwell_s=(0.1, 0.05),
                            requests=2000, seed=4).arrivals(_flat_estimate)

        def cv2(stream):
            gaps = [b.arrival_s - a.arrival_s
                    for a, b in zip(stream, stream[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean ** 2

        # Poisson gaps have CV^2 ~= 1; MMPP is over-dispersed.
        assert cv2(poisson) == pytest.approx(1.0, abs=0.3)
        assert cv2(mmpp) > cv2(poisson) * 1.5

    def test_trace_roundtrip(self, tmp_path):
        original = PoissonWorkload(rate=100.0, requests=25, seed=2) \
            .arrivals(_flat_estimate)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps([r.to_dict() for r in original]))
        replayed = TraceWorkload.from_json(str(path)) \
            .arrivals(_flat_estimate)
        assert [r.to_dict() for r in replayed] \
            == [r.to_dict() for r in original]

    def test_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ConfigurationError):
            TraceWorkload.from_json(str(path))
        with pytest.raises(ConfigurationError):
            TraceWorkload([{"kernel": "matmul"}]).arrivals(_flat_estimate)

    def test_closed_loop_budget(self):
        workload = ClosedLoopWorkload(clients=3, think_s=0.01,
                                      requests_per_client=2, seed=5)
        wave = workload.arrivals(_flat_estimate)
        assert len(wave) == 3
        extra = [workload.next_request(0, 1.0, _flat_estimate)]
        assert extra[0] is not None
        assert workload.next_request(0, 2.0, _flat_estimate) is None
        assert workload.total_requests == 6


class TestScheduler:
    def _requests(self, spec):
        return [Request(request_id=i, kernel=k, arrival_s=0.0, deadline_s=d)
                for i, (k, d) in enumerate(spec)]

    def test_sjf_picks_shortest(self, book):
        scheduler = Scheduler(
            SchedulerConfig(policy=Policy.SJF, max_batch=1), book)
        for request in self._requests(
                [("cnn", None), ("svm (RBF)", None), ("matmul", None)]):
            scheduler.submit(request)
        batch, _ = scheduler.take_batch(0.0)
        # svm (RBF) has the shortest warm service time of the three.
        assert batch[0].kernel == "svm (RBF)"

    def test_edf_picks_earliest_deadline(self, book):
        scheduler = Scheduler(
            SchedulerConfig(policy=Policy.EDF, max_batch=1), book)
        for request in self._requests(
                [("matmul", 0.5), ("matmul", None), ("matmul", 0.1)]):
            scheduler.submit(request)
        batch, _ = scheduler.take_batch(0.0)
        assert batch[0].deadline_s == 0.1
        batch, _ = scheduler.take_batch(0.0)
        assert batch[0].deadline_s == 0.5  # deadline-less sorts last

    def test_admission_control_drops_over_capacity(self, book):
        scheduler = Scheduler(SchedulerConfig(queue_capacity=2), book)
        requests = self._requests([("matmul", None)] * 4)
        admitted = [scheduler.submit(r) for r in requests]
        assert admitted == [True, True, False, False]
        assert [reason for _, reason in scheduler.dropped] \
            == ["queue-full", "queue-full"]

    def test_batch_coalesces_same_kernel_only(self, book):
        scheduler = Scheduler(SchedulerConfig(max_batch=8), book)
        for request in self._requests(
                [("matmul", None), ("cnn", None), ("matmul", None),
                 ("matmul", None)]):
            scheduler.submit(request)
        batch, _ = scheduler.take_batch(0.0)
        assert [r.kernel for r in batch] == ["matmul"] * 3
        assert [r.request_id for r in batch] == [0, 2, 3]
        batch, _ = scheduler.take_batch(0.0)
        assert [r.kernel for r in batch] == ["cnn"]

    def test_max_batch_bounds_coalescing(self, book):
        scheduler = Scheduler(SchedulerConfig(max_batch=2), book)
        for request in self._requests([("matmul", None)] * 5):
            scheduler.submit(request)
        batch, _ = scheduler.take_batch(0.0)
        assert len(batch) == 2

    def test_requeue_goes_to_head(self, book):
        scheduler = Scheduler(SchedulerConfig(), book)
        for request in self._requests([("matmul", None), ("cnn", None)]):
            scheduler.submit(request)
        batch, _ = scheduler.take_batch(0.0)
        scheduler.requeue(batch)
        assert scheduler.queue[0].request_id == 0

    def test_drop_late_counts_misses(self, book):
        scheduler = Scheduler(SchedulerConfig(drop_late=True), book)
        for request in self._requests([("matmul", 0.1), ("matmul", 9.0)]):
            scheduler.submit(request)
        batch, late = scheduler.take_batch(now=1.0)
        assert [r.request_id for r in late] == [0]
        assert [r.request_id for r in batch] == [1]

    def test_power_cap_needs_budget(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(policy=Policy.POWER_CAP)

    def test_tier_selection_under_budget(self, book):
        config = SchedulerConfig(policy=Policy.POWER_CAP,
                                 power_budget_w=10e-3)
        scheduler = Scheduler(config, book)
        assert scheduler.tier_for(4e-3, 1e-3, 6e-3, 3e-3) == "fast"
        assert scheduler.tier_for(6e-3, 1e-3, 6e-3, 3e-3) == "eco"
        assert scheduler.tier_for(9e-3, 1e-3, 6e-3, 3e-3) is None


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50.0) == 50
        assert percentile(values, 95.0) == 95
        assert percentile(values, 99.0) == 99
        assert percentile(values, 100.0) == 100
        assert percentile([7.0], 99.0) == 7.0

    def test_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101.0)


class TestQueueingTheory:
    def test_mm1_mean_wait_matches_analytic(self):
        lam, mu = 60.0, 100.0
        config = ServeConfig(
            workload=PoissonWorkload(rate=lam, requests=20000,
                                     deadline_factor=None, seed=1),
            nodes=1,
            scheduler=SchedulerConfig(max_batch=1),
            book=ExponentialBook(mu, seed=18))
        report = ServeEngine(config).run()
        analytic = lam / (mu * (mu - lam))    # Wq of M/M/1
        assert report.mean_wait_s() == pytest.approx(analytic, rel=0.10)

    def test_conservation_at_drain(self):
        config = ServeConfig(
            workload=PoissonWorkload(rate=400.0, requests=300, seed=11),
            nodes=2,
            scheduler=SchedulerConfig(queue_capacity=16),
            fault_plans=[FaultPlan.kernel_hang(3), FaultPlan.boot_failure(3)],
            seed=11, book=FixedBook(service_s=2e-3, cold_s=1e-3))
        report = ServeEngine(config).run()
        # The engine itself asserts queue and in-flight are empty; the
        # report must balance the books.
        assert report.arrivals == report.completed + len(report.dropped)
        assert report.arrivals == 300


class TestFleetResilience:
    def test_node_death_requeues_without_loss(self):
        # Every accelerator dies on its first batch (three boot
        # failures exhaust the ladder); the host serves everything.
        config = ServeConfig(
            workload=PoissonWorkload(rate=500.0, requests=40, seed=3),
            nodes=2,
            fault_plans=[FaultPlan.boot_failure(99)],
            seed=3, book=FixedBook(service_s=1e-3))
        report = ServeEngine(config).run()
        assert report.dead_nodes == 2
        assert report.completed == 40
        assert not report.dropped
        assert report.requeues > 0
        assert report.fallbacks == 40
        assert all(record.tier == "host" for record in report.records)

    def test_transient_faults_recover_in_place(self):
        config = ServeConfig(
            workload=PoissonWorkload(rate=200.0, requests=60, seed=5),
            nodes=2,
            fault_plans=[FaultPlan.kernel_hang(2), FaultPlan.clean()],
            seed=5, book=FixedBook(service_s=1e-3))
        report = ServeEngine(config).run()
        assert report.completed == 60
        assert report.dead_nodes == 0
        assert report.fallbacks == 0
        summary = report.metrics()
        assert summary["fault_attempts"] > 0
        assert summary["wasted_time_ms"] > 0

    def test_brownout_stretches_service(self):
        base = ServeConfig(
            workload=PoissonWorkload(rate=50.0, requests=30, seed=7),
            nodes=1, book=FixedBook(service_s=2e-3))
        slow = ServeConfig(
            workload=PoissonWorkload(rate=50.0, requests=30, seed=7),
            nodes=1, fault_plans=[FaultPlan.brownout(0.8)],
            seed=7, book=FixedBook(service_s=2e-3))
        healthy = ServeEngine(base).run()
        drooped = ServeEngine(slow).run()
        assert drooped.latency_percentiles()["p50"] \
            > healthy.latency_percentiles()["p50"]


class TestBatching:
    def test_coalescing_amortizes_cold_starts(self):
        def run(max_batch):
            # Two kernels: every switch of the resident binary costs a
            # cold start, so coalescing visibly amortizes it.
            config = ServeConfig(
                workload=PoissonWorkload(rate=2000.0, requests=200,
                                         mix={"matmul": 1.0, "cnn": 1.0},
                                         seed=13),
                nodes=1,
                scheduler=SchedulerConfig(max_batch=max_batch),
                book=FixedBook(service_s=1e-3, cold_s=5e-3))
            return ServeEngine(config).run()

        batched = run(8)
        serial = run(1)
        assert batched.completed == serial.completed == 200
        assert sum(batched.node_batches.values()) \
            < sum(serial.node_batches.values())
        # Cold start paid per batch, not per request: less busy time.
        assert sum(batched.node_busy_s.values()) \
            < sum(serial.node_busy_s.values())
        assert batched.latency_percentiles()["p95"] \
            < serial.latency_percentiles()["p95"]


class TestPowerCap:
    def test_peak_power_stays_under_budget(self, book):
        budget = default_power_budget(book, 4)
        config = ServeConfig(
            workload=PoissonWorkload(rate=400.0, requests=300, seed=7),
            nodes=4,
            scheduler=SchedulerConfig(policy=Policy.POWER_CAP,
                                      power_budget_w=budget),
            seed=7, book=book)
        report = ServeEngine(config).run()
        assert report.completed == 300
        assert report.power_peak_w <= budget * (1.0 + 1e-6)
        assert report.power_budget_w == budget

    def test_tight_budget_throttles_to_eco(self, book):
        # Room for one fast dispatch but not two: the second concurrent
        # dispatch must run at the throttled eco envelope point.
        fast_w = max(book.active_power(k, "fast")
                     for k in ("matmul", "svm (RBF)", "cnn"))
        budget = book.host_power + 2 * book.idle_power \
            + (fast_w - book.idle_power) * 1.6
        config = ServeConfig(
            workload=PoissonWorkload(rate=500.0, requests=200, seed=9),
            nodes=2,
            scheduler=SchedulerConfig(policy=Policy.POWER_CAP,
                                      power_budget_w=budget),
            seed=9, book=book)
        report = ServeEngine(config).run()
        assert report.completed == 200
        assert report.power_peak_w <= budget * (1.0 + 1e-6)
        tiers = {record.tier for record in report.records}
        assert "eco" in tiers

    def test_fifo_with_budget_defers_instead_of_throttling(self, book):
        fast_w = max(book.active_power(k, "fast")
                     for k in ("matmul", "svm (RBF)", "cnn"))
        budget = book.host_power + 2 * book.idle_power \
            + (fast_w - book.idle_power) * 1.6
        config = ServeConfig(
            workload=PoissonWorkload(rate=500.0, requests=100, seed=9),
            nodes=2,
            scheduler=SchedulerConfig(policy=Policy.FIFO,
                                      power_budget_w=budget),
            seed=9, book=book)
        report = ServeEngine(config).run()
        assert report.completed == 100
        assert report.power_peak_w <= budget * (1.0 + 1e-6)
        assert {record.tier for record in report.records} == {"fast"}


class TestDeterminism:
    def _run(self, seed):
        config = ServeConfig(
            workload=MmppWorkload(requests=150, seed=seed),
            nodes=3,
            scheduler=SchedulerConfig(policy=Policy.SJF),
            fault_plans=[FaultPlan.kernel_hang(1), FaultPlan.clean(),
                         FaultPlan.brownout(0.9)],
            seed=seed, book=FixedBook(service_s=1.5e-3, cold_s=1e-3))
        return ServeEngine(config).run()

    def test_same_seed_bit_identical_report(self):
        assert self._run(21).to_json() == self._run(21).to_json()

    def test_different_seed_differs(self):
        assert self._run(21).to_json() != self._run(22).to_json()


class TestServeCli:
    def test_acceptance_run_is_deterministic(self, capsys):
        argv = ["serve", "--nodes", "4", "--policy", "power-cap",
                "--faults", "on", "--seed", "7", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["completed"] >= 500
        assert payload["completed"] + payload["dropped"] \
            == payload["arrivals"]
        assert payload["power_peak_mw"] <= payload["power_budget_mw"] \
            * (1.0 + 1e-6)

    def test_miss_threshold_exit_code(self, capsys):
        # One node, heavy overload, tight deadlines: misses guaranteed.
        argv = ["serve", "--nodes", "1", "--arrival-rate", "2000",
                "--requests", "120", "--deadline-factor", "2",
                "--seed", "3", "--miss-threshold", "0.01"]
        assert main(argv) == 3
        payload_text = capsys.readouterr().out
        assert "missed" in payload_text

    def test_replay_trace(self, tmp_path, capsys):
        rows = PoissonWorkload(rate=200.0, requests=30, seed=2) \
            .arrivals(_flat_estimate)
        path = tmp_path / "requests.json"
        path.write_text(json.dumps([r.to_dict() for r in rows]))
        argv = ["serve", "--replay", str(path), "--nodes", "2", "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] == 30


class TestRegressions:
    def test_timeout_error_is_builtin_timeout(self):
        # The driver-facing TimeoutError must be catchable both as a
        # repro error and as the builtin.
        assert issubclass(errors.TimeoutError, builtins.TimeoutError)
        assert issubclass(errors.TimeoutError, errors.ReproError)
        try:
            raise errors.TimeoutError("watchdog tripped")
        except builtins.TimeoutError:
            pass

    def test_offload_result_metrics_degraded_fields(self):
        system = HeterogeneousSystem()
        from repro.kernels import kernel_by_name

        result = system.offload(kernel_by_name("matmul"))
        summary = result.metrics()
        for key in ("degraded", "fault_attempts", "wasted_time_s",
                    "wasted_energy_j"):
            assert key in summary
        assert summary["degraded"] is False
        assert summary["fault_attempts"] == 0

    def test_requeue_preserves_arrival_order_across_repeats(self, book):
        # Batches requeued out of order (and more than once) must land
        # back at the head sorted by their ORIGINAL enqueue time, with
        # those arrival stamps untouched.
        scheduler = Scheduler(SchedulerConfig(max_batch=2), book)
        requests = [Request(request_id=i, kernel="matmul",
                            arrival_s=i * 0.01) for i in range(6)]
        for request in requests:
            assert scheduler.submit(request)
        batches = [scheduler.take_batch(1.0)[0] for _ in range(3)]
        assert not scheduler.queue
        for batch in (batches[1], batches[2], batches[0]):
            scheduler.requeue(batch)
        assert [r.request_id for r in scheduler.queue] == [0, 1, 2, 3, 4, 5]
        # A second round of out-of-order deaths still cannot invert it.
        rebatches = [scheduler.take_batch(2.0)[0] for _ in range(3)]
        for batch in (rebatches[2], rebatches[0], rebatches[1]):
            scheduler.requeue(batch)
        assert [r.request_id for r in scheduler.queue] == [0, 1, 2, 3, 4, 5]
        assert [r.arrival_s for r in scheduler.queue] \
            == [i * 0.01 for i in range(6)]

    def test_power_tracker_timeline_stays_compact(self):
        simulator = Simulator()
        tracker = PowerTracker(simulator, base_w=1.0)

        def flap(watts):
            tracker.set_draw("node1", watts)

        # An unchanged draw is a no-op, even at a new timestamp.
        simulator.schedule(0.1, flap, 2.0)
        simulator.schedule(0.2, flap, 2.0)
        simulator.schedule(0.2, flap, 2.0)
        # Offsetting updates at one instant pop their redundant entry.
        simulator.schedule(0.3, flap, 4.0)
        simulator.schedule(0.3, flap, 2.0)
        simulator.run()
        assert tracker.timeline == [(0.0, 1.0), (0.1, 3.0)]
        assert tracker.current_w == 3.0
        assert tracker.peak_w == 5.0

    def test_power_tracker_timeline_length_bounded_by_changes(self):
        simulator = Simulator()
        tracker = PowerTracker(simulator, base_w=0.01)
        # A node flapping between the same two levels for 100 probe
        # ticks yields one entry per actual change — not per call.
        for tick in range(100):
            simulator.schedule(0.01 * (tick + 1), tracker.set_draw,
                               "node1", 0.05 if tick % 10 == 0 else 0.0)
        simulator.run()
        changes = 20  # ten rises, ten falls
        assert len(tracker.timeline) == 1 + changes
