"""Tests for the analytic timing model and its DES cross-validation."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.program import Block, Loop, Program
from repro.isa.report import LoweredReport
from repro.isa.vop import OpKind, alu
from repro.pulp.cluster import Cluster
from repro.pulp.timing import (
    ContentionModel,
    chunk_trips,
    op_stream_from_report,
    parallel_wall_cycles,
)


class TestContentionModel:
    def test_single_core_no_contention(self):
        assert ContentionModel().stall_factor(1, 0.9) == 1.0

    def test_grows_with_cores(self):
        model = ContentionModel()
        factors = [model.stall_factor(n, 0.5) for n in (1, 2, 3, 4)]
        assert factors == sorted(factors)

    def test_grows_with_intensity(self):
        model = ContentionModel()
        assert model.stall_factor(4, 0.9) > model.stall_factor(4, 0.1)

    def test_more_banks_less_contention(self):
        assert ContentionModel(banks=16).stall_factor(4, 0.5) \
            < ContentionModel(banks=4).stall_factor(4, 0.5)

    def test_intensity_clamped(self):
        model = ContentionModel()
        assert model.stall_factor(4, 2.0) == model.stall_factor(4, 1.0)

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            ContentionModel().stall_factor(0, 0.5)


class TestChunkTrips:
    def test_even_split(self):
        assert chunk_trips(8, 4) == [2, 2, 2, 2]

    def test_remainder_goes_to_first_threads(self):
        assert chunk_trips(10, 4) == [3, 3, 2, 2]

    def test_fewer_trips_than_threads(self):
        assert chunk_trips(2, 4) == [1, 1, 0, 0]

    def test_zero_trips(self):
        assert chunk_trips(0, 4) == [0, 0, 0, 0]

    def test_sums_to_trips(self):
        for trips in range(0, 50):
            assert sum(chunk_trips(trips, 4)) == trips

    def test_invalid_threads(self):
        with pytest.raises(ConfigurationError):
            chunk_trips(10, 0)


class TestParallelWallCycles:
    def test_serial_program_unchanged(self, or10n_target):
        program = Program("p", [Loop(10, [Block([alu(OpKind.ADD)])])])
        timing = parallel_wall_cycles(program, or10n_target, threads=4)
        assert timing.parallel_regions == 0
        assert timing.serial_cycles == timing.wall_cycles

    def test_parallel_loop_speeds_up(self, or10n_target, simple_program):
        single = parallel_wall_cycles(simple_program, or10n_target, 1)
        quad = parallel_wall_cycles(simple_program, or10n_target, 4)
        assert quad.wall_cycles < single.wall_cycles
        assert 2.0 < single.wall_cycles / quad.wall_cycles <= 4.0

    def test_imbalance_visible(self, or10n_target):
        # 5 iterations on 4 threads: one thread does 2.
        inner = Block([alu(OpKind.ADD, count=100)])
        program = Program("p", [Loop(5, [inner], parallelizable=True)])
        timing = parallel_wall_cycles(program, or10n_target, 4)
        per_iter = or10n_target.lower_nodes(
            [Loop(1, [inner])]).cycles
        assert timing.wall_cycles >= 2 * (per_iter - 1)

    def test_memory_accesses_aggregated(self, or10n_target, simple_program):
        timing = parallel_wall_cycles(simple_program, or10n_target, 4)
        assert timing.memory_accesses == 64 + 8  # loads + stores


class TestOpStreamSynthesis:
    def test_shapes_match_report(self):
        report = LoweredReport("x", cycles=1000.0, memory_accesses=250.0)
        stream = op_stream_from_report(report)
        mem = sum(1 for op in stream if hasattr(op, "address"))
        compute = sum(op.cycles for op in stream if hasattr(op, "cycles"))
        assert mem == 250
        assert compute == pytest.approx(750.0, abs=1.0)

    def test_no_memory(self):
        report = LoweredReport("x", cycles=100.0, memory_accesses=0.0)
        stream = op_stream_from_report(report)
        assert len(stream) == 1
        assert stream[0].cycles == 100.0

    def test_invalid_pattern(self):
        report = LoweredReport("x", cycles=10.0, memory_accesses=1.0)
        with pytest.raises(ConfigurationError):
            op_stream_from_report(report, pattern="zigzag")


class TestAnalyticVsDiscreteEvent:
    """DESIGN.md section 5: both timing paths must agree."""

    @pytest.mark.parametrize("intensity", [0.25, 0.5, 0.8])
    def test_contention_within_tolerance(self, intensity):
        cycles = 4000.0
        streams = []
        for core in range(4):
            report = LoweredReport("x", cycles=cycles,
                                   memory_accesses=cycles * intensity)
            streams.append(op_stream_from_report(report, core_index=core,
                                                 pattern="random"))
        run = Cluster().run(streams)
        des_factor = run.wall_cycles / cycles
        analytic = ContentionModel().stall_factor(4, intensity)
        assert des_factor == pytest.approx(analytic, abs=0.06)

    def test_strided_patterns_nearly_conflict_free(self):
        # Word-interleaving desynchronizes strided walkers: the DES
        # should show almost no contention (the property the TCDM's
        # interleaving scheme exists to provide).
        cycles = 4000.0
        streams = []
        for core in range(4):
            report = LoweredReport("x", cycles=cycles,
                                   memory_accesses=cycles * 0.5)
            streams.append(op_stream_from_report(report, core_index=core,
                                                 pattern="strided"))
        run = Cluster().run(streams)
        assert run.wall_cycles / cycles < 1.02

    def test_kernel_shaped_parallel_run(self, or10n_target):
        # Split a real (small) kernel program across 4 cores and check
        # the DES wall time tracks the analytic model.
        from repro.kernels.matmul import MatmulKernel
        program = MatmulKernel("char", n=12).build_program()
        loop = program.body[0]
        chunks = chunk_trips(loop.trips, 4)
        streams = []
        reports = []
        for core, chunk in enumerate(chunks):
            report = or10n_target.lower_nodes([loop.with_trips(chunk)])
            reports.append(report)
            streams.append(op_stream_from_report(report, core_index=core,
                                                 pattern="random"))
        run = Cluster().run(streams)
        analytic = parallel_wall_cycles(program, or10n_target, 4)
        assert run.wall_cycles == pytest.approx(analytic.wall_cycles,
                                                rel=0.08)
