"""Tests for the experiment result store and diff tooling."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import figure3, table1
from repro.experiments.store import (
    diff_results,
    load_results,
    render_diff,
    save_results,
)


class TestSaveLoad:
    def test_roundtrip_table1(self, tmp_path):
        rows = table1.run()
        path = tmp_path / "table1.json"
        save_results(rows, path, metadata={"experiment": "table1"})
        document = load_results(path)
        assert document["metadata"]["experiment"] == "table1"
        assert len(document["results"]) == 10
        assert document["results"][0]["name"] == "matmul"

    def test_roundtrip_figure3(self, tmp_path):
        result = figure3.run()
        path = tmp_path / "figure3.json"
        save_results(result, path)
        document = load_results(path)
        assert len(document["results"]["points"]) == 13

    def test_enum_flattening(self, tmp_path):
        from repro.app.pipeline import StageReport, Placement
        report = StageReport(name="x", placement=Placement.HOST,
                             time_per_item=1.0, energy_per_item=2.0,
                             speedup_vs_host=1.0)
        path = tmp_path / "stage.json"
        save_results(report, path)
        assert load_results(path)["results"]["placement"] == "host"

    def test_unserializable_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_results(object(), tmp_path / "bad.json")

    def test_sets_serialize_sorted(self, tmp_path):
        path = tmp_path / "sets.json"
        save_results({"regs": {3, 1, 2}, "names": frozenset({"b", "a"})},
                     path)
        results = load_results(path)["results"]
        assert results["regs"] == [1, 2, 3]
        assert results["names"] == ["a", "b"]

    def test_set_order_is_deterministic_across_insertions(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_results({"s": {"x", "y", "z"}}, a)
        save_results({"s": {"z", "x", "y"}}, b)
        assert a.read_text() == b.read_text()

    def test_paths_serialize_as_strings(self, tmp_path):
        import pathlib
        path = tmp_path / "paths.json"
        save_results({"out": pathlib.Path("/tmp/run1")}, path)
        assert load_results(path)["results"]["out"] == "/tmp/run1"

    def test_load_rejects_non_store(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            load_results(path)


class TestDiff:
    def _documents(self, before, after):
        return {"results": before}, {"results": after}

    def test_identical_runs_clean(self, tmp_path):
        rows = table1.run()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_results(rows, a)
        save_results(table1.run(), b)
        deltas = diff_results(load_results(a), load_results(b))
        assert deltas == []

    def test_numeric_change_detected(self):
        before, after = self._documents({"x": 100.0}, {"x": 110.0})
        deltas = diff_results(before, after)
        assert len(deltas) == 1
        assert deltas[0].relative_change == pytest.approx(0.10)

    def test_tolerance_suppresses_noise(self):
        before, after = self._documents({"x": 100.0}, {"x": 100.0 + 1e-8})
        assert diff_results(before, after, tolerance=1e-6) == []

    def test_missing_key_is_structural(self):
        before, after = self._documents({"x": 1.0, "y": 2.0}, {"x": 1.0})
        deltas = diff_results(before, after)
        assert len(deltas) == 1
        assert math.isnan(deltas[0].before)

    def test_list_length_change(self):
        before, after = self._documents([1, 2], [1, 2, 3])
        deltas = diff_results(before, after)
        assert any("[len]" in d.path for d in deltas)

    def test_nested_paths(self):
        before, after = self._documents(
            {"a": {"b": [{"c": 1.0}]}},
            {"a": {"b": [{"c": 2.0}]}})
        deltas = diff_results(before, after)
        assert deltas[0].path == "a.b[0].c"

    def test_bool_change(self):
        before, after = self._documents({"ok": True}, {"ok": False})
        assert len(diff_results(before, after)) == 1

    def test_render(self):
        before, after = self._documents({"x": 1.0}, {"x": 2.0})
        text = render_diff(diff_results(before, after))
        assert "x: 1 -> 2" in text
        assert render_diff([]) == "no metric changes"

    def test_render_truncates(self):
        before = {"results": {f"k{i}": float(i) for i in range(50)}}
        after = {"results": {f"k{i}": float(i + 1) for i in range(50)}}
        text = render_diff(diff_results(before, after), limit=5)
        assert "more" in text
