"""Tests for the analytic capacity fast path (``repro.capacity``)."""

import json
import math

import pytest

from repro.capacity import (
    CapacityInputs,
    CapacityModel,
    Composition,
    CompositionSpace,
    FleetPlanner,
    MMkQueue,
    VALIDATION_GRID,
    allen_cunneen_factor,
    batch_drain_factor,
    erlang_b,
    erlang_c,
    routing_for,
    run_validation,
)
from repro.capacity.composition import DEFAULT_CATALOG
from repro.capacity.validation import GridPoint, fault_plans
from repro.cli import main
from repro.dse.pareto import pareto_frontier
from repro.errors import ConfigurationError
from repro.serve import AnalyticServiceBook
from repro.serve.archetype import NodeArchetype
from repro.units import mw


@pytest.fixture(scope="module")
def book():
    """One calibrated service book shared by the whole module."""
    return AnalyticServiceBook()


@pytest.fixture(scope="module")
def model(book):
    return CapacityModel(book)


# -- closed-form queueing pins ---------------------------------------------------

class TestErlang:
    def test_erlang_b_textbook_pin(self):
        # B(3, 2) = (2^3/3!) / (1 + 2 + 2 + 4/3) = 4/3 / (19/3) = 4/19.
        assert erlang_b(3, 2.0) == pytest.approx(4.0 / 19.0, rel=1e-12)

    def test_erlang_c_textbook_pin(self):
        # C(3, 2) = 3B / (3 - 2(1 - B)) with B = 4/19  ->  4/9.
        assert erlang_c(3, 2.0) == pytest.approx(4.0 / 9.0, rel=1e-12)

    def test_erlang_b_recurrence_matches_factorial_form(self):
        servers, offered = 7, 4.5
        terms = [offered ** j / math.factorial(j)
                 for j in range(servers + 1)]
        assert erlang_b(servers, offered) == pytest.approx(
            terms[-1] / sum(terms), rel=1e-12)

    def test_erlang_c_saturated_waits_surely(self):
        assert erlang_c(2, 2.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0

    def test_zero_load_never_blocks(self):
        assert erlang_b(4, 0.0) == 0.0
        assert erlang_c(4, 0.0) == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            erlang_b(0, 1.0)
        with pytest.raises(ConfigurationError):
            erlang_b(2, -0.5)


class TestMMk:
    def test_mm1_reduction(self):
        # M/M/1: Wq = rho / (mu - lambda).
        queue = MMkQueue(arrival_rate=3.0, service_rate=5.0, servers=1)
        rho = 3.0 / 5.0
        assert queue.wait_probability == pytest.approx(rho, rel=1e-12)
        assert queue.mean_wait == pytest.approx(rho / (5.0 - 3.0),
                                                rel=1e-12)
        assert queue.mean_sojourn == pytest.approx(
            queue.mean_wait + 0.2, rel=1e-12)

    def test_little_law_consistency(self):
        queue = MMkQueue(arrival_rate=8.0, service_rate=3.0, servers=4)
        assert queue.mean_queue_length == pytest.approx(
            8.0 * queue.mean_wait, rel=1e-12)

    def test_wait_percentile_inverts_survival(self):
        queue = MMkQueue(arrival_rate=8.0, service_rate=3.0, servers=4)
        for q in (0.5, 0.9, 0.99):
            t = queue.wait_percentile(q)
            if t > 0:
                assert queue.wait_survival(t) == pytest.approx(1.0 - q,
                                                               rel=1e-9)

    def test_unstable_queue_reports_infinities(self):
        queue = MMkQueue(arrival_rate=10.0, service_rate=2.0, servers=4)
        assert not queue.stable
        assert queue.mean_wait == math.inf
        assert queue.wait_percentile(0.5) == math.inf

    def test_allen_cunneen_mm_is_identity(self):
        assert allen_cunneen_factor(1.0, 1.0) == 1.0
        assert allen_cunneen_factor(1.0, 0.0) == 0.5

    def test_drain_factor_bounds(self):
        for servers in (1, 2, 4, 6):
            for rho in (0.0, 0.3, 0.7, 0.95):
                factor = batch_drain_factor(servers, rho)
                assert 0.0 < factor <= 1.0
        assert batch_drain_factor(4, 1.2) == 1.0   # saturated: no scaling
        # More servers coalesce harder, so the factor shrinks.
        assert batch_drain_factor(6, 0.5) < batch_drain_factor(2, 0.5)


# -- the model -------------------------------------------------------------------

class TestModel:
    def test_prediction_is_deterministic(self, model):
        inputs = CapacityInputs(arrival_rate=350.0, requests=500, nodes=4)
        first = model.predict(inputs).to_json_dict()
        second = model.predict(inputs).to_json_dict()
        assert first == second

    def test_latency_grows_with_load(self, model):
        latencies = [model.predict(CapacityInputs(
            arrival_rate=rate, requests=500, nodes=4)).mean_latency_s
            for rate in (100.0, 300.0, 500.0)]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_saturation_beyond_full_batch_capacity(self, model):
        prediction = model.predict(CapacityInputs(
            arrival_rate=5000.0, requests=500, nodes=2))
        assert not prediction.stable
        assert prediction.mean_latency_s == math.inf
        assert prediction.throughput_rps > 0.0   # the capacity limit

    def test_metastable_batching_regime_stays_stable(self, model):
        # 650 rps on 4 nodes is unstable at singleton batches but the
        # fleet coalesces its way out — the model must agree.
        prediction = model.predict(CapacityInputs(
            arrival_rate=650.0, requests=500, nodes=4))
        assert prediction.stable
        assert prediction.mean_batch > 1.5

    def test_percentiles_are_ordered(self, model):
        prediction = model.predict(CapacityInputs(
            arrival_rate=450.0, requests=500, nodes=4))
        assert 0.0 < prediction.latency_p50_s < prediction.latency_p95_s
        assert prediction.survival(prediction.latency_p95_s) \
            == pytest.approx(0.05, abs=1e-6)

    def test_dead_fleet_is_saturated(self, model):
        plans = fault_plans("dead")
        prediction = model.predict(CapacityInputs(
            arrival_rate=300.0, requests=500, nodes=4,
            fault_plans=plans))
        assert prediction.dead_nodes == 1
        assert prediction.servers == 3


# -- analytic vs DES -------------------------------------------------------------

class TestValidation:
    def test_pinned_grid_passes_the_gate(self):
        report = run_validation()
        assert report["passed"], json.dumps(report["points"], indent=2)
        assert report["worst_error"]["mean_latency_ms"] <= 0.10
        assert report["worst_error"]["throughput_rps"] <= 0.10

    def test_grid_covers_the_correction_paths(self):
        names = {point.name for point in VALIDATION_GRID}
        assert any(point.power_fraction is not None
                   for point in VALIDATION_GRID)
        fault_kinds = {point.faults for point in VALIDATION_GRID
                       if point.faults}
        assert fault_kinds == {"hang", "brownout", "dead"}
        assert len(names) == len(VALIDATION_GRID)

    def test_impossible_tolerance_fails(self):
        grid = (GridPoint("one", arrival_rate=250.0, nodes=4,
                          requests=300, seed=7),)
        report = run_validation(tolerance=1e-9, grid=grid)
        assert not report["passed"]

    def test_unknown_fault_set_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_plans("meteor")

    def test_seeded_fuzz_within_tolerance(self, model, book):
        # Off-grid scenarios away from the calibration points: the model
        # must hold near its gated tolerance there too (800 requests so
        # a single seed's arrival-stream noise stays a minor term).
        from repro.serve.engine import ServeConfig, ServeEngine
        from repro.serve.workload import PoissonWorkload

        for rate, nodes, seed in ((180.0, 2, 17), (320.0, 4, 11),
                                  (520.0, 6, 13)):
            prediction = model.predict(CapacityInputs(
                arrival_rate=rate, requests=800, nodes=nodes))
            config = ServeConfig(
                workload=PoissonWorkload(rate=rate, requests=800,
                                         seed=seed, deadline_factor=None),
                nodes=nodes, seed=seed, book=book)
            des = ServeEngine(config).run().metrics()
            lat_err = (prediction.mean_latency_s * 1e3
                       / des["mean_latency_ms"] - 1.0)
            thr_err = prediction.throughput_rps / des["throughput_rps"] - 1.0
            assert abs(lat_err) <= 0.12, (rate, nodes, seed, lat_err)
            assert abs(thr_err) <= 0.12, (rate, nodes, seed, thr_err)


# -- compositions and the planner ------------------------------------------------

class TestComposition:
    def test_space_enumeration_respects_bounds(self):
        space = CompositionSpace(max_nodes=3, max_per_archetype=2)
        compositions = list(space.compositions())
        assert compositions
        for composition in compositions:
            assert 1 <= composition.nodes <= 3
            for _, count in composition.groups:
                assert 1 <= count <= 2

    def test_power_budget_filters(self):
        unbounded = len(list(CompositionSpace(max_nodes=4).compositions()))
        bounded = len(list(CompositionSpace(
            max_nodes=4, power_budget_w=mw(25.0)).compositions()))
        assert 0 < bounded < unbounded

    def test_config_hash_is_routing_sensitive(self):
        archetype = DEFAULT_CATALOG[0]
        bare = Composition(groups=((archetype, 2),))
        routed = Composition(groups=((archetype, 2),),
                             routing={"matmul": archetype.name})
        assert bare.config_hash() != routed.config_hash()

    def test_routing_targets_must_exist(self):
        archetype = DEFAULT_CATALOG[0]
        with pytest.raises(ConfigurationError):
            Composition(groups=((archetype, 1),),
                        routing={"matmul": "nonesuch"})

    def test_routing_for_is_deterministic(self):
        books = {a.name: a.build_book() for a in DEFAULT_CATALOG[:2]}
        kernels = ("matmul", "cnn", "svm (RBF)")
        assert routing_for(books, kernels) == routing_for(
            dict(reversed(list(books.items()))), kernels)

    def test_archetype_validation(self):
        with pytest.raises(ConfigurationError):
            NodeArchetype(name="bad", cluster_size=9)
        with pytest.raises(ConfigurationError):
            NodeArchetype(name="bad", spi_mode="sideways")


class TestPlanner:
    @pytest.fixture(scope="class")
    def planned(self):
        space = CompositionSpace(power_budget_w=mw(40.0), max_nodes=4)
        planner = FleetPlanner(space, arrival_rate=300.0)
        return planner, planner.plan()

    def test_every_composition_gets_a_record(self, planned):
        planner, result = planned
        assert result.stats.compositions == len(list(
            planner.space.compositions()))
        assert result.stats.feasible + result.stats.infeasible \
            == result.stats.compositions

    def test_frontier_is_feasible_and_nondominated(self, planned):
        _, result = planned
        assert result.frontier
        for record in result.frontier:
            assert record["feasible"]
            assert record["metrics"]["throughput_rps"] > 0

    def test_plan_rerun_is_bit_identical(self, planned):
        planner, result = planned
        again = planner.plan()
        assert json.dumps(result.records, sort_keys=True) \
            == json.dumps(again.records, sort_keys=True)
        assert json.dumps(result.frontier, sort_keys=True) \
            == json.dumps(again.frontier, sort_keys=True)

    def test_headroom_rejects_the_saturation_edge(self):
        space = CompositionSpace(power_budget_w=mw(40.0), max_nodes=4)
        tight = FleetPlanner(space, arrival_rate=300.0, headroom=0.05)
        result = tight.plan()
        assert result.stats.feasible == 0
        reasons = {record["error"].split(":")[0]
                   for record in result.records if record["error"]}
        assert "no headroom" in reasons

    def test_saturated_class_is_infeasible_not_fatal(self):
        space = CompositionSpace(power_budget_w=mw(40.0), max_nodes=2)
        planner = FleetPlanner(space, arrival_rate=5000.0)
        result = planner.plan()
        assert result.stats.feasible == 0

    def test_verified_frontier_within_tolerance(self, planned):
        planner, result = planned
        planner.verify_frontier(result, seed=7, requests=500,
                                tolerance=0.15)
        assert result.verify
        assert result.verified_ok, result.verify


# -- generalized pareto ----------------------------------------------------------

class TestParetoGeneralized:
    @staticmethod
    def _record(name, **metrics):
        return {"config": {"name": name}, "config_hash": name,
                "feasible": True, "metrics": metrics}

    def test_custom_objectives(self):
        records = [
            self._record("aa", throughput_rps=100.0, energy=5.0),
            self._record("bb", throughput_rps=120.0, energy=5.0),
            self._record("cc", throughput_rps=90.0, energy=3.0),
            self._record("dd", throughput_rps=80.0, energy=9.0),
        ]
        frontier = pareto_frontier(records,
                                   maximize=("throughput_rps",),
                                   minimize=("energy",))
        names = [record["config_hash"] for record in frontier]
        assert names == ["bb", "cc"]   # dd dominated, aa dominated by bb

    def test_tie_break_collapses_to_smallest_hash(self):
        records = [
            self._record("zz", throughput_rps=100.0, energy=5.0),
            self._record("aa", throughput_rps=100.0, energy=5.0),
            self._record("mm", throughput_rps=100.0, energy=5.0),
        ]
        frontier = pareto_frontier(records,
                                   maximize=("throughput_rps",),
                                   minimize=("energy",))
        assert [record["config_hash"] for record in frontier] == ["aa"]

    def test_order_independence(self):
        records = [
            self._record("aa", throughput_rps=100.0, energy=5.0),
            self._record("bb", throughput_rps=120.0, energy=6.0),
            self._record("cc", throughput_rps=110.0, energy=4.0),
        ]
        forward = pareto_frontier(records, maximize=("throughput_rps",),
                                  minimize=("energy",))
        backward = pareto_frontier(list(reversed(records)),
                                   maximize=("throughput_rps",),
                                   minimize=("energy",))
        assert forward == backward


# -- the CLI ---------------------------------------------------------------------

class TestCapacityCli:
    def test_sweep_json_is_deterministic(self, capsys):
        argv = ["capacity", "sweep", "--rates", "100,300", "--nodes", "2",
                "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert len(payload["points"]) == 2

    def test_validate_gate_exit_codes(self, capsys):
        assert main(["capacity", "validate"]) == 0
        capsys.readouterr()
        assert main(["capacity", "validate", "--tolerance", "0.0001"]) == 3

    def test_plan_verify_and_json_shape(self, capsys):
        argv = ["capacity", "plan", "--arrival-rate", "300",
                "--power-budget", "40", "--max-nodes", "4", "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["frontier"]
        assert payload["verify"]
        assert all(row["verified"] for row in payload["verify"])
        assert "elapsed_s" not in payload["stats"]   # deterministic doc

    def test_plan_renders_human_table(self, capsys):
        assert main(["capacity", "plan", "--arrival-rate", "300",
                     "--power-budget", "40", "--max-nodes", "4",
                     "--no-verify", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "fleet-composition plan" in out
        assert "frontier" in out
