"""Tests for the PULP memories: L2, TCDM, I$ and the kernel binary."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import load
from repro.pulp.binary import BOOT_BYTES, RUNTIME_STUB_BYTES, KernelBinary
from repro.pulp.icache import SharedICache
from repro.pulp.l2 import L2Memory
from repro.pulp.tcdm import WORD_BYTES, Tcdm
from repro.sim.engine import Simulator


class TestL2Memory:
    def test_default_size_is_64k(self):
        assert L2Memory().size == 65536

    def test_write_read_roundtrip(self):
        l2 = L2Memory()
        l2.write(0x100, b"hello world")
        assert l2.read(0x100, 11) == b"hello world"

    def test_out_of_range_rejected(self):
        l2 = L2Memory(size=1024)
        with pytest.raises(SimulationError):
            l2.write(1020, b"too long")
        with pytest.raises(SimulationError):
            l2.read(-1, 4)

    def test_fill(self):
        l2 = L2Memory()
        l2.fill(0, 16, 0xAB)
        assert l2.read(0, 16) == b"\xab" * 16

    def test_allocator_alignment(self):
        l2 = L2Memory()
        l2.allocate(3)
        second = l2.allocate(4, align=16)
        assert second % 16 == 0

    def test_allocator_exhaustion(self):
        l2 = L2Memory(size=1024)
        l2.allocate(1000)
        with pytest.raises(SimulationError):
            l2.allocate(100)

    def test_allocator_reset(self):
        l2 = L2Memory(size=1024)
        l2.allocate(1000)
        l2.reset_allocator()
        assert l2.allocate(1000) == 0

    def test_bytes_free(self):
        l2 = L2Memory(size=1024)
        l2.allocate(100)
        assert l2.bytes_free == 924
        assert l2.bytes_allocated == 100

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            L2Memory(size=0)


class TestTcdm:
    def test_word_interleaving(self):
        tcdm = Tcdm(Simulator(), banks=8)
        banks = [tcdm.bank_of(i * WORD_BYTES) for i in range(16)]
        assert banks == [0, 1, 2, 3, 4, 5, 6, 7] * 2

    def test_same_word_same_bank(self):
        tcdm = Tcdm(Simulator(), banks=8)
        assert tcdm.bank_of(0) == tcdm.bank_of(3)
        assert tcdm.bank_of(4) != tcdm.bank_of(0)

    def test_functional_storage(self):
        tcdm = Tcdm(Simulator())
        tcdm.write(64, b"\x01\x02\x03\x04")
        assert tcdm.read(64, 4) == b"\x01\x02\x03\x04"

    def test_access_counting(self):
        tcdm = Tcdm(Simulator())
        tcdm.write(0, b"x" * 10)  # 3 words
        tcdm.read(0, 4)           # 1 word
        assert tcdm.accesses == 4

    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            Tcdm(Simulator(), size=1000, banks=8)  # not divisible
        with pytest.raises(ConfigurationError):
            Tcdm(Simulator(), banks=0)

    def test_out_of_range(self):
        tcdm = Tcdm(Simulator())
        with pytest.raises(SimulationError):
            tcdm.read(tcdm.size, 4)

    def test_conflict_rate_zero_without_traffic(self):
        assert Tcdm(Simulator()).conflict_rate() == 0.0


class TestSharedICache:
    def test_cold_miss_then_hits(self):
        icache = SharedICache()
        assert icache.fetch(0x0) == icache.refill_cycles
        assert icache.fetch(0x4) == 0.0   # same line
        assert icache.fetch(0x0) == 0.0
        assert icache.hit_rate == pytest.approx(2 / 3)

    def test_distinct_lines_miss(self):
        icache = SharedICache(line_bytes=16)
        icache.fetch(0)
        assert icache.fetch(16) == icache.refill_cycles
        assert icache.misses == 2

    def test_warmup_cycles(self):
        icache = SharedICache(line_bytes=16, refill_cycles=10)
        assert icache.warmup_cycles(160) == 100
        assert icache.warmup_cycles(0) == 0

    def test_warmup_capped_at_capacity(self):
        icache = SharedICache(size=1024, line_bytes=16, refill_cycles=10)
        assert icache.warmup_cycles(1 << 20) == (1024 // 16) * 10

    def test_invalidate(self):
        icache = SharedICache()
        icache.fetch(0)
        icache.invalidate()
        assert icache.fetch(0) == icache.refill_cycles

    def test_eviction_keeps_working(self):
        icache = SharedICache(size=32, line_bytes=16)
        for address in range(0, 16 * 10, 16):
            icache.fetch(address)
        assert icache.misses == 10

    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            SharedICache(size=100, line_bytes=16)

    def test_negative_code_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedICache().warmup_cycles(-1)


class TestKernelBinary:
    def test_from_program(self):
        program = Program("k", [Loop(4, [Block([load()])])],
                          const_bytes=1000, buffer_bytes=2000)
        binary = KernelBinary.from_program(program)
        assert binary.const_bytes == 1000
        assert binary.buffer_bytes == 2000
        assert binary.code_bytes >= RUNTIME_STUB_BYTES + BOOT_BYTES

    def test_image_excludes_buffers(self):
        binary = KernelBinary("k", code_bytes=1000, const_bytes=500,
                              buffer_bytes=4000)
        assert binary.image_bytes == 1500
        assert binary.footprint_bytes == 5500

    def test_to_bytes_length_and_determinism(self):
        binary = KernelBinary("k", code_bytes=100, const_bytes=33)
        image = binary.to_bytes()
        assert len(image) == 133
        assert image == KernelBinary("k", 100, 33).to_bytes()

    def test_different_names_different_images(self):
        a = KernelBinary("a", code_bytes=64).to_bytes()
        b = KernelBinary("b", code_bytes=64).to_bytes()
        assert a != b

    def test_negative_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelBinary("k", code_bytes=-1)
