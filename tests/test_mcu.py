"""Tests for the MCU device model, catalog and STM32-L476 host."""

import pytest

from repro.errors import ConfigurationError
from repro.mcu import MCU_CATALOG, Stm32L476, mcu_by_name
from repro.units import mhz, mw


class TestMcuDevice:
    def test_active_power_linear_in_frequency(self):
        device = mcu_by_name("STM32-L476")
        p16 = device.active_power(mhz(16))
        p32 = device.active_power(mhz(32))
        assert p32 - device.base_power == pytest.approx(
            2 * (p16 - device.base_power))

    def test_l476_near_10mw_at_32mhz(self):
        # The paper's baseline: at 32 MHz the host uses up the envelope.
        device = mcu_by_name("STM32-L476")
        assert device.active_power(mhz(32)) == pytest.approx(mw(10), rel=0.05)

    def test_max_frequency_within_budget(self):
        device = mcu_by_name("STM32-L476")
        frequency = device.max_frequency_within(mw(5))
        assert device.active_power(frequency) <= mw(5) * (1 + 1e-9)
        assert frequency > mhz(10)

    def test_max_frequency_capped_at_fmax(self):
        device = mcu_by_name("STM32-L476")
        assert device.max_frequency_within(1.0) == device.fmax

    def test_max_frequency_zero_when_floor_exceeds(self):
        device = mcu_by_name("STM32F407")
        assert device.max_frequency_within(device.base_power / 2) == 0.0

    def test_run_returns_time_and_energy(self, matmul_program):
        device = mcu_by_name("STM32-L476")
        execution = device.run(matmul_program, mhz(32))
        assert execution.time > 0
        assert execution.energy == pytest.approx(
            execution.time * execution.power)

    def test_run_validates_frequency(self, matmul_program):
        device = mcu_by_name("STM32-L476")
        with pytest.raises(ConfigurationError):
            device.run(matmul_program, device.fmax * 2)
        with pytest.raises(ConfigurationError):
            device.run(matmul_program, 0.0)

    def test_throughput_ops(self, matmul_program, baseline_target):
        device = mcu_by_name("STM32-L476")
        ops = baseline_target.risc_ops(matmul_program)
        throughput = device.throughput_ops(ops, matmul_program, mhz(32))
        # About 1 RISC op/cycle on the M4: throughput ~ f.
        assert throughput == pytest.approx(mhz(32), rel=0.25)


class TestCatalog:
    def test_seven_devices(self):
        assert len(MCU_CATALOG) == 7

    def test_lookup_by_name(self):
        assert mcu_by_name("Ambiq Apollo").core_name.startswith("Cortex-M4")

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            mcu_by_name("ESP32")

    def test_apollo_most_efficient(self):
        # The Apollo's subthreshold design gives it by far the lowest
        # run current of the catalog.
        apollo = mcu_by_name("Ambiq Apollo")
        others = [d for d in MCU_CATALOG if d.name != apollo.name]
        assert all(apollo.run_current_density < d.run_current_density
                   for d in others)

    def test_msp430_slower_per_cycle(self, matmul_program):
        # The 16-bit MSP430 needs about twice the cycles of an M3.
        msp = mcu_by_name("MSP430")
        lpc = mcu_by_name("NXP LPC1800")
        assert msp.lower(matmul_program).cycles == pytest.approx(
            2 * lpc.lower(matmul_program).cycles, rel=0.01)

    def test_m4_devices_share_cycle_counts(self, matmul_program):
        f407 = mcu_by_name("STM32F407").lower(matmul_program).cycles
        l476 = mcu_by_name("STM32-L476").lower(matmul_program).cycles
        assert f407 == l476


class TestStm32L476Host:
    def test_spi_clock_tracks_core_clock(self):
        host = Stm32L476()
        assert host.spi_clock(mhz(8)) == pytest.approx(mhz(8))
        assert host.spi_clock(mhz(26)) == pytest.approx(mhz(26))

    def test_spi_clock_capped(self):
        host = Stm32L476()
        clock = host.spi_clock(mhz(80))
        assert clock <= host.timings.spi_max_clock
        # Power-of-two prescaler from the core clock.
        assert mhz(80) / clock in (2.0,)

    def test_spi_clock_invalid(self):
        with pytest.raises(ConfigurationError):
            Stm32L476().spi_clock(0)

    def test_dma_setup_time_scales(self):
        host = Stm32L476()
        assert host.dma_setup_time(mhz(8)) == pytest.approx(
            2 * host.dma_setup_time(mhz(16)))

    def test_gpio_event_time(self):
        host = Stm32L476()
        assert host.gpio_event_time(mhz(10)) == pytest.approx(
            host.timings.gpio_event_cycles / mhz(10))

    def test_sleep_power_far_below_active(self):
        host = Stm32L476()
        assert host.sleep_power < host.active_power(mhz(1)) / 10

    def test_baseline_frequency(self):
        assert Stm32L476.BASELINE_FREQUENCY == mhz(32)

    def test_wakeup_time_microseconds(self):
        assert 0 < Stm32L476().wakeup_time < 1e-4
