"""Tests for the OpenMP runtime models (device and host side)."""

import pytest

from repro.errors import OffloadError, RuntimeModelError
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import OpKind, alu
from repro.pulp.binary import KernelBinary
from repro.pulp.l2 import L2Memory
from repro.link.protocol import Command
from repro.runtime import (
    DeviceOpenMp,
    MapClause,
    MapDirection,
    OmpOverheads,
    Schedule,
    TargetRegion,
)


def _work_program(trips=64, per_iter=100, parallel=True, reduction=False):
    loop = Loop(trips, [Block([alu(OpKind.ADD, count=per_iter)])],
                parallelizable=parallel, reduction=reduction)
    return Program("work", [loop])


class TestOmpOverheads:
    def test_region_fixed_cost(self):
        overheads = OmpOverheads()
        cost = overheads.region_fixed_cost(threads=4, reduction=False)
        assert cost == pytest.approx(overheads.parallel_fork
                                     + overheads.parallel_join
                                     + overheads.for_init
                                     + overheads.barrier)

    def test_reduction_adds_per_thread(self):
        overheads = OmpOverheads()
        base = overheads.region_fixed_cost(4, False)
        with_reduction = overheads.region_fixed_cost(4, True)
        assert with_reduction == base + 4 * overheads.reduction_per_thread

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            OmpOverheads(parallel_fork=-1)


class TestDeviceOpenMp:
    def test_four_threads_faster(self, or10n_target):
        program = _work_program(trips=256, per_iter=400)
        single = DeviceOpenMp(or10n_target, 1).execute(program)
        quad = DeviceOpenMp(or10n_target, 4).execute(program)
        assert quad.wall_cycles < single.wall_cycles / 3

    def test_speedup_vs_single_near_four(self, or10n_target):
        program = _work_program(trips=400, per_iter=500)
        omp = DeviceOpenMp(or10n_target, 4)
        speedup = omp.speedup_vs_single(program)
        assert 3.5 < speedup < 4.0

    def test_serial_program_no_overhead(self, or10n_target):
        program = _work_program(parallel=False)
        execution = DeviceOpenMp(or10n_target, 4).execute(program)
        assert execution.overhead_cycles == 0.0
        assert execution.parallel_regions == 0
        assert execution.serial_cycles == execution.wall_cycles

    def test_overhead_fraction_positive_for_parallel(self, or10n_target):
        execution = DeviceOpenMp(or10n_target, 4).execute(_work_program())
        assert execution.overhead_fraction > 0
        assert execution.parallel_regions == 1

    def test_single_thread_never_forks(self, or10n_target):
        execution = DeviceOpenMp(or10n_target, 1).execute(_work_program())
        assert execution.overhead_cycles == 0.0

    def test_reduction_costs_more(self, or10n_target):
        plain = DeviceOpenMp(or10n_target, 4).execute(_work_program())
        reduced = DeviceOpenMp(or10n_target, 4).execute(
            _work_program(reduction=True))
        assert reduced.overhead_cycles > plain.overhead_cycles

    def test_dynamic_schedule_balances_but_costs(self, or10n_target):
        program = _work_program(trips=64, per_iter=50)
        static = DeviceOpenMp(or10n_target, 4,
                              schedule=Schedule.STATIC).execute(program)
        dynamic = DeviceOpenMp(or10n_target, 4,
                               schedule=Schedule.DYNAMIC).execute(program)
        assert dynamic.overhead_cycles > static.overhead_cycles

    def test_invalid_thread_count(self, or10n_target):
        with pytest.raises(RuntimeModelError):
            DeviceOpenMp(or10n_target, 0)

    def test_memory_intensity_bounded(self, or10n_target, simple_program):
        execution = DeviceOpenMp(or10n_target, 4).execute(simple_program)
        assert 0.0 <= execution.memory_intensity <= 1.0

    def test_amdahl_serial_section(self, or10n_target):
        serial_block = Loop(64, [Block([alu(OpKind.ADD, count=1000)])])
        parallel_loop = Loop(64, [Block([alu(OpKind.ADD, count=1000)])],
                             parallelizable=True)
        program = Program("amdahl", [serial_block, parallel_loop])
        omp = DeviceOpenMp(or10n_target, 4)
        speedup = omp.speedup_vs_single(program)
        # Half the work is serial: Amdahl caps the speedup near 8/5.
        assert 1.4 < speedup < 1.7


class TestTargetRegion:
    def _region(self, in_bytes=256, out_bytes=128, binary_kwargs=None):
        binary = KernelBinary("k", code_bytes=1024,
                              **(binary_kwargs or {}))
        return TargetRegion(binary=binary, maps=[
            MapClause("in", MapDirection.TO, data=b"\x01" * in_bytes),
            MapClause("out", MapDirection.FROM, size=out_bytes),
        ])

    def test_place_assigns_addresses(self):
        region = self._region()
        region.place(L2Memory())
        assert region.addresses["__binary__"] == 0
        assert region.addresses["in"] >= 1024
        assert region.addresses["out"] > region.addresses["in"]
        assert not region.overlapped

    def test_frames_sequence(self):
        region = self._region()
        region.place(L2Memory())
        pre, post = region.to_frames()
        assert [f.command for f in pre] == [
            Command.LOAD_BINARY, Command.WRITE_DATA, Command.START]
        assert [f.command for f in post] == [Command.READ_DATA]

    def test_frames_without_binary(self):
        region = self._region()
        region.place(L2Memory())
        pre, _ = region.to_frames(include_binary=False)
        assert pre[0].command is Command.WRITE_DATA

    def test_frames_before_place_rejected(self):
        with pytest.raises(OffloadError):
            self._region().to_frames()

    def test_transfer_byte_accounting(self):
        region = self._region(in_bytes=300, out_bytes=200)
        assert region.bytes_to_device == 300
        assert region.bytes_from_device == 200

    def test_tofrom_counts_both_ways(self):
        binary = KernelBinary("k", code_bytes=64)
        region = TargetRegion(binary=binary, maps=[
            MapClause("buf", MapDirection.TOFROM, data=b"\x00" * 64)])
        assert region.bytes_to_device == 64
        assert region.bytes_from_device == 64

    def test_overlapped_layout_when_tight(self):
        # Binary ~17 kB + in 16 kB + out 36 kB cannot fit flat in 64 kB.
        region = self._region(in_bytes=16 * 1024, out_bytes=36 * 1024,
                              binary_kwargs={"const_bytes": 16 * 1024})
        region.place(L2Memory())
        assert region.overlapped
        assert region.addresses["in"] == region.addresses["out"]

    def test_oversized_working_set_rejected(self):
        region = self._region(
            binary_kwargs={"buffer_bytes": 80 * 1024})
        with pytest.raises(OffloadError):
            region.place(L2Memory())

    def test_map_clause_validation(self):
        with pytest.raises(OffloadError):
            MapClause("x", MapDirection.TO, data=b"")
        with pytest.raises(OffloadError):
            MapClause("y", MapDirection.FROM)
