"""Tests for the VOp vocabulary and loop-nest program IR."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import DType, OpKind, VOp, alu, load, mac, store


class TestVOp:
    def test_defaults(self):
        op = load()
        assert op.kind is OpKind.LOAD
        assert op.dtype is DType.I32
        assert op.count == 1.0
        assert op.is_memory

    def test_scaled(self):
        op = mac(DType.I8, 2.0).scaled(3.0)
        assert op.count == 6.0
        assert op.kind is OpKind.MAC

    def test_wide_detection(self):
        assert VOp(OpKind.MAC64, DType.I32).is_wide
        assert not mac().is_wide

    def test_negative_count_rejected(self):
        with pytest.raises(IsaError):
            VOp(OpKind.ADD, DType.I32, count=-1)

    def test_unaligned_only_on_memory(self):
        with pytest.raises(IsaError):
            VOp(OpKind.ADD, DType.I32, unaligned=True)
        load(unaligned=True)  # fine

    def test_dtype_widths(self):
        assert DType.I8.bytes == 1
        assert DType.I16.bits == 16
        assert DType.I32.bytes == 4


class TestLoop:
    def test_depth_innermost(self):
        loop = Loop(4, [Block([load()])])
        assert loop.depth() == 1

    def test_depth_nested(self):
        inner = Loop(4, [Block([load()])])
        middle = Loop(4, [inner])
        outer = Loop(4, [middle, Loop(2, [Block([store()])])])
        assert outer.depth() == 3

    def test_with_trips(self):
        loop = Loop(10, [Block([load()])], name="x")
        clone = loop.with_trips(3)
        assert clone.trips == 3
        assert clone.name == "x"
        assert loop.trips == 10  # original untouched

    def test_negative_trips_rejected(self):
        with pytest.raises(IsaError):
            Loop(-1, [])


class TestProgram:
    def test_dynamic_op_counts(self, simple_program):
        counts = simple_program.dynamic_op_counts()
        # 8 outer iterations x 4 inner: loads = 8*4*2, macs = 8*4,
        # stores = 8, addr = 8*4.
        assert counts[OpKind.LOAD] == 64
        assert counts[OpKind.MAC] == 32
        assert counts[OpKind.STORE] == 8
        assert counts[OpKind.ADDR] == 32

    def test_total_dynamic_ops(self, simple_program):
        assert simple_program.total_dynamic_ops() == 64 + 32 + 8 + 32

    def test_walk_visits_all_nodes(self, simple_program):
        nodes = list(simple_program.walk())
        loops = [n for n in nodes if isinstance(n, Loop)]
        blocks = [n for n in nodes if isinstance(n, Block)]
        assert len(loops) == 2
        assert len(blocks) == 2

    def test_parallel_loops_top_level_only(self, simple_program):
        parallel = simple_program.parallel_loops()
        assert len(parallel) == 1
        assert parallel[0].name == "outer"

    def test_static_instruction_estimate_positive(self, simple_program):
        estimate = simple_program.static_instruction_estimate()
        # 5 ops + 4 per loop * 2 loops + 16 prologue
        assert estimate == 5 + 8 + 16

    def test_map_loops_replaces(self, simple_program):
        doubled = simple_program.map_loops(
            lambda loop: loop.with_trips(loop.trips * 2))
        counts = doubled.dynamic_op_counts()
        # Inner ops scale by 4 (both nest levels doubled), the per-outer
        # store only by 2.
        assert counts[OpKind.LOAD] == 256
        assert counts[OpKind.MAC] == 128
        assert counts[OpKind.STORE] == 16

    def test_map_loops_keeps_on_none(self, simple_program):
        same = simple_program.map_loops(lambda loop: None)
        assert same.total_dynamic_ops() == simple_program.total_dynamic_ops()

    @given(st.integers(0, 50), st.integers(1, 8))
    def test_op_counts_scale_with_trips(self, trips, count):
        loop = Loop(trips, [Block([alu(OpKind.ADD, count=count)])])
        program = Program("p", [loop])
        assert program.total_dynamic_ops() == trips * count

    def test_block_total_count(self):
        block = Block([load(count=2), mac(count=3)])
        assert block.total_count() == 5
