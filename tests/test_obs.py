"""Tests for the unified telemetry layer (src/repro/obs)."""

import json
from collections import defaultdict

import pytest

from repro.core.offload import OffloadCostModel, emit_offload_spans
from repro.errors import ObservabilityError
from repro.obs import (
    CYCLES,
    Telemetry,
    TraceAnalyzer,
    WALL,
    chrome_trace_events,
    collapsed_stacks,
    get_telemetry,
    metrics_snapshot,
    render_metrics,
    render_span_timeline,
    route_recorder,
    to_chrome_trace,
    use_telemetry,
)
from repro.power.activity import ActivityProfile
from repro.units import mhz


def offload_timing(double_buffered=False, iterations=3):
    model = OffloadCostModel()
    return model.offload_timing(
        binary_bytes=8000, input_bytes=4096, output_bytes=2048,
        compute_cycles=200e3, pulp_frequency=mhz(150), pulp_voltage=0.65,
        activity=ActivityProfile.matmul(), host_frequency=mhz(8),
        iterations=iterations, double_buffered=double_buffered)


class TestTelemetryHub:
    def test_span_emission_and_lanes(self):
        hub = Telemetry(enabled=True)
        root = hub.span("offload", "host", 0.0, 10.0)
        hub.span("compute[0]", "pulp", 1.0, 4.0, parent=root, energy=2e-6)
        hub.instant("done", "host", 10.0)
        assert hub.lanes() == ["host", "pulp"]
        assert len(hub.leaf_spans()) == 2
        assert hub.total_energy() == pytest.approx(2e-6)

    def test_disabled_hub_records_nothing(self):
        hub = Telemetry(enabled=False)
        assert hub.span("a", "x", 0.0, 1.0) == 0
        hub.count("n")
        hub.gauge("g", 3.0)
        assert not hub.spans and not hub.counters

    def test_invalid_domain_and_negative_duration(self):
        hub = Telemetry(enabled=True)
        with pytest.raises(ObservabilityError):
            hub.span("a", "x", 0.0, 1.0, domain="minutes")
        with pytest.raises(ObservabilityError):
            hub.span("a", "x", 0.0, -1.0)

    def test_monotonic_counter_rejects_decrease(self):
        hub = Telemetry(enabled=True)
        hub.count("n", 2.0)
        with pytest.raises(ObservabilityError):
            hub.count("n", -1.0)
        hub.gauge("g", 5.0)
        hub.gauge("g", 1.0)       # gauges may go down
        assert hub.counters["g"].value == 1.0

    def test_counter_kind_conflict(self):
        hub = Telemetry(enabled=True)
        hub.count("n")
        with pytest.raises(ObservabilityError):
            hub.gauge("n", 1.0)

    def test_use_telemetry_scoping(self):
        hub = Telemetry(enabled=True)
        default = get_telemetry()
        with use_telemetry(hub):
            assert get_telemetry() is hub
        assert get_telemetry() is default


class TestNoOpMode:
    """With telemetry disabled, instrumented paths change nothing."""

    def test_offload_timing_identical_with_hub_disabled(self):
        baseline = offload_timing()
        hub = Telemetry(enabled=False)
        with use_telemetry(hub):
            instrumented = offload_timing()
        assert not hub.spans and not hub.counters
        assert instrumented.total_time == baseline.total_time
        assert instrumented.energy.total_energy == \
            baseline.energy.total_energy
        assert [
            (p.label, p.duration, p.power)
            for p in instrumented.energy.phases
        ] == [(p.label, p.duration, p.power) for p in baseline.energy.phases]

    def test_offload_timing_values_unchanged_by_enabled_hub(self):
        baseline = offload_timing(double_buffered=True)
        with use_telemetry(Telemetry(enabled=True)):
            traced = offload_timing(double_buffered=True)
        assert traced.total_time == baseline.total_time
        assert traced.energy.total_energy == baseline.energy.total_energy


class TestEnergyAttribution:
    @pytest.mark.parametrize("double_buffered", [False, True])
    def test_span_energy_matches_account_total(self, double_buffered):
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            timing = offload_timing(double_buffered, iterations=5)
        account = timing.energy.total_energy
        assert hub.total_energy() == pytest.approx(account, rel=1e-9)

    def test_energy_by_phase_matches_account_labels(self):
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            timing = offload_timing()
        by_phase = TraceAnalyzer(hub).energy_by_phase()
        by_label = timing.energy.energy_by_label()
        for label in ("binary", "input", "compute", "output"):
            assert by_phase[label] == pytest.approx(by_label[label],
                                                    rel=1e-9)


class TestChromeTraceExport:
    def filled_hub(self, double_buffered=False):
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            offload_timing(double_buffered, iterations=4)
        return hub

    @pytest.mark.parametrize("double_buffered", [False, True])
    def test_schema_required_keys_and_monotonic_ts(self, double_buffered):
        events = chrome_trace_events(self.filled_hub(double_buffered))
        assert events, "no events exported"
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in ("B", "E", "i", "C", "M")
        timed = [e for e in events if e["ph"] != "M"]
        assert all(a["ts"] <= b["ts"] for a, b in zip(timed, timed[1:]))

    @pytest.mark.parametrize("double_buffered", [False, True])
    def test_balanced_begin_end_pairs(self, double_buffered):
        events = chrome_trace_events(self.filled_hub(double_buffered))
        stacks = defaultdict(list)
        for event in events:
            key = (event["pid"], event["tid"])
            if event["ph"] == "B":
                stacks[key].append(event["name"])
            elif event["ph"] == "E":
                assert stacks[key], f"E without B on {key}"
                assert stacks[key].pop() == event["name"]
        assert all(not stack for stack in stacks.values())

    def test_trace_object_is_json_serializable(self):
        trace = to_chrome_trace(self.filled_hub())
        payload = json.loads(json.dumps(trace))
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["generator"] == "repro.obs"
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"host", "spi", "pulp"} <= names

    def test_partial_overlap_rejected(self):
        hub = Telemetry(enabled=True)
        hub.span("a", "x", 0.0, 5.0)
        hub.span("b", "x", 3.0, 5.0)     # neither nested nor sequential
        with pytest.raises(ObservabilityError):
            chrome_trace_events(hub)

    def test_cycles_domain_maps_to_second_process(self):
        hub = Telemetry(enabled=True)
        hub.span("compute", "cluster.core0", 0.0, 10.0, domain=CYCLES)
        hub.span("input", "spi", 0.0, 1e-3, domain=WALL)
        pids = {e["pid"] for e in chrome_trace_events(hub)
                if e["ph"] in ("B", "E")}
        assert pids == {1, 2}


class TestRoundTripAnalyzer:
    def test_offload_round_trip(self):
        hub = Telemetry(enabled=True)
        timing = offload_timing(iterations=4)
        emit_offload_spans(hub, timing)
        analyzer = TraceAnalyzer(hub)
        stats = analyzer.lane_stats(WALL)
        assert {"host", "spi", "pulp"} <= set(stats)
        # Serial schedule: every lane fits in the offload extent.
        for lane_stats in stats.values():
            assert 0.0 <= lane_stats.utilization <= 1.0
        phases = analyzer.phase_totals()
        assert phases["compute"] == pytest.approx(
            timing.compute_time * timing.iterations, rel=1e-9)
        assert phases["input"] == pytest.approx(
            timing.input_time * timing.iterations, rel=1e-9)
        name, share = analyzer.critical_phase()
        assert name in phases and 0.0 < share <= 1.0
        # Serial schedule never overlaps; double buffering does.
        assert analyzer.overlap_efficiency() == 0.0
        db = Telemetry(enabled=True)
        emit_offload_spans(db, offload_timing(True, iterations=8))
        assert TraceAnalyzer(db).overlap_efficiency() > 0.0

    def test_des_recorder_round_trip(self):
        from repro.pulp.core import ComputeOp, MemOp
        from repro.sim.tracing import trace_cluster_run

        streams = [[ComputeOp(5.0)] + [MemOp(4 * i) for i in range(10)]
                   for _ in range(4)]
        run, recorder = trace_cluster_run(streams)
        hub = Telemetry(enabled=True)
        routed = route_recorder(recorder, hub)
        assert routed == len(recorder.events)
        lanes = hub.lanes(CYCLES)
        assert {"cluster.core0", "cluster.core1", "cluster.core2",
                "cluster.core3"} <= set(lanes)
        assert any(lane.startswith("tcdm.bank") for lane in lanes)
        assert hub.counters["cluster.trace_events"].value == routed
        # Exported events stay schema-valid.
        events = chrome_trace_events(hub)
        assert all(e["pid"] == 2 for e in events if e["ph"] in ("B", "E"))

    def test_route_disabled_hub_is_noop(self):
        from repro.pulp.core import ComputeOp
        from repro.sim.tracing import trace_cluster_run

        _, recorder = trace_cluster_run([[ComputeOp(3.0)]])
        hub = Telemetry(enabled=False)
        assert route_recorder(recorder, hub) == 0
        assert not hub.spans


class TestRenderers:
    def test_metrics_snapshot_and_render(self):
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            offload_timing()
        snapshot = metrics_snapshot(hub, extra={"kernel": "matmul"})
        assert snapshot["kernel"] == "matmul"
        assert snapshot["span_count"] == len(hub.spans)
        text = render_metrics(snapshot)
        assert "lanes" in text and "critical phase" in text

    def test_span_timeline_renders_lanes(self):
        hub = Telemetry(enabled=True)
        emit_offload_spans(hub, offload_timing())
        text = render_span_timeline(hub, domain=WALL)
        assert "host" in text and "spi" in text and "pulp" in text
        with pytest.raises(ObservabilityError):
            render_span_timeline(hub, width=3)
        assert render_span_timeline(Telemetry(enabled=True)) \
            == "(no spans recorded)"

    def test_collapsed_stacks_format(self):
        from repro.machine.programs import profile_builtin

        profiled = profile_builtin("dot_product_i8")
        text = collapsed_stacks(profiled, root="dot")
        lines = text.splitlines()
        assert lines
        for line in lines:
            frames, count = line.rsplit(" ", 1)
            assert frames.startswith("dot;pc_")
            assert int(count) >= 1


class TestLegacyGanttEquivalence:
    """core.trace is now a renderer over unified events — the phase
    timelines must still be contiguous and sum to the model's totals."""

    def test_serial_phases_contiguous_and_complete(self):
        from repro.core.trace import trace_offload

        timing = offload_timing(iterations=2)
        phases = trace_offload(timing)
        labels = [p.label for p in phases]
        assert labels[0] == "binary"
        assert "in[0]" in labels and "compute[1]" in labels
        for previous, current in zip(phases, phases[1:]):
            assert current.start == pytest.approx(previous.end, rel=1e-12)
        assert phases[-1].end == pytest.approx(timing.total_time, rel=1e-9)

    def test_double_buffered_phase_structure(self):
        from repro.core.trace import trace_offload

        timing = offload_timing(double_buffered=True, iterations=3)
        phases = trace_offload(timing)
        labels = [p.label for p in phases]
        assert "prologue(in)" in labels
        assert "period[0]" in labels and "period[2]" in labels
        assert labels[-1] == "epilogue(out)"
        assert phases[-1].end == pytest.approx(timing.total_time, rel=1e-9)
