"""Tests for the power models: interpolation, operating points, the
paper's activity-weighted equation, and energy accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import OperatingPointError, PowerModelError
from repro.power import (
    ActivityProfile,
    EnergyAccount,
    OperatingPoint,
    OperatingPointTable,
    PolynomialInterpolator,
    PulpComponent,
    PulpPowerModel,
)
from repro.power.activity import StateFractions
from repro.power.pulp_model import PULP3_TABLE
from repro.units import mhz, mw


class TestPolynomialInterpolator:
    def test_passes_through_anchors(self):
        interp = PolynomialInterpolator([0, 1, 2, 3], [0, 1, 8, 27], degree=3)
        assert interp(2) == pytest.approx(8, rel=1e-6)

    def test_inverse(self):
        interp = PolynomialInterpolator([0, 1, 2, 3], [0, 2, 4, 6], degree=1)
        assert interp.inverse(3.0) == pytest.approx(1.5, abs=1e-6)

    def test_out_of_range_rejected(self):
        interp = PolynomialInterpolator([0, 1, 2], [0, 1, 2], degree=1)
        with pytest.raises(OperatingPointError):
            interp(5.0)
        with pytest.raises(OperatingPointError):
            interp.inverse(5.0)

    def test_non_monotonic_rejected(self):
        with pytest.raises(OperatingPointError):
            PolynomialInterpolator([0, 1, 2], [0, 2, 1], degree=2)

    def test_needs_enough_anchors(self):
        with pytest.raises(OperatingPointError):
            PolynomialInterpolator([0, 1], [0, 1], degree=2)

    @given(st.floats(0.5, 1.0))
    def test_inverse_roundtrip_on_pulp_table(self, voltage):
        f = PULP3_TABLE.fmax_at(voltage)
        assert PULP3_TABLE.voltage_for(f) == pytest.approx(voltage, abs=1e-4)


class TestOperatingPointTable:
    def test_fmax_at_anchors(self):
        assert PULP3_TABLE.fmax_at(0.5) == pytest.approx(mhz(46), rel=1e-3)
        assert PULP3_TABLE.fmax_at(1.0) == pytest.approx(mhz(450), rel=1e-3)

    def test_fmax_monotonic(self):
        values = [PULP3_TABLE.fmax_at(0.5 + 0.05 * i) for i in range(11)]
        assert values == sorted(values)

    def test_voltage_for_low_frequency_floors(self):
        assert PULP3_TABLE.voltage_for(mhz(1)) == PULP3_TABLE.v_min

    def test_voltage_for_too_fast_rejected(self):
        with pytest.raises(OperatingPointError):
            PULP3_TABLE.voltage_for(mhz(1000))

    def test_leakage_interpolation_monotonic(self):
        values = [PULP3_TABLE.leakage_at(0.5 + 0.1 * i) for i in range(6)]
        assert values == sorted(values)
        assert values[0] == pytest.approx(mw(0.55), rel=1e-6)

    def test_leakage_out_of_range(self):
        with pytest.raises(OperatingPointError):
            PULP3_TABLE.leakage_at(1.5)

    def test_invalid_point(self):
        with pytest.raises(OperatingPointError):
            OperatingPoint(voltage=-1, fmax=mhz(10), leakage=0)

    def test_needs_three_points(self):
        with pytest.raises(OperatingPointError):
            OperatingPointTable([OperatingPoint(0.5, mhz(10), mw(1)),
                                 OperatingPoint(0.6, mhz(20), mw(1))])


class TestActivityProfile:
    def test_state_fractions_sum_to_one(self):
        with pytest.raises(PowerModelError):
            StateFractions(idle=0.5, run=0.2, dma=0.0)

    def test_default_idle(self):
        profile = ActivityProfile.idle()
        chi = profile.chi(PulpComponent.CORE0)
        assert chi.idle == 1.0 and chi.run == 0.0

    def test_matmul_vector_runs_cores(self):
        profile = ActivityProfile.matmul()
        assert profile.chi(PulpComponent.CORE3).run == 1.0
        assert profile.chi(PulpComponent.DMA).dma == 0.0

    def test_dma_vector(self):
        profile = ActivityProfile.dma_transfer()
        assert profile.chi(PulpComponent.DMA).dma == 1.0
        assert profile.chi(PulpComponent.CORE0).idle == 1.0

    def test_compute_profile_partial_cores(self):
        profile = ActivityProfile.compute(cores_active=2, memory_intensity=0.5)
        assert profile.chi(PulpComponent.CORE1).run == 1.0
        assert profile.chi(PulpComponent.CORE2).idle == 1.0
        assert profile.chi(PulpComponent.TCDM).run == 0.5

    def test_compute_profile_with_dma_overlap(self):
        profile = ActivityProfile.compute(4, 0.3, dma_overlap=0.4)
        tcdm = profile.chi(PulpComponent.TCDM)
        assert tcdm.run == pytest.approx(0.3)
        assert tcdm.dma == pytest.approx(0.4)
        assert profile.chi(PulpComponent.DMA).dma == pytest.approx(0.4)

    def test_invalid_core_count(self):
        with pytest.raises(PowerModelError):
            ActivityProfile.compute(cores_active=5, memory_intensity=0.1)


class TestPulpPowerModel:
    def test_paper_equation_structure(self):
        # P_d = f * sum(chi * rho): doubling f doubles dynamic power.
        model = PulpPowerModel()
        activity = ActivityProfile.matmul()
        p1 = model.dynamic_power(mhz(20), 0.5, activity)
        p2 = model.dynamic_power(mhz(40), 0.5, activity)
        assert p2 == pytest.approx(2 * p1)

    def test_voltage_scaling_quadratic(self):
        model = PulpPowerModel()
        activity = ActivityProfile.matmul()
        d_half = model.dynamic_density(activity, 0.5)
        d_full = model.dynamic_density(activity, 1.0)
        assert d_full == pytest.approx(4 * d_half)

    def test_idle_far_below_active(self):
        model = PulpPowerModel()
        idle = model.dynamic_density(ActivityProfile.idle(), 0.6)
        active = model.dynamic_density(ActivityProfile.matmul(), 0.6)
        assert idle < active / 4

    def test_figure3_power_anchor(self):
        # Peak-efficiency point: ~1.48 mW at 0.5 V / 46 MHz on matmul.
        model = PulpPowerModel()
        power = model.total_power(mhz(46), 0.5, ActivityProfile.matmul())
        assert power == pytest.approx(1.48e-3, rel=0.03)

    def test_envelope_anchor(self):
        # ~200 MHz must fit within ~9.3 mW (the Figure 5a requirement).
        model = PulpPowerModel()
        f, v = model.max_frequency_within(9.3e-3, ActivityProfile.matmul())
        assert f > mhz(190)
        assert 0.65 < v < 0.75

    def test_over_fmax_rejected(self):
        model = PulpPowerModel()
        with pytest.raises(OperatingPointError):
            model.total_power(mhz(100), 0.5, ActivityProfile.idle())

    def test_budget_below_minimum_returns_zero(self):
        model = PulpPowerModel()
        f, v = model.max_frequency_within(1e-5, ActivityProfile.matmul())
        assert f == 0.0

    def test_budget_above_maximum_returns_fmax(self):
        model = PulpPowerModel()
        f, v = model.max_frequency_within(1.0, ActivityProfile.matmul())
        assert f == pytest.approx(PULP3_TABLE.f_max)
        assert v == pytest.approx(1.0, abs=1e-6)

    def test_power_monotonic_in_budget(self):
        model = PulpPowerModel()
        activity = ActivityProfile.matmul()
        frequencies = [model.max_frequency_within(b * 1e-3, activity)[0]
                       for b in (2, 4, 6, 8, 10)]
        assert frequencies == sorted(frequencies)

    def test_missing_density_rejected(self):
        with pytest.raises(PowerModelError):
            PulpPowerModel(densities={})


class TestEnergyAccount:
    def test_accumulation(self):
        account = EnergyAccount()
        account.add("compute", 2.0, 0.005)
        account.add("transfer", 1.0, 0.002)
        assert account.total_time == 3.0
        assert account.total_energy == pytest.approx(0.012)
        assert account.average_power == pytest.approx(0.004)

    def test_by_label(self):
        account = EnergyAccount()
        account.add("a", 1.0, 1.0)
        account.add("a", 1.0, 2.0)
        account.add("b", 1.0, 3.0)
        assert account.energy_by_label() == {"a": 3.0, "b": 3.0}
        assert account.time_by_label() == {"a": 2.0, "b": 1.0}

    def test_extend(self):
        first = EnergyAccount()
        first.add("x", 1.0, 1.0)
        second = EnergyAccount()
        second.add("y", 2.0, 1.0)
        first.extend(second)
        assert first.total_time == 3.0

    def test_empty(self):
        assert EnergyAccount().average_power == 0.0

    def test_negative_rejected(self):
        account = EnergyAccount()
        with pytest.raises(PowerModelError):
            account.add("x", -1.0, 1.0)
