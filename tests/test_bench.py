"""Tests for the tracked benchmark suite (src/repro/bench)."""

import copy
import json

import pytest

from repro.bench import (
    BenchOptions,
    BenchRunner,
    FIRST_INDEX,
    SUITE_TYPES,
    compare,
    default_suites,
    fingerprint_digest,
    latest_bench,
    load_report,
    next_index,
    render_comparison,
    render_report,
    strip_timing,
    validate_report,
    write_report,
)
from repro.cli import BENCH_EXIT_REGRESSION, main
from repro.errors import BenchmarkError

#: The engines the acceptance criteria require the trajectory to cover.
REQUIRED_SUITES = {"sim", "serve", "dse_cold", "dse_cached", "faults",
                   "analysis", "learn", "chaos", "capacity"}


@pytest.fixture(scope="module")
def full_report():
    """One quick full run shared by the read-only assertions."""
    return BenchRunner(BenchOptions(repeats=2, quick=True)).run()


class TestSuites:
    def test_registry_covers_every_engine(self):
        assert {t.name for t in SUITE_TYPES} == REQUIRED_SUITES

    def test_unknown_suite_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown bench suites"):
            default_suites(["sim", "nope"])

    def test_specs_pin_their_seeds(self):
        for suite in default_suites(["serve", "faults"]):
            assert "seed" in suite.spec

    def test_fingerprint_digest_is_stable(self):
        assert (fingerprint_digest({"b": 2, "a": 1})
                == fingerprint_digest({"a": 1, "b": 2}))
        assert fingerprint_digest({"a": 1}) != fingerprint_digest({"a": 2})


class TestRunner:
    def test_report_validates_and_covers_all_suites(self, full_report):
        validate_report(full_report)
        assert set(full_report["suites"]) == REQUIRED_SUITES
        assert len(full_report["suites"]) >= 5

    def test_throughput_and_phases(self, full_report):
        for name, suite in full_report["suites"].items():
            timing = suite["timing"]
            assert timing["throughput"] > 0, name
            assert len(timing["wall_s"]) == 2, name
            assert timing["phases_s"], name
            assert all(seconds >= 0
                       for seconds in timing["phases_s"].values()), name

    def test_environment_metadata(self, full_report):
        env = full_report["env"]
        assert env["cpu_count"] >= 1
        assert env["python"] and env["platform"]

    def test_dse_suites_are_cold_and_cached(self, full_report):
        cold = full_report["suites"]["dse_cold"]
        warm = full_report["suites"]["dse_cached"]
        # Identical exploration, identical results, via different paths.
        assert cold["fingerprint"] == warm["fingerprint"]
        assert cold["counters"]["dse.cache.misses"] == cold["units_per_run"]
        assert warm["counters"]["dse.cache.hits"] == warm["units_per_run"]

    def test_engine_counters_recorded(self, full_report):
        assert full_report["suites"]["serve"]["counters"]
        assert full_report["suites"]["faults"]["counters"]

    def test_rerun_non_timing_fields_identical(self, full_report):
        rerun = BenchRunner(BenchOptions(repeats=1)).run()
        assert strip_timing(rerun) == strip_timing(full_report)

    def test_bad_repeats_rejected(self):
        with pytest.raises(BenchmarkError, match="repeats"):
            BenchOptions(repeats=0)


class TestReportSchema:
    def test_validate_rejects_missing_suite_key(self, full_report):
        broken = copy.deepcopy(full_report)
        del broken["suites"]["sim"]["timing"]["throughput"]
        with pytest.raises(BenchmarkError, match="timing.throughput"):
            validate_report(broken)

    def test_validate_rejects_wrong_schema(self, full_report):
        broken = copy.deepcopy(full_report)
        broken["schema"] = "repro.bench/v0"
        with pytest.raises(BenchmarkError, match="schema"):
            validate_report(broken)

    def test_validate_rejects_empty_suites(self, full_report):
        broken = copy.deepcopy(full_report)
        broken["suites"] = {}
        with pytest.raises(BenchmarkError, match="suites"):
            validate_report(broken)

    def test_trajectory_numbering(self, tmp_path, full_report):
        directory = str(tmp_path)
        assert next_index(directory) == FIRST_INDEX
        assert latest_bench(directory) is None
        path = write_report(copy.deepcopy(full_report), directory)
        assert path.endswith(f"BENCH_{FIRST_INDEX}.json")
        assert next_index(directory) == FIRST_INDEX + 1
        assert latest_bench(directory) == path
        assert strip_timing(load_report(path)) == strip_timing(full_report)


class TestCompare:
    def _slowed(self, report, suite, factor):
        doc = copy.deepcopy(report)
        timing = doc["suites"][suite]["timing"]
        timing["throughput"] = round(timing["throughput"] / factor, 6)
        timing["median_wall_s"] = round(timing["median_wall_s"] * factor, 9)
        timing["wall_s"] = [round(w * factor, 9) for w in timing["wall_s"]]
        return doc

    def test_identical_reports_pass(self, full_report):
        comparison = compare(full_report, full_report)
        assert comparison.ok
        assert {row.status for row in comparison.rows} == {"ok"}

    def test_injected_slowdown_detected(self, full_report):
        slow = self._slowed(full_report, "serve", 2.0)
        comparison = compare(full_report, slow)
        assert comparison.regressions == ["serve"]
        row = next(r for r in comparison.rows if r.suite == "serve")
        assert row.status == "regressed" and row.ratio == pytest.approx(0.5)
        assert "REGRESSION in serve" in render_comparison(comparison)

    def test_within_threshold_slowdown_passes(self, full_report):
        slow = self._slowed(full_report, "serve", 1.1)
        assert compare(full_report, slow).ok

    def test_speedup_is_not_a_regression(self, full_report):
        fast = self._slowed(full_report, "serve", 0.25)
        comparison = compare(full_report, fast)
        assert comparison.ok
        row = next(r for r in comparison.rows if r.suite == "serve")
        assert row.status == "improved"

    def test_spec_change_is_incomparable_not_regressed(self, full_report):
        changed = self._slowed(full_report, "serve", 10.0)
        changed["suites"]["serve"]["spec"] = dict(
            changed["suites"]["serve"]["spec"], requests=999)
        comparison = compare(full_report, changed)
        assert comparison.ok
        row = next(r for r in comparison.rows if r.suite == "serve")
        assert row.status == "incomparable"

    def test_added_and_removed_suites_annotated(self, full_report):
        pruned = copy.deepcopy(full_report)
        del pruned["suites"]["faults"]
        statuses = {row.suite: row.status
                    for row in compare(full_report, pruned).rows}
        assert statuses["faults"] == "removed"
        statuses = {row.suite: row.status
                    for row in compare(pruned, full_report).rows}
        assert statuses["faults"] == "added"

    def test_bad_threshold_rejected(self, full_report):
        with pytest.raises(BenchmarkError, match="threshold"):
            compare(full_report, full_report, threshold=1.5)

    def test_render_report(self, full_report):
        text = render_report(full_report)
        for name in REQUIRED_SUITES:
            assert name in text


class TestBenchCli:
    def _run(self, out_dir, *extra):
        return main(["bench", "--repeats", "1", "--suites", "analysis",
                     "--out-dir", str(out_dir), *extra])

    def test_run_writes_schema_valid_trajectory_entry(self, tmp_path,
                                                      capsys):
        assert self._run(tmp_path) == 0
        path = tmp_path / f"BENCH_{FIRST_INDEX}.json"
        assert path.exists()
        doc = load_report(str(path))
        assert doc["bench_index"] == FIRST_INDEX
        assert "analysis" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        assert self._run(tmp_path, "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["suites"]["analysis"]
        assert payload["path"].endswith(f"BENCH_{FIRST_INDEX}.json")

    def test_check_passes_against_own_rerun(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        assert self._run(tmp_path, "--check") == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_check_detects_injected_slowdown(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        path = tmp_path / f"BENCH_{FIRST_INDEX}.json"
        doc = json.loads(path.read_text())
        doc["suites"]["analysis"]["timing"]["throughput"] *= 100.0
        path.write_text(json.dumps(doc))
        assert self._run(tmp_path, "--check") == BENCH_EXIT_REGRESSION
        assert "REGRESSION in analysis" in capsys.readouterr().out

    def test_compare_exit_codes(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        base = tmp_path / f"BENCH_{FIRST_INDEX}.json"
        doc = json.loads(base.read_text())
        doc["suites"]["analysis"]["timing"]["throughput"] /= 100.0
        doc["bench_index"] += 1
        slow = tmp_path / f"BENCH_{FIRST_INDEX + 1}.json"
        slow.write_text(json.dumps(doc))
        assert main(["bench", "--compare", str(base), str(base)]) == 0
        assert main(["bench", "--compare", str(base), str(slow)]) \
            == BENCH_EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "regressed" in out

    def test_cli_reruns_identical_non_timing_fields(self, tmp_path):
        first, second = tmp_path / "a", tmp_path / "b"
        assert self._run(first) == 0
        assert self._run(second) == 0
        a = load_report(str(first / f"BENCH_{FIRST_INDEX}.json"))
        b = load_report(str(second / f"BENCH_{FIRST_INDEX}.json"))
        assert strip_timing(a) == strip_timing(b)

    def test_profile_and_flame_artifacts(self, tmp_path):
        profile = tmp_path / "profile.json"
        flame = tmp_path / "flame.txt"
        assert self._run(tmp_path, "--no-write", "--profile", str(profile),
                         "--flame", str(flame)) == 0
        trace = json.loads((tmp_path / "profile.analysis.json").read_text())
        names = {event.get("name") for event in trace["traceEvents"]}
        assert "analysis;lint" in names and "analysis;spmd" in names
        stacks = flame.read_text().splitlines()
        assert any(line.startswith("bench;analysis;") for line in stacks)
        assert all(int(line.rsplit(" ", 1)[1]) >= 1 for line in stacks)

    def test_missing_baseline_is_not_an_error(self, tmp_path, capsys):
        assert self._run(tmp_path, "--no-write", "--check") == 0
        assert "nothing to gate against" in capsys.readouterr().out

    def test_bad_suite_name_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown bench suites"):
            main(["bench", "--suites", "warp-drive",
                  "--out-dir", str(tmp_path)])
