"""Tests for the DES event tracing."""

import pytest

from repro.errors import SimulationError
from repro.pulp.core import ComputeOp, MemOp
from repro.sim.tracing import (
    TraceRecorder,
    render_timeline,
    trace_cluster_run,
)


class TestTraceRecorder:
    def test_records_in_order(self):
        recorder = TraceRecorder()
        recorder.record(5.0, "a", "compute")
        recorder.record(1.0, "a", "memory")
        events = recorder.by_actor()["a"]
        assert [e.time for e in events] == [1.0, 5.0]

    def test_kind_filter(self):
        recorder = TraceRecorder(kinds=["stall"])
        recorder.record(0.0, "a", "compute")
        recorder.record(1.0, "a", "stall")
        assert recorder.count("compute") == 0
        assert recorder.count("stall") == 1

    def test_window(self):
        recorder = TraceRecorder(window=(10.0, 20.0))
        recorder.record(5.0, "a", "memory")
        recorder.record(15.0, "a", "memory")
        recorder.record(25.0, "a", "memory")
        assert len(recorder.events) == 1

    def test_capacity_drops(self):
        recorder = TraceRecorder(capacity=2)
        for time in range(5):
            recorder.record(float(time), "a", "memory")
        assert len(recorder.events) == 2
        assert recorder.dropped == 3

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            TraceRecorder(capacity=0)

    def test_negative_window_rejected(self):
        with pytest.raises(SimulationError):
            TraceRecorder(window=(20.0, 10.0))

    def test_truncated_property(self):
        recorder = TraceRecorder(capacity=1)
        recorder.record(0.0, "a", "memory")
        assert not recorder.truncated
        recorder.record(1.0, "a", "memory")
        assert recorder.truncated and recorder.dropped == 1

    def test_event_durations_recorded(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "a", "compute", "5cy", duration=5.0)
        assert recorder.events[0].duration == 5.0


class TestTimelineRendering:
    def test_empty(self):
        assert render_timeline(TraceRecorder()) == "(no events recorded)"

    def test_lanes_per_actor(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "core0", "compute")
        recorder.record(10.0, "core1", "stall")
        text = render_timeline(recorder)
        assert "core0" in text and "core1" in text
        assert "=" in text and "x" in text

    def test_width_validated(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "a", "compute")
        with pytest.raises(SimulationError):
            render_timeline(recorder, width=2)

    def test_truncation_surfaced_in_render(self):
        recorder = TraceRecorder(capacity=2)
        for time in range(5):
            recorder.record(float(time), "a", "memory")
        text = render_timeline(recorder)
        assert "truncated" in text
        assert "3 events beyond capacity 2" in text

    def test_all_dropped_still_reports(self):
        recorder = TraceRecorder(capacity=1, kinds=["memory"])
        recorder.record(0.0, "a", "memory")
        recorder.events.clear()
        recorder.dropped = 4
        assert "dropped" in render_timeline(recorder)


class TestTraceClusterRun:
    def test_traces_match_run_statistics(self):
        streams = [[ComputeOp(5.0)] + [MemOp(4 * i) for i in range(10)]
                   for _ in range(2)]
        run, recorder = trace_cluster_run(streams)
        assert recorder.count("memory") == \
            sum(stats.accesses for stats in run.core_stats) == 20
        assert recorder.count("barrier") == 2
        assert run.wall_cycles > 0

    def test_stalls_recorded_under_contention(self):
        streams = [[MemOp(0) for _ in range(10)] for _ in range(4)]
        run, recorder = trace_cluster_run(streams)
        assert recorder.count("stall") > 0
        text = render_timeline(recorder)
        assert "x" in text

    def test_kind_filtered_cluster_trace(self):
        streams = [[ComputeOp(3.0), MemOp(0)] for _ in range(2)]
        _, recorder = trace_cluster_run(streams, kinds=["memory"])
        assert recorder.count("compute") == 0
        assert recorder.count("memory") == 2
