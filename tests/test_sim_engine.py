"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import DeadlockError, Interrupt, SimulationError
from repro.sim import Resource, Simulator, Timeout


class TestSimulatorBasics:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_ordering(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_at_same_time(self):
        sim = Simulator()
        log = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(5.0, log.append, 5)
        sim.run(until=2.0)
        assert log == [1]
        assert sim.now == 2.0
        sim.run()
        assert log == [1, 5]


class TestProcesses:
    def test_timeout_advances_local_time(self):
        sim = Simulator()
        times = []

        def proc():
            yield Timeout(1.5)
            times.append(sim.now)
            yield Timeout(2.5)
            times.append(sim.now)

        sim.add_process(proc())
        sim.run_all()
        assert times == [1.5, 4.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-0.1)

    def test_process_result(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return 42

        process = sim.add_process(proc())
        sim.run_all()
        assert process.finished
        assert process.result == 42

    def test_wait_on_event(self):
        sim = Simulator()
        event = sim.event("go")
        values = []

        def waiter():
            value = yield event
            values.append((sim.now, value))

        sim.add_process(waiter())
        sim.schedule(3.0, event.trigger, "payload")
        sim.run_all()
        assert values == [(3.0, "payload")]

    def test_wait_on_already_triggered_event(self):
        sim = Simulator()
        event = sim.event()
        event.trigger("early")
        values = []

        def waiter():
            value = yield event
            values.append(value)

        sim.add_process(waiter())
        sim.run_all()
        assert values == ["early"]

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.trigger()
        with pytest.raises(SimulationError):
            event.trigger()

    def test_wait_on_process_completion(self):
        sim = Simulator()

        def worker():
            yield Timeout(5.0)
            return "done"

        def watcher(target):
            result = yield target
            return (sim.now, result)

        worker_process = sim.add_process(worker())
        watcher_process = sim.add_process(watcher(worker_process))
        sim.run_all()
        assert watcher_process.result == (5.0, "done")

    def test_bad_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield "not a command"

        sim.add_process(proc())
        with pytest.raises(SimulationError):
            sim.run_all()

    def test_deadlock_detection(self):
        sim = Simulator()
        event = sim.event("never")

        def stuck():
            yield event

        sim.add_process(stuck())
        with pytest.raises(DeadlockError):
            sim.run_all()


class TestResource:
    def test_mutual_exclusion_serializes(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        finish_times = []

        def worker():
            yield resource.request()
            yield Timeout(2.0)
            resource.release()
            finish_times.append(sim.now)

        for _ in range(3):
            sim.add_process(worker())
        sim.run_all()
        assert finish_times == [2.0, 4.0, 6.0]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        finish_times = []

        def worker():
            yield resource.request()
            yield Timeout(2.0)
            resource.release()
            finish_times.append(sim.now)

        for _ in range(4):
            sim.add_process(worker())
        sim.run_all()
        assert finish_times == [2.0, 2.0, 4.0, 4.0]

    def test_statistics(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="bank")

        def worker():
            yield resource.request()
            yield Timeout(1.0)
            resource.release()

        for _ in range(3):
            sim.add_process(worker())
        sim.run_all()
        assert resource.grants == 3
        assert resource.waits == 2
        assert resource.wait_time == pytest.approx(1.0 + 2.0)
        assert resource.average_wait == pytest.approx(1.0)

    def test_release_without_hold_rejected(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_fifo_grant_order(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(tag):
            yield resource.request()
            order.append(tag)
            yield Timeout(1.0)
            resource.release()

        for tag in range(5):
            sim.add_process(worker(tag))
        sim.run_all()
        assert order == [0, 1, 2, 3, 4]


class TestAnyOf:
    def test_fires_on_first_member(self):
        sim = Simulator()
        winners = []

        def proc():
            first = sim.timeout_event(2.0, value="slow")
            second = sim.timeout_event(1.0, value="quick")
            member, value = yield sim.any_of([first, second])
            winners.append((member is second, value, sim.now))

        sim.add_process(proc())
        sim.run_all()
        assert winners == [(True, "quick", 1.0)]

    def test_accepts_processes_as_members(self):
        sim = Simulator()
        log = []

        def worker(delay, tag):
            yield Timeout(delay)
            return tag

        def waiter():
            quick = sim.add_process(worker(1.0, "quick"))
            slow = sim.add_process(worker(3.0, "slow"))
            member, value = yield sim.any_of([quick, slow])
            log.append((value, sim.now))

        sim.add_process(waiter())
        sim.run_all()
        assert log == [("quick", 1.0)]

    def test_already_triggered_member_fires_immediately(self):
        sim = Simulator()
        event = sim.event("done")
        event.trigger("early")
        log = []

        def proc():
            member, value = yield sim.any_of([event, sim.event("never")])
            log.append((value, sim.now))

        sim.add_process(proc())
        sim.run_all()
        assert log == [("early", 0.0)]

    def test_later_members_do_not_retrigger(self):
        sim = Simulator()
        first = sim.timeout_event(1.0, value="a")
        second = sim.timeout_event(2.0, value="b")
        combo = sim.any_of([first, second])

        def proc():
            member, value = yield combo
            return value

        process = sim.add_process(proc())
        sim.run_all()
        assert process.result == "a"
        assert second.triggered  # fired later, absorbed harmlessly

    def test_empty_members_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().any_of([])


class TestAllOf:
    def test_barrier_waits_for_all(self):
        sim = Simulator()
        log = []

        def proc():
            values = yield sim.all_of([sim.timeout_event(1.0, value="a"),
                                       sim.timeout_event(3.0, value="b"),
                                       sim.timeout_event(2.0, value="c")])
            log.append((values, sim.now))

        sim.add_process(proc())
        sim.run_all()
        assert log == [(["a", "b", "c"], 3.0)]

    def test_values_in_member_order(self):
        sim = Simulator()

        def worker(delay, tag):
            yield Timeout(delay)
            return tag

        def waiter():
            fast = sim.add_process(worker(1.0, "fast"))
            slow = sim.add_process(worker(2.0, "slow"))
            values = yield sim.all_of([slow, fast])
            return values

        process = sim.add_process(waiter())
        sim.run_all()
        assert process.result == ["slow", "fast"]

    def test_empty_members_triggers_immediately(self):
        sim = Simulator()
        combo = sim.all_of([])
        assert combo.triggered
        assert combo.value == []


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        sim = Simulator()
        log = []

        def victim():
            try:
                yield Timeout(10.0)
            except Interrupt as exc:
                log.append((exc.cause, sim.now))

        def attacker(process):
            yield Timeout(1.0)
            process.interrupt("preempted")

        process = sim.add_process(victim())
        sim.add_process(attacker(process))
        sim.run_all()
        assert log == [("preempted", 1.0)]

    def test_interrupted_wait_is_invalidated(self):
        sim = Simulator()
        resumes = []

        def victim():
            try:
                yield Timeout(5.0)
            except Interrupt:
                pass
            yield Timeout(10.0)   # the stale 5.0 wakeup must not land here
            resumes.append(sim.now)

        def attacker(process):
            yield Timeout(1.0)
            process.interrupt()

        process = sim.add_process(victim())
        sim.add_process(attacker(process))
        sim.run_all()
        assert resumes == [11.0]

    def test_uncaught_interrupt_finishes_process(self):
        sim = Simulator()

        def victim():
            yield Timeout(10.0)

        def attacker(process):
            yield Timeout(1.0)
            process.interrupt("die")

        process = sim.add_process(victim())
        sim.add_process(attacker(process))
        sim.run_all()
        assert process.finished
        assert process.interrupted
        assert process.result is None

    def test_interrupting_finished_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield Timeout(1.0)

        process = sim.add_process(quick())
        sim.run_all()
        process.interrupt()   # documented no-op
        sim.run_all()
        assert process.finished
        assert not process.interrupted

    def test_interrupt_while_waiting_on_event(self):
        sim = Simulator()
        event = sim.event("never")
        log = []

        def victim():
            try:
                yield event
            except Interrupt:
                log.append("interrupted")
                yield Timeout(1.0)
            log.append(sim.now)

        def attacker(process):
            yield Timeout(2.0)
            process.interrupt()

        process = sim.add_process(victim())
        sim.add_process(attacker(process))
        sim.run_all()
        assert log == ["interrupted", 3.0]
