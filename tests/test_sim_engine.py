"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Event, Resource, Simulator, Timeout


class TestSimulatorBasics:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_ordering(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_at_same_time(self):
        sim = Simulator()
        log = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(5.0, log.append, 5)
        sim.run(until=2.0)
        assert log == [1]
        assert sim.now == 2.0
        sim.run()
        assert log == [1, 5]


class TestProcesses:
    def test_timeout_advances_local_time(self):
        sim = Simulator()
        times = []

        def proc():
            yield Timeout(1.5)
            times.append(sim.now)
            yield Timeout(2.5)
            times.append(sim.now)

        sim.add_process(proc())
        sim.run_all()
        assert times == [1.5, 4.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-0.1)

    def test_process_result(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return 42

        process = sim.add_process(proc())
        sim.run_all()
        assert process.finished
        assert process.result == 42

    def test_wait_on_event(self):
        sim = Simulator()
        event = sim.event("go")
        values = []

        def waiter():
            value = yield event
            values.append((sim.now, value))

        sim.add_process(waiter())
        sim.schedule(3.0, event.trigger, "payload")
        sim.run_all()
        assert values == [(3.0, "payload")]

    def test_wait_on_already_triggered_event(self):
        sim = Simulator()
        event = sim.event()
        event.trigger("early")
        values = []

        def waiter():
            value = yield event
            values.append(value)

        sim.add_process(waiter())
        sim.run_all()
        assert values == ["early"]

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.trigger()
        with pytest.raises(SimulationError):
            event.trigger()

    def test_wait_on_process_completion(self):
        sim = Simulator()

        def worker():
            yield Timeout(5.0)
            return "done"

        def watcher(target):
            result = yield target
            return (sim.now, result)

        worker_process = sim.add_process(worker())
        watcher_process = sim.add_process(watcher(worker_process))
        sim.run_all()
        assert watcher_process.result == (5.0, "done")

    def test_bad_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield "not a command"

        sim.add_process(proc())
        with pytest.raises(SimulationError):
            sim.run_all()

    def test_deadlock_detection(self):
        sim = Simulator()
        event = sim.event("never")

        def stuck():
            yield event

        sim.add_process(stuck())
        with pytest.raises(DeadlockError):
            sim.run_all()


class TestResource:
    def test_mutual_exclusion_serializes(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        finish_times = []

        def worker():
            yield resource.request()
            yield Timeout(2.0)
            resource.release()
            finish_times.append(sim.now)

        for _ in range(3):
            sim.add_process(worker())
        sim.run_all()
        assert finish_times == [2.0, 4.0, 6.0]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        finish_times = []

        def worker():
            yield resource.request()
            yield Timeout(2.0)
            resource.release()
            finish_times.append(sim.now)

        for _ in range(4):
            sim.add_process(worker())
        sim.run_all()
        assert finish_times == [2.0, 2.0, 4.0, 4.0]

    def test_statistics(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="bank")

        def worker():
            yield resource.request()
            yield Timeout(1.0)
            resource.release()

        for _ in range(3):
            sim.add_process(worker())
        sim.run_all()
        assert resource.grants == 3
        assert resource.waits == 2
        assert resource.wait_time == pytest.approx(1.0 + 2.0)
        assert resource.average_wait == pytest.approx(1.0)

    def test_release_without_hold_rejected(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_fifo_grant_order(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(tag):
            yield resource.request()
            order.append(tag)
            yield Timeout(1.0)
            resource.release()

        for tag in range(5):
            sim.add_process(worker(tag))
        sim.run_all()
        assert order == [0, 1, 2, 3, 4]
