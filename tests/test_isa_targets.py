"""Tests for the target cost tables and the lowering walk."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.costs import (
    SimdSpec,
    TargetCosts,
    baseline_costs,
    cortex_m3_costs,
    cortex_m4_costs,
    or10n_costs,
)
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import DType, OpKind, addr, alu, load, mac, store


class TestCostTables:
    def test_baseline_mac_expands_to_two_ops(self):
        costs = baseline_costs()
        assert costs.instructions_for(OpKind.MAC) == 2.0

    def test_or10n_fused_mac(self):
        costs = or10n_costs()
        assert costs.cycles_for(OpKind.MAC) == 1.0
        assert costs.hardware_loops == 2
        assert costs.addr_folded

    def test_m4_native_wide_mac_cheaper_than_or10n(self):
        # The UMLAL/SMLAL story behind hog's slowdown.
        assert cortex_m4_costs().cycles_for(OpKind.MAC64) \
            < or10n_costs().cycles_for(OpKind.MAC64)

    def test_m3_mac_slower_than_m4(self):
        assert cortex_m3_costs().cycles_for(OpKind.MAC) \
            > cortex_m4_costs().cycles_for(OpKind.MAC)

    def test_m_series_have_no_simd(self):
        assert not cortex_m4_costs().simd
        assert not cortex_m3_costs().simd

    def test_m_series_pay_flash_fetch_stalls(self):
        assert cortex_m4_costs().cycle_scale > 1.0
        assert or10n_costs().cycle_scale == 1.0

    def test_simd_spec_validation(self):
        with pytest.raises(ConfigurationError):
            SimdSpec(lanes=0)
        with pytest.raises(ConfigurationError):
            SimdSpec(lanes=4, overhead_factor=0.5)
        with pytest.raises(ConfigurationError):
            SimdSpec(lanes=4, pure_alu_overhead=0.9)

    def test_simd_net_speedup(self):
        spec = SimdSpec(lanes=4, overhead_factor=2.0)
        assert spec.net_speedup == 2.0

    def test_with_overrides(self):
        modified = or10n_costs().with_overrides(hardware_loops=0)
        assert modified.hardware_loops == 0
        assert or10n_costs().hardware_loops == 2

    def test_unknown_kind_raises(self):
        costs = TargetCosts(
            name="tiny", op_cycles={}, op_instructions={},
            loop_iter_cycles=1, loop_iter_instructions=1,
            loop_setup_cycles=1)
        with pytest.raises(ConfigurationError):
            costs.cycles_for(OpKind.MAC)


class TestLowering:
    def test_block_cost(self, baseline_target):
        program = Program("p", [Block([load(), load(), mac()])])
        report = baseline_target.lower(program)
        # 1 + 1 + 2 instructions, CPI 1.
        assert report.instructions == 4
        assert report.cycles == 4
        assert report.memory_accesses == 2

    def test_loop_overhead_counted(self, baseline_target):
        program = Program("p", [Loop(10, [Block([alu(OpKind.ADD)])])])
        report = baseline_target.lower(program)
        # 10 adds + 10 * 2 loop-control + setup(1 instr).
        assert report.instructions == 10 + 20 + 1
        assert report.cycles_by_kind["loop_overhead"] == 20

    def test_hw_loop_removes_iteration_overhead(self, or10n_target):
        inner = Loop(100, [Block([alu(OpKind.ADD)])])
        report = or10n_target.lower(Program("p", [inner]))
        assert report.cycles_by_kind.get("loop_overhead", 0.0) == 0.0

    def test_hw_loops_limited_to_two_levels(self, or10n_target):
        level1 = Loop(4, [Block([alu(OpKind.ADD)])])
        level2 = Loop(4, [level1])
        level3 = Loop(4, [level2])
        report = or10n_target.lower(Program("p", [level3]))
        # Only the third (outermost) loop pays per-iteration overhead.
        assert report.cycles_by_kind["loop_overhead"] == \
            4 * or10n_target.costs.loop_iter_cycles

    def test_addr_folding(self, or10n_target, baseline_target):
        program = Program("p", [Block([addr(count=5)])])
        assert or10n_target.lower(program).cycles == 0
        assert baseline_target.lower(program).cycles == 5

    def test_non_foldable_addr_costs(self, or10n_target):
        program = Program("p", [Block([addr(count=5, foldable=False)])])
        assert or10n_target.lower(program).cycles == 5

    def test_cycle_scale_applied(self, m4_target):
        program = Program("p", [Block([alu(OpKind.ADD, count=100)])])
        assert m4_target.lower(program).cycles == pytest.approx(120.0)

    def test_lower_nodes_subset(self, or10n_target, simple_program):
        full = or10n_target.lower(simple_program)
        parts = or10n_target.lower_nodes(simple_program.body)
        assert parts.cycles == pytest.approx(full.cycles)


class TestVectorization:
    def _vec_loop(self, trips=64, dtype=DType.I8, ops=None):
        body = Block(ops if ops is not None else
                     [load(dtype), mac(dtype)])
        return Program("p", [Loop(trips, [body], vectorizable=True,
                                  simd_dtype=dtype)])

    def test_or10n_vectorizes_char(self, or10n_target):
        plan = or10n_target.vector_plan(
            self._vec_loop().body[0])
        assert plan is not None
        assert plan.lanes == 4

    def test_vectorization_reduces_cycles(self, or10n_target):
        vec = or10n_target.lower(self._vec_loop())
        scalar_program = Program("p", [Loop(64, [Block([
            load(DType.I8), mac(DType.I8)])])])
        scalar = or10n_target.lower(scalar_program)
        assert vec.cycles < scalar.cycles

    def test_shift_blocks_vectorization(self, or10n_target):
        program = self._vec_loop(ops=[load(DType.I16),
                                      alu(OpKind.SHIFT, DType.I16),
                                      mac(DType.I16)])
        assert or10n_target.vector_plan(program.body[0]) is None

    def test_scalar_marked_ops_do_not_block(self, or10n_target):
        program = self._vec_loop(ops=[load(DType.I8), mac(DType.I8),
                                      alu(OpKind.SHIFT, DType.I32,
                                          vector=False)])
        assert or10n_target.vector_plan(program.body[0]) is not None

    def test_scalar_ops_replicate_per_lane(self, or10n_target):
        with_scalar = self._vec_loop(ops=[
            load(DType.I8), mac(DType.I8),
            alu(OpKind.ADD, DType.I32, vector=False)])
        without = self._vec_loop()
        delta = or10n_target.lower(with_scalar).cycles \
            - or10n_target.lower(without).cycles
        # Replicated 4x per vector iteration, 16 vector iterations,
        # scaled by the SIMD overhead factor.
        spec = or10n_target.costs.simd[DType.I8]
        assert delta == pytest.approx(16 * 4 * spec.overhead_factor)

    def test_i32_never_vectorizes(self, or10n_target):
        program = self._vec_loop(dtype=DType.I32)
        assert or10n_target.vector_plan(program.body[0]) is None

    def test_m_series_never_vectorize(self, m4_target, m3_target):
        loop = self._vec_loop().body[0]
        assert m4_target.vector_plan(loop) is None
        assert m3_target.vector_plan(loop) is None

    def test_pure_alu_loops_get_light_overhead(self, or10n_target):
        adds = self._vec_loop(ops=[load(DType.I8),
                                   alu(OpKind.ADD, DType.I8),
                                   store(DType.I8)])
        plan = or10n_target.vector_plan(adds.body[0])
        spec = or10n_target.costs.simd[DType.I8]
        assert plan.overhead_factor == spec.pure_alu_overhead

    def test_unaligned_penalty_only_when_vectorized(self, m4_target):
        aligned = Program("p", [Loop(8, [Block([load(DType.I32)])])])
        unaligned = Program("p", [Loop(8, [Block([
            load(DType.I32, unaligned=True)])])])
        # Scalar context: no penalty on either.
        assert m4_target.lower(aligned).cycles == \
            m4_target.lower(unaligned).cycles

    def test_baseline_ignores_vectorizable_flag(self, baseline_target):
        vec = baseline_target.lower(self._vec_loop())
        scalar = baseline_target.lower(Program("p", [Loop(64, [Block([
            load(DType.I8), mac(DType.I8)])])]))
        assert vec.cycles == scalar.cycles


class TestReportProperties:
    def test_cpi(self, baseline_target, simple_program):
        report = baseline_target.lower(simple_program)
        # CPI 1 on ops; the only deviation is the 2-cycle loop setup
        # charged as one instruction.
        assert 1.0 < report.cpi < 1.1

    def test_memory_intensity(self, or10n_target):
        program = Program("p", [Block([load(count=10),
                                       alu(OpKind.ADD, count=10)])])
        report = or10n_target.lower(program)
        # loads cost 2 cycles each on OR10N, adds 1.
        assert report.memory_intensity() == pytest.approx(20 / 30)
