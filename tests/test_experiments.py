"""Tests for the experiment harness — the paper's tables/figures and
their headline anchors."""

import pytest

from repro.experiments import figure3, figure4, figure5, table1
from repro.units import mhz


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1.run()

    def test_ten_rows(self, rows):
        assert len(rows) == 10

    def test_risc_ops_ratios(self, rows):
        for row in rows:
            if row.name == "hog":
                assert 0.6 < row.risc_ops_ratio < 1.1
            else:
                assert 0.9 < row.risc_ops_ratio < 1.1

    def test_render_contains_all_benchmarks(self, rows):
        text = table1.render(rows)
        for row in rows:
            assert row.name in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3.run()

    def test_pulp_peak_matches_paper(self, result):
        peak = result.pulp_peak
        assert peak.gops_per_watt == pytest.approx(304, rel=0.08)
        assert peak.power == pytest.approx(1.48e-3, rel=0.08)

    def test_mcus_below_5_gops_per_watt_except_apollo(self, result):
        for point in result.mcu_points:
            if point.device == "Ambiq Apollo":
                assert point.gops_per_watt == pytest.approx(10, rel=0.15)
            else:
                assert point.gops_per_watt < 5

    def test_apollo_low_performance_point(self, result):
        apollo = [p for p in result.mcu_points
                  if p.device == "Ambiq Apollo"][0]
        # "a low performance 24 MOPS operating point"
        assert apollo.gops * 1000 == pytest.approx(24, rel=0.2)

    def test_efficiency_gap_about_1p5_orders(self, result):
        assert 20 < result.efficiency_gap() < 60

    def test_pulp_efficiency_peaks_at_lowest_voltage(self, result):
        points = sorted(result.pulp_points, key=lambda p: p.voltage)
        assert points[0].gops_per_watt == max(
            p.gops_per_watt for p in points)

    def test_six_pulp_operating_points(self, result):
        assert len(result.pulp_points) == 6

    def test_render(self, result):
        text = figure3.render(result)
        assert "PULP peak efficiency" in text
        assert "Apollo" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run()

    def test_integer_tests_2_to_2p5x(self, result):
        by_name = {r.name: r for r in result.rows}
        for name in ("matmul", "matmul (short)", "strassen"):
            assert 2.0 <= by_name[name].arch_speedup_vs_m4 <= 2.6, name

    def test_fixed_point_lower(self, result):
        by_name = {r.name: r for r in result.rows}
        for name in ("matmul (fixed)", "svm (linear)", "svm (poly)",
                     "svm (RBF)", "cnn", "cnn (approx)"):
            assert 1.2 <= by_name[name].arch_speedup_vs_m4 < 2.0, name

    def test_hog_slowdown_vs_m4(self, result):
        hog = [r for r in result.rows if r.name == "hog"][0]
        assert hog.arch_speedup_vs_m4 < 1.0
        assert hog.arch_speedup_vs_m3 == pytest.approx(1.0, abs=0.1)

    def test_m3_speedups_at_least_m4(self, result):
        for row in result.rows:
            assert row.arch_speedup_vs_m3 >= row.arch_speedup_vs_m4 * 0.99

    def test_parallel_speedups_below_ideal(self, result):
        for row in result.rows:
            assert 3.5 < row.parallel_speedup < 4.0, row.name

    def test_runtime_overhead_single_digit(self, result):
        assert 0.002 < result.mean_runtime_overhead < 0.06

    def test_render(self, result):
        text = figure4.render(result)
        assert "mean parallel speedup" in text


class TestFigure5a:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run_figure5a()

    def test_strassen_fastest_near_60x(self, result):
        best = {name: result.best_speedup(name) for name in result.kernels()}
        assert best["strassen"] == max(best.values())
        assert best["strassen"] == pytest.approx(60, rel=0.08)

    def test_fixed_point_above_25x(self, result):
        for name in ("matmul (fixed)", "svm (linear)", "svm (poly)",
                     "svm (RBF)", "cnn", "cnn (approx)"):
            assert result.best_speedup(name) > 25, name

    def test_hog_worst_near_20x(self, result):
        best = {name: result.best_speedup(name) for name in result.kernels()}
        assert best["hog"] == min(best.values())
        assert best["hog"] == pytest.approx(20, rel=0.15)

    def test_32mhz_baseline_excluded(self, result):
        cells = [c for c in result.cells if c.host_frequency == mhz(32)]
        assert cells and all(not c.within_budget for c in cells)

    def test_speedup_decreases_with_host_frequency(self, result):
        for name in result.kernels():
            cells = sorted((c for c in result.cells
                            if c.kernel == name and c.within_budget),
                           key=lambda c: c.host_frequency)
            speedups = [c.speedup for c in cells]
            assert speedups == sorted(speedups, reverse=True), name

    def test_annotations_sensible(self, result):
        for cell in result.cells:
            assert cell.pulp_ops_per_cycle > cell.host_ops_per_cycle
            assert 0.3 < cell.host_ops_per_cycle < 2.0

    def test_render(self, result):
        assert "strassen" in figure5.render_figure5a(result)


class TestFigure5b:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run_figure5b()

    def test_fast_hosts_reach_full_efficiency_by_32(self, result):
        for frequency in (mhz(16), mhz(26)):
            curve = dict(result.curve(frequency, double_buffered=False))
            assert curve[32] > 0.9

    def test_slow_host_plateaus(self, result):
        plateau = result.plateau(mhz(2), double_buffered=False)
        assert plateau < 0.8
        # It is a plateau: 128 -> 256 moves efficiency by < 3%.
        curve = dict(result.curve(mhz(2), double_buffered=False))
        assert abs(curve[256] - curve[128]) < 0.03

    def test_efficiency_monotonic_in_iterations(self, result):
        for frequency in (mhz(2), mhz(8), mhz(26)):
            for buffered in (False, True):
                curve = result.curve(frequency, buffered)
                values = [v for _, v in curve]
                assert values == sorted(values)

    def test_double_buffering_recovers_efficiency(self, result):
        serial = result.plateau(mhz(8), double_buffered=False)
        overlapped = result.plateau(mhz(8), double_buffered=True)
        assert overlapped > serial

    def test_single_iteration_pays_full_offload(self, result):
        curve = dict(result.curve(mhz(26), double_buffered=False))
        assert curve[1] < curve[32]

    def test_render(self, result):
        text = figure5.render_figure5b(result)
        assert "serial" in text and "double-buffered" in text
