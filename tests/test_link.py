"""Tests for the SPI link, GPIO event lines and the wire protocol."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LinkError, ProtocolError
from repro.link import (
    Command,
    EventLine,
    Frame,
    SpiLink,
    SpiMode,
    decode_frames,
    encode_frame,
    frame_overhead_bytes,
)
from repro.link.protocol import FRAME_OVERHEAD_BYTES
from repro.units import mhz


class TestSpiLink:
    def test_quad_is_four_times_single(self):
        single = SpiLink(SpiMode.SINGLE)
        quad = SpiLink(SpiMode.QUAD)
        assert quad.throughput(mhz(10)) == 4 * single.throughput(mhz(10))

    def test_throughput_bytes_per_second(self):
        link = SpiLink(SpiMode.SINGLE)
        assert link.throughput(mhz(8)) == pytest.approx(1e6)  # 1 MB/s

    def test_transfer_includes_framing(self):
        link = SpiLink(SpiMode.SINGLE, frame_overhead_bytes=10)
        transfer = link.transfer(100, mhz(1))
        assert transfer.wire_bytes == 110
        assert transfer.time == pytest.approx(110 * 8 / 1e6)

    def test_zero_payload_free(self):
        link = SpiLink()
        assert link.transfer(0, mhz(1)).time == 0.0

    def test_energy_scales_with_time(self):
        link = SpiLink()
        small = link.transfer(100, mhz(4))
        large = link.transfer(1000, mhz(4))
        assert large.energy > small.energy

    def test_active_power_reasonable(self):
        # The link must remain a small consumer inside the 10 mW budget.
        link = SpiLink(SpiMode.QUAD)
        assert link.active_power(mhz(13)) < 1e-3

    def test_transfer_throughput_property(self):
        transfer = SpiLink(SpiMode.QUAD).transfer(4096, mhz(10))
        assert transfer.throughput == pytest.approx(
            4096 / transfer.time)

    def test_invalid_clock(self):
        with pytest.raises(LinkError):
            SpiLink().throughput(0)

    def test_negative_payload(self):
        with pytest.raises(LinkError):
            SpiLink().transfer(-1, mhz(1))


class TestEventLine:
    def test_pulse_sequence(self):
        line = EventLine("eoc")
        seen = line.pulse(1.0)
        assert seen == pytest.approx(1.0 + line.propagation_delay)
        assert line.edge_count == 2
        assert not line.level

    def test_raise_then_clear(self):
        line = EventLine("fe")
        line.raise_event(0.0)
        assert line.level
        line.clear_event(1.0)
        assert not line.level

    def test_double_raise_rejected(self):
        line = EventLine("fe")
        line.raise_event(0.0)
        with pytest.raises(LinkError):
            line.raise_event(1.0)

    def test_time_travel_rejected(self):
        line = EventLine("fe")
        line.raise_event(5.0)
        with pytest.raises(LinkError):
            line.clear_event(1.0)

    def test_energy_accounting(self):
        line = EventLine("fe")
        line.pulse(0.0)
        line.pulse(1.0)
        assert line.total_energy == pytest.approx(4 * line.energy_per_edge)

    def test_edge_log(self):
        line = EventLine("fe")
        line.raise_event(1.0)
        line.clear_event(2.0)
        assert line.edges == [(1.0, True), (2.0, False)]


class TestProtocol:
    def test_roundtrip_simple(self):
        frame = Frame(Command.WRITE_DATA, 0x1000, b"payload")
        decoded, = decode_frames(encode_frame(frame))
        assert decoded == frame

    def test_empty_payload(self):
        frame = Frame(Command.START, 0x0)
        decoded, = decode_frames(encode_frame(frame))
        assert decoded.payload == b""
        assert decoded.wire_size == FRAME_OVERHEAD_BYTES

    def test_multiple_frames(self):
        frames = [Frame(Command.LOAD_BINARY, 0, b"\x01\x02"),
                  Frame(Command.WRITE_DATA, 64, b"abc"),
                  Frame(Command.START, 0)]
        stream = b"".join(encode_frame(f) for f in frames)
        assert decode_frames(stream) == frames

    def test_overhead_constant(self):
        assert frame_overhead_bytes() == FRAME_OVERHEAD_BYTES == 10

    def test_checksum_detects_corruption(self):
        data = bytearray(encode_frame(Frame(Command.WRITE_DATA, 0, b"abcd")))
        data[10] ^= 0xFF
        with pytest.raises(ProtocolError):
            decode_frames(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(ProtocolError):
            decode_frames(b"\x01\x00\x00")

    def test_truncated_payload(self):
        encoded = encode_frame(Frame(Command.WRITE_DATA, 0, b"abcd"))
        with pytest.raises(ProtocolError):
            decode_frames(encoded[:-3])

    def test_unknown_command(self):
        data = bytearray(encode_frame(Frame(Command.STATUS, 0)))
        data[0] = 0x7F
        # Fix the checksum so only the command is wrong.
        body = bytes(data[:-1])
        data[-1] = (~sum(body)) & 0xFF
        with pytest.raises(ProtocolError):
            decode_frames(bytes(data))

    def test_address_out_of_range(self):
        with pytest.raises(ProtocolError):
            Frame(Command.START, 1 << 32)

    def test_zero_length_payload_roundtrip(self):
        frame = Frame(Command.WRITE_DATA, 0x2000, b"")
        stream = encode_frame(frame)
        assert len(stream) == FRAME_OVERHEAD_BYTES
        decoded, = decode_frames(stream)
        assert decoded == frame

    def test_bad_checksum_mid_stream(self):
        # First frame intact, second corrupted: the decoder must reject
        # the stream (offset in the message points at the bad frame).
        good = encode_frame(Frame(Command.WRITE_DATA, 0, b"aaaa"))
        bad = bytearray(encode_frame(Frame(Command.WRITE_DATA, 64, b"bbbb")))
        bad[-1] ^= 0x01
        with pytest.raises(ProtocolError, match=r"offset 14"):
            decode_frames(good + bytes(bad))

    def test_duplicated_frame_decodes_to_two(self):
        # Duplication is NOT a protocol error at this layer — both copies
        # are well-formed.  Deduplication is the sender's job (it treats
        # a multi-frame delivery as failed and retransmits).
        encoded = encode_frame(Frame(Command.START, 0x10))
        frames = decode_frames(encoded + encoded)
        assert len(frames) == 2
        assert frames[0] == frames[1]

    def test_truncated_header_mid_stream(self):
        good = encode_frame(Frame(Command.STATUS, 0))
        with pytest.raises(ProtocolError, match="truncated frame header"):
            decode_frames(good + b"\x05\x00")

    def test_truncated_payload_reports_need(self):
        encoded = encode_frame(Frame(Command.WRITE_DATA, 0, b"abcdefgh"))
        with pytest.raises(ProtocolError, match="truncated frame payload"):
            decode_frames(encoded[:-1])

    @given(st.sampled_from(list(Command)),
           st.integers(0, 2**32 - 1),
           st.binary(max_size=512))
    def test_roundtrip_property(self, command, address, payload):
        frame = Frame(command, address, payload)
        decoded, = decode_frames(encode_frame(frame))
        assert decoded.command is command
        assert decoded.address == address
        assert decoded.payload == payload

    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=8))
    def test_multi_frame_roundtrip(self, payloads):
        frames = [Frame(Command.WRITE_DATA, i * 64, p)
                  for i, p in enumerate(payloads)]
        stream = b"".join(encode_frame(f) for f in frames)
        assert decode_frames(stream) == frames
