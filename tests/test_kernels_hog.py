"""Tests for the HOG kernel."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.isa.cortexm import CortexM3Target, CortexM4Target
from repro.isa.or10n import Or10nTarget
from repro.isa.vop import OpKind
from repro.kernels.hog import (
    BINS,
    BLOCKS,
    CELLS,
    CLIP_Q16,
    HogKernel,
    gaussian_window_q15,
)
from repro.kernels.fixmath import Q16_ONE


@pytest.fixture(scope="module")
def hog_pair():
    kernel = HogKernel()
    inputs = kernel.generate_inputs(5)
    return kernel, inputs, kernel.compute(inputs), kernel.reference(inputs)


class TestGaussianWindow:
    def test_shape_and_peak(self):
        window = gaussian_window_q15()
        assert window.shape == (16, 16)
        peak = np.unravel_index(window.argmax(), window.shape)
        assert peak in ((7, 7), (7, 8), (8, 7), (8, 8))

    def test_symmetric(self):
        window = gaussian_window_q15()
        assert np.array_equal(window, window[::-1, :])
        assert np.array_equal(window, window[:, ::-1])


class TestFunctional:
    def test_descriptor_shape_and_dtype(self, hog_pair):
        _, _, fixed, _ = hog_pair
        descriptor = fixed["descriptor"]
        assert descriptor.shape == (CELLS, CELLS, 4, BINS)
        assert descriptor.dtype == np.int32

    def test_matches_float_reference(self, hog_pair):
        _, _, fixed, ref = hog_pair
        out = fixed["descriptor"] / Q16_ONE
        expected = ref["descriptor"]
        correlation = np.corrcoef(out.ravel(), expected.ravel())[0, 1]
        assert correlation > 0.99
        assert np.abs(out - expected).mean() < 0.01

    def test_values_clipped_and_nonnegative(self, hog_pair):
        _, _, fixed, _ = hog_pair
        descriptor = fixed["descriptor"]
        assert descriptor.min() >= 0
        assert descriptor.max() <= CLIP_Q16

    def test_flat_image_gives_zero_descriptor(self):
        kernel = HogKernel()
        flat = {"image": np.full((128, 128), 100, dtype=np.uint8)}
        descriptor = kernel.compute(flat)["descriptor"]
        assert not descriptor.any()

    def test_horizontal_edge_energizes_vertical_gradient_bin(self):
        kernel = HogKernel()
        image = np.zeros((128, 128), dtype=np.uint8)
        image[64:, :] = 200  # strong horizontal edge -> vertical gradient
        descriptor = kernel.compute({"image": image})["descriptor"]
        # The gradient direction is pi/2: bin index BINS // 2.
        edge_cells = descriptor[7:9, 4:12]
        strongest_bin = edge_cells.sum(axis=(0, 1, 2)).argmax()
        assert strongest_bin == pytest.approx(BINS // 2, abs=1)

    def test_output_size_is_36kb(self, hog_pair):
        kernel, inputs, fixed, _ = hog_pair
        payload = kernel.serialize_outputs(fixed)
        assert len(payload) == CELLS * CELLS * 4 * BINS * 4 == 36864

    def test_rejects_wrong_dtype(self):
        kernel = HogKernel()
        with pytest.raises(KernelError):
            kernel.compute({"image": np.zeros((128, 128), dtype=np.int16)})

    def test_rejects_wrong_shape(self):
        kernel = HogKernel()
        with pytest.raises(KernelError):
            kernel.compute({"image": np.zeros((64, 64), dtype=np.uint8)})


class TestProgram:
    def test_table1_sizes(self):
        program = HogKernel().build_program()
        assert program.input_bytes == 16384
        assert program.output_bytes == 36864

    def test_risc_ops_order_of_magnitude(self, baseline_target):
        # Known deviation (EXPERIMENTS.md): we reach ~24M of the paper's
        # 31M; the shape requirement is hog >> every other kernel.
        ops = baseline_target.risc_ops(HogKernel().build_program())
        assert 20e6 < ops < 32e6

    def test_architectural_slowdown_vs_m4(self):
        # The paper's signature hog result: OR10N is *slower* than the
        # M4 (software 64-bit vs native UMLAL) and on par with the M3.
        program = HogKernel().build_program()
        or10n = Or10nTarget().lower(program).cycles
        m4 = CortexM4Target().lower(program).cycles
        m3 = CortexM3Target().lower(program).cycles
        assert m4 / or10n < 1.0
        assert m3 / or10n == pytest.approx(1.0, abs=0.1)

    def test_wide_ops_dominate(self, baseline_target):
        program = HogKernel().build_program()
        counts = program.dynamic_op_counts()
        wide = sum(counts.get(kind, 0) for kind in
                   (OpKind.MUL64, OpKind.ADD64, OpKind.SHIFT64, OpKind.MAC64))
        assert wide > 0.3 * sum(counts.values())

    def test_three_parallel_phases(self):
        program = HogKernel().build_program()
        assert len(program.parallel_loops()) == 3

    def test_blocks_phase_squares(self):
        program = HogKernel().build_program()
        blocks = [loop for loop in program.parallel_loops()
                  if loop.name == "blocks"]
        assert blocks[0].trips == BLOCKS
