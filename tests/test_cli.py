"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "figure3", "figure4", "figure5a",
                        "figure5b", "all"):
            assert parser.parse_args([command]).command == command

    def test_offload_defaults(self):
        args = build_parser().parse_args(["offload"])
        assert args.kernel == "matmul"
        assert args.host_mhz == 8.0
        assert args.iterations == 1
        assert not args.double_buffer

    def test_offload_kernel_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["offload", "--kernel", "nonesuch"])

    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint", "--all-builtin"])
        assert args.command == "lint"
        assert args.files == []
        assert args.all_builtin
        assert args.format == "pretty"
        assert not args.strict

    def test_lint_format_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "xml"])

    def test_lint_requires_input(self):
        with pytest.raises(SystemExit):
            main(["lint"])

    def test_lint_bad_entry_regs_rejected(self, tmp_path):
        source = tmp_path / "x.s"
        source.write_text("halt\n")
        with pytest.raises(SystemExit):
            main(["lint", str(source), "--entry-regs", "r99"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "hog" in out

    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "PULP peak efficiency" in out

    def test_figure4(self, capsys):
        assert main(["figure4"]) == 0
        assert "mean parallel speedup" in capsys.readouterr().out

    def test_figure5b_with_kernel(self, capsys):
        assert main(["figure5b", "--kernel", "matmul"]) == 0
        assert "matmul" in capsys.readouterr().out

    def test_offload(self, capsys):
        code = main(["offload", "--kernel", "strassen", "--host-mhz", "4",
                     "--iterations", "2", "--double-buffer"])
        assert code == 0
        out = capsys.readouterr().out
        assert "strassen" in out
        assert "verified: True" in out
