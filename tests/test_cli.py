"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table1", "figure3", "figure4", "figure5a",
                        "figure5b", "dse", "all"):
            assert parser.parse_args([command]).command == command

    def test_offload_defaults(self):
        args = build_parser().parse_args(["offload"])
        assert args.kernel == "matmul"
        assert args.host_mhz == 8.0
        assert args.iterations == 1
        assert not args.double_buffer

    def test_offload_kernel_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["offload", "--kernel", "nonesuch"])

    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint", "--all-builtin"])
        assert args.command == "lint"
        assert args.files == []
        assert args.all_builtin
        assert args.format == "pretty"
        assert not args.strict

    def test_lint_format_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "xml"])

    def test_lint_requires_input(self):
        with pytest.raises(SystemExit):
            main(["lint"])

    def test_lint_bad_entry_regs_rejected(self, tmp_path):
        source = tmp_path / "x.s"
        source.write_text("halt\n")
        with pytest.raises(SystemExit):
            main(["lint", str(source), "--entry-regs", "r99"])

    def test_json_flag_on_experiments(self):
        parser = build_parser()
        for command in ("table1", "figure3", "figure4", "figure5a",
                        "figure5b", "offload", "metrics"):
            assert parser.parse_args([command, "--json"]).json

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.kernel == "matmul"
        assert args.out == "trace.json"
        assert args.flame is None
        assert not args.ascii

    def test_trace_kernel_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "nonesuch"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "hog" in out

    def test_figure3(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "PULP peak efficiency" in out

    def test_figure4(self, capsys):
        assert main(["figure4"]) == 0
        assert "mean parallel speedup" in capsys.readouterr().out

    def test_figure5b_with_kernel(self, capsys):
        assert main(["figure5b", "--kernel", "matmul"]) == 0
        assert "matmul" in capsys.readouterr().out

    def test_offload(self, capsys):
        code = main(["offload", "--kernel", "strassen", "--host-mhz", "4",
                     "--iterations", "2", "--double-buffer"])
        assert code == 0
        out = capsys.readouterr().out
        assert "strassen" in out
        assert "verified: True" in out

    def test_table1_json(self, capsys):
        assert main(["table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table1"
        assert any(row["name"] == "matmul" for row in payload["rows"])

    def test_figure4_json(self, capsys):
        assert main(["figure4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "figure4"
        assert payload["mean_parallel_speedup"] > 1.0

    def test_offload_json(self, capsys):
        assert main(["offload", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "matmul"
        assert payload["verified"] is True
        assert payload["energy"]["total_energy_j"] > 0

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        flame = tmp_path / "flame.txt"
        code = main(["trace", "matmul", "--out", str(out),
                     "--flame", str(flame), "--iterations", "2"])
        assert code == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        trace = json.loads(out.read_text())
        lanes = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "host" in lanes and "spi" in lanes
        assert sum(1 for lane in lanes
                   if lane.startswith("cluster.core")) >= 4
        assert flame.read_text().startswith("matmul_i8;pc_")

    def test_metrics(self, capsys):
        assert main(["metrics", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "critical phase" in out and "spi" in out

    def test_metrics_json(self, capsys):
        assert main(["metrics", "--json", "--iterations", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "matmul"
        assert payload["span_count"] > 0
        assert "spi.payload_bytes" in payload["counters"]


class TestFaultsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.scenarios == 11
        assert args.seed == 1
        assert args.kernel == "matmul"
        assert args.ber == pytest.approx(2e-5)
        assert not args.no_fallback
        assert args.trace is None

    def test_recoverable_campaign_exits_zero(self, capsys):
        # The first four default plans (clean, bit-errors, drop,
        # truncate) all recover without the host fallback.
        assert main(["faults", "--scenarios", "4"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "100.0%" in out

    def test_fallback_campaign_exits_three(self, capsys):
        # Eleven scenarios include the ladder-exhausting triple hang.
        assert main(["faults", "--scenarios", "11"]) == 3
        out = capsys.readouterr().out
        assert "host-fallback" in out

    def test_no_fallback_campaign_exits_four(self, capsys):
        assert main(["faults", "--scenarios", "11", "--no-fallback"]) == 4
        assert "failed" in capsys.readouterr().out

    def test_json_output_is_deterministic(self, capsys):
        assert main(["faults", "--scenarios", "5", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["faults", "--scenarios", "5", "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["experiment"] == "faults"
        assert payload["availability"] == 1.0
        assert payload["scenarios"] == 5

    def test_trace_export(self, capsys, tmp_path):
        out = tmp_path / "faults-trace.json"
        assert main(["faults", "--scenarios", "2",
                     "--trace", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
