"""Edge cases of the telemetry analyzers, renderers, and fast paths.

Covers the degenerate hubs the engine round-trip tests never produce:
empty hubs, single-span lanes, overlapping spans, counter-only
telemetry — plus the disabled no-allocation fast path of
:meth:`Telemetry.timed` and :class:`PhaseProfiler`.
"""

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    CYCLES,
    NOOP_CONTEXT,
    PhaseProfiler,
    Telemetry,
    TraceAnalyzer,
    WALL,
    chrome_trace_events,
    collapsed_totals,
    metrics_snapshot,
    monotonic,
    render_metrics,
    render_span_timeline,
    use_telemetry,
)


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestEmptyHub:
    def test_analyzer_on_empty_hub(self):
        analyzer = TraceAnalyzer(Telemetry(enabled=True))
        assert analyzer.lane_stats() == {}
        assert analyzer.phase_totals() == {}
        assert analyzer.critical_phase() == ("", 0.0)
        assert analyzer.overlap_efficiency() == 0.0
        assert analyzer.energy_by_phase() == {}
        assert analyzer.energy_by_lane() == {}

    def test_exports_on_empty_hub(self):
        hub = Telemetry(enabled=True)
        assert chrome_trace_events(hub) == []
        assert render_span_timeline(hub) == "(no spans recorded)"
        snapshot = metrics_snapshot(hub)
        assert snapshot["span_count"] == 0
        assert snapshot["critical_phase"] == ("", 0.0)
        text = render_metrics(snapshot)
        assert "critical phase     : (none)" in text


class TestSingleSpanLane:
    def test_one_span_is_fully_utilized(self):
        hub = Telemetry(enabled=True)
        hub.span("compute", "pulp", 2.0, 6.0)
        stats = TraceAnalyzer(hub).lane_stats()["pulp"]
        assert stats.span_count == 1
        assert stats.busy == pytest.approx(6.0)
        assert stats.extent == pytest.approx(6.0)
        assert stats.utilization == pytest.approx(1.0)

    def test_one_span_dominates_critical_phase(self):
        hub = Telemetry(enabled=True)
        hub.span("compute[3]", "pulp", 0.0, 4.0)
        assert TraceAnalyzer(hub).critical_phase() == ("compute", 1.0)

    def test_zero_duration_lane_has_zero_utilization(self):
        hub = Telemetry(enabled=True)
        hub.instant("marker", "host", 1.0)
        stats = TraceAnalyzer(hub).lane_stats()["host"]
        assert stats.extent == 0.0 and stats.utilization == 0.0

    def test_single_span_timeline(self):
        hub = Telemetry(enabled=True)
        hub.span("compute", "pulp", 0.0, 4.0)
        text = render_span_timeline(hub, width=20)
        assert text.splitlines()[0].startswith("pulp |####")
        assert "1 spans" in text


class TestOverlappingSpans:
    def test_busy_merges_overlap_on_one_lane(self):
        hub = Telemetry(enabled=True)
        hub.span("a", "host", 0.0, 10.0)
        hub.span("b", "host", 5.0, 10.0)      # overlaps a by 5
        stats = TraceAnalyzer(hub).lane_stats()["host"]
        assert stats.busy == pytest.approx(15.0)   # union, not 20
        assert stats.extent == pytest.approx(15.0)
        assert stats.utilization == pytest.approx(1.0)

    def test_gap_lowers_utilization(self):
        hub = Telemetry(enabled=True)
        hub.span("a", "host", 0.0, 2.0)
        hub.span("b", "host", 8.0, 2.0)
        stats = TraceAnalyzer(hub).lane_stats()["host"]
        assert stats.busy == pytest.approx(4.0)
        assert stats.extent == pytest.approx(10.0)
        assert stats.utilization == pytest.approx(0.4)

    def test_parent_span_does_not_inflate_busy(self):
        hub = Telemetry(enabled=True)
        root = hub.span("offload", "host", 0.0, 10.0)
        hub.span("input", "host", 0.0, 3.0, parent=root)
        hub.span("output", "host", 7.0, 3.0, parent=root)
        stats = TraceAnalyzer(hub).lane_stats()["host"]
        # The containing parent is not a leaf; only children count.
        assert stats.busy == pytest.approx(6.0)
        assert stats.extent == pytest.approx(10.0)

    def test_idle_spans_excluded_from_busy_but_rendered(self):
        hub = Telemetry(enabled=True)
        hub.span("compute", "pulp", 0.0, 5.0)
        hub.span("wait", "pulp", 5.0, 5.0, idle=True)
        stats = TraceAnalyzer(hub).lane_stats()["pulp"]
        assert stats.busy == pytest.approx(5.0)
        assert stats.utilization == pytest.approx(0.5)
        row = render_span_timeline(hub, width=20).splitlines()[0]
        assert "#" in row and "." in row

    def test_cross_lane_overlap_efficiency(self):
        hub = Telemetry(enabled=True)
        hub.span("compute", "pulp", 0.0, 10.0)
        hub.span("input", "spi", 0.0, 10.0)    # fully hidden behind compute
        assert TraceAnalyzer(hub).overlap_efficiency() \
            == pytest.approx(0.5)

    def test_partial_overlap_rejected_by_chrome_export_only(self):
        hub = Telemetry(enabled=True)
        hub.span("a", "x", 0.0, 5.0)
        hub.span("b", "x", 3.0, 5.0)
        # The analyzer tolerates it; the B/E serializer cannot.
        assert TraceAnalyzer(hub).lane_stats()["x"].busy \
            == pytest.approx(8.0)
        with pytest.raises(ObservabilityError, match="partially"):
            chrome_trace_events(hub)

    def test_domains_do_not_mix(self):
        hub = Telemetry(enabled=True)
        hub.span("compute", "core0", 0.0, 100.0, domain=CYCLES)
        hub.span("input", "spi", 0.0, 1e-3, domain=WALL)
        assert list(TraceAnalyzer(hub).lane_stats(CYCLES)) == ["core0"]
        assert list(TraceAnalyzer(hub).lane_stats(WALL)) == ["spi"]
        assert TraceAnalyzer(hub).phase_totals(CYCLES) \
            == {"compute": 100.0}


class TestCounterOnlyTelemetry:
    def filled(self):
        hub = Telemetry(enabled=True)
        hub.count("requests", 3.0, unit="req")
        hub.gauge("queue_depth", 7.0, ts=2.0)
        return hub

    def test_metrics_snapshot_without_spans(self):
        snapshot = metrics_snapshot(self.filled())
        assert snapshot["lanes"] == {}
        assert snapshot["counters"]["requests"]["value"] == 3.0
        assert snapshot["counters"]["queue_depth"]["kind"] == "gauge"
        text = render_metrics(snapshot)
        assert "requests" in text and "queue_depth" in text

    def test_chrome_export_emits_counter_events_only(self):
        events = chrome_trace_events(self.filled())
        assert events and all(e["ph"] == "C" for e in events)
        by_name = {e["name"]: e["args"]["value"] for e in events}
        assert by_name == {"requests": 3.0, "queue_depth": 7.0}

    def test_timeline_reports_no_spans(self):
        assert render_span_timeline(self.filled()) \
            == "(no spans recorded)"


class TestCollapsedTotals:
    def test_empty_totals(self):
        assert collapsed_totals({}) == ""

    def test_paths_scale_and_minimum_count(self):
        text = collapsed_totals(
            {"serve;run": 0.25, "dse cold;explore": 1e-9},
            root="bench")
        lines = text.splitlines()
        assert "bench;serve;run 250000" in lines
        assert "bench;dse_cold;explore 1" in lines   # floor at 1 sample

    def test_negative_total_rejected(self):
        with pytest.raises(ObservabilityError, match="negative"):
            collapsed_totals({"a": -1.0})


class TestDisabledFastPath:
    def test_timed_returns_shared_noop_context(self):
        hub = Telemetry(enabled=False)
        assert hub.timed("a", "x") is NOOP_CONTEXT
        assert hub.timed("b", "y", domain=CYCLES) is NOOP_CONTEXT

    def test_disabled_timed_records_and_reads_nothing(self):
        hub = Telemetry(enabled=False)

        def forbidden_clock():
            raise AssertionError("clock read on disabled fast path")

        with hub.timed("a", "x", clock=forbidden_clock):
            pass
        assert not hub.spans and not hub.counters

    def test_enabled_timed_records_real_elapsed_span(self):
        hub = Telemetry(enabled=True)
        with hub.timed("batch", "dse", clock=FakeClock(0.5), jobs=4):
            pass
        (span,) = hub.spans
        assert span.name == "batch" and span.lane == "dse"
        assert span.duration == pytest.approx(0.5)
        assert span.attrs["jobs"] == 4

    def test_monotonic_clock_shared_and_increasing(self):
        first = monotonic()
        assert monotonic() >= first

    def test_profiler_disabled_is_shared_noop(self):
        profiler = PhaseProfiler(Telemetry(enabled=False))
        assert not profiler.enabled
        assert profiler.phase("anything") is NOOP_CONTEXT
        with profiler.phase("anything"):
            pass
        assert profiler.totals_s == {} and profiler.calls == {}

    def test_profiler_defaults_to_active_hub(self):
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            profiler = PhaseProfiler()
        assert profiler.hub is hub

    def test_profiler_accumulates_and_mirrors_spans(self):
        hub = Telemetry(enabled=True)
        clock = FakeClock(1.0)
        profiler = PhaseProfiler(hub, lane="bench", clock=clock)
        for _ in range(2):
            with profiler.phase("serve;run"):
                pass
        assert profiler.calls["serve;run"] == 2
        # Each block spans exactly one fake-clock step.
        assert profiler.totals_s["serve;run"] == pytest.approx(2.0)
        spans = hub.spans_in("bench")
        assert [s.name for s in spans] == ["serve;run", "serve;run"]
        # Starts are origin-relative, so traces begin near zero.
        assert spans[0].start == pytest.approx(1.0)
        assert spans[1].start == pytest.approx(3.0)

    def test_profiler_phases_feed_flamegraph(self):
        hub = Telemetry(enabled=True)
        profiler = PhaseProfiler(hub, clock=FakeClock(0.5))
        with profiler.phase("sim;lower"):
            pass
        text = collapsed_totals(profiler.totals_s, root="bench")
        assert text == "bench;sim;lower 500000"
