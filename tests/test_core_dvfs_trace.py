"""Tests for the DVFS controller, the trace recorder, and the report."""

import pytest

from repro.errors import BudgetError, ConfigurationError
from repro.core.dvfs import DvfsController, DvfsPolicy
from repro.core.offload import OffloadCostModel
from repro.core.trace import render_gantt, trace_offload
from repro.power.activity import ActivityProfile
from repro.units import mhz, mw


@pytest.fixture
def controller():
    return DvfsController()


@pytest.fixture
def activity():
    return ActivityProfile.matmul()


class TestDvfs:
    def test_race_runs_fast(self, controller, activity):
        decision = controller.evaluate(DvfsPolicy.RACE_TO_IDLE,
                                       cycles=1e6, period=0.1,
                                       activity=activity)
        assert decision.frequency == pytest.approx(mhz(450), rel=1e-3)
        assert decision.idle_time > 0.09

    def test_pace_hits_deadline_exactly(self, controller, activity):
        decision = controller.evaluate(DvfsPolicy.PACE_TO_DEADLINE,
                                       cycles=1e6, period=0.01,
                                       activity=activity)
        assert decision.frequency == pytest.approx(1e8)
        assert decision.active_time == pytest.approx(0.01)
        assert decision.idle_time == pytest.approx(0.0)

    def test_pace_beats_race_for_loose_deadlines(self, controller, activity):
        # Plenty of slack: running slow at low voltage wins on energy.
        race = controller.evaluate(DvfsPolicy.RACE_TO_IDLE,
                                   cycles=1e6, period=0.1,
                                   activity=activity)
        pace = controller.evaluate(DvfsPolicy.PACE_TO_DEADLINE,
                                   cycles=1e6, period=0.1,
                                   activity=activity)
        assert pace.energy < race.energy
        assert controller.best(1e6, 0.1, activity).policy is \
            DvfsPolicy.PACE_TO_DEADLINE

    def test_race_wins_when_sleep_is_cheap_and_leakage_high(self, activity):
        # With a huge idle floor removed (sleep ~ 0) and tight deadlines,
        # race-to-idle under a budget is the only feasible choice when
        # the pace frequency would exceed what the budget sustains... but
        # with a generous budget pace still wins; verify best() is
        # consistent with evaluate() instead of asserting a winner.
        controller = DvfsController(sleep_power=0.0)
        best = controller.best(1e6, 0.02, activity)
        race = controller.evaluate(DvfsPolicy.RACE_TO_IDLE, 1e6, 0.02,
                                   activity)
        pace = controller.evaluate(DvfsPolicy.PACE_TO_DEADLINE, 1e6, 0.02,
                                   activity)
        assert best.energy == min(race.energy, pace.energy)

    def test_budget_caps_race_frequency(self, controller, activity):
        decision = controller.evaluate(DvfsPolicy.RACE_TO_IDLE,
                                       cycles=1e6, period=0.1,
                                       activity=activity,
                                       power_budget=mw(5))
        assert decision.frequency < mhz(200)
        assert decision.average_power < mw(5)

    def test_impossible_deadline_raises(self, controller, activity):
        with pytest.raises(BudgetError):
            controller.evaluate(DvfsPolicy.PACE_TO_DEADLINE,
                                cycles=1e9, period=0.001,
                                activity=activity)

    def test_race_misses_deadline_under_tiny_budget(self, controller,
                                                    activity):
        with pytest.raises(BudgetError):
            controller.evaluate(DvfsPolicy.RACE_TO_IDLE,
                                cycles=1e8, period=0.01,
                                activity=activity, power_budget=mw(1))

    def test_best_raises_when_nothing_fits(self, controller, activity):
        with pytest.raises(BudgetError):
            controller.best(1e9, 1e-3, activity, power_budget=mw(1))

    def test_invalid_inputs(self, controller, activity):
        with pytest.raises(ConfigurationError):
            controller.evaluate(DvfsPolicy.RACE_TO_IDLE, 0, 1, activity)
        with pytest.raises(ConfigurationError):
            DvfsController(sleep_power=-1)


class TestTrace:
    def _timing(self, double_buffered=False, iterations=3):
        model = OffloadCostModel()
        return model.offload_timing(
            binary_bytes=8000, input_bytes=4096, output_bytes=2048,
            compute_cycles=200e3, pulp_frequency=mhz(150),
            pulp_voltage=0.65, activity=ActivityProfile.matmul(),
            host_frequency=mhz(8), iterations=iterations,
            double_buffered=double_buffered)

    def test_serial_phase_sequence(self):
        phases = trace_offload(self._timing(), max_iterations=2)
        labels = [p.label for p in phases]
        assert labels[0] == "binary"
        assert "in[0]" in labels and "compute[0]" in labels
        assert "out[1]" in labels

    def test_phases_contiguous(self):
        phases = trace_offload(self._timing())
        for previous, current in zip(phases, phases[1:]):
            assert current.start == pytest.approx(previous.end)

    def test_double_buffered_periods(self):
        phases = trace_offload(self._timing(double_buffered=True),
                               max_iterations=3)
        labels = [p.label for p in phases]
        assert "prologue(in)" in labels
        assert "period[0]" in labels
        assert labels[-1] == "epilogue(out)"

    def test_gantt_renders(self):
        phases = trace_offload(self._timing(), max_iterations=2)
        chart = render_gantt(phases)
        assert "#" in chart
        assert "total" in chart
        assert "compute[0]" in chart

    def test_gantt_empty(self):
        assert render_gantt([]) == "(empty trace)"

    def test_gantt_width_validation(self):
        phases = trace_offload(self._timing())
        with pytest.raises(ConfigurationError):
            render_gantt(phases, width=4)

    def test_max_iterations_validated(self):
        with pytest.raises(ConfigurationError):
            trace_offload(self._timing(), max_iterations=0)


class TestReport:
    def test_all_anchors_pass(self):
        from repro.experiments.report import anchor_summary
        passed, total = anchor_summary()
        assert total >= 15
        assert passed == total

    def test_report_structure(self):
        from repro.experiments.report import build_report
        report = build_report()
        for section in ("Table I", "Figure 3", "Figure 4",
                        "Figure 5a", "Figure 5b"):
            assert f"## {section}" in report
        assert "[FAIL]" not in report
