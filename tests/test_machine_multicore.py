"""Tests for the lockstep multicore ISS cluster."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machine import Machine, SharedMemoryCluster, assemble
from repro.machine.programs import run_matmul_i8, run_matmul_i8_parallel
from repro.kernels.matmul import MatmulKernel


def _counting_program(address="0x200", trips=50):
    return assemble(f"""
        addi r3, r0, {trips}
        hwloop r3, end
        lw r4, {address}(r0)
        addi r5, r5, 1
    end:
        halt
    """)


class TestLockstepBasics:
    def test_single_core_matches_iss(self):
        source = """
            addi r1, r0, 0x100
            addi r3, r0, 32
            hwloop r3, end
            lb   r4, 0(r1)
            mac  r10, r4, r4
            addi r1, r1, 1
        end:
            halt
        """
        program = assemble(source)
        data = np.arange(32, dtype=np.int8).tobytes()
        machine = Machine()
        machine.write_block(0x100, data)
        reference = machine.run(program)
        cluster = SharedMemoryCluster(cores=1)
        cluster.write_block(0x100, data)
        result = cluster.run([program])
        assert result.cores[0].registers[10] == reference.registers[10]
        assert result.wall_cycles == reference.cycles

    def test_same_bank_contention(self):
        program = _counting_program()
        result = SharedMemoryCluster(cores=4).run([program] * 4)
        assert result.bank_conflicts > 0
        assert result.conflict_rate > 0.3
        # All cores still finish with the right count.
        assert all(core.registers[5] == 50 for core in result.cores)

    def test_distinct_banks_conflict_free(self):
        programs = [_counting_program(hex(0x200 + 4 * i)) for i in range(4)]
        result = SharedMemoryCluster(cores=4).run(programs)
        assert result.bank_conflicts == 0

    def test_contention_stretches_wall_time(self):
        program = _counting_program()
        contended = SharedMemoryCluster(cores=4).run([program] * 4)
        spread = SharedMemoryCluster(cores=4).run(
            [_counting_program(hex(0x200 + 4 * i)) for i in range(4)])
        assert contended.wall_cycles > spread.wall_cycles

    def test_round_robin_fairness(self):
        program = _counting_program(trips=200)
        result = SharedMemoryCluster(cores=4).run([program] * 4)
        stalls = [core.cycles_stalled for core in result.cores]
        # Rotating priority: no core starves (within 2x of the median).
        assert max(stalls) < 2 * (sorted(stalls)[len(stalls) // 2] + 1)

    def test_register_presets(self):
        program = assemble("add r3, r1, r2\nhalt")
        cluster = SharedMemoryCluster(cores=2)
        result = cluster.run([program, program],
                             register_presets=[{1: 10, 2: 20},
                                               {1: 1, 2: 2}])
        assert result.cores[0].registers[3] == 30
        assert result.cores[1].registers[3] == 3

    def test_runaway_detection(self):
        program = assemble("jump -1\nhalt")
        with pytest.raises(SimulationError):
            SharedMemoryCluster(cores=1).run([program], max_cycles=500)

    def test_core_count_validated(self):
        with pytest.raises(SimulationError):
            SharedMemoryCluster(cores=0)
        cluster = SharedMemoryCluster(cores=2)
        with pytest.raises(SimulationError):
            cluster.run([])


class TestParallelMatmul:
    @pytest.fixture(scope="class")
    def runs(self):
        kernel = MatmulKernel("char", n=16)
        inputs = kernel.generate_inputs(4)
        expected = kernel.compute(inputs)["c"]
        single_out, single = run_matmul_i8(inputs["a"], inputs["b"])
        multi_out, multi = run_matmul_i8_parallel(inputs["a"], inputs["b"])
        return expected, single_out, single, multi_out, multi

    def test_parallel_result_correct(self, runs):
        expected, _, _, multi_out, _ = runs
        assert np.array_equal(multi_out, expected)

    def test_near_ideal_speedup(self, runs):
        _, _, single, _, multi = runs
        speedup = single.cycles / multi.wall_cycles
        # The instruction-level counterpart of Figure 4 (right).
        assert 3.4 < speedup <= 4.0

    def test_conflict_rate_small(self, runs):
        _, _, _, _, multi = runs
        # Word-interleaved banks keep instruction-level conflicts low,
        # consistent with the analytic contention model's few percent.
        assert multi.conflict_rate < 0.15

    def test_work_split_across_cores(self, runs):
        _, _, _, _, multi = runs
        instruction_counts = [core.instructions for core in multi.cores]
        assert max(instruction_counts) < 1.2 * min(instruction_counts)

    def test_two_core_speedup_smaller(self):
        kernel = MatmulKernel("char", n=8)
        inputs = kernel.generate_inputs(1)
        _, single = run_matmul_i8(inputs["a"], inputs["b"])
        _, two = run_matmul_i8_parallel(inputs["a"], inputs["b"], cores=2)
        _, four = run_matmul_i8_parallel(inputs["a"], inputs["b"], cores=4)
        assert single.cycles / two.wall_cycles < single.cycles / four.wall_cycles
        assert 1.7 < single.cycles / two.wall_cycles <= 2.05

    def test_fewer_banks_more_conflicts(self):
        kernel = MatmulKernel("char", n=12)
        inputs = kernel.generate_inputs(2)
        _, few = run_matmul_i8_parallel(inputs["a"], inputs["b"], banks=1)
        _, many = run_matmul_i8_parallel(inputs["a"], inputs["b"], banks=8)
        assert few.conflict_rate > many.conflict_rate
        assert few.wall_cycles > many.wall_cycles
