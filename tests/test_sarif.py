"""SARIF 2.1.0 export: structure, levels, and lossless round trips."""

import json

import pytest

from repro.analysis import analyze_spmd, lint_instructions
from repro.analysis.sarif import (
    RULE_DESCRIPTIONS,
    SARIF_SCHEMA,
    SARIF_VERSION,
    TOOL_NAME,
    findings_from_sarif,
    render_sarif,
    sarif_round_trip_equal,
    to_sarif,
)
from repro.isa.validate import Finding, Severity
from repro.machine import assemble

#: Reads r1 before any write: the canonical OR001 fixture.
_UNINITIALIZED = """
    add r2, r1, r1
    halt
"""

#: Two cores load/store the same fixed addresses: OR011 (and OR010).
_RACY = """
    lw r2, 0(r1)
    sw r2, 0(r3)
    halt
"""


def _or001_findings():
    report = lint_instructions(assemble(_UNINITIALIZED), name="uninit")
    findings = [f for f in report.findings if f.code == "OR001"]
    assert findings, report.render()
    return report.findings


def _or011_findings():
    presets = [{1: 0x100, 3: 0x200}, {1: 0x100, 3: 0x200}]
    report = analyze_spmd(assemble(_RACY), cores=2, presets=presets)
    assert any(f.code == "OR011" for f in report.findings)
    return report.findings


class TestStructure:
    def test_envelope(self):
        doc = to_sarif(_or001_findings(), uri="uninit.s", tool_version="1.0")
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        assert driver["version"] == "1.0"

    def test_rules_table_first_seen_order_and_index(self):
        findings = _or011_findings()
        doc = to_sarif(findings)
        (run,) = doc["runs"]
        rules = run["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert len(ids) == len(set(ids))  # one entry per rule
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]
        for rule in rules:
            assert rule["shortDescription"]["text"] \
                == RULE_DESCRIPTIONS[rule["id"]]

    def test_severity_levels_map_to_sarif(self):
        findings = [
            Finding(Severity.ERROR, "pc 0", "boom", code="OR011"),
            Finding(Severity.WARNING, "pc 1", "careful", code="OR002"),
            Finding(Severity.INFO, "pc 2", "fyi", code="OR010"),
        ]
        (run,) = to_sarif(findings)["runs"]
        assert [r["level"] for r in run["results"]] \
            == ["error", "warning", "note"]

    def test_uri_and_line_become_physical_location(self):
        finding = Finding(Severity.ERROR, "pc 3", "msg", code="OR001", line=7)
        (run,) = to_sarif([finding], uri="kernel.s")["runs"]
        (location,) = run["results"][0]["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "kernel.s"
        assert physical["region"]["startLine"] == 7
        assert location["logicalLocations"][0]["name"] == "pc 3"


class TestRoundTrip:
    @pytest.mark.parametrize("maker", [_or001_findings, _or011_findings],
                             ids=["or001", "or011"])
    def test_lossless(self, maker):
        findings = maker()
        document = to_sarif(findings, uri="fixture.s")
        ok, detail = sarif_round_trip_equal(findings, document)
        assert ok, detail

    def test_round_trip_through_json_text(self):
        findings = _or011_findings()
        text = render_sarif(findings, uri="racy.s")
        decoded = findings_from_sarif(text)
        assert [(f.code, f.severity, f.message, f.line, f.location)
                for f in decoded] \
            == [(f.code, f.severity, f.message, f.line, f.location)
                for f in findings]

    def test_mismatch_is_reported(self):
        findings = _or001_findings()
        document = to_sarif(findings)
        ok, detail = sarif_round_trip_equal(findings[:-1], document)
        assert not ok and "count mismatch" in detail

    def test_empty_findings(self):
        document = to_sarif([])
        assert document["runs"][0]["results"] == []
        assert findings_from_sarif(document) == []


class TestCli:
    def test_lint_format_sarif(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "racy.s"
        source.write_text(_RACY)
        code = main(["lint", str(source), "--cores", "2",
                     "--preset", "r1=0x100", "--preset", "r3=0x200",
                     "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1  # OR011 is an error
        assert doc["version"] == SARIF_VERSION
        codes = {r["ruleId"] for run in doc["runs"] for r in run["results"]}
        assert "OR011" in codes
