"""Tests for the ISS profiler and the all-kernel MCU efficiency grid."""

import numpy as np
import pytest

from repro.experiments.mcu_grid import render, run
from repro.machine.profiler import ProfilingMachine
from repro.machine.programs import DOT_PRODUCT_I8, MATMUL_I8


def _profiled_dot(n=64):
    machine = ProfilingMachine()
    a = np.ones(n, dtype=np.int8)
    machine.write_block(0x100, a.tobytes())
    machine.write_block(0x800, a.tobytes())
    machine.registers[1] = 0x100
    machine.registers[2] = 0x800
    machine.registers[3] = n
    return machine.run_profiled(DOT_PRODUCT_I8)


class TestProfiler:
    def test_functional_result_unchanged(self):
        profiled = _profiled_dot()
        assert profiled.result.registers[10] == 64
        assert profiled.result.halted

    def test_cycles_fully_attributed(self):
        profiled = _profiled_dot()
        assert sum(profiled.cycles_by_pc) == \
            pytest.approx(profiled.result.cycles)

    def test_execution_counts(self):
        profiled = _profiled_dot(n=10)
        # The loop body instructions each execute n times.
        assert profiled.executions_by_pc[2] == 10  # first lb
        assert profiled.executions_by_pc[0] == 1   # init

    def test_hotspots_are_the_loads(self):
        profiled = _profiled_dot()
        hotspots = profiled.hotspots(2)
        hot_pcs = {pc for pc, _ in hotspots}
        assert hot_pcs == {2, 3}  # the two lb instructions
        assert all(share > 0.2 for _, share in hotspots)

    def test_render(self):
        text = _profiled_dot().render()
        assert "profile:" in text
        assert "mac" in text

    def test_matmul_hotspot_is_inner_loop(self):
        from repro.kernels.matmul import MatmulKernel
        kernel = MatmulKernel("char", n=8)
        inputs = kernel.generate_inputs(0)
        machine = ProfilingMachine()
        n = 8
        base_a, base_b = 0x100, 0x100 + n * n + 64
        base_c = 0x100 + 2 * (n * n + 64)
        machine.write_block(base_a, inputs["a"].tobytes())
        machine.write_block(base_b, inputs["b"].tobytes())
        machine.registers[1] = base_a
        machine.registers[2] = base_b
        machine.registers[3] = base_c
        machine.registers[4] = n
        profiled = machine.run_profiled(MATMUL_I8)
        top_pc, top_share = profiled.hotspots(1)[0]
        # The k-loop body (pcs 7..11) dominates an O(n^3) kernel.
        assert 7 <= top_pc <= 11
        assert top_share > 0.1


class TestMcuGrid:
    @pytest.fixture(scope="class")
    def rows(self):
        return run()

    def test_all_kernels_present(self, rows):
        assert len(rows) == 10

    def test_pulp_always_wins(self, rows):
        for row in rows:
            assert row.efficiency_gap > 5, row.kernel

    def test_integer_gaps_largest_hog_smallest(self, rows):
        by_name = {row.kernel: row for row in rows}
        gaps = {name: row.efficiency_gap for name, row in by_name.items()}
        assert gaps["hog"] == min(gaps.values())
        ranked = sorted(gaps, key=gaps.get, reverse=True)
        # The SIMD-friendly integer kernels lead the pack.
        assert set(ranked[:2]) <= {"matmul", "strassen", "matmul (short)"}

    def test_apollo_best_mcu_everywhere(self, rows):
        # Nothing in the catalog touches the subthreshold Apollo.
        assert all(row.best_mcu == "Ambiq Apollo" for row in rows)

    def test_matmul_matches_figure3(self, rows):
        matmul = [row for row in rows if row.kernel == "matmul"][0]
        assert matmul.pulp_gops_per_watt == pytest.approx(304, rel=0.08)

    def test_render(self, rows):
        text = render(rows)
        assert "gap" in text and "hog" in text
