import dataclasses
import json
import random

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.faults import (
    FleetEventKind,
    FleetEventSpec,
    FleetInjector,
    FleetPlan,
)
from repro.serve import (
    CircuitBreaker,
    HealthMonitor,
    OverloadController,
    PoissonWorkload,
    ResilienceConfig,
    RetryBudget,
    ServeConfig,
    ServeEngine,
    SloPolicy,
    SloTracker,
    SurgedWorkload,
    pinned_campaign_config,
    pinned_campaign_plans,
    run_campaign,
    run_scenario,
)
from repro.serve.workload import ClosedLoopWorkload
from repro.sim import Simulator


def _flat_estimate(kernel, iterations):
    return 1e-3 * iterations


class TestFleetPlan:
    def test_roundtrip(self):
        plan = FleetPlan.fleet_combined(
            "mixed",
            FleetPlan.crash_storm(nodes=2, start_s=0.1, window_s=0.2,
                                  recover_s=0.3),
            FleetPlan.arrival_surge(factor=3.0, start_s=0.0, window_s=0.5))
        rebuilt = FleetPlan.from_dict(plan.to_dict())
        assert rebuilt == plan
        assert rebuilt.to_dict() == plan.to_dict()

    def test_empty_plan_is_clean(self):
        plan = FleetPlan.empty()
        assert not plan.events
        assert plan.describe() == "clean"
        assert FleetPlan.from_dict(plan.to_dict()) == plan

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FleetEventSpec(kind=FleetEventKind.FLEET_BROWNOUT,
                           droop=1.5, window_s=0.5)
        with pytest.raises(ConfigurationError):
            FleetEventSpec(kind=FleetEventKind.ARRIVAL_SURGE,
                           factor=0.5, window_s=0.5)
        with pytest.raises(ConfigurationError):
            FleetEventSpec(kind=FleetEventKind.FLAPPING,
                           period_s=0.0, window_s=0.5)
        with pytest.raises(ConfigurationError):
            FleetPlan.from_dict({"name": "bad", "events": "nope"})

    def test_describe_names_events(self):
        plan = FleetPlan.crash_storm(nodes=3)
        assert "crash-storm" in plan.describe()


class TestFleetInjector:
    def test_schedule_is_seeded(self):
        plan = FleetPlan.crash_storm(nodes=3, start_s=0.1, window_s=0.4,
                                     recover_s=0.5)
        first = FleetInjector(plan, seed=9).actions(4)
        second = FleetInjector(plan, seed=9).actions(4)
        assert first == second
        assert FleetInjector(plan, seed=10).actions(4) != first

    def test_crash_storm_hits_distinct_nodes_in_window(self):
        plan = FleetPlan.crash_storm(nodes=3, start_s=0.1, window_s=0.4,
                                     recover_s=0.5)
        actions = FleetInjector(plan, seed=1).actions(4)
        crashes = [a for a in actions if a.action == "crash"]
        recovers = [a for a in actions if a.action == "recover"]
        assert len(crashes) == 3 and len(recovers) == 3
        assert len({a.node for a in crashes}) == 3
        for crash in crashes:
            assert 0.1 <= crash.at_s <= 0.5
        # The expanded schedule is time-sorted.
        assert [a.at_s for a in actions] == sorted(a.at_s for a in actions)

    def test_brownout_droops_then_restores(self):
        plan = FleetPlan.fleet_brownout(droop=0.6, start_s=0.2, window_s=0.8)
        actions = FleetInjector(plan).actions(4)
        assert [a.action for a in actions] == ["droop", "restore"]
        assert actions[0].node is None and actions[0].droop == 0.6
        assert actions[1].at_s == pytest.approx(1.0)

    def test_surge_produces_windows_not_actions(self):
        plan = FleetPlan.arrival_surge(factor=4.0, start_s=0.2, window_s=0.3)
        injector = FleetInjector(plan)
        assert injector.actions(4) == []
        assert injector.surge_windows() == [(0.2, 0.3, 4.0)]


class TestSimulatorCancel:
    def test_cancelled_callback_never_runs_nor_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "kept")
        handle = sim.schedule(5.0, fired.append, "cancelled")
        sim.cancel(handle)
        assert sim.run() == 1.0
        assert fired == ["kept"]

    def test_cancel_unknown_or_fired_handle_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(0.5, lambda: None)
        sim.run()
        sim.cancel(handle)     # already fired
        sim.cancel(12345)      # never existed
        assert sim.run() == 0.5


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(ResilienceConfig(breaker_failures=3,
                                                  breaker_cooldown_s=0.1))
        assert breaker.record_failure(0.0) is False
        assert breaker.record_failure(0.0) is False
        assert breaker.record_failure(0.0) is True
        assert breaker.state == "open"
        assert not breaker.allows(0.05)

    def test_half_open_probe_and_close(self):
        breaker = CircuitBreaker(ResilienceConfig(breaker_failures=1,
                                                  breaker_cooldown_s=0.1))
        assert breaker.record_failure(0.0) is True
        assert breaker.allows(0.2)          # cooled down: half-open
        assert breaker.state == "half-open"
        breaker.note_dispatch()
        assert not breaker.allows(0.2)      # one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(ResilienceConfig(breaker_failures=1,
                                                  breaker_cooldown_s=0.1))
        breaker.record_failure(0.0)
        assert breaker.allows(0.15)
        breaker.note_dispatch()
        assert breaker.record_failure(0.15) is True
        assert breaker.state == "open"

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(ResilienceConfig(breaker_failures=2))
        breaker.record_failure(0.0)
        breaker.record_success()
        assert breaker.record_failure(0.0) is False
        assert breaker.state == "closed"


class TestRetryBudget:
    def test_base_plus_earned_ratio(self):
        budget = RetryBudget(ResilienceConfig(retry_budget=2,
                                              retry_ratio=0.5))
        assert budget.allow(2, 0)           # spends the base
        assert not budget.allow(1, 0)       # base gone, nothing earned
        assert budget.allow(1, 2)           # 2 completions earn 1 token
        assert budget.spent == 3
        assert budget.denied == 1


class TestOverloadController:
    def _controller(self, patience=2):
        return OverloadController(ResilienceConfig(
            queue_high=10, queue_low=2, overload_patience=patience))

    def test_escalates_after_patience(self):
        ctl = self._controller()
        assert ctl.observe(11) is None
        assert ctl.observe(11) == 1
        assert ctl.level == 1
        assert ctl.level_name == "eco"

    def test_relief_deescalates(self):
        ctl = self._controller()
        ctl.observe(11), ctl.observe(11)
        assert ctl.level == 1
        assert ctl.observe(1) is None
        assert ctl.observe(1) == 0
        assert ctl.level == 0

    def test_mid_band_resets_both_streaks(self):
        ctl = self._controller()
        ctl.observe(11)
        ctl.observe(5)              # between watermarks: streak resets
        assert ctl.observe(11) is None
        assert ctl.level == 0

    def test_deferrals_count_as_pressure(self):
        ctl = self._controller()
        assert ctl.note_deferral() is None
        assert ctl.note_deferral() == 1

    def test_caps_at_shed_level(self):
        ctl = self._controller(patience=1)
        for _ in range(6):
            ctl.observe(11)
        assert ctl.level == 3
        assert ctl.peak_level == 3


class TestSloTracker:
    def test_burn_and_alert_thresholds(self):
        tracker = SloTracker(SloPolicy(latency_factor=10.0,
                                       latency_objective=0.9,
                                       min_samples=5))
        # 2 violations in 10 completions = 20% misses vs a 10% budget.
        for index in range(10):
            latency = 1.0 if index < 2 else 0.001
            tracker.record_completion("matmul", latency, 0.01, float(index))
        assert tracker.latency_burn("matmul") == pytest.approx(2.0)
        severities = [alert.severity for alert in tracker.alerts]
        assert "page" in severities
        # One alert per (kernel, objective, threshold): no re-fires.
        count = len(tracker.alerts)
        tracker.record_completion("matmul", 1.0, 0.01, 11.0)
        assert len(tracker.alerts) == count

    def test_availability_burn_counts_drops(self):
        tracker = SloTracker(SloPolicy(availability_objective=0.9,
                                       min_samples=1))
        for index in range(9):
            tracker.record_completion("cnn", 0.0, 1.0, float(index))
        tracker.record_drop("cnn", 9.0)
        assert tracker.availability_burn("cnn") == pytest.approx(1.0)
        assert tracker.worst_burn() >= 1.0

    def test_quiet_below_min_samples(self):
        tracker = SloTracker(SloPolicy(min_samples=50))
        tracker.record_drop("matmul", 0.0)
        assert not tracker.alerts


class TestHealthMonitor:
    def test_eject_and_readmit_streaks(self):
        monitor = HealthMonitor(ResilienceConfig(eject_after=2,
                                                 readmit_after=2))
        assert monitor.observe("node1", True) is None
        assert monitor.observe("node1", True) == "ejected"
        assert not monitor.usable("node1")
        assert monitor.observe("node1", False) is None
        assert monitor.observe("node1", False) == "readmitted"
        assert monitor.usable("node1")
        assert monitor.ejections == 1 and monitor.readmissions == 1


class TestSurgedWorkload:
    def test_warp_compresses_window_and_keeps_order(self):
        base = PoissonWorkload(rate=100.0, requests=200, seed=3,
                               deadline_factor=10.0)
        plain = [r.arrival_s for r in base.arrivals(_flat_estimate)]
        surged_stream = SurgedWorkload(
            PoissonWorkload(rate=100.0, requests=200, seed=3,
                            deadline_factor=10.0),
            [(0.2, 0.3, 4.0)]).arrivals(_flat_estimate)
        surged = [r.arrival_s for r in surged_stream]
        assert surged == sorted(surged)
        assert len(surged) == len(plain)
        # Arrivals before the window are untouched; later ones pull in.
        for before, after in zip(plain, surged):
            if before <= 0.2:
                assert after == before
            else:
                assert after < before
        # Deadlines shift with their arrival: relative slack intact.
        for request in surged_stream:
            assert request.deadline_s == pytest.approx(
                request.arrival_s + 10.0 * _flat_estimate(request.kernel,
                                                          request.iterations))

    def test_closed_loop_passes_through(self):
        base = ClosedLoopWorkload(clients=2, think_s=0.01,
                                  requests_per_client=3, seed=1)
        wrapped = SurgedWorkload(base, [(0.1, 0.2, 2.0)])
        assert wrapped.closed_loop
        assert wrapped.total_requests == base.total_requests
        a = [r.to_dict() for r in base.arrivals(_flat_estimate)]
        b = [r.to_dict() for r in wrapped.arrivals(_flat_estimate)]
        assert a == b

    def test_rejects_bad_windows(self):
        base = PoissonWorkload(rate=100.0, requests=10, seed=1)
        with pytest.raises(ConfigurationError):
            SurgedWorkload(base, [])
        with pytest.raises(ConfigurationError):
            SurgedWorkload(base, [(0.0, 0.1, 1.0)])


class TestChaosEngine:
    def test_empty_plan_bit_identical_to_plain_serve(self):
        plain_config = dataclasses.replace(pinned_campaign_config(),
                                           resilience=None)
        plain = ServeEngine(dataclasses.replace(plain_config)).run()
        chaos = run_scenario(dataclasses.replace(plain_config),
                             FleetPlan.empty())
        assert chaos.report.to_json() == plain.to_json()
        assert chaos.scorecard["availability"] == 1.0

    def test_clean_run_with_resilience_never_hedges_or_trips(self):
        run = run_scenario(pinned_campaign_config(), FleetPlan.empty())
        card = run.scorecard
        assert card["hedges"] == 0
        assert card["breaker_trips"] == 0
        assert card["sheds"] == 0
        assert card["availability"] == 1.0
        assert card["verdict"] == "healthy"

    def test_crash_storm_recovers_every_request(self):
        plan = FleetPlan.crash_storm(nodes=3, start_s=0.1, window_s=0.3,
                                     recover_s=0.5)
        run = run_scenario(pinned_campaign_config(), plan)
        card = run.scorecard
        assert card["availability"] == 1.0
        assert card["dropped"] == 0
        assert card["reboots"] >= 1
        assert card["requeues"] > 0
        assert card["retry_amplification"] > 1.0
        # The storm burns the latency error budget even though every
        # request was eventually served — that is the SLO's job.
        assert card["slo_worst_burn"] > 1.0
        assert card["verdict"] == "slo-exhausted"
        for key in ("breaker_trips", "retry_denied", "hedges",
                    "slo_worst_burn"):
            assert key in card

    def test_campaign_rerun_is_bit_identical(self):
        config = pinned_campaign_config()
        plans = pinned_campaign_plans()
        first = run_campaign(config, plans)
        second = run_campaign(config, plans)
        assert first.to_json() == second.to_json()
        assert first.exit_code == 3

    def test_chaos_seed_changes_schedule(self):
        plan = FleetPlan.crash_storm(nodes=2, start_s=0.1, window_s=0.4,
                                     recover_s=0.3)
        config = pinned_campaign_config()
        a = run_scenario(config, plan, chaos_seed=1)
        b = run_scenario(config, plan, chaos_seed=2)
        assert a.events != b.events

    def test_brownout_stretches_latency(self):
        config = pinned_campaign_config()
        clean = run_scenario(config, FleetPlan.empty())
        browned = run_scenario(config, FleetPlan.fleet_brownout(
            droop=0.5, start_s=0.0, window_s=10.0))
        assert browned.scorecard["latency_p95_ms"] \
            > clean.scorecard["latency_p95_ms"]
        assert browned.scorecard["availability"] == 1.0

    def test_flapping_ejects_and_readmits(self):
        run = run_scenario(pinned_campaign_config(),
                           FleetPlan.flapping(nodes=1, period_s=0.15,
                                              start_s=0.1, window_s=1.0))
        res = run.report.resilience
        assert res["health"]["ejections"] > 0
        assert run.scorecard["availability"] == 1.0

    def test_total_outage_collapses(self):
        plan = FleetPlan.crash_storm(nodes=4, start_s=0.1, window_s=0.1,
                                     recover_s=0.4)
        run = run_scenario(pinned_campaign_config(), plan)
        assert run.scorecard["verdict"] == "collapsed"
        assert run.scorecard["sheds"] > 0
        # Conservation still holds under collapse: the engine would have
        # raised SimulationError otherwise, and the card adds up.
        card = run.scorecard
        assert card["completed"] + card["dropped"] == card["submitted"]

    def test_exhausted_retry_budget_sheds_instead_of_requeueing(self):
        resilience = ResilienceConfig(retry_budget=0, retry_ratio=0.0,
                                      hedging=False)
        config = pinned_campaign_config(resilience=resilience)
        plan = FleetPlan.crash_storm(nodes=3, start_s=0.05, window_s=0.2,
                                     recover_s=0.5)
        run = run_scenario(config, plan)
        reasons = {reason for _, reason in run.report.dropped}
        assert "retry-budget" in reasons
        assert run.scorecard["retry_denied"] > 0
        assert run.scorecard["requeues"] == 0

    def test_hedging_covers_a_stalled_node(self):
        from repro.faults.plan import FaultPlan

        # node1 hangs (watchdog + ladder retries blow well past the
        # promised end); the fleet has spare capacity, so the overdue
        # batch gets hedged onto an idle peer that wins the race.
        config = ServeConfig(
            workload=PoissonWorkload(rate=100.0, requests=60, seed=11),
            nodes=3,
            fault_plans=[FaultPlan.kernel_hang(3), FaultPlan.clean(),
                         FaultPlan.clean()],
            seed=11,
            resilience=ResilienceConfig(hedge_margin_s=1e-4,
                                        health_interval_s=0.002))
        engine = ServeEngine(config)
        report = engine.run()
        res = report.resilience
        assert res["hedging"]["issued"] > 0
        assert res["hedging"]["wins"] > 0
        assert res["hedging"]["waste_time_s"] > 0
        assert report.completed + len(report.dropped) == report.arrivals

    def test_alert_stream_is_ordered_and_rendered(self):
        run = run_scenario(
            pinned_campaign_config(),
            FleetPlan.crash_storm(nodes=3, start_s=0.1, window_s=0.3,
                                  recover_s=0.5))
        times = [alert.t_s for alert in run.alerts]
        assert times == sorted(times)
        assert any(alert.severity == "page" for alert in run.alerts)
        line = run.alerts[0].render()
        assert line.startswith("t=") and ":" in line

    def test_resilience_metrics_reach_telemetry(self):
        from repro.obs import Telemetry, use_telemetry

        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            run_scenario(
                pinned_campaign_config(),
                FleetPlan.crash_storm(nodes=3, start_s=0.1, window_s=0.3,
                                      recover_s=0.5))
        assert hub.counters["slo.latency_violations"].value > 0
        assert "slo.budget_exhausted" in hub.counters
        assert hub.counters["slo.alerts"].value > 0


class TestChaosFuzz:
    def _random_plan(self, rng):
        events = []
        for _ in range(rng.randint(0, 3)):
            kind = rng.choice(["storm", "brownout", "flap", "surge"])
            start = round(rng.uniform(0.0, 0.3), 3)
            if kind == "storm":
                events.append(FleetPlan.crash_storm(
                    nodes=rng.randint(1, 3), start_s=start,
                    window_s=round(rng.uniform(0.05, 0.4), 3),
                    recover_s=rng.choice([0.0, 0.3])))
            elif kind == "brownout":
                events.append(FleetPlan.fleet_brownout(
                    droop=round(rng.uniform(0.4, 0.95), 2),
                    start_s=start,
                    window_s=round(rng.uniform(0.1, 0.6), 3)))
            elif kind == "flap":
                events.append(FleetPlan.flapping(
                    nodes=1, period_s=round(rng.uniform(0.05, 0.2), 3),
                    start_s=start,
                    window_s=round(rng.uniform(0.2, 0.8), 3)))
            else:
                events.append(FleetPlan.arrival_surge(
                    factor=round(rng.uniform(1.5, 5.0), 2),
                    start_s=start,
                    window_s=round(rng.uniform(0.05, 0.3), 3)))
        return FleetPlan.fleet_combined("fuzz", *events) if events \
            else FleetPlan.empty()

    def test_random_plans_conserve_requests_and_energy(self):
        rng = random.Random(0xC0FFEE)
        for trial in range(8):
            seed = rng.randint(1, 10_000)
            if rng.random() < 0.5:
                workload = PoissonWorkload(
                    rate=rng.choice([150.0, 300.0, 500.0]),
                    requests=rng.choice([40, 80, 120]), seed=seed)
            else:
                workload = ClosedLoopWorkload(
                    clients=rng.randint(2, 6), think_s=0.005,
                    requests_per_client=rng.randint(5, 15), seed=seed)
            config = dataclasses.replace(
                pinned_campaign_config(seed=seed), workload=workload)
            plan = self._random_plan(rng)
            chaos_seed = rng.randint(1, 1000)
            run = run_scenario(config, plan, chaos_seed=chaos_seed)
            report = run.report
            # Conservation (the engine also asserts this internally).
            assert report.completed + len(report.dropped) \
                == report.arrivals, plan.describe()
            # Nothing physical goes negative.
            assert report.fleet_energy_j >= 0.0
            assert all(record.latency_s >= 0.0
                       for record in report.records)
            assert all(record.energy_j >= 0.0
                       for record in report.records)
            assert all(value >= 0.0
                       for value in report.node_energy_j.values())
            assert 0.0 <= run.scorecard["availability"] <= 1.0
            # Reruns of the same scenario stay bit-identical.
            again = run_scenario(config, plan, chaos_seed=chaos_seed)
            assert again.report.to_json() == report.to_json(), \
                plan.describe()


class TestChaosCli:
    def test_empty_plan_matches_plain_serve(self, tmp_path, capsys):
        spec = ["--policy", "power-cap", "--arrival-rate", "300",
                "--requests", "150", "--seed", "5"]
        assert main(["serve", *spec, "--json"]) == 0
        serve_payload = capsys.readouterr().out
        out = tmp_path / "report.json"
        assert main(["chaos", "--empty", *spec,
                     "--serve-json", str(out)]) == 0
        capsys.readouterr()
        assert out.read_text() == serve_payload

    def test_pinned_campaign_exit_and_determinism(self, capsys):
        assert main(["chaos", "--json"]) == 3
        first = capsys.readouterr().out
        assert main(["chaos", "--json"]) == 3
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["verdict"] == "slo-exhausted"
        assert payload["exit_code"] == 3
        assert len(payload["scenarios"]) == 5

    def test_collapse_exit_code(self, tmp_path, capsys):
        plan = {"name": "total-outage", "events": [
            {"kind": "crash-storm", "nodes": 4, "start_s": 0.1,
             "window_s": 0.1, "recover_s": 0.4}]}
        path = tmp_path / "outage.json"
        path.write_text(json.dumps(plan))
        assert main(["chaos", "--plan", str(path), "--policy", "power-cap",
                     "--arrival-rate", "400", "--requests", "240",
                     "--max-batch", "4"]) == 4
        assert "collapsed" in capsys.readouterr().out

    def test_alerts_log(self, tmp_path, capsys):
        path = tmp_path / "alerts.log"
        assert main(["chaos", "--alerts", str(path)]) == 3
        capsys.readouterr()
        lines = path.read_text().splitlines()
        assert lines
        assert any("slo:" in line for line in lines)

    def test_bad_plan_file_is_a_clean_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "events": "garbage"}')
        with pytest.raises(SystemExit):
            main(["chaos", "--plan", str(path)])

    def test_resilience_off_disables_scorecard_extras(self, capsys):
        assert main(["chaos", "--empty", "--resilience", "off",
                     "--requests", "40", "--json"]) in (0, 3, 4)
        payload = json.loads(capsys.readouterr().out)
        card = payload["scenarios"][0]["scorecard"]
        assert card["breaker_trips"] == 0
        assert card["slo_worst_burn"] is None
