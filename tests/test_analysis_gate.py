"""Tier-1 correctness gate: every registered kernel lowering and every
built-in machine program must pass static analysis with zero ERROR
findings, and the CLI gate must agree."""

import pytest

from repro.analysis import lint_source
from repro.analysis.dataflow import ALL_REGISTERS
from repro.cli import main
from repro.isa.validate import Severity, validate_program
from repro.kernels.registry import BENCHMARK_NAMES, all_kernels
from repro.machine.programs import BUILTIN_PROGRAMS


class TestKernelLoweringsClean:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_kernel_program_has_no_errors(self, name):
        kernel = next(k for k, n in zip(all_kernels(), BENCHMARK_NAMES)
                      if n == name)
        findings = validate_program(kernel.build_program())
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert not errors, [str(f) for f in errors]
        # Every finding carries a VP rule code now.
        assert all(f.code.startswith("VP") for f in findings)


class TestBuiltinProgramsClean:
    def test_registry_is_populated(self):
        assert set(BUILTIN_PROGRAMS) == {
            "memcpy_words", "vector_add_i8", "dot_product_i8",
            "matmul_i8", "matmul_rows_i8",
            "dwconv3_i8", "fir8_i32", "mag_hist_i32",
        }

    @pytest.mark.parametrize("name", sorted((
        "memcpy_words", "vector_add_i8", "dot_product_i8",
        "matmul_i8", "matmul_rows_i8",
        "dwconv3_i8", "fir8_i32", "mag_hist_i32",
    )))
    def test_builtin_has_zero_error_findings(self, name):
        program = BUILTIN_PROGRAMS[name]
        report = lint_source(
            program.source, name=name, entry_regs=program.entry_regs,
            exit_live=program.exit_live if program.exit_live is not None
            else ALL_REGISTERS)
        assert report.ok, [str(f) for f in report.errors]
        # The demo kernels should also be warning-free.
        non_info = [f for f in report.findings
                    if f.severity is not Severity.INFO]
        assert not non_info, [str(f) for f in non_info]


class TestCliGate:
    def test_lint_all_builtin_exits_zero(self, capsys):
        assert main(["lint", "--all-builtin"]) == 0
        out = capsys.readouterr().out
        assert "matmul_i8" in out

    def test_lint_all_builtin_json(self, capsys):
        import json

        assert main(["lint", "--all-builtin", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(entry["ok"] for entry in payload)

    def test_lint_flags_broken_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("add r2, r1, r5\nhalt\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "OR001" in out

    def test_lint_entry_regs_option(self, tmp_path, capsys):
        source = tmp_path / "ok.s"
        source.write_text("add r2, r1, r1\nhalt\n")
        assert main(["lint", str(source), "--entry-regs", "r1"]) == 0
        capsys.readouterr()

    def test_lint_strict_fails_on_warning(self, tmp_path, capsys):
        source = tmp_path / "warn.s"
        # Dead store: r1 overwritten before any read.
        source.write_text("addi r1, r0, 1\naddi r1, r0, 2\nhalt\n")
        assert main(["lint", str(source)]) == 0
        capsys.readouterr()
        assert main(["lint", str(source), "--strict"]) == 1
        capsys.readouterr()

    def test_lint_reports_assembly_errors(self, tmp_path, capsys):
        source = tmp_path / "broken.s"
        source.write_text("frobnicate r1, r2\n")
        assert main(["lint", str(source)]) == 1
        err = capsys.readouterr().err
        assert "line 1" in err
