"""Tests for the battery/duty-cycle lifetime model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.battery import (
    AA_PAIR,
    CR2032,
    Battery,
    DutyCycle,
    lifetime_years,
    render_budget,
)


class TestBattery:
    def test_cr2032_energy(self):
        # 225 mAh x 3 V x 0.85 ~ 2065 J.
        assert CR2032.energy_joules == pytest.approx(2065, rel=0.01)

    def test_aa_pair_bigger(self):
        assert AA_PAIR.energy_joules > 10 * CR2032.energy_joules

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Battery("bad", capacity_mah=0, voltage=3.0)
        with pytest.raises(ConfigurationError):
            Battery("bad", capacity_mah=100, voltage=3.0, usable_fraction=0)


class TestDutyCycle:
    def test_sleep_only(self):
        cycle = DutyCycle(period=1.0, sleep_power=10e-6)
        assert cycle.average_power == pytest.approx(10e-6)

    def test_activities_accumulate(self):
        cycle = DutyCycle(period=1.0, sleep_power=0.0)
        cycle.add("sense", energy=1e-3, occurrences=2, duration=0.01)
        cycle.add("transmit", energy=5e-3, duration=0.1)
        assert cycle.energy_per_period == pytest.approx(7e-3)
        assert cycle.active_time == pytest.approx(0.12)

    def test_sleep_remainder(self):
        cycle = DutyCycle(period=10.0, sleep_power=1e-6)
        cycle.add("work", energy=0.0, duration=4.0)
        assert cycle.energy_per_period == pytest.approx(6e-6)

    def test_overcommit_rejected(self):
        cycle = DutyCycle(period=1.0, sleep_power=0.0)
        with pytest.raises(ConfigurationError):
            cycle.add("too long", energy=1e-3, duration=2.0)

    def test_energy_shares_sum_to_one(self):
        cycle = DutyCycle(period=1.0, sleep_power=5e-6)
        cycle.add("a", energy=1e-4, duration=0.05)
        cycle.add("b", energy=2e-4, duration=0.05)
        assert sum(cycle.energy_shares().values()) == pytest.approx(1.0)


class TestLifetime:
    def test_basic_math(self):
        cycle = DutyCycle(period=1.0, sleep_power=0.0)
        cycle.add("work", energy=CR2032.energy_joules / 31_557_600.0)
        assert lifetime_years(CR2032, cycle) == pytest.approx(1.0, rel=1e-6)

    def test_harvesting_extends(self):
        cycle = DutyCycle(period=1.0, sleep_power=100e-6)
        plain = lifetime_years(CR2032, cycle)
        helped = lifetime_years(CR2032, cycle, harvest_power=50e-6)
        assert helped == pytest.approx(2 * plain)

    def test_full_harvest_is_indefinite(self):
        cycle = DutyCycle(period=1.0, sleep_power=10e-6)
        assert lifetime_years(CR2032, cycle, harvest_power=20e-6) \
            == float("inf")

    def test_negative_harvest_rejected(self):
        cycle = DutyCycle(period=1.0, sleep_power=1e-6)
        with pytest.raises(ConfigurationError):
            lifetime_years(CR2032, cycle, harvest_power=-1.0)


class TestIntegrationWithOffloads:
    def test_smart_sensor_deployment(self, system):
        """A full path: offload energy -> duty cycle -> lifetime."""
        from repro.kernels import CnnKernel
        from repro.units import mhz
        result = system.offload(CnnKernel(), host_frequency=mhz(8),
                                iterations=4, double_buffered=True)
        per_frame_energy = result.timing.energy.total_energy / 4
        per_frame_time = result.timing.total_time / 4
        cycle = DutyCycle(period=1.0, sleep_power=system.host.sleep_power)
        cycle.add("classify", energy=per_frame_energy,
                  occurrences=2, duration=per_frame_time)
        years = lifetime_years(CR2032, cycle)
        assert 0.2 < years < 20
        text = render_budget(CR2032, cycle)
        assert "lifetime" in text and "classify" in text
