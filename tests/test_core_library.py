"""Tests for the library-offload planner."""

import pytest

from repro.errors import ConfigurationError
from repro.core.library import (
    LibraryEntry,
    LibraryPlanner,
    render_plan,
)
from repro.kernels import CnnKernel, HogKernel, MatmulKernel, SvmKernel
from repro.pulp.l2 import L2Memory


def _entry(name, binary, data=4096, rate=1.0):
    return LibraryEntry(kernel_name=name, binary_bytes=binary,
                        data_bytes=data, invocations_per_second=rate)


class TestPlannerMechanics:
    def test_everything_fits_small_set(self):
        planner = LibraryPlanner()
        plan = planner.plan([_entry("a", 8000), _entry("b", 8000)])
        assert len(plan.resident) == 2
        assert not plan.evicted

    def test_knapsack_prefers_high_value(self):
        # Budget fits only one of two equal-size binaries: keep the one
        # invoked more often.
        planner = LibraryPlanner(L2Memory(size=16 * 1024))
        entries = [_entry("rare", 10 * 1024, data=2048, rate=0.1),
                   _entry("hot", 10 * 1024, data=2048, rate=100.0)]
        plan = planner.plan(entries)
        assert [e.kernel_name for e in plan.resident] == ["hot"]
        assert [e.kernel_name for e in plan.evicted] == ["rare"]

    def test_data_reservation_honoured(self):
        planner = LibraryPlanner(L2Memory(size=32 * 1024))
        entries = [_entry("k", 20 * 1024, data=30 * 1024)]
        plan = planner.plan(entries)
        assert plan.data_reservation == 30 * 1024
        assert plan.l2_budget == 2 * 1024
        assert not plan.resident  # binary no longer fits

    def test_resident_bytes_within_budget(self):
        planner = LibraryPlanner(L2Memory(size=48 * 1024))
        entries = [_entry(f"k{i}", 9 * 1024, data=8 * 1024, rate=i + 1)
                   for i in range(6)]
        plan = planner.plan(entries)
        assert plan.resident_bytes <= plan.l2_budget
        assert plan.saved_traffic > 0

    def test_empty_set_rejected(self):
        with pytest.raises(ConfigurationError):
            LibraryPlanner().plan([])

    def test_negative_rate_rejected(self):
        planner = LibraryPlanner()
        with pytest.raises(ConfigurationError):
            planner.entries_for([(MatmulKernel("char"), -1.0)])

    def test_traffic_accounting(self):
        entry = _entry("k", 1000, rate=3.0)
        assert entry.saved_bytes_per_second == 3000.0


class TestPaperWorkingSet:
    """The paper's own observation: the ten benchmark binaries cannot
    all be resident in 64 kB — single-kernel offload was forced."""

    @pytest.fixture(scope="class")
    def plan(self):
        planner = LibraryPlanner()
        workload = [(MatmulKernel("char"), 10.0),
                    (SvmKernel("linear"), 30.0),
                    (CnnKernel(), 25.0),
                    (HogKernel(), 25.0)]
        entries = planner.entries_for(workload)
        return planner.plan(entries)

    def test_not_everything_fits(self, plan):
        # cnn (47 kB) + hog (24 kB) + svm (11 kB) + matmul (11 kB)
        # cannot co-reside with hog's 36 kB data reservation.
        assert plan.evicted

    def test_highest_traffic_binary_preferred(self, plan):
        # hog (24 kB x 25 Hz = 602 kB/s saved) beats svm+matmul combined
        # (453 kB/s) within the 28 kB left after its data reservation.
        resident = {entry.kernel_name for entry in plan.resident}
        assert resident == {"hog"}
        # cnn's 48 kB binary can never fit next to hog's data
        # reservation: its 1.2 MB/s of re-offload traffic is the price
        # of single-kernel offload the paper accepted.
        assert any(e.kernel_name == "cnn" for e in plan.evicted)

    def test_duty_cycle_savings_positive(self, plan):
        from repro.link.spi import SpiLink
        from repro.units import mhz
        saved = plan.offload_seconds_saved(SpiLink(), mhz(8))
        assert saved > 0

    def test_render(self, plan):
        text = render_plan(plan)
        assert "resident" in text
        assert "link duty cycle saved" in text
