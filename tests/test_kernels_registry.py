"""Tests for the kernel registry and cross-kernel invariants."""

import pytest

from repro.errors import KernelError
from repro.kernels import BENCHMARK_NAMES, all_kernels, kernel_by_name
from repro.kernels.registry import PAPER_TABLE1
from repro.pulp.binary import KernelBinary


class TestRegistry:
    def test_ten_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 10
        assert len(all_kernels()) == 10

    def test_table_order(self):
        assert BENCHMARK_NAMES[0] == "matmul"
        assert BENCHMARK_NAMES[-1] == "hog"

    def test_lookup(self):
        kernel = kernel_by_name("svm (RBF)")
        assert kernel.name == "svm (RBF)"

    def test_unknown_rejected(self):
        with pytest.raises(KernelError):
            kernel_by_name("fft")

    def test_fresh_instances(self):
        assert kernel_by_name("cnn") is not kernel_by_name("cnn")

    def test_paper_values_for_all(self):
        assert set(PAPER_TABLE1) == set(BENCHMARK_NAMES)


class TestCrossKernelInvariants:
    @pytest.fixture(scope="class")
    def programs(self):
        return {k.name: (k, k.build_program()) for k in all_kernels()}

    def test_names_match_programs(self, programs):
        for name, (kernel, program) in programs.items():
            assert program.name == name

    def test_serialized_io_matches_declared(self, programs):
        for name, (kernel, program) in programs.items():
            inputs = kernel.generate_inputs(0)
            assert len(kernel.serialize_inputs(inputs)) == \
                program.input_bytes, name
            outputs = kernel.compute(inputs)
            assert len(kernel.serialize_outputs(outputs)) == \
                program.output_bytes, name

    def test_risc_ops_within_10pct_except_hog(self, programs,
                                              baseline_target):
        for name, (kernel, program) in programs.items():
            measured = baseline_target.risc_ops(program)
            paper = PAPER_TABLE1[name][3]
            if name == "hog":
                assert 0.6 < measured / paper < 1.1, name
            else:
                assert measured == pytest.approx(paper, rel=0.10), name

    def test_binary_sizes_within_25pct(self, programs):
        for name, (kernel, program) in programs.items():
            binary = KernelBinary.from_program(program)
            paper = PAPER_TABLE1[name][2] * 1024
            assert binary.image_bytes == pytest.approx(paper, rel=0.25), name

    def test_io_sizes_match_paper(self, programs):
        for name, (kernel, program) in programs.items():
            paper_in = PAPER_TABLE1[name][0] * 1024
            paper_out = PAPER_TABLE1[name][1]
            assert program.input_bytes == pytest.approx(paper_in, rel=0.05), name
            assert program.output_bytes == pytest.approx(paper_out, rel=0.05), name

    def test_every_kernel_has_a_parallel_loop(self, programs):
        for name, (kernel, program) in programs.items():
            assert program.parallel_loops(), name

    def test_working_sets_fit_tcdm(self, programs):
        for name, (kernel, program) in programs.items():
            assert program.buffer_bytes <= 48 * 1024, name

    def test_all_deterministic(self):
        for kernel in all_kernels():
            first = kernel.run(11).output_payload
            second = kernel_by_name(kernel.name).run(11).output_payload
            assert first == second, kernel.name

    def test_different_seeds_differ(self):
        for kernel in all_kernels():
            a = kernel.run(0).output_payload
            b = kernel.run(1).output_payload
            assert a != b, kernel.name
