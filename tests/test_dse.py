"""Tests for the design-space exploration subsystem (``repro.dse``)."""

import json

import pytest

from repro.dse import (
    Configuration,
    ExplorationEngine,
    ParameterSpace,
    ResultCache,
    canonicalize,
    config_hash,
    evaluate_config,
    pareto_frontier,
    sensitivity,
)
from repro.dse import evaluate as dse_evaluate
from repro.errors import ConfigurationError


def tiny_space(**overrides):
    grid = {"kernel": ["matmul"], "host_mhz": [4.0, 8.0],
            "budget_mw": [5.0, 10.0]}
    grid.update(overrides)
    return ParameterSpace(grid=grid)


class TestSpace:
    def test_defaults_fill_missing_knobs(self):
        canonical = canonicalize({})
        assert canonical["kernel"] == "matmul"
        assert canonical["host_mhz"] == 8.0
        assert canonical["cluster_size"] == 4
        assert canonical["double_buffered"] is False

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigurationError):
            canonicalize({"voltage": 1.2})

    def test_bad_values_rejected(self):
        for knobs in ({"kernel": "nonesuch"}, {"host_mhz": -1},
                      {"budget_mw": 0}, {"spi_mode": "octal"},
                      {"link_tying": "loose"}, {"cluster_size": 3.5},
                      {"cluster_size": 99}, {"iterations": 0},
                      {"double_buffered": "maybe"}):
            with pytest.raises(ConfigurationError):
                canonicalize(knobs)

    def test_hash_is_key_order_independent(self):
        a = canonicalize({"host_mhz": 4, "budget_mw": 5})
        b = canonicalize({"budget_mw": 5.0, "host_mhz": 4.0})
        assert config_hash(a) == config_hash(b)

    def test_tied_configs_ignore_untied_clock(self):
        a = Configuration.from_knobs({"link_tying": "tied",
                                      "untied_clock_mhz": 8})
        b = Configuration.from_knobs({"link_tying": "tied",
                                      "untied_clock_mhz": 48})
        assert a.hash == b.hash
        c = Configuration.from_knobs({"link_tying": "untied",
                                      "untied_clock_mhz": 8})
        d = Configuration.from_knobs({"link_tying": "untied",
                                      "untied_clock_mhz": 48})
        assert c.hash != d.hash

    def test_grid_expansion_counts_and_dedups(self):
        space = ParameterSpace(
            grid={"host_mhz": [2, 4], "budget_mw": [5, 10]},
            points=[{"host_mhz": 2, "budget_mw": 5},   # duplicate of grid
                    {"host_mhz": 16}])
        configs = space.expand()
        assert len(configs) == 5
        assert len({c.hash for c in configs}) == 5

    def test_empty_space_is_the_default_point(self):
        configs = ParameterSpace().expand()
        assert len(configs) == 1
        assert configs[0].as_dict() == canonicalize({})

    def test_spec_roundtrip(self):
        space = tiny_space()
        clone = ParameterSpace.from_dict(space.to_dict())
        assert [c.hash for c in clone.expand()] \
            == [c.hash for c in space.expand()]

    def test_bad_specs_rejected(self):
        for spec in ([1, 2], {"mesh": {}}, {"grid": []},
                     {"grid": {"host_mhz": []}}):
            with pytest.raises(ConfigurationError):
                ParameterSpace.from_dict(spec)


class TestEvaluate:
    def test_feasible_record(self):
        record = evaluate_config({"kernel": "matmul", "host_mhz": 8})
        assert record["feasible"]
        assert record["error"] is None
        metrics = record["metrics"]
        assert metrics["verified"] is True
        assert metrics["effective_speedup"] > 1
        assert metrics["energy_per_iteration_j"] > 0
        assert record["config_hash"] == config_hash(record["config"])

    def test_deterministic_bit_identical(self):
        knobs = {"kernel": "cnn", "host_mhz": 4, "iterations": 8,
                 "double_buffered": True}
        assert evaluate_config(knobs) == evaluate_config(knobs)

    def test_infeasible_point_is_a_result(self):
        # 32 MHz host power alone exceeds a 1 mW envelope.
        record = evaluate_config({"host_mhz": 32, "budget_mw": 1})
        assert not record["feasible"]
        assert record["error"]
        assert record["metrics"] is None

    def test_untied_link_beats_tied_at_slow_host(self):
        tied = evaluate_config({"host_mhz": 2, "iterations": 32})
        untied = evaluate_config({"host_mhz": 2, "iterations": 32,
                                  "link_tying": "untied"})
        assert untied["metrics"]["efficiency"] \
            > tied["metrics"]["efficiency"]


class TestCache:
    def test_put_get_roundtrip_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = evaluate_config({"host_mhz": 4})
        cache.put(record)
        assert cache.get(record["config_hash"],
                         record["model_version"]) == record
        assert len(cache) == 1

    def test_model_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = evaluate_config({"host_mhz": 4})
        cache.put(record)
        assert cache.get(record["config_hash"], "other-version") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = evaluate_config({"host_mhz": 4})
        cache.put(record)
        (tmp_path / f"{record['config_hash']}.json").write_text("not json")
        assert cache.get(record["config_hash"],
                         record["model_version"]) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(evaluate_config({"host_mhz": 4}))
        assert cache.clear() == 1
        assert len(cache) == 0


class TestEngine:
    def test_cold_run_all_misses(self, tmp_path):
        engine = ExplorationEngine(cache=ResultCache(tmp_path), jobs=1)
        result = engine.run(tiny_space())
        assert result.stats.configurations == 4
        assert result.stats.cache_misses == 4
        assert result.stats.cache_hits == 0

    def test_warm_rerun_full_hits_and_identical_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = ExplorationEngine(cache=cache, jobs=1).run(tiny_space())
        warm = ExplorationEngine(cache=cache, jobs=1).run(tiny_space())
        assert warm.stats.cache_hits == warm.stats.configurations
        assert warm.stats.hit_rate == 1.0
        assert warm.records == cold.records
        assert pareto_frontier(warm.records) == pareto_frontier(cold.records)

    def test_model_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        ExplorationEngine(cache=cache, jobs=1).run(tiny_space())
        monkeypatch.setattr(dse_evaluate, "MODEL_VERSION", "dse-next")
        bumped = ExplorationEngine(cache=cache, jobs=1).run(tiny_space())
        assert bumped.stats.cache_hits == 0
        assert bumped.stats.cache_misses == 4
        assert bumped.model_version == "dse-next"

    def test_changed_knob_misses_overlap_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        ExplorationEngine(cache=cache, jobs=1).run(tiny_space())
        widened = ExplorationEngine(cache=cache, jobs=1).run(
            tiny_space(host_mhz=[4.0, 8.0, 16.0]))
        assert widened.stats.configurations == 6
        assert widened.stats.cache_hits == 4     # the overlapping points
        assert widened.stats.cache_misses == 2   # only the new host_mhz

    def test_parallel_matches_serial(self, tmp_path):
        space = tiny_space()
        serial = ExplorationEngine(jobs=1).run(space)
        parallel = ExplorationEngine(jobs=2).run(space)
        assert parallel.records == serial.records
        assert pareto_frontier(parallel.records) \
            == pareto_frontier(serial.records)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplorationEngine(jobs=0)

    def test_telemetry_counters_emitted(self, tmp_path):
        from repro.obs import Telemetry, use_telemetry
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            ExplorationEngine(cache=ResultCache(tmp_path), jobs=1) \
                .run(tiny_space())
        assert hub.counters["dse.cache.misses"].value == 4
        assert hub.counters["dse.evaluations"].value == 4
        lanes = {span.lane for span in hub.spans}
        assert "dse" in lanes


def _record(h, speedup, energy, power, feasible=True, **knobs):
    return {"config": canonicalize(knobs), "config_hash": h,
            "model_version": "t", "feasible": feasible, "error": None,
            "metrics": None if not feasible else {
                "effective_speedup": speedup,
                "energy_per_iteration_j": energy,
                "total_power_w": power,
            }}


class TestPareto:
    def test_dominated_points_drop(self):
        records = [_record("a", 10.0, 1e-5, 0.01),
                   _record("b", 5.0, 2e-5, 0.01),    # dominated by a
                   _record("c", 8.0, 0.5e-5, 0.01)]  # trades speed for energy
        frontier = pareto_frontier(records)
        assert [r["config_hash"] for r in frontier] == ["a", "c"]

    def test_infeasible_never_on_frontier(self):
        records = [_record("a", 10.0, 1e-5, 0.01),
                   _record("b", None, None, None, feasible=False)]
        assert len(pareto_frontier(records)) == 1

    def test_identical_vectors_collapse_to_first_hash(self):
        records = [_record("bbb", 10.0, 1e-5, 0.01),
                   _record("aaa", 10.0, 1e-5, 0.01)]
        frontier = pareto_frontier(records)
        assert len(frontier) == 1
        assert frontier[0]["config_hash"] == "aaa"

    def test_sensitivity_ranks_the_moving_knob(self):
        records = [
            _record("a", 2.0, 1e-5, 0.01, host_mhz=2, budget_mw=5),
            _record("b", 9.0, 1e-5, 0.01, host_mhz=8, budget_mw=5),
            _record("c", 2.1, 1e-5, 0.01, host_mhz=2, budget_mw=10),
            _record("d", 9.2, 1e-5, 0.01, host_mhz=8, budget_mw=10),
        ]
        summary = sensitivity(records)
        assert summary["host_mhz"]["mean_spread"] \
            > summary["budget_mw"]["mean_spread"]
        assert summary["host_mhz"]["values"] == 2


class TestToRows:
    def test_every_record_exports_flat(self):
        from repro.dse import to_rows

        result = ExplorationEngine().run(tiny_space())
        rows = to_rows(result)
        assert len(rows) == len(result.records)
        hashes = [row["config_hash"] for row in rows]
        assert hashes == sorted(hashes)
        for row in rows:
            assert json.dumps(row)    # flat and JSON-serializable
            assert not any(isinstance(value, dict)
                           for value in row.values())
            assert row["knob.kernel"] == "matmul"
            assert row["model_version"] == result.model_version
            if row["feasible"]:
                assert row["metric.energy_per_iteration_j"] > 0
                assert row["metric.time_per_iteration_s"] > 0

    def test_infeasible_rows_kept_without_metrics(self):
        from repro.dse import to_rows

        # 0.5 mW cannot power the accelerator: infeasible by design.
        result = ExplorationEngine().run(
            tiny_space(budget_mw=[0.5], host_mhz=[8.0]))
        rows = to_rows(result)
        assert rows and not any(row["feasible"] for row in rows)
        for row in rows:
            assert not any(key.startswith("metric.") for key in row)


class TestCliDse:
    def test_parser_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["dse", "--host-mhz", "2,4"])
        assert args.command == "dse"
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.json

    def test_requires_some_space(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["dse"])

    def test_json_run_and_warm_cache(self, tmp_path, capsys):
        from repro.cli import main
        argv = ["dse", "--host-mhz", "4,8", "--budget-mw", "5,10",
                "--cache-dir", str(tmp_path / "cache"), "--json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert cold["stats"]["cache_misses"] == 4
        assert warm["stats"]["cache_hits"] == 4
        assert warm["stats"]["hit_rate"] == 1.0
        assert warm["pareto"] == cold["pareto"]
        assert warm["records"] == cold["records"]

    def test_spec_file(self, tmp_path, capsys):
        from repro.cli import main
        spec = tmp_path / "space.json"
        spec.write_text(json.dumps(
            {"grid": {"host_mhz": [8]},
             "points": [{"host_mhz": 16, "budget_mw": 20}]}))
        assert main(["dse", "--spec", str(spec), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["stats"]["configurations"] == 2

    def test_bad_spec_exits(self, tmp_path):
        from repro.cli import main
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"grid": {"voltage": [1.2]}}))
        with pytest.raises(SystemExit):
            main(["dse", "--spec", str(spec)])

    def test_text_render(self, capsys):
        from repro.cli import main
        assert main(["dse", "--host-mhz", "8"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "explored 1 configuration(s)" in out
