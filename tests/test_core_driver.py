"""Tests for the reliable offload driver."""

import numpy as np
import pytest

from repro.errors import LinkError, OffloadError
from repro.core.driver import OffloadDriver, SessionState
from repro.kernels.matmul import MatmulKernel
from repro.pulp.binary import KernelBinary
from repro.units import mhz


def _session_pieces(seed=0, n=8):
    kernel = MatmulKernel("char", n=n)
    program = kernel.build_program()
    inputs = kernel.generate_inputs(seed)
    outputs = kernel.compute(inputs)
    return (KernelBinary.from_program(program),
            kernel.serialize_inputs(inputs),
            kernel.serialize_outputs(outputs))


def _run_session(driver, binary, input_payload, output_payload):
    driver.load(binary, input_payload, len(output_payload))
    driver.arm(input_payload)
    driver.start()
    return driver.complete(output_payload)


class TestCleanSession:
    def test_full_lifecycle(self):
        binary, inputs, outputs = _session_pieces()
        driver = OffloadDriver()
        received = _run_session(driver, binary, inputs, outputs)
        assert received == outputs
        assert driver.state is SessionState.COMPLETE
        assert driver.stats.retry_overhead == 0.0

    def test_results_land_in_l2_and_read_back(self):
        binary, inputs, outputs = _session_pieces(seed=3)
        driver = OffloadDriver()
        received = _run_session(driver, binary, inputs, outputs)
        matrix = np.frombuffer(received, dtype=np.int8)
        assert matrix.shape == (64,)

    def test_state_machine_enforced(self):
        binary, inputs, outputs = _session_pieces()
        driver = OffloadDriver()
        with pytest.raises(OffloadError):
            driver.arm(inputs)
        driver.load(binary, inputs, len(outputs))
        with pytest.raises(OffloadError):
            driver.start()
        with pytest.raises(OffloadError):
            driver.complete(outputs)
        with pytest.raises(OffloadError):
            driver.load(binary, inputs, len(outputs))

    def test_reset_allows_new_session(self):
        binary, inputs, outputs = _session_pieces()
        driver = OffloadDriver()
        _run_session(driver, binary, inputs, outputs)
        driver.reset()
        assert driver.state is SessionState.IDLE
        received = _run_session(driver, binary, inputs, outputs)
        assert received == outputs

    def test_wire_time_accounting(self):
        binary, inputs, outputs = _session_pieces()
        driver = OffloadDriver()
        _run_session(driver, binary, inputs, outputs)
        assert driver.wire_time(mhz(8)) > 0
        # Quad link at a faster host clock is quicker.
        assert driver.wire_time(mhz(16)) < driver.wire_time(mhz(8))

    def test_payload_accounting(self):
        binary, inputs, outputs = _session_pieces()
        driver = OffloadDriver()
        _run_session(driver, binary, inputs, outputs)
        # binary + inputs + the 4-byte READ_DATA length request
        # (LOAD_BINARY, WRITE_DATA, START, READ_DATA = 4 frames).
        assert driver.stats.payload_bytes == \
            binary.image_bytes + len(inputs) + 4
        assert driver.stats.frames_sent == 4


class TestNoisySession:
    def test_survives_noise_with_identical_results(self):
        binary, inputs, outputs = _session_pieces(seed=5)
        clean = OffloadDriver()
        noisy = OffloadDriver(bit_error_rate=2e-5, max_attempts=64, seed=9)
        assert _run_session(clean, binary, inputs, outputs) == \
            _run_session(noisy, binary, inputs, outputs) == outputs

    def test_retries_cost_wire_time(self):
        binary, inputs, outputs = _session_pieces(seed=5)
        clean = OffloadDriver()
        noisy = OffloadDriver(bit_error_rate=5e-5, max_attempts=256, seed=3)
        _run_session(clean, binary, inputs, outputs)
        _run_session(noisy, binary, inputs, outputs)
        assert noisy.stats.retry_overhead > 0
        assert noisy.wire_time(mhz(8)) > clean.wire_time(mhz(8))

    def test_hopeless_channel_fails_loudly(self):
        binary, inputs, outputs = _session_pieces()
        driver = OffloadDriver(bit_error_rate=0.05, max_attempts=3)
        with pytest.raises(LinkError):
            driver.load(binary, inputs, len(outputs))
