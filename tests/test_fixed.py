"""Tests for the fixed-point substrate (repro.fixed)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FixedPointError
from repro.fixed import (
    FxpArray,
    Int64Accumulator,
    Q1_15,
    Q8_8,
    Q16_16,
    QFormat,
    fxp_add,
    fxp_from_float,
    fxp_mac,
    fxp_mul,
    fxp_sub,
    fxp_to_float,
    saturate,
)


class TestQFormat:
    def test_q1_15_properties(self):
        assert Q1_15.width == 16
        assert Q1_15.scale == 1 << 15
        assert Q1_15.raw_min == -(1 << 15)
        assert Q1_15.raw_max == (1 << 15) - 1
        assert Q1_15.storage_bytes == 2

    def test_q16_16_range(self):
        assert Q16_16.width == 32
        assert Q16_16.max_value == pytest.approx(32768, rel=1e-3)
        assert Q16_16.storage_bytes == 4

    def test_unsigned_format(self):
        fmt = QFormat(8, 8, signed=False)
        assert fmt.raw_min == 0
        assert fmt.width == 16

    def test_resolution(self):
        assert Q8_8.resolution == pytest.approx(1 / 256)

    def test_rejects_negative_bits(self):
        with pytest.raises(FixedPointError):
            QFormat(-1, 15)

    def test_rejects_oversized(self):
        with pytest.raises(FixedPointError):
            QFormat(40, 40)

    def test_str(self):
        assert str(Q1_15) == "Q0.15"
        assert str(QFormat(8, 8, signed=False)) == "UQ8.8"


class TestScalarOps:
    def test_from_float_roundtrip(self):
        raw = fxp_from_float(0.5, Q1_15)
        assert raw == 1 << 14
        assert fxp_to_float(raw, Q1_15) == pytest.approx(0.5)

    def test_from_float_saturates(self):
        assert fxp_from_float(10.0, Q1_15) == Q1_15.raw_max
        assert fxp_from_float(-10.0, Q1_15) == Q1_15.raw_min

    def test_add_saturates(self):
        near_max = Q1_15.raw_max - 1
        assert fxp_add(near_max, 100, Q1_15) == Q1_15.raw_max

    def test_sub_saturates(self):
        assert fxp_sub(Q1_15.raw_min, 100, Q1_15) == Q1_15.raw_min

    def test_mul_renormalizes(self):
        half = fxp_from_float(0.5, Q1_15)
        quarter = fxp_mul(half, half, Q1_15, Q1_15, Q1_15)
        assert fxp_to_float(quarter, Q1_15) == pytest.approx(0.25, abs=1e-4)

    def test_mul_rejects_widening_output(self):
        with pytest.raises(FixedPointError):
            fxp_mul(1, 1, Q1_15, Q1_15, QFormat(0, 31))

    def test_mac(self):
        half = fxp_from_float(0.5, Q1_15)
        acc = fxp_from_float(0.25, Q1_15)
        result = fxp_mac(acc, half, half, Q1_15, Q1_15, Q1_15)
        assert fxp_to_float(result, Q1_15) == pytest.approx(0.5, abs=1e-4)

    @given(st.floats(-4.0, 4.0))
    def test_quantization_error_bounded(self, value):
        raw = fxp_from_float(value, Q8_8)
        back = fxp_to_float(raw, Q8_8)
        clipped = min(max(value, Q8_8.min_value), Q8_8.max_value)
        assert abs(back - clipped) <= Q8_8.resolution

    @given(st.integers(-(1 << 20), 1 << 20))
    def test_saturate_idempotent(self, raw):
        once = saturate(raw, Q1_15)
        assert saturate(once, Q1_15) == once
        assert Q1_15.raw_min <= once <= Q1_15.raw_max


class TestArrays:
    def test_array_roundtrip(self):
        values = np.array([0.1, -0.5, 0.9])
        arr = FxpArray.from_float(values, Q1_15)
        assert np.allclose(arr.to_float(), values, atol=Q1_15.resolution)

    def test_array_add_saturates(self):
        a = FxpArray(np.array([Q1_15.raw_max]), Q1_15)
        b = FxpArray(np.array([100]), Q1_15)
        assert a.add(b).raw[0] == Q1_15.raw_max

    def test_array_mul(self):
        a = FxpArray.from_float(np.array([0.5, -0.5]), Q1_15)
        out = a.mul(a, Q1_15)
        assert np.allclose(out.to_float(), [0.25, 0.25], atol=1e-4)

    def test_format_mismatch_raises(self):
        a = FxpArray(np.array([0]), Q1_15)
        b = FxpArray(np.array([0]), Q8_8)
        with pytest.raises(FixedPointError):
            a.add(b)

    def test_out_of_range_raw_rejected(self):
        with pytest.raises(FixedPointError):
            FxpArray(np.array([1 << 20]), Q1_15)

    def test_size_bytes(self):
        arr = FxpArray(np.zeros(10, dtype=np.int64), Q1_15)
        assert arr.size_bytes == 20


class TestInt64Accumulator:
    def test_simple_add(self):
        acc = Int64Accumulator()
        acc.add(5).add(-3)
        assert acc.value == 2

    def test_carry_propagation(self):
        acc = Int64Accumulator(0xFFFFFFFF)
        acc.add(1)
        assert acc.value == 0x100000000

    def test_negative_values(self):
        acc = Int64Accumulator()
        acc.add(-1)
        assert acc.value == -1
        acc.add(-(1 << 40))
        assert acc.value == -1 - (1 << 40)

    def test_wraps_at_64_bits(self):
        acc = Int64Accumulator((1 << 63) - 1)
        acc.add(1)
        assert acc.value == -(1 << 63)

    def test_primitive_op_accounting(self):
        acc = Int64Accumulator()
        acc.add(1)
        assert acc.primitive_ops == Int64Accumulator.OPS_PER_ADD
        acc.add_product32(3, 4)
        assert acc.primitive_ops == 2 * Int64Accumulator.OPS_PER_ADD + 2

    def test_add_product32(self):
        acc = Int64Accumulator()
        acc.add_product32(-(1 << 31), 2)
        assert acc.value == -(1 << 32)

    def test_shift_right(self):
        acc = Int64Accumulator(1 << 20)
        assert acc.shift_right(4) == 1 << 16

    def test_reset_preserves_ops(self):
        acc = Int64Accumulator(42)
        acc.add(1)
        ops = acc.primitive_ops
        acc.reset()
        assert acc.value == 0
        assert acc.primitive_ops == ops

    @given(st.lists(st.integers(-(1 << 62), 1 << 62), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_matches_python_ints(self, addends):
        acc = Int64Accumulator()
        total = 0
        for addend in addends:
            acc.add(addend)
            total = (total + addend) & 0xFFFFFFFFFFFFFFFF
        expected = total - (1 << 64) if total & (1 << 63) else total
        assert acc.value == expected
