"""Tests for repro.units."""


import pytest

from repro.errors import ConfigurationError
from repro import units


class TestConstructors:
    def test_mhz(self):
        assert units.mhz(32) == 32e6

    def test_khz(self):
        assert units.khz(32.768) == pytest.approx(32768)

    def test_ghz(self):
        assert units.ghz(1.5) == pytest.approx(1.5e9)

    def test_mw(self):
        assert units.mw(10) == pytest.approx(0.01)

    def test_uw(self):
        assert units.uw(500) == pytest.approx(0.0005)

    def test_ua_ma(self):
        assert units.ua(100) == pytest.approx(100e-6)
        assert units.ma(1.5) == pytest.approx(1.5e-3)

    def test_time_units(self):
        assert units.us(12) == pytest.approx(12e-6)
        assert units.ms(3) == pytest.approx(3e-3)

    def test_kib(self):
        assert units.kib(64) == 65536
        assert units.kib(0.5) == 512

    def test_ua_per_mhz(self):
        # 100 uA/MHz at 1 MHz is 100 uA.
        amps = units.ua_per_mhz(100) * 1e6
        assert amps == pytest.approx(100e-6)

    def test_uw_per_mhz(self):
        watts = units.uw_per_mhz(20) * 1e6
        assert watts == pytest.approx(20e-6)


class TestDerived:
    def test_gops(self):
        assert units.gops(2e9, 1.0) == pytest.approx(2.0)

    def test_gops_rejects_zero_time(self):
        with pytest.raises(ConfigurationError):
            units.gops(1e9, 0.0)

    def test_gops_per_watt(self):
        assert units.gops_per_watt(3e9, 1.0, 0.01) == pytest.approx(300.0)

    def test_gops_per_watt_rejects_zero_power(self):
        with pytest.raises(ConfigurationError):
            units.gops_per_watt(1e9, 1.0, 0.0)


class TestFormatting:
    def test_si_format_milli(self):
        assert units.si_format(1.48e-3, "W") == "1.48 mW"

    def test_si_format_mega(self):
        assert units.format_hz(32e6) == "32 MHz"

    def test_si_format_zero(self):
        assert units.si_format(0, "W") == "0 W"

    def test_si_format_nan(self):
        assert "nan" in units.si_format(float("nan"), "W")

    def test_si_format_tiny(self):
        assert units.si_format(5e-13, "J").endswith("pJ")

    def test_format_bytes(self):
        assert units.format_bytes(8192) == "8 kB"
        assert units.format_bytes(40) == "40 B"
        assert units.format_bytes(2 * 1024 * 1024) == "2 MB"

    def test_format_seconds(self):
        assert units.format_seconds(1.2e-3) == "1.2 ms"

    def test_format_watts(self):
        assert units.format_watts(0.0398).startswith("39.8")
