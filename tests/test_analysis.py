"""Tests for the OR10N-mini static analyzer: CFG construction,
dataflow, the OR-rule catalog on seeded-bug fixtures, and the
static-vs-dynamic load-use stall cross-validation."""

import numpy as np
import pytest

from repro.analysis import (
    EXIT,
    build_cfg,
    lint_instructions,
    lint_source,
    predicted_stalls,
    stall_sites,
    stalls_by_block,
)
from repro.analysis.dataflow import (
    ALL_REGISTERS,
    initialized_registers,
    live_registers,
)
from repro.errors import IsaError
from repro.isa.validate import Severity
from repro.machine import (
    DOT_PRODUCT_I8,
    MATMUL_I8,
    VECTOR_ADD_I8,
    Machine,
    Opcode,
    assemble,
)
from repro.machine.encoding import Instruction
from repro.machine.profiler import ProfilingMachine


def _codes(report):
    return {f.code for f in report.findings}


def _findings(report, code):
    return [f for f in report.findings if f.code == code]


class TestCfg:
    def test_straight_line_single_block(self):
        cfg = build_cfg(assemble("addi r1, r0, 1\nadd r2, r1, r1\nhalt"))
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == [EXIT]
        assert cfg.reachable == {0}

    def test_branch_splits_blocks(self):
        cfg = build_cfg(assemble("""
        top:
            addi r1, r1, 1
            blt  r1, r2, top
            halt
        """))
        block = cfg.block_at(0)  # [addi, blt]
        assert set(block.successors) == {cfg.block_of[0], cfg.block_of[2]}

    def test_hwloop_back_edge_and_skip_edge(self):
        cfg = build_cfg(assemble("""
            hwloop r1, end
            addi r2, r2, 1
        end:
            halt
        """))
        setup = cfg.block_at(0)
        body = cfg.block_at(1)
        exit_block = cfg.block_at(2)
        # Setup enters the body and can skip it on zero trips.
        assert set(setup.successors) == {body.index, exit_block.index}
        # The body falls through to the end AND takes the back edge.
        assert set(body.successors) == {body.index, exit_block.index}
        assert len(cfg.hwloops) == 1
        assert cfg.hwloops[0].start == 1 and cfg.hwloops[0].end == 2

    def test_nested_hwloop_depths(self):
        cfg = build_cfg(assemble("""
            hwloop r1, e1
            hwloop r2, e2
            addi r3, r3, 1
        e2:
            addi r4, r4, 1
        e1:
            halt
        """))
        depths = sorted(span.depth for span in cfg.hwloops)
        assert depths == [1, 2]

    def test_unreachable_block_detected(self):
        cfg = build_cfg(assemble("""
            jump done
            addi r1, r0, 1
        done:
            halt
        """))
        assert cfg.block_of[1] not in cfg.reachable

    def test_reachable_pcs(self):
        cfg = build_cfg(assemble("jump done\naddi r1, r0, 1\ndone:\nhalt"))
        assert cfg.reachable_pcs() == {0, 2}

    def test_out_of_bounds_branch_raises(self):
        program = [Instruction(Opcode.JUMP, imm=40),
                   Instruction(Opcode.HALT)]
        with pytest.raises(IsaError):
            build_cfg(program)


class TestDataflow:
    def test_entry_registers_initialized(self):
        cfg = build_cfg(assemble("add r3, r1, r2\nhalt"))
        init = initialized_registers(cfg, entry_regs=frozenset({1, 2}))
        may, must = init.at(0)
        assert {0, 1, 2} <= must
        assert 3 not in may

    def test_liveness_respects_exit_live(self):
        cfg = build_cfg(assemble("addi r5, r0, 7\nhalt"))
        narrow = live_registers(cfg, exit_live=frozenset({10}))
        assert 5 not in narrow.live_out[cfg.block_of[0]]
        wide = live_registers(cfg, exit_live=ALL_REGISTERS)
        assert 5 in wide.live_out[cfg.block_of[0]]


class TestRules:
    def test_or001_uninitialized_read(self):
        report = lint_source("""
            addi r1, r0, 3
            add  r2, r1, r5
            halt
        """)
        findings = _findings(report, "OR001")
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert findings[0].line == 3
        assert "r5" in findings[0].message
        assert not report.ok

    def test_or001_maybe_uninitialized_is_warning(self):
        report = lint_source("""
            beq  r1, r0, skip
            addi r2, r0, 1
        skip:
            add  r3, r2, r0     ; r2 written on one path only
            halt
        """, entry_regs=frozenset({1}))
        findings = _findings(report, "OR001")
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING
        assert report.ok  # warnings do not fail the lint

    def test_or001_entry_regs_suppress(self):
        source = "add r2, r1, r1\nhalt"
        assert _findings(lint_source(source), "OR001")
        assert not _findings(
            lint_source(source, entry_regs=frozenset({1})), "OR001")

    def test_or002_dead_store(self):
        report = lint_source("""
            addi r1, r0, 1      ; overwritten before any read
            addi r1, r0, 2
            halt
        """)
        findings = _findings(report, "OR002")
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_or002_respects_exit_liveness(self):
        source = "addi r9, r0, 1\nhalt"
        assert not _findings(lint_source(source), "OR002")
        narrowed = lint_source(source, exit_live=frozenset({10}))
        assert _findings(narrowed, "OR002")

    def test_or003_write_to_r0(self):
        report = lint_source("addi r0, r0, 99\nhalt")
        findings = _findings(report, "OR003")
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING

    def test_or004_unreachable(self):
        report = lint_source("""
            jump done
            addi r9, r0, 1
        done:
            halt
        """)
        findings = _findings(report, "OR004")
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_or005_no_halt(self):
        report = lint_source("""
        spin:
            jump spin
        """)
        findings = _findings(report, "OR005")
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR

    def test_or005_fall_off_end_warns(self):
        report = lint_source("""
            beq r1, r0, out
            halt
        out:
            addi r2, r0, 1      ; last instruction is not halt
        """, entry_regs=frozenset({1}))
        findings = _findings(report, "OR005")
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING

    def test_or006_out_of_bounds_branch(self):
        program = [Instruction(Opcode.BEQ, ra=1, rb=2, imm=100),
                   Instruction(Opcode.HALT)]
        report = lint_instructions(program)
        findings = _findings(report, "OR006")
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert report.cfg is None  # graph rules are skipped

    def test_or007_nesting_depth(self):
        program = [
            Instruction(Opcode.HWLOOP, ra=1, imm=7),
            Instruction(Opcode.HWLOOP, ra=2, imm=5),
            Instruction(Opcode.HWLOOP, ra=3, imm=3),
            Instruction(Opcode.ADD, rd=4, ra=4, rb=4),
            Instruction(Opcode.ADD, rd=5, ra=5, rb=5),
            Instruction(Opcode.ADD, rd=6, ra=6, rb=6),
            Instruction(Opcode.ADD, rd=7, ra=7, rb=7),
            Instruction(Opcode.ADD, rd=8, ra=8, rb=8),
            Instruction(Opcode.HALT),
        ]
        report = lint_instructions(
            program, entry_regs=frozenset(range(32)))
        findings = _findings(report, "OR007")
        assert any(f.severity is Severity.ERROR for f in findings)
        assert any("nest 3 deep" in f.message for f in findings)

    def test_or008_branch_out_of_hwloop_body(self):
        report = lint_source("""
            hwloop r1, end
            addi r2, r2, 1
            beq  r2, r1, out
            addi r3, r3, 1
        end:
            halt
        out:
            halt
        """, entry_regs=frozenset({1}))
        findings = _findings(report, "OR008")
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert findings[0].line == 4

    def test_or008_branch_into_hwloop_body(self):
        report = lint_source("""
            beq  r1, r0, inside
            hwloop r1, end
            addi r2, r2, 1
        inside:
            addi r3, r3, 1
        end:
            halt
        """, entry_regs=frozenset({1}))
        findings = _findings(report, "OR008")
        assert len(findings) == 1
        assert "without executing its setup" in findings[0].message

    def test_or009_trip_register_mutated(self):
        report = lint_source("""
            hwloop r1, end
            addi r1, r1, -1
        end:
            halt
        """, entry_regs=frozenset({1}))
        findings = _findings(report, "OR009")
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING

    def test_or010_stall_site_reported(self):
        report = lint_source("""
            lw  r4, 0(r1)
            add r5, r4, r4      ; consumes r4 immediately
            halt
        """, entry_regs=frozenset({1}))
        findings = _findings(report, "OR010")
        assert len(findings) == 1
        assert findings[0].severity is Severity.INFO

    def test_clean_program_has_no_findings(self):
        report = lint_source("""
            addi r1, r0, 5
            addi r2, r0, 7
            add  r3, r1, r2
            halt
        """)
        assert report.findings == []
        assert report.ok


class TestReport:
    def test_render_mentions_codes_and_lines(self):
        report = lint_source("add r2, r1, r1\nhalt")
        text = report.render()
        assert "OR001" in text
        assert "line 1" in text

    def test_json_round_trips(self):
        import json

        report = lint_source("add r2, r1, r1\nhalt")
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "OR001"
        assert payload["findings"][0]["line"] == 1

    def test_strict_raises(self):
        report = lint_source("add r2, r1, r1\nhalt")
        with pytest.raises(IsaError):
            report.raise_on_error()


class TestStallCrossValidation:
    """Static stall sites x profiled execution counts must equal the
    interpreter's dynamically measured load-use stalls (acceptance
    criterion: >= 3 built-in programs)."""

    def _cross_validate(self, program, presets, setup=None):
        machine = ProfilingMachine()
        if setup:
            setup(machine)
        for register, value in presets.items():
            machine.registers[register] = value
        run = machine.run_profiled(program)
        static = predicted_stalls(build_cfg(program), run.executions_by_pc)
        assert static == run.result.load_use_stalls
        return run.result

    def test_dot_product(self):
        rng = np.random.default_rng(7)
        a = rng.integers(-128, 128, 96).astype(np.int8)
        def setup(machine):
            machine.write_block(0x100, a.tobytes())
            machine.write_block(0x1100, a.tobytes())
        result = self._cross_validate(
            DOT_PRODUCT_I8, {1: 0x100, 2: 0x1100, 3: 96}, setup)
        # One stall per element: the mac consumes the second lb's value.
        assert result.load_use_stalls == 96

    def test_vector_add(self):
        rng = np.random.default_rng(8)
        a = rng.integers(-128, 128, 64).astype(np.int8)
        def setup(machine):
            machine.write_block(0x100, a.tobytes())
            machine.write_block(0x1100, a.tobytes())
        result = self._cross_validate(
            VECTOR_ADD_I8,
            {1: 0x100, 2: 0x1100, 3: 0x2100, 4: 16}, setup)
        assert result.load_use_stalls == 16

    def test_matmul(self):
        n = 8
        rng = np.random.default_rng(9)
        a = rng.integers(-128, 128, (n, n)).astype(np.int8)
        base_a, base_b = 0x100, 0x100 + n * n + 64
        def setup(machine):
            machine.write_block(base_a, a.tobytes())
            machine.write_block(base_b, a.tobytes())
        result = self._cross_validate(
            MATMUL_I8,
            {1: base_a, 2: base_b, 3: 0x100 + 2 * (n * n + 64), 4: n},
            setup)
        # The inner hwloop stalls once per k-iteration: n^3 in total.
        assert result.load_use_stalls == n ** 3

    def test_interpreter_counts_only_real_hazards(self):
        machine = Machine()
        machine.registers[1] = 0x100
        result = machine.run(assemble("""
            lw  r4, 0(r1)
            addi r6, r0, 1      ; does not consume r4
            add r5, r4, r6      ; consumes r4 one cycle later: no stall
            halt
        """))
        assert result.load_use_stalls == 0
        result = machine.run(assemble("""
            lw  r4, 0(r1)
            add r5, r4, r4
            halt
        """))
        assert result.load_use_stalls == 1

    def test_stalls_by_block_partition(self):
        cfg = build_cfg(DOT_PRODUCT_I8)
        per_block = stalls_by_block(cfg)
        assert sum(per_block.values()) == len(stall_sites(cfg))
