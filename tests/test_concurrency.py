"""SPMD concurrency analysis, cross-validated against the lockstep cluster.

The contract under test (ISSUE acceptance criteria):

* the static pass never misses a race the dynamic happens-before
  checker observes (zero false negatives) — on the builtin parallel
  programs, a known-racy fixture, and a seeded fuzz corpus;
* static bank-conflict estimates rank hotspots in the same order as
  simulated per-bank contention on the matmul and conv kernels.
"""

import random

import numpy as np
import pytest

from repro.analysis import analyze_spmd, build_cfg, features
from repro.analysis.concurrency import INF, barrier_phases
from repro.analysis.ranges import (
    ValueRange,
    add,
    analyze_ranges,
    const,
    intersect,
    join,
    make,
    may_overlap,
    mul_const,
)
from repro.errors import SimulationError
from repro.isa.validate import Severity
from repro.machine import SharedMemoryCluster, assemble
from repro.machine.parallel import (
    CONV_COLUMNS,
    PARALLEL_PROGRAMS,
    expected_output,
    parallel_program,
    read_output,
    run_parallel_builtin,
)
from repro.pulp.hbcheck import check_lockstep_trace


def _codes(findings):
    return {f.code for f in findings}


def _static_pairs(report):
    return {tuple(sorted((a.pc, b.pc))) for a, b in report.races}


def _dynamic_pairs(checker):
    return {tuple(sorted(pair)) for pair in checker.race_pc_pairs()}


# ---------------------------------------------------------------------------
# Value ranges
# ---------------------------------------------------------------------------


class TestValueRange:
    def test_singleton_arithmetic(self):
        assert add(const(3), const(4)) == const(7)
        assert mul_const(const(5), 3) == const(15)

    def test_strided_progression(self):
        lane = make(0x100, 0x1F0, 16)
        assert lane.count() == 16
        shifted = add(lane, const(4))
        assert (shifted.lo, shifted.hi, shifted.stride) == (0x104, 0x1F4, 16)

    def test_join_keeps_congruence(self):
        merged = join(make(0, 8, 4), make(16, 24, 4))
        assert merged.stride == 4 and (merged.lo, merged.hi) == (0, 24)

    def test_intersect_disjoint_is_none(self):
        assert intersect(make(0, 8, 4), make(9, 11, 1)) is None

    def test_overlap_interval_disjoint(self):
        assert not may_overlap(make(0x100, 0x13C, 4), 4,
                               make(0x200, 0x23C, 4), 4)

    def test_overlap_congruence_disjoint(self):
        # Two word-strided lanes offset by one word never touch the
        # same bytes even though their intervals interleave.
        a = make(0x100, 0x1F8, 8)
        b = make(0x104, 0x1FC, 8)
        assert not may_overlap(a, 4, b, 4)
        # Byte-width accesses on the same lanes stay disjoint too ...
        assert not may_overlap(a, 1, b, 1)
        # ... but word-wide accesses from a byte-offset lane collide.
        assert may_overlap(a, 4, add(a, const(2)), 4)

    def test_top_overlaps_everything(self):
        assert may_overlap(ValueRange(-(1 << 31), (1 << 31) - 1, 1), 1,
                           const(0x44), 1)


class TestRangeAnalysis:
    def test_hwloop_pointer_walk(self):
        program = assemble("""
            addi r2, r0, 16
            hwloop r2, end
            lw r4, 0(r1)
            addi r1, r1, 4
        end:
            halt
        """)
        cfg = build_cfg(program)
        ranges = analyze_ranges(cfg, entry={1: 0x100})
        span = ranges.address_range(2)
        assert (span.lo, span.hi, span.stride) == (0x100, 0x13C, 4)

    def test_per_core_presets_shift_the_window(self):
        program = assemble("""
            addi r2, r0, 8
            hwloop r2, end
            sw r4, 0(r1)
            addi r1, r1, 4
        end:
            halt
        """)
        cfg = build_cfg(program)
        windows = []
        for core in range(4):
            ranges = analyze_ranges(cfg, entry={1: 0x100 + 32 * core})
            windows.append(ranges.address_range(2))
        for a, b in zip(windows, windows[1:]):
            assert b.lo - a.lo == 32
            assert not may_overlap(a, 4, b, 4)


class TestBarrierPhases:
    def test_barrier_splits_phases(self):
        program = assemble("""
            sw r4, 0(r1)
            barrier
            sw r4, 4(r1)
            halt
        """)
        cfg = build_cfg(program)
        phases = barrier_phases(cfg, analyze_ranges(cfg, entry={}))
        assert phases.phase_at(0) == (0, 0)
        assert phases.phase_at(2) == (1, 1)
        assert phases.exit_phase == (1, 1)

    def test_barrier_in_constant_hwloop(self):
        program = assemble("""
            addi r2, r0, 5
            hwloop r2, end
            sw r4, 0(r1)
            barrier
        end:
            halt
        """)
        cfg = build_cfg(program)
        phases = barrier_phases(cfg, analyze_ranges(cfg, entry={}))
        assert phases.exit_phase == (5, 5)


# ---------------------------------------------------------------------------
# The static rules
# ---------------------------------------------------------------------------

RACY = """
    lw r2, 0(r1)
    sw r2, 0(r3)
    halt
"""

DISJOINT = """
    addi r2, r0, 8
    hwloop r2, end
    lw r4, 0(r1)
    sw r4, 0(r3)
    addi r1, r1, 4
    addi r3, r3, 4
end:
    barrier
    halt
"""


def _presets(cores, regs):
    """regs: register -> (base, per_core_step)."""
    return [{reg: base + core * step
             for reg, (base, step) in regs.items()}
            for core in range(cores)]


class TestStaticRules:
    def test_or011_same_address_store(self):
        report = analyze_spmd(assemble(RACY), cores=2,
                              presets=_presets(2, {1: (0x100, 0),
                                                     3: (0x200, 0)}))
        assert "OR011" in _codes(report.findings)
        assert not report.ok

    def test_disjoint_chunks_clean(self):
        report = analyze_spmd(
            assemble(DISJOINT), cores=4,
            presets=_presets(4, {1: (0x100, 32), 3: (0x300, 32)}))
        errors = [f for f in report.findings
                  if f.severity is Severity.ERROR]
        assert errors == []
        assert not report.races

    def test_or012_divergent_barrier(self):
        program = assemble("""
            beq r5, r0, skip
            barrier
        skip:
            halt
        """)
        report = analyze_spmd(program, cores=2,
                              presets=_presets(2, {5: (0, 1)}))
        assert "OR012" in _codes(report.findings)

    def test_or013_missing_barrier_before_dma(self):
        program = assemble("""
            sw r4, 0(r1)
            halt
        """)
        report = analyze_spmd(program, cores=2,
                              presets=_presets(2, {1: (0x100, 4)}),
                              dma_out=(0x100, 0x110))
        assert "OR013" in _codes(report.findings)
        # Adding the barrier clears it.
        fixed = analyze_spmd(assemble("sw r4, 0(r1)\nbarrier\nhalt"),
                             cores=2,
                             presets=_presets(2, {1: (0x100, 4)}),
                             dma_out=(0x100, 0x110))
        assert "OR013" not in _codes(fixed.findings)

    def test_or014_skewed_banks(self):
        # All cores hammer bank 0 (64-byte row stride, 8 banks).
        program = assemble("""
            addi r2, r0, 8
            hwloop r2, end
            lw r4, 0(r1)
            addi r1, r1, 64
        end:
            barrier
            halt
        """)
        report = analyze_spmd(program, cores=4,
                              presets=_presets(4, {1: (0x100, 0)}))
        hotspots = [f for f in report.findings if f.code == "OR014"]
        assert hotspots and "bank 0" in hotspots[0].location
        assert report.bank_conflict_estimate[0] > 0
        assert sum(report.bank_conflict_estimate[1:]) == 0


# ---------------------------------------------------------------------------
# Lockstep barrier semantics (the dynamic twin)
# ---------------------------------------------------------------------------


class TestLockstepBarriers:
    def test_all_cores_cross_and_epoch_bumps(self):
        program = assemble("sw r4, 0(r1)\nbarrier\nlw r5, 0(r1)\nhalt")
        cluster = SharedMemoryCluster(cores=4)
        result = cluster.run([program] * 4,
                             register_presets=_presets(4, {1: (0x100, 4)}),
                             record_trace=True)
        assert result.barriers == 1
        epochs = {access.epoch for access in result.trace}
        assert epochs == {0, 1}

    def test_divergence_raises(self):
        program = assemble("""
            beq r5, r0, skip
            barrier
        skip:
            halt
        """)
        cluster = SharedMemoryCluster(cores=2)
        with pytest.raises(SimulationError):
            cluster.run([program] * 2,
                        register_presets=_presets(2, {5: (0, 1)}))


# ---------------------------------------------------------------------------
# Builtin parallel programs: static-clean, correct, dynamically race-free
# ---------------------------------------------------------------------------


class TestBuiltinParallel:
    @pytest.fixture(params=sorted(PARALLEL_PROGRAMS))
    def name(self, request):
        return request.param

    def test_static_gate_is_clean(self, name):
        parallel = parallel_program(name)
        report = analyze_spmd(list(parallel.instructions), cores=4,
                              presets=parallel.presets(4),
                              dma_out=parallel.dma_out)
        assert report.ok
        assert not report.races

    def test_runs_correctly_with_one_barrier(self, name):
        cluster, result = run_parallel_builtin(name)
        got, want = read_output(name, cluster), expected_output(name)
        if name == "conv_cols_i32":
            # The canonical 4-core launch covers 4 of the 16 columns.
            cols = list(CONV_COLUMNS)
            got, want = got[cols], want[cols]
        np.testing.assert_array_equal(got, want)
        assert result.barriers == 1

    def test_dynamically_race_free(self, name):
        _, result = run_parallel_builtin(name, record_trace=True)
        checker = check_lockstep_trace(result.trace, cores=4)
        assert checker.race_free, checker.races


# ---------------------------------------------------------------------------
# Cross-validation: dynamic races are a subset of static races
# ---------------------------------------------------------------------------


class TestCrossValidation:
    def test_racy_fixture_flagged_by_both(self):
        program = assemble(RACY)
        presets = _presets(2, {1: (0x100, 0), 3: (0x200, 0)})
        static = analyze_spmd(program, cores=2, presets=presets)
        cluster = SharedMemoryCluster(cores=2)
        result = cluster.run([program] * 2, register_presets=presets,
                             record_trace=True)
        dynamic = check_lockstep_trace(result.trace, cores=2)
        assert not dynamic.race_free
        assert _dynamic_pairs(dynamic) <= _static_pairs(static)

    def test_fuzz_corpus_zero_false_negatives(self):
        rng = random.Random(20160314)
        cases = 220
        racy = clean = 0
        for case in range(cases):
            source, presets, cores = _fuzz_program(rng)
            program = assemble(source)
            static = analyze_spmd(program, cores=cores, presets=presets)
            cluster = SharedMemoryCluster(cores=cores)
            result = cluster.run([program] * cores,
                                 register_presets=presets,
                                 record_trace=True)
            dynamic = check_lockstep_trace(result.trace, cores=cores)
            observed = _dynamic_pairs(dynamic)
            predicted = _static_pairs(static)
            assert observed <= predicted, (
                f"case {case}: dynamic race(s) {observed - predicted} "
                f"missed by the static pass\n{source}\npresets={presets}")
            if observed:
                racy += 1
            if not predicted:
                clean += 1
        # The corpus must exercise both sides of the contract.
        assert racy >= 20, f"only {racy} racy cases of {cases}"
        assert clean >= 20, f"only {clean} statically-clean cases of {cases}"

    @pytest.mark.parametrize("name", ["matmul_rows_sync_i8",
                                      "conv_cols_i32"])
    def test_or014_ranking_matches_simulation(self, name):
        parallel = parallel_program(name)
        static = analyze_spmd(list(parallel.instructions), cores=4,
                              presets=parallel.presets(4),
                              dma_out=parallel.dma_out)
        _, result = run_parallel_builtin(name)
        estimate = static.bank_conflict_estimate
        simulated = result.conflicts_by_bank
        assert len(estimate) == len(simulated) == 8
        hot = {b for b, cycles in enumerate(estimate) if cycles > 0}
        cold = set(range(8)) - hot
        assert hot, "static model predicts no contention at all"
        mean = lambda banks: (sum(simulated[b] for b in banks)
                              / max(1, len(banks)))
        if cold:
            # Predicted-hot banks see at least as much simulated
            # contention as predicted-cold banks (rank concordance).
            assert mean(hot) >= mean(cold), (estimate, simulated)
            assert max(simulated[b] for b in hot) >= \
                max((simulated[b] for b in cold), default=0)

    def test_conv_hot_banks_are_exactly_the_contended_ones(self):
        parallel = parallel_program("conv_cols_i32")
        static = analyze_spmd(list(parallel.instructions), cores=4,
                              presets=parallel.presets(4),
                              dma_out=parallel.dma_out)
        _, result = run_parallel_builtin("conv_cols_i32")
        hot = {b for b, cycles in enumerate(static.bank_conflict_estimate)
               if cycles > 0}
        contended = {b for b, waits in enumerate(result.conflicts_by_bank)
                     if waits > 0}
        assert hot == contended == {0, 1}


def _fuzz_program(rng):
    """One seeded SPMD case: a strided load/store loop, optionally a
    barrier, optionally a post-barrier store.  Strides are chosen so
    some cases partition cleanly and some collide."""
    cores = rng.choice([2, 3, 4])
    trips = rng.randint(1, 6)
    step = rng.choice([1, 2, 4])
    load, store = rng.choice([("lw", "sw"), ("lh", "sh"), ("lb", "sb")])
    span = trips * step
    stride_a = rng.choice([0, span, 4, 64])
    stride_b = rng.choice([0, span, span, 4, 64])
    read_shared = rng.random() < 0.3
    barrier = rng.random() < 0.4
    tail_store = rng.random() < 0.3
    lines = [f"    addi r2, r0, {trips}",
             "    hwloop r2, loop_end"]
    if read_shared:
        lines.append(f"    {load} r6, 0(r3)")
    lines += [f"    {load} r4, 0(r1)",
              f"    {store} r4, 0(r3)",
              f"    addi r1, r1, {step}",
              f"    addi r3, r3, {step}",
              "loop_end:"]
    if barrier:
        lines.append("    barrier")
    if tail_store:
        lines.append(f"    {store} r4, 0(r3)")
    lines.append("    halt")
    presets = _presets(cores, {1: (0x100, stride_a),
                                 3: (0x300, stride_b)})
    return "\n".join(lines), presets, cores


# ---------------------------------------------------------------------------
# Feature export
# ---------------------------------------------------------------------------


class TestFeatures:
    def test_schema_is_stable_across_programs(self):
        keys = None
        for name in sorted(PARALLEL_PROGRAMS):
            parallel = parallel_program(name)
            out = features(parallel.unit, name=name,
                           entry_regs=parallel.entry_regs, cores=4,
                           presets=parallel.presets(4),
                           dma_out=parallel.dma_out)
            assert all(isinstance(v, (int, float)) for v in out.values())
            if keys is None:
                keys = set(out)
            assert set(out) == keys

    def test_concurrency_features_populated(self):
        parallel = parallel_program("vector_add_sync_i8")
        out = features(parallel.unit, name=parallel.name,
                       entry_regs=parallel.entry_regs, cores=4,
                       presets=parallel.presets(4),
                       dma_out=parallel.dma_out)
        assert out["concurrency.cores"] == 4
        assert out["concurrency.races"] == 0
        assert out["concurrency.barrier_phase_min"] == 1
        assert out["concurrency.barrier_phase_max"] == 1
        assert out["concurrency.bank_load_total"] > 0
        assert out["lint.ok"] == 1

    def test_race_shows_up_in_features(self):
        out = features(RACY, cores=2,
                       presets=_presets(2, {1: (0x100, 0),
                                              3: (0x200, 0)}))
        assert out["concurrency.races"] >= 1
        assert out["lint.count.OR011"] >= 1
        assert out["lint.ok"] == 0

    def test_phase_interval_bounded_by_inf(self):
        # A barrier in a data-dependent loop has an unbounded phase.
        out = features(
            """
                lw r2, 0(r1)
            loop:
                barrier
                addi r2, r2, -1
                bne r2, r0, loop
                halt
            """,
            cores=2, presets=_presets(2, {1: (0x100, 0)}))
        assert out["concurrency.barrier_phase_max"] == INF
