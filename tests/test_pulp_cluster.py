"""Tests for the cycle-level cluster: cores, DMA, synchronizer, assembly."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.pulp.cluster import Cluster
from repro.pulp.core import ComputeOp, MemOp, Or10nCore
from repro.pulp.dma import DmaController
from repro.pulp.l2 import L2Memory
from repro.pulp.synchronizer import HardwareSynchronizer
from repro.pulp.tcdm import Tcdm
from repro.sim.engine import Simulator, Timeout


class TestOr10nCore:
    def _run_single(self, stream):
        sim = Simulator()
        tcdm = Tcdm(sim)
        core = Or10nCore(sim, tcdm, 0)
        sim.add_process(core.run(stream))
        sim.run_all()
        return sim.now, core.stats

    def test_compute_only(self):
        wall, stats = self._run_single([ComputeOp(10.0), ComputeOp(5.0)])
        assert wall == 15.0
        assert stats.compute_cycles == 15.0
        assert stats.accesses == 0

    def test_memory_access_costs_one_cycle(self):
        wall, stats = self._run_single([MemOp(0), MemOp(4)])
        assert wall == 2.0
        assert stats.memory_cycles == 2.0
        assert stats.accesses == 2

    def test_mixed_stream(self):
        wall, stats = self._run_single(
            [ComputeOp(3.0), MemOp(0), ComputeOp(2.0), MemOp(8)])
        assert wall == 7.0
        assert stats.active_cycles == 7.0

    def test_negative_burst_rejected(self):
        with pytest.raises(SimulationError):
            ComputeOp(-1.0)

    def test_bad_op_rejected(self):
        sim = Simulator()
        core = Or10nCore(sim, Tcdm(sim), 0)
        sim.add_process(core.run(["junk"]))
        with pytest.raises(SimulationError):
            sim.run_all()


class TestHardwareSynchronizer:
    def test_barrier_waits_for_all(self):
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=3, wakeup_cycles=2.0)
        release_times = []

        def worker(delay):
            yield Timeout(delay)
            yield from sync.barrier()
            release_times.append(sim.now)

        for delay in (1.0, 5.0, 10.0):
            sim.add_process(worker(delay))
        sim.run_all()
        # Everyone leaves at the last arrival (10.0) plus the wakeup.
        assert release_times == [12.0, 12.0, 12.0]
        assert sync.barriers_completed == 1

    def test_barrier_reusable(self):
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=2)

        def worker(delay):
            yield Timeout(delay)
            yield from sync.barrier()
            yield Timeout(delay)
            yield from sync.barrier()

        sim.add_process(worker(1.0))
        sim.add_process(worker(3.0))
        sim.run_all()
        assert sync.barriers_completed == 2

    def test_average_sleep(self):
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=2)

        def worker(delay):
            yield Timeout(delay)
            yield from sync.barrier()

        sim.add_process(worker(0.0))
        sim.add_process(worker(10.0))
        sim.run_all()
        assert sync.average_sleep == pytest.approx(5.0)

    def test_invalid_participants(self):
        with pytest.raises(SimulationError):
            HardwareSynchronizer(Simulator(), participants=0)


class TestDmaController:
    def _setup(self):
        sim = Simulator()
        l2 = L2Memory()
        tcdm = Tcdm(sim)
        return sim, l2, tcdm, DmaController(sim, l2, tcdm)

    def test_functional_copy_to_tcdm(self):
        sim, l2, tcdm, dma = self._setup()
        l2.write(0x40, bytes(range(16)))
        sim.add_process(dma.transfer(0x40, 0x80, 16, to_tcdm=True))
        sim.run_all()
        assert tcdm.read(0x80, 16) == bytes(range(16))

    def test_functional_copy_to_l2(self):
        sim, l2, tcdm, dma = self._setup()
        tcdm.write(0, b"\x11" * 8)
        sim.add_process(dma.transfer(0x200, 0, 8, to_tcdm=False))
        sim.run_all()
        assert l2.read(0x200, 8) == b"\x11" * 8

    def test_timing_setup_plus_word_per_cycle(self):
        sim, l2, tcdm, dma = self._setup()
        sim.add_process(dma.transfer(0, 0, 64))
        sim.run_all()
        # 8 setup + 16 words at (grant + 1 cycle hold) each.
        assert sim.now == pytest.approx(dma.setup_cycles + 16)
        assert dma.stats.transfers == 1
        assert dma.stats.bytes_moved == 64

    def test_ideal_cycles(self):
        _, _, _, dma = self._setup()
        assert dma.ideal_cycles(64) == dma.setup_cycles + 16
        assert dma.ideal_cycles(1) == dma.setup_cycles + 1

    def test_partial_word_tail(self):
        sim, l2, tcdm, dma = self._setup()
        l2.write(0, b"abcde")
        sim.add_process(dma.transfer(0, 0, 5))
        sim.run_all()
        assert tcdm.read(0, 5) == b"abcde"

    def test_negative_length_rejected(self):
        sim, _, _, dma = self._setup()
        sim.add_process(dma.transfer(0, 0, -1))
        with pytest.raises(SimulationError):
            sim.run_all()

    def test_channel_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            DmaController(sim, L2Memory(), Tcdm(sim), channels=0)


class TestCluster:
    def test_single_core(self):
        run = Cluster().run([[ComputeOp(100.0)]])
        assert run.wall_cycles >= 100.0
        assert run.core_stats[0].compute_cycles == 100.0

    def test_wall_is_slowest_core(self):
        streams = [[ComputeOp(float(100 * (i + 1)))] for i in range(4)]
        run = Cluster().run(streams)
        # Slowest core (400) + barrier wakeup.
        assert run.wall_cycles == pytest.approx(402.0)
        assert run.barrier_count == 1

    def test_same_bank_serializes(self):
        streams = [[MemOp(0) for _ in range(10)] for _ in range(2)]
        run = Cluster().run(streams)
        assert run.wall_cycles >= 20.0

    def test_different_banks_parallel(self):
        streams = [[MemOp(4 * c) for _ in range(10)] for c in range(4)]
        run = Cluster().run(streams)
        # Each core owns one bank: no serialization beyond the barrier.
        assert run.wall_cycles == pytest.approx(12.0)

    def test_activity_ratio(self):
        run = Cluster().run([[ComputeOp(100.0)], [ComputeOp(50.0)]])
        assert run.activity_ratio(0) > run.activity_ratio(1)

    def test_memory_intensity(self):
        streams = [[MemOp(4 * i) for i in range(50)]]
        run = Cluster().run(streams)
        assert 0.5 < run.memory_intensity() <= 1.0

    def test_dma_job_runs_concurrently(self):
        cluster = Cluster()
        cluster.l2.write(0, bytes(64))
        run = cluster.run([[ComputeOp(1000.0)]],
                          dma_jobs=[(0, 0x1000, 64, True)])
        assert run.dma_stats.transfers == 1
        assert run.wall_cycles == pytest.approx(1002.0)

    def test_stream_count_validated(self):
        with pytest.raises(ConfigurationError):
            Cluster().run([])
        with pytest.raises(ConfigurationError):
            Cluster().run([[]] * 5)

    def test_busiest_core(self):
        run = Cluster().run([[ComputeOp(10.0)], [ComputeOp(70.0)]])
        assert run.busiest_core_cycles >= 70.0
