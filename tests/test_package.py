"""Package-level tests: exception hierarchy, public exports, metadata."""

import inspect

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name, obj in inspect.getmembers(errors, inspect.isclass):
            if issubclass(obj, Exception) and obj.__module__ == "repro.errors":
                assert issubclass(obj, errors.ReproError), name

    def test_catching_base_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.ProtocolError("x")
        with pytest.raises(errors.ReproError):
            raise errors.KernelError("x")

    def test_subsystem_relationships(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.OperatingPointError, errors.PowerModelError)
        assert issubclass(errors.BudgetError, errors.PowerModelError)
        assert issubclass(errors.ProtocolError, errors.LinkError)
        assert issubclass(errors.LoweringError, errors.IsaError)
        assert issubclass(errors.OffloadError, errors.RuntimeModelError)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_facade_importable_from_top_level(self):
        from repro import (
            HeterogeneousSystem,
            MatmulKernel,
            PulpPowerModel,
            Stm32L476,
            mhz,
        )
        assert HeterogeneousSystem is not None
        assert mhz(1) == 1e6

    def test_kernel_count_stable(self):
        assert len(repro.all_kernels()) == 10

    def test_subpackage_docstrings(self):
        import repro.core
        import repro.isa
        import repro.kernels
        import repro.link
        import repro.machine
        import repro.mcu
        import repro.power
        import repro.pulp
        import repro.runtime
        import repro.sim
        for module in (repro.core, repro.isa, repro.kernels, repro.link,
                       repro.machine, repro.mcu, repro.power, repro.pulp,
                       repro.runtime, repro.sim):
            assert module.__doc__ and len(module.__doc__) > 40, module
