"""Tests for the SVM kernels (linear / poly / RBF)."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.fixmath import Q15_ONE
from repro.kernels.svm import SvmKernel


class TestFunctional:
    @pytest.mark.parametrize("variant", ["linear", "poly", "RBF"])
    def test_decisions_match_float_reference(self, variant):
        kernel = SvmKernel(variant)
        inputs = kernel.generate_inputs(0)
        fixed = kernel.compute(inputs)
        ref = kernel.reference(inputs)
        assert np.allclose(fixed["decisions"] / 65536.0, ref["decisions"],
                           atol=0.01)

    @pytest.mark.parametrize("variant", ["linear", "poly", "RBF"])
    def test_labels_agree_with_reference(self, variant):
        kernel = SvmKernel(variant)
        inputs = kernel.generate_inputs(7)
        fixed = kernel.compute(inputs)
        ref = kernel.reference(inputs)
        agreement = (fixed["labels"] == ref["labels"]).mean()
        assert agreement >= 0.9

    def test_output_shapes(self):
        kernel = SvmKernel("linear", test_vectors=10, classes=4)
        outputs = kernel.compute(kernel.generate_inputs(0))
        assert outputs["decisions"].shape == (10, 4)
        assert outputs["labels"].shape == (10,)

    def test_rbf_kernel_values_bounded(self):
        kernel = SvmKernel("RBF")
        inputs = kernel.generate_inputs(0)
        values = kernel._kernel_matrix_q15(inputs["sv"], inputs["x"])
        assert np.all(values >= 0)
        assert np.all(values <= Q15_ONE)

    def test_rbf_self_similarity_maximal(self):
        kernel = SvmKernel("RBF", dimensions=8, support_vectors=3,
                           test_vectors=3)
        inputs = kernel.generate_inputs(0)
        inputs["x"] = inputs["sv"][:3].copy()
        values = kernel._kernel_matrix_q15(inputs["sv"], inputs["x"])
        # K(x, x) = exp(0) = 1 must dominate the row.
        for row in range(3):
            assert values[row].argmax() == row
            assert values[row, row] == pytest.approx(Q15_ONE, abs=256)

    def test_linear_kernel_scales_with_alignment(self):
        kernel = SvmKernel("linear", dimensions=16, support_vectors=2,
                           test_vectors=1)
        inputs = kernel.generate_inputs(0)
        inputs["sv"][0] = 10000
        inputs["sv"][1] = -10000
        inputs["x"][0] = 10000
        values = kernel._kernel_matrix_q15(inputs["sv"], inputs["x"])
        assert values[0, 0] > 0 > values[0, 1]

    def test_serialization_roundtrip(self):
        kernel = SvmKernel("poly")
        result = kernel.run(seed=1)
        decisions_bytes = kernel.test_vectors * kernel.classes * 4
        decisions = np.frombuffer(
            result.output_payload[:decisions_bytes], dtype=np.int32)
        assert np.array_equal(
            decisions.reshape(kernel.test_vectors, kernel.classes),
            result.outputs["decisions"])

    def test_invalid_kernel_name(self):
        with pytest.raises(KernelError):
            SvmKernel("sigmoid")

    def test_invalid_dimensions(self):
        with pytest.raises(KernelError):
            SvmKernel("linear", dimensions=0)


class TestProgram:
    def test_table1_sizes(self):
        program = SvmKernel("linear").build_program()
        assert program.input_bytes == pytest.approx(6.9 * 1024, rel=0.05)
        assert program.output_bytes == pytest.approx(1.6 * 1024, rel=0.05)

    def test_risc_ops_ordering(self, baseline_target):
        linear = baseline_target.risc_ops(SvmKernel("linear").build_program())
        poly = baseline_target.risc_ops(SvmKernel("poly").build_program())
        rbf = baseline_target.risc_ops(SvmKernel("RBF").build_program())
        # Table I: 650k < 684k < 781k.
        assert linear < poly < rbf
        assert linear == pytest.approx(650e3, rel=0.08)
        assert poly == pytest.approx(684e3, rel=0.08)
        assert rbf == pytest.approx(781e3, rel=0.08)

    def test_fixed_point_blocks_vectorization(self, or10n_target):
        program = SvmKernel("linear").build_program()
        for loop in program.loops():
            assert or10n_target.vector_plan(loop) is None

    def test_parallel_over_test_vectors(self):
        program = SvmKernel("RBF").build_program()
        parallel = program.parallel_loops()
        assert len(parallel) == 1
        assert parallel[0].trips == 24

    def test_model_shipped_as_const(self):
        kernel = SvmKernel("linear")
        program = kernel.build_program()
        assert program.const_bytes == kernel.model_bytes()
        assert program.const_bytes > 6000  # SVs dominate

    def test_rbf_ships_exp_table(self):
        assert SvmKernel("RBF").model_bytes() > SvmKernel("linear").model_bytes()
