"""Tests for repro.faults: plans, the injector, the resilient runtime
and the campaign layer."""

import json

import pytest

from repro import errors
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    DegradedExecutionError,
    FaultInjectionError,
)
from repro.faults import (
    CampaignRunner,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilientDriver,
    RetryPolicy,
    Scenario,
    await_end_of_computation,
    build_campaign,
)
from repro.kernels import MatmulKernel
from repro.link.protocol import Command, Frame, decode_frames, encode_frame
from repro.obs import Telemetry, use_telemetry


class TestFaultPlan:
    def test_clean_plan_is_empty(self):
        plan = FaultPlan.clean()
        assert plan.specs == ()
        assert plan.describe() == "clean"

    def test_plan_round_trips_through_json(self):
        plan = FaultPlan.combined(
            "mix",
            FaultPlan.bit_errors(1e-5),
            FaultPlan.kernel_hang(2),
            FaultPlan.brownout(0.75))
        payload = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(payload) == plan

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.combined("dup", FaultPlan.kernel_hang(1),
                               FaultPlan.kernel_hang(2))

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.BIT_ERRORS, rate=0.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.DROP_FRAME)  # needs rate or count
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.KERNEL_HANG, count=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.BROWNOUT, droop=1.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(FaultKind.DROP_FRAME, rate=1.5)

    def test_describe_names_every_spec(self):
        plan = FaultPlan.combined("mix", FaultPlan.drop_frames(count=3),
                                  FaultPlan.bit_errors(1e-4))
        text = plan.describe()
        assert "drop-frame(count=3)" in text
        assert "bit-errors(rate=0.0001)" in text


class TestFaultInjector:
    def test_same_seed_same_events(self):
        plan = FaultPlan.combined("mix", FaultPlan.drop_frames(rate=0.4),
                                  FaultPlan.boot_failure(2))
        def trail(seed):
            injector = FaultInjector(plan, seed=seed)
            out = []
            for _ in range(32):
                out.append(injector.mangle_transmission(b"abcdef"))
                out.append(injector.boot_fails())
            return out, injector.events
        assert trail(11) == trail(11)
        assert trail(11) != trail(12)

    def test_count_budget_consumed_first(self):
        injector = FaultInjector(FaultPlan.kernel_hang(2), seed=1)
        assert injector.kernel_hangs()
        assert injector.kernel_hangs()
        assert not injector.kernel_hangs()
        assert injector.events == ["kernel-hang", "kernel-hang"]

    def test_dropped_transmission_reaches_receiver_as_nothing(self):
        injector = FaultInjector(FaultPlan.drop_frames(count=1), seed=1)
        channel = injector.channel()
        encoded = encode_frame(Frame(Command.START, 0))
        assert channel.transmit(encoded) == b""
        assert channel.transmit(encoded) == encoded  # budget spent

    def test_truncation_keeps_a_prefix(self):
        injector = FaultInjector(FaultPlan.truncate_frames(count=1), seed=1)
        encoded = encode_frame(Frame(Command.WRITE_DATA, 0, b"x" * 32))
        mangled = injector.mangle_transmission(encoded)
        assert 0 < len(mangled) < len(encoded)
        assert encoded.startswith(mangled)
        with pytest.raises(errors.ProtocolError):
            decode_frames(mangled)

    def test_duplicate_decodes_to_two_frames(self):
        injector = FaultInjector(FaultPlan.duplicate_frames(count=1), seed=1)
        encoded = encode_frame(Frame(Command.START, 0))
        mangled = injector.mangle_transmission(encoded)
        assert len(decode_frames(mangled)) == 2

    def test_corrupt_status_never_names_a_valid_state(self):
        injector = FaultInjector(FaultPlan.corrupt_status(count=1), seed=1)
        reply = injector.corrupt_status(b"\x02")
        assert reply != b"\x02"
        assert reply[0] >= 0x80  # outside any SocState index

    def test_brownout_droop(self):
        injector = FaultInjector(FaultPlan.brownout(0.8), seed=1)
        assert injector.brownout_droop() == pytest.approx(0.8)
        assert FaultInjector(FaultPlan.clean(), 1).brownout_droop() == 1.0

    def test_events_counted_on_telemetry(self):
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            injector = FaultInjector(FaultPlan.boot_failure(1), seed=1)
            injector.boot_fails()
        assert hub.counters["faults.injected"].value == 1
        assert hub.counters["faults.injected.boot-failure"].value == 1


class TestWatchdogDes:
    def test_clean_wait_returns_compute_time(self):
        elapsed = await_end_of_computation(1.5e-3, hang=False)
        assert elapsed == pytest.approx(1.5e-3)

    def test_hang_surfaces_as_clean_deadlock_error(self):
        # The injected hang drives the DES deadlock-detection path: the
        # event queue drains while the host still waits on EOC.
        with pytest.raises(DeadlockError) as info:
            await_end_of_computation(1.5e-3, hang=True)
        assert "host-eoc-wait" in str(info.value)

    def test_resilient_driver_converts_hang_to_watchdog_recovery(self):
        driver = ResilientDriver(FaultPlan.kernel_hang(1), seed=5)
        result = driver.offload(MatmulKernel("char"))
        assert result.verified and not result.degraded
        assert "watchdog" in result.recovery_actions
        assert result.fault_attempts == 1
        # The watchdog period was charged to the bill.
        policy = driver.policy
        assert result.wasted_time_s >= policy.watchdog_floor_s


class TestResilientDriver:
    def test_clean_offload_matches_plain_cost(self):
        result = ResilientDriver(FaultPlan.clean(), seed=1).offload(
            MatmulKernel("char"))
        assert result.verified
        assert not result.degraded
        assert result.recovery_actions == ()
        assert result.fault_attempts == 0
        assert result.wasted_energy_j == 0.0

    @pytest.mark.parametrize("plan", [
        FaultPlan.bit_errors(2e-5),
        FaultPlan.drop_frames(count=2),
        FaultPlan.truncate_frames(count=2),
        FaultPlan.duplicate_frames(count=2),
        FaultPlan.corrupt_status(count=1),
        FaultPlan.boot_failure(count=1),
        FaultPlan.brownout(droop=0.8),
    ], ids=lambda plan: plan.name)
    def test_single_fault_recovers_without_fallback(self, plan):
        result = ResilientDriver(plan, seed=7).offload(MatmulKernel("char"))
        assert result.verified
        assert not result.degraded

    def test_recovery_is_never_free(self):
        clean = ResilientDriver(FaultPlan.clean(), seed=7).offload(
            MatmulKernel("char"))
        faulty = ResilientDriver(FaultPlan.boot_failure(1), seed=7).offload(
            MatmulKernel("char"))
        assert faulty.timing.total_time > clean.timing.total_time
        assert faulty.timing.energy.total_energy \
            > clean.timing.energy.total_energy
        assert any(phase.label == "recovery"
                   for phase in faulty.timing.energy.phases)

    def test_brownout_slows_compute(self):
        clean = ResilientDriver(FaultPlan.clean(), seed=7).offload(
            MatmulKernel("char"))
        drooped = ResilientDriver(FaultPlan.brownout(0.8), seed=7).offload(
            MatmulKernel("char"))
        assert drooped.timing.compute_time > clean.timing.compute_time
        assert drooped.envelope.pulp_frequency \
            < clean.envelope.pulp_frequency

    def test_ladder_exhaustion_falls_back_to_host(self):
        driver = ResilientDriver(FaultPlan.kernel_hang(3), seed=3)
        result = driver.offload(MatmulKernel("char"))
        assert result.degraded
        assert result.verified  # computed on the host
        assert result.fallback_reason == "kernel-hang"
        assert result.recovery_actions[-1] == "host-fallback"
        assert "re-arm" in result.recovery_actions
        assert "reboot" in result.recovery_actions
        # Host-model latency/energy plus the wasted attempts on the bill.
        host = result.host_baseline
        assert result.timing.compute_time == pytest.approx(host.time)
        assert result.timing.total_time \
            == pytest.approx(host.time + result.wasted_time_s)
        assert result.wasted_energy_j > 0
        assert result.timing.energy.total_energy == pytest.approx(
            host.energy + result.wasted_energy_j)
        assert result.effective_speedup < 1.0  # degraded is honest

    def test_fallback_disabled_raises_degraded_error(self):
        driver = ResilientDriver(FaultPlan.kernel_hang(3), seed=3,
                                 fallback_enabled=False)
        with pytest.raises(DegradedExecutionError):
            driver.offload(MatmulKernel("char"))

    def test_status_corruption_exhaustion_is_fault_injection_error(self):
        # Enough corrupted STATUS replies to outlast every poll of every
        # ladder rung: the ladder exhausts and falls back.
        plan = FaultPlan.corrupt_status(rate=0.0, count=64)
        result = ResilientDriver(plan, seed=2).offload(MatmulKernel("char"))
        assert result.degraded
        assert result.fallback_reason == "corrupt-status"

    def test_reboot_reloads_the_binary(self):
        driver = ResilientDriver(FaultPlan.kernel_hang(2), seed=4)
        result = driver.offload(MatmulKernel("char"))
        assert not result.degraded
        assert "reboot" in result.recovery_actions
        assert driver.soc.loaded is not None  # reloaded after power cycle

    def test_frame_timeout_raises_timeout_error(self):
        policy = RetryPolicy(op_timeout_s=1e-9)
        driver = ResilientDriver(FaultPlan.clean(), seed=1, policy=policy)
        with pytest.raises(DegradedExecutionError):
            # Every delivery blows the (absurd) budget; with fallback off
            # the ladder exhausts into DegradedExecutionError.
            ResilientDriver(FaultPlan.clean(), seed=1, policy=policy,
                            fallback_enabled=False).offload(
                                MatmulKernel("char"))
        result = driver.offload(MatmulKernel("char"))
        assert result.degraded  # with fallback on, it lands on the host

    def test_deterministic_per_seed(self):
        def run(seed):
            result = ResilientDriver(
                FaultPlan.combined("mix", FaultPlan.kernel_hang(1),
                                   FaultPlan.bit_errors(2e-5)),
                seed=seed).offload(MatmulKernel("char"))
            return (result.recovery_actions, result.fault_attempts,
                    result.wasted_time_s, result.timing.total_time)
        assert run(9) == run(9)


class TestCampaign:
    def test_build_campaign_cycles_plans(self):
        scenarios = build_campaign(13, seed=100)
        assert len(scenarios) == 13
        assert scenarios[0].plan.name == "clean"
        assert scenarios[11].plan.name == scenarios[0].plan.name
        assert [s.seed for s in scenarios] == list(range(100, 113))

    def test_build_campaign_rejects_zero(self):
        with pytest.raises(errors.ReproError):
            build_campaign(0)

    def test_full_taxonomy_campaign_survives(self):
        # The acceptance scenario: one pass over the full taxonomy ends
        # with every scenario recovered or on the host — zero unhandled
        # exceptions, zero 'failed' outcomes.
        result = CampaignRunner().run(build_campaign(11, seed=1))
        assert len(result.outcomes) == 11
        assert result.availability == 1.0
        assert not result.failed
        assert result.count("failed") == 0
        for entry in result.outcomes:
            assert entry.outcome in ("clean", "recovered", "host-fallback")

    def test_same_seed_reproduces_identical_matrix(self):
        first = CampaignRunner().run(build_campaign(11, seed=1))
        second = CampaignRunner().run(build_campaign(11, seed=1))
        dump = lambda r: json.dumps(r.to_json_dict(), sort_keys=True)
        assert dump(first) == dump(second)

    def test_different_seed_changes_details(self):
        first = CampaignRunner().run(build_campaign(4, seed=1))
        second = CampaignRunner().run(build_campaign(4, seed=77))
        assert [e.total_time_s for e in first.outcomes] \
            != [e.total_time_s for e in second.outcomes]

    def test_fallback_scenarios_priced_on_host_model(self):
        result = CampaignRunner().run(
            [Scenario(FaultPlan.kernel_hang(3), seed=3)])
        entry, = result.outcomes
        assert entry.outcome == "host-fallback"
        assert entry.wasted_energy_j > 0
        assert entry.energy_j > entry.wasted_energy_j  # host compute too

    def test_no_fallback_campaign_counts_failed(self):
        runner = CampaignRunner(fallback_enabled=False)
        result = runner.run([Scenario(FaultPlan.kernel_hang(3), seed=3)])
        assert result.failed
        assert result.availability == 0.0
        assert result.outcomes[0].error

    def test_metrics_and_render(self):
        result = CampaignRunner().run(build_campaign(3, seed=1))
        assert 0.0 <= result.fallback_rate <= 1.0
        assert result.retry_energy_overhead >= 0.0
        text = result.render()
        assert "availability" in text
        assert "clean" in text

    def test_campaign_emits_spans_and_counters(self):
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            CampaignRunner().run(build_campaign(2, seed=1))
        lanes = {span.lane for span in hub.spans}
        assert "campaign" in lanes
        assert any(name.startswith("faults.outcome.")
                   for name in hub.counters)
        assert "faults.availability" in hub.counters


class TestErrorTypes:
    def test_new_errors_subclass_repro_error(self):
        assert issubclass(errors.TimeoutError, errors.ReproError)
        assert issubclass(FaultInjectionError, errors.ReproError)
        assert issubclass(DegradedExecutionError, errors.ReproError)

    def test_timeout_error_shadows_builtin_deliberately(self):
        assert errors.TimeoutError is not TimeoutError
