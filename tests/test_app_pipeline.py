"""Tests for the application pipeline layer, the energy breakdown, and
the calibration sensitivity analysis."""

import pytest

from repro.errors import ConfigurationError, PowerModelError
from repro.app import Pipeline, Placement, Stage
from repro.app.pipeline import render_pipeline
from repro.core.offload import OffloadTiming
from repro.core.system import HeterogeneousSystem
from repro.kernels import CnnKernel, MatmulKernel, SvmKernel
from repro.power.breakdown import (
    EnergyBreakdown,
    breakdown_offload,
    render_breakdown,
)
from repro.power.energy import EnergyAccount
from repro.units import mhz


class TestPipeline:
    @pytest.fixture(scope="class")
    def report(self):
        pipeline = Pipeline([Stage(CnnKernel()),
                             Stage(SvmKernel("linear"))])
        return pipeline.analyze(mhz(8))

    def test_stage_count(self, report):
        assert len(report.stages) == 2

    def test_auto_placement_offloads_compute_heavy(self, report):
        placements = {s.name: s.placement for s in report.stages}
        assert placements["cnn"] is Placement.ACCELERATOR

    def test_period_is_sum_of_stages(self, report):
        assert report.period == pytest.approx(
            sum(s.time_per_item for s in report.stages))
        assert report.throughput == pytest.approx(1 / report.period)

    def test_bottleneck_identified(self, report):
        assert report.bottleneck.time_per_item == max(
            s.time_per_item for s in report.stages)

    def test_energy_accumulates(self, report):
        assert report.energy_per_item == pytest.approx(
            sum(s.energy_per_item for s in report.stages))

    def test_forced_host_placement(self):
        pipeline = Pipeline([Stage(CnnKernel(), Placement.HOST)])
        report = pipeline.analyze(mhz(8))
        assert report.stages[0].placement is Placement.HOST
        assert report.stages[0].speedup_vs_host == 1.0

    def test_forced_accelerator_placement(self):
        pipeline = Pipeline([Stage(MatmulKernel("char"),
                                   Placement.ACCELERATOR)])
        report = pipeline.analyze(mhz(8))
        assert report.stages[0].placement is Placement.ACCELERATOR
        assert report.stages[0].speedup_vs_host > 5

    def test_auto_falls_back_to_host_when_no_budget(self):
        # At 32 MHz the envelope leaves nothing for the accelerator;
        # AUTO must quietly keep the stage on the host.
        pipeline = Pipeline([Stage(MatmulKernel("char"))])
        report = pipeline.analyze(mhz(32))
        assert report.stages[0].placement is Placement.HOST

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigurationError):
            Pipeline([])

    def test_render(self, report):
        text = render_pipeline(report)
        assert "bottleneck" in text
        assert "items/s" in text

    def test_shared_system_binary_caching(self):
        system = HeterogeneousSystem()
        pipeline = Pipeline([Stage(CnnKernel(), Placement.ACCELERATOR)],
                            system=system)
        pipeline.analyze(mhz(8))
        second = pipeline.analyze(mhz(8))
        # Binary already resident on the second analysis.
        assert second.stages[0].time_per_item > 0


class TestEnergyBreakdown:
    def _timing(self):
        system = HeterogeneousSystem()
        result = system.offload(MatmulKernel("char"), host_frequency=mhz(8),
                                iterations=8, double_buffered=True)
        return result.timing

    def test_parts_sum_to_total(self):
        timing = self._timing()
        breakdown = breakdown_offload(timing)
        assert breakdown.total == pytest.approx(
            timing.energy.total_energy)

    def test_fractions_sum_to_one(self):
        breakdown = breakdown_offload(self._timing())
        total = sum(breakdown.fraction(p) for p in
                    ("transfer", "compute", "boot", "sync", "idle_waits"))
        assert total == pytest.approx(1.0)

    def test_transfer_heavy_kernel_dominated_by_transfer(self):
        breakdown = breakdown_offload(self._timing())
        assert breakdown.transfer > breakdown.sync

    def test_unknown_label_rejected(self):
        account = EnergyAccount()
        account.add("mystery", 1.0, 1.0)
        timing = OffloadTiming(
            iterations=1, double_buffered=False, binary_time=0,
            boot_time=0, input_time=0, output_time=0, compute_time=1,
            sync_time=0, total_time=1, ideal_time=1, energy=account)
        with pytest.raises(PowerModelError):
            breakdown_offload(timing)

    def test_render(self):
        text = render_breakdown(breakdown_offload(self._timing()))
        assert "compute" in text and "uJ" in text

    def test_empty_breakdown(self):
        empty = EnergyBreakdown(0, 0, 0, 0)
        assert empty.total == 0
        assert empty.fraction("compute") == 0.0


class TestSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.sensitivity import run
        return run(factors=(0.8, 1.0, 1.25))

    def test_grid_complete(self, rows):
        assert len(rows) == 9  # 3 knobs x 3 factors

    def test_nominal_matches_paper_anchor(self, rows):
        nominal = [r for r in rows if r.factor == 1.0]
        for row in nominal:
            assert row.peak_efficiency == pytest.approx(304, rel=0.08)
            assert row.arch_speedup == pytest.approx(2.38, abs=0.05)

    def test_density_scaling_inverts_efficiency(self, rows):
        density = {r.factor: r for r in rows if r.knob == "dynamic densities"}
        assert density[0.8].peak_efficiency > density[1.25].peak_efficiency
        # Densities do not touch the timing model.
        assert density[0.8].arch_speedup == density[1.25].arch_speedup

    def test_simd_overhead_moves_arch_speedup(self, rows):
        simd = {r.factor: r for r in rows if r.knob == "simd overhead"}
        assert simd[0.8].arch_speedup > simd[1.25].arch_speedup

    def test_leakage_second_order(self, rows):
        leakage = {r.factor: r for r in rows if r.knob == "leakage"}
        density = {r.factor: r for r in rows
                   if r.knob == "dynamic densities"}
        leak_spread = abs(leakage[0.8].efficiency_shift()
                          - leakage[1.25].efficiency_shift())
        density_spread = abs(density[0.8].efficiency_shift()
                             - density[1.25].efficiency_shift())
        assert leak_spread < density_spread

    def test_render(self, rows):
        from repro.experiments.sensitivity import render
        text = render(rows)
        assert "GOPS/W" in text and "simd overhead" in text
