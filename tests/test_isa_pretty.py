"""Tests for the program pretty-printer."""


from repro.isa.or10n import Or10nTarget
from repro.isa.pretty import format_loop_header, format_op, render_program
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import DType, OpKind, VOp, alu, load, mac
from repro.kernels.matmul import MatmulKernel


class TestFormatOp:
    def test_simple(self):
        assert format_op(load(DType.I8)) == "load.i8"

    def test_count(self):
        assert format_op(mac(DType.I16, 3.0)) == "mac.i16 x3"

    def test_flags(self):
        op = VOp(OpKind.LOAD, DType.I32, vector=False, unaligned=True)
        assert "[scalar,unaligned]" in format_op(op)


class TestLoopHeader:
    def test_basic(self):
        loop = Loop(16, [Block([load()])], name="rows")
        assert format_loop_header(loop) == "for rows (x16)"

    def test_attributes(self):
        loop = Loop(8, [Block([mac(DType.I8)])], vectorizable=True,
                    simd_dtype=DType.I8, parallelizable=True, name="j")
        header = format_loop_header(loop)
        assert "parallel" in header
        assert "vectorizable(i8)" in header

    def test_target_simd_annotation(self):
        loop = Loop(8, [Block([mac(DType.I8)])], vectorizable=True,
                    simd_dtype=DType.I8)
        header = format_loop_header(loop, Or10nTarget())
        assert "simd: 4 lanes" in header

    def test_blocked_simd_annotation(self):
        loop = Loop(8, [Block([alu(OpKind.SHIFT, DType.I8)])],
                    vectorizable=True, simd_dtype=DType.I8)
        header = format_loop_header(loop, Or10nTarget())
        assert "simd: blocked" in header


class TestRenderProgram:
    def test_structure(self, simple_program):
        text = render_program(simple_program)
        assert "program 'simple'" in text
        assert text.count("for ") == 2
        assert "{" in text

    def test_with_target_costs(self, simple_program):
        text = render_program(simple_program, Or10nTarget())
        assert "cycles on or10n" in text

    def test_real_kernel_renders(self):
        text = render_program(MatmulKernel("char").build_program(),
                              Or10nTarget())
        assert "for i" in text and "for j" in text and "for k" in text

    def test_block_truncation(self):
        big = Block([alu(OpKind.ADD) for _ in range(20)])
        text = render_program(Program("p", [big]), max_ops_per_block=4)
        assert "+16 more" in text
