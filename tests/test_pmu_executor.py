"""Tests for the PMU and the cycle-level kernel executor."""

import pytest

from repro.errors import PowerModelError, SimulationError
from repro.isa.or10n import Or10nTarget
from repro.kernels.matmul import MatmulKernel
from repro.kernels.svm import SvmKernel
from repro.power.activity import PulpComponent
from repro.power.pmu import PerformanceMonitor, PmuCounters
from repro.power.pulp_model import PulpPowerModel
from repro.pulp.cluster import Cluster
from repro.pulp.core import ComputeOp, MemOp
from repro.pulp.executor import CycleLevelExecutor
from repro.units import mhz


class TestPmu:
    def _run(self):
        streams = [[ComputeOp(50.0)] + [MemOp(4 * i) for i in range(50)]
                   for _ in range(4)]
        return Cluster().run(streams)

    def test_counters_from_run(self):
        run = self._run()
        counters = PerformanceMonitor.counters_from_run(run)
        assert counters.wall_cycles == run.wall_cycles
        assert counters.tcdm_access_cycles == 200
        assert all(v > 0 for v in counters.core_active_cycles.values())

    def test_profile_core_activity(self):
        profile = PerformanceMonitor.profile_from_run(self._run())
        chi = profile.chi(PulpComponent.CORE0)
        assert 0.9 < chi.run <= 1.0
        assert chi.idle + chi.run + chi.dma == pytest.approx(1.0)

    def test_profile_partial_team(self):
        run = Cluster().run([[ComputeOp(100.0)], [ComputeOp(10.0)]])
        profile = PerformanceMonitor.profile_from_run(run)
        assert profile.chi(PulpComponent.CORE0).run > \
            profile.chi(PulpComponent.CORE1).run
        # Cores 2/3 never existed in this run: fully idle.
        assert profile.chi(PulpComponent.CORE3).idle == 1.0

    def test_profile_feeds_power_model(self):
        profile = PerformanceMonitor.profile_from_run(self._run())
        power = PulpPowerModel().total_power(mhz(46), 0.5, profile)
        assert 0.5e-3 < power < 3e-3

    def test_dma_traffic_classified(self):
        cluster = Cluster()
        cluster.l2.write(0, bytes(4096))
        run = cluster.run([[ComputeOp(1200.0)]],
                          dma_jobs=[(0, 0, 4096, True)])
        profile = PerformanceMonitor.profile_from_run(run)
        assert profile.chi(PulpComponent.DMA).dma > 0.5
        assert profile.chi(PulpComponent.TCDM).dma > 0.5

    def test_invalid_counters(self):
        with pytest.raises(PowerModelError):
            PmuCounters(wall_cycles=0, core_active_cycles={},
                        tcdm_access_cycles=0, dma_busy_cycles=0)


class TestCycleLevelExecutor:
    def test_matches_analytic_on_matmul(self):
        executor = CycleLevelExecutor(Or10nTarget(), threads=4)
        result = executor.execute(MatmulKernel("char", n=16).build_program())
        assert result.deviation < 0.05

    def test_matches_analytic_on_svm(self):
        kernel = SvmKernel("linear", dimensions=32, support_vectors=8,
                           test_vectors=8, classes=4)
        executor = CycleLevelExecutor(Or10nTarget(), threads=4)
        result = executor.execute(kernel.build_program())
        assert result.deviation < 0.05

    def test_single_thread(self):
        executor = CycleLevelExecutor(Or10nTarget(), threads=1)
        result = executor.execute(MatmulKernel("char", n=8).build_program())
        assert result.deviation < 0.05
        assert len(result.runs) == 1

    def test_parallel_faster_than_serial(self):
        program = MatmulKernel("char", n=16).build_program()
        one = CycleLevelExecutor(Or10nTarget(), 1).execute(program)
        four = CycleLevelExecutor(Or10nTarget(), 4).execute(program)
        assert four.wall_cycles < one.wall_cycles / 2.5

    def test_strided_pattern_supported(self):
        executor = CycleLevelExecutor(Or10nTarget(), threads=4,
                                      access_pattern="strided")
        result = executor.execute(MatmulKernel("char", n=8).build_program())
        assert result.wall_cycles > 0

    def test_invalid_threads(self):
        with pytest.raises(SimulationError):
            CycleLevelExecutor(Or10nTarget(), threads=5)

    def test_runs_cover_regions(self):
        kernel = SvmKernel("linear", dimensions=16, support_vectors=4,
                           test_vectors=4, classes=2)
        program = kernel.build_program()
        result = CycleLevelExecutor(Or10nTarget(), 4).execute(program)
        assert len(result.runs) == len(program.body)
