"""Tests for the IR validator and the cycle-breakdown experiment."""

import pytest

from repro.errors import IsaError
from repro.experiments.cycle_breakdown import CATEGORIES, render, run
from repro.isa.program import Block, Loop, Program
from repro.isa.validate import Severity, validate_program
from repro.isa.vop import DType, OpKind, addr, alu, load, store
from repro.kernels.registry import all_kernels


class TestValidator:
    def test_all_registered_kernels_clean(self):
        for kernel in all_kernels():
            findings = validate_program(kernel.build_program())
            errors = [f for f in findings if f.severity is Severity.ERROR]
            assert not errors, (kernel.name, [str(f) for f in errors])

    def test_empty_program_is_error(self):
        findings = validate_program(Program("empty", []))
        assert any(f.severity is Severity.ERROR for f in findings)

    def test_no_parallel_loop_warns(self):
        program = Program("serial", [Loop(4, [Block([load()])])],
                          input_bytes=16)
        findings = validate_program(program)
        assert any("parallel" in f.message for f in findings)

    def test_nested_parallel_is_error(self):
        inner = Loop(4, [Block([load()])], parallelizable=True)
        outer = Loop(4, [inner], parallelizable=True)
        findings = validate_program(Program("nested", [outer]))
        assert any(f.severity is Severity.ERROR and "nested" in f.message
                   for f in findings)

    def test_strict_raises_on_error(self):
        with pytest.raises(IsaError):
            validate_program(Program("empty", []), strict=True)

    def test_strict_tolerates_warnings(self):
        program = Program("serial", [Loop(4, [Block([load(),
                                                     store()])])])
        validate_program(program, strict=True)  # no exception

    def test_vectorizable_without_vector_ops(self):
        loop = Loop(8, [Block([addr()])], vectorizable=True,
                    simd_dtype=DType.I8, parallelizable=True)
        findings = validate_program(Program("v", [loop]))
        assert any("no vector-marked ops" in f.message for f in findings)

    def test_vectorizable_all_wide_warns(self):
        loop = Loop(8, [Block([alu(OpKind.ADD, DType.I32)])],
                    vectorizable=True, simd_dtype=DType.I8,
                    parallelizable=True)
        findings = validate_program(Program("v", [loop]))
        assert any("32-bit" in f.message for f in findings)

    def test_io_without_memory_ops_warns(self):
        loop = Loop(8, [Block([alu(OpKind.ADD)])], parallelizable=True)
        findings = validate_program(
            Program("p", [loop], input_bytes=64, output_bytes=64))
        messages = " ".join(f.message for f in findings)
        assert "no loads" in messages
        assert "no stores" in messages

    def test_zero_trip_warns(self):
        loop = Loop(0, [Block([load()])], parallelizable=True)
        findings = validate_program(Program("z", [loop]))
        assert any("zero-trip" in f.message for f in findings)

    def test_finding_str(self):
        findings = validate_program(Program("empty", []))
        assert "[error]" in str(findings[0])


class TestCycleBreakdown:
    @pytest.fixture(scope="class")
    def rows(self):
        return run()

    def test_grid_complete(self, rows):
        assert len(rows) == 10 * 3

    def test_shares_sum_to_one(self, rows):
        for row in rows:
            total = sum(row.shares.values())
            assert total == pytest.approx(1.0, abs=1e-6), row

    def test_hog_wide_ops_dominate_or10n_not_m4(self, rows):
        by_key = {(r.kernel, r.target): r for r in rows}
        hog_or10n = by_key[("hog", "or10n")]
        hog_m4 = by_key[("hog", "cortex-m4")]
        assert hog_or10n.share("wide64") > 0.35
        assert hog_or10n.share("wide64") > hog_m4.share("wide64")

    def test_hw_loops_remove_loop_share(self, rows):
        by_key = {(r.kernel, r.target): r for r in rows}
        assert by_key[("matmul", "or10n")].share("loop") < \
            by_key[("matmul", "cortex-m4")].share("loop")

    def test_matmul_dominated_by_memory_and_mac(self, rows):
        by_key = {(r.kernel, r.target): r for r in rows}
        row = by_key[("matmul", "or10n")]
        assert row.share("memory") + row.share("mul/mac") > 0.5

    def test_render(self, rows):
        text = render(rows, target="or10n")
        assert "hog" in text
        for category in CATEGORIES:
            assert category in text
