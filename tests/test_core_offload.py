"""Tests for the offload cost model and the power-envelope solver."""

import pytest

from repro.errors import BudgetError, OffloadError
from repro.core.envelope import (
    DEFAULT_BUDGET,
    FIGURE5A_HOST_FREQUENCIES,
    PowerEnvelopeSolver,
)
from repro.core.offload import OffloadCostModel
from repro.power.activity import ActivityProfile
from repro.units import mhz, mw


@pytest.fixture
def cost_model():
    return OffloadCostModel()


@pytest.fixture
def activity():
    return ActivityProfile.matmul()


def _timing(cost_model, activity, **overrides):
    defaults = dict(
        binary_bytes=12000, input_bytes=8192, output_bytes=4096,
        compute_cycles=250e3, pulp_frequency=mhz(150), pulp_voltage=0.65,
        activity=activity, host_frequency=mhz(8), iterations=1,
    )
    defaults.update(overrides)
    return cost_model.offload_timing(**defaults)


class TestTransferCost:
    def test_zero_payload_free(self, cost_model):
        cost = cost_model.transfer_cost(0, mhz(8), 1e-3)
        assert cost.time == 0 and cost.energy == 0

    def test_time_scales_inverse_with_host_clock(self, cost_model):
        slow = cost_model.transfer_cost(4096, mhz(4), 1e-3)
        fast = cost_model.transfer_cost(4096, mhz(16), 1e-3)
        assert slow.time == pytest.approx(4 * fast.time, rel=0.05)

    def test_energy_includes_all_parties(self, cost_model):
        cost = cost_model.transfer_cost(4096, mhz(8), 1e-3)
        # At least the PULP idle burn over the duration.
        assert cost.energy > cost.time * 1e-3


class TestOffloadTiming:
    def test_efficiency_grows_with_iterations(self, cost_model, activity):
        efficiencies = [
            _timing(cost_model, activity, iterations=n).efficiency
            for n in (1, 4, 16, 64)]
        assert efficiencies == sorted(efficiencies)

    def test_efficiency_bounded(self, cost_model, activity):
        timing = _timing(cost_model, activity, iterations=256)
        assert 0 < timing.efficiency < 1

    def test_double_buffering_helps_at_scale(self, cost_model, activity):
        serial = _timing(cost_model, activity, iterations=64)
        overlapped = _timing(cost_model, activity, iterations=64,
                             double_buffered=True)
        assert overlapped.total_time < serial.total_time
        assert overlapped.efficiency > serial.efficiency

    def test_double_buffer_period_is_max_of_pipelines(self, cost_model,
                                                      activity):
        timing = _timing(cost_model, activity, iterations=100,
                         double_buffered=True)
        transfer = timing.input_time + timing.output_time
        period = max(timing.compute_time + timing.sync_time, transfer)
        expected = timing.binary_time + timing.boot_time \
            + timing.input_time + 100 * period + timing.output_time
        assert timing.total_time == pytest.approx(expected)

    def test_serial_total_decomposition(self, cost_model, activity):
        timing = _timing(cost_model, activity, iterations=10)
        per_iteration = (timing.input_time + timing.compute_time
                         + timing.sync_time + timing.output_time)
        assert timing.total_time == pytest.approx(
            timing.binary_time + timing.boot_time + 10 * per_iteration)

    def test_boot_charged_only_with_binary(self, cost_model, activity):
        fresh = _timing(cost_model, activity)
        resident = _timing(cost_model, activity, include_binary=False)
        assert fresh.boot_time > 0
        assert resident.boot_time == 0
        assert "boot" in fresh.energy.energy_by_label()

    def test_binary_skippable_when_resident(self, cost_model, activity):
        with_binary = _timing(cost_model, activity)
        without = _timing(cost_model, activity, include_binary=False)
        assert without.binary_time == 0
        assert without.total_time < with_binary.total_time

    def test_energy_phases_present(self, cost_model, activity):
        timing = _timing(cost_model, activity, iterations=4)
        labels = set(timing.energy.energy_by_label())
        assert {"binary", "input", "output", "compute", "sync"} <= labels

    def test_average_power_below_budget_while_computing(self, cost_model,
                                                        activity):
        timing = _timing(cost_model, activity, iterations=64,
                         pulp_frequency=mhz(150), pulp_voltage=0.65)
        assert timing.average_power < mw(12)

    def test_invalid_iterations(self, cost_model, activity):
        with pytest.raises(OffloadError):
            _timing(cost_model, activity, iterations=0)

    def test_invalid_compute(self, cost_model, activity):
        with pytest.raises(OffloadError):
            _timing(cost_model, activity, compute_cycles=0)


class TestPowerEnvelopeSolver:
    def test_baseline_32mhz_leaves_no_room(self):
        solver = PowerEnvelopeSolver()
        point = solver.solve(mhz(32), ActivityProfile.matmul())
        assert not point.accelerator_usable

    def test_lower_host_clock_frees_accelerator_power(self):
        solver = PowerEnvelopeSolver()
        activity = ActivityProfile.matmul()
        frequencies = [solver.solve(f, activity).pulp_frequency
                       for f in (mhz(26), mhz(16), mhz(8), mhz(2))]
        assert frequencies == sorted(frequencies)
        assert frequencies[-1] > mhz(180)

    def test_total_power_within_budget(self):
        solver = PowerEnvelopeSolver()
        for f in (mhz(1), mhz(8), mhz(16), mhz(26)):
            point = solver.solve(f, ActivityProfile.matmul())
            assert point.total_power <= DEFAULT_BUDGET * (1 + 1e-6)

    def test_sweep_covers_paper_frequencies(self):
        solver = PowerEnvelopeSolver()
        points = solver.sweep(ActivityProfile.matmul())
        assert len(points) == len(FIGURE5A_HOST_FREQUENCIES)

    def test_host_only_power(self):
        solver = PowerEnvelopeSolver()
        assert solver.host_only_power(mhz(32)) == pytest.approx(mw(10),
                                                                rel=0.05)

    def test_custom_budget(self):
        generous = PowerEnvelopeSolver(budget=mw(50))
        point = generous.solve(mhz(32), ActivityProfile.matmul())
        assert point.accelerator_usable
        assert point.pulp_frequency > mhz(300)

    def test_invalid_budget(self):
        with pytest.raises(BudgetError):
            PowerEnvelopeSolver(budget=0)
