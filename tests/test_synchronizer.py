"""Edge cases of the hardware synchronizer.

Complements ``test_pulp_cluster.py``'s happy-path barrier tests with
the corners the concurrency work leans on: single-participant
barriers, back-to-back re-entry as in a barrier inside a hardware
loop, and :meth:`~repro.sim.engine.Process.interrupt` delivered while
a core sleeps at the barrier (the arrival must be withdrawn so later
generations still need the full complement of live participants).
"""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.pulp.synchronizer import HardwareSynchronizer
from repro.sim.engine import Simulator, Timeout


class TestSingleParticipant:
    def test_completes_immediately(self):
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=1, wakeup_cycles=2.0)
        release = []

        def worker():
            yield Timeout(3.0)
            yield from sync.barrier()
            release.append(sim.now)

        sim.add_process(worker())
        sim.run_all()
        assert release == [5.0]  # no sleeping, just the wakeup latency
        assert sync.barriers_completed == 1
        assert sync.sleep_cycles == [0.0]

    def test_observer_sees_each_generation(self):
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=1)
        seen = []
        sync.observers.append(seen.append)

        def worker():
            for _ in range(4):
                yield from sync.barrier()

        sim.add_process(worker())
        sim.run_all()
        assert seen == [1, 2, 3, 4]


class TestHwLoopReentry:
    def test_consecutive_iterations_each_synchronize(self):
        # A barrier in a hardware-loop body: every core re-enters the
        # barrier immediately after leaving it, trip after trip.  Each
        # iteration must form its own generation.
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=4, wakeup_cycles=2.0)
        trips = 5
        crossings = [0] * 4

        def worker(core):
            for _ in range(trips):
                yield Timeout(1.0 + core)  # skewed per-trip work
                yield from sync.barrier()
                crossings[core] += 1

        for core in range(4):
            sim.add_process(worker(core))
        sim.run_all()
        assert sync.barriers_completed == trips
        assert crossings == [trips] * 4
        # Each trip the slowest core (3) arrives last; everyone else sleeps.
        assert len(sync.sleep_cycles) == 4 * trips

    def test_generation_isolation(self):
        # A core racing ahead into the next generation must not release
        # the cores still sleeping in the previous one early.
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=2, wakeup_cycles=0.0)
        release = {"fast": [], "slow": []}

        def fast():
            for _ in range(2):
                yield from sync.barrier()
                release["fast"].append(sim.now)

        def slow():
            yield Timeout(4.0)
            yield from sync.barrier()
            release["slow"].append(sim.now)
            yield Timeout(4.0)
            yield from sync.barrier()
            release["slow"].append(sim.now)

        sim.add_process(fast())
        sim.add_process(slow())
        sim.run_all()
        assert release["fast"] == release["slow"] == [4.0, 8.0]


class TestInterruptEpochSafety:
    def test_interrupted_waiter_is_withdrawn(self):
        # Three participants; one arrives and is interrupted while
        # sleeping.  The two survivors alone must NOT complete the
        # barrier (the dead arrival was withdrawn) — a third fresh
        # arrival is required.
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=3)
        release = []

        def victim():
            yield from sync.barrier()
            release.append("victim")

        def survivor(delay):
            yield Timeout(delay)
            yield from sync.barrier()
            release.append(sim.now)

        doomed = sim.add_process(victim())
        sim.schedule(1.0, doomed.interrupt, "power-gated")
        sim.add_process(survivor(2.0))
        sim.add_process(survivor(3.0))
        sim.add_process(survivor(5.0))  # the replacement third arrival
        sim.run_all()
        assert doomed.interrupted and "victim" not in release
        assert sync.barriers_completed == 1
        assert release == [7.0, 7.0, 7.0]  # last arrival + wakeup

    def test_without_replacement_barrier_hangs(self):
        # Same scenario minus the replacement: the generation must stay
        # open, which run_all reports as a deadlock of the survivors.
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=3)

        def worker(delay):
            yield Timeout(delay)
            yield from sync.barrier()

        doomed = sim.add_process(worker(0.0))
        sim.schedule(1.0, doomed.interrupt)
        sim.add_process(worker(2.0))
        sim.add_process(worker(3.0))
        with pytest.raises(DeadlockError):
            sim.run_all()
        assert sync.barriers_completed == 0

    def test_interrupt_after_completion_is_not_withdrawn(self):
        # Interrupt delivered at the same instant the barrier completes:
        # the generation already triggered, so the count must not be
        # decremented into the next generation.
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=2, wakeup_cycles=5.0)

        def worker():
            yield from sync.barrier()

        first = sim.add_process(worker())
        sim.add_process(worker())
        # Both arrive at t=0; the generation triggers immediately.  The
        # interrupt lands during the wakeup timeout of a *completed*
        # generation and simply kills the process.
        sim.schedule(1.0, first.interrupt)
        sim.add_process(worker())
        sim.add_process(worker())
        sim.run_all()
        assert sync.barriers_completed == 2
        assert sync._arrived == 0

    def test_interrupted_core_can_rejoin_later(self):
        # A core interrupted out of one generation re-enters through a
        # fresh generator: epochs in Process drop the stale wakeup, and
        # the synchronizer counts the re-arrival exactly once.
        sim = Simulator()
        sync = HardwareSynchronizer(sim, participants=2)
        release = []

        def flaky():
            try:
                yield from sync.barrier()
            except SimulationError:
                yield Timeout(2.0)  # handle the fault, then retry
                yield from sync.barrier()
            release.append(("flaky", sim.now))

        def steady():
            yield Timeout(5.0)
            yield from sync.barrier()
            release.append(("steady", sim.now))

        fragile = sim.add_process(flaky())
        sim.schedule(1.0, fragile.interrupt, "spurious wake")
        sim.add_process(steady())
        sim.run_all()
        assert sync.barriers_completed == 1
        assert [t for _, t in release] == [7.0, 7.0]
