"""Tests for the Section-V extensions: sensor paths and dual tasking."""

import pytest

from repro.errors import BudgetError, ConfigurationError
from repro.core.dual_task import DualTaskModel, HostTask
from repro.core.sensor import (
    DEDICATED_SENSOR_PORT,
    SensorInterface,
    SensorPath,
    SensorPipeline,
)
from repro.kernels import CnnKernel, HogKernel, MatmulKernel
from repro.units import mhz


class TestSensorInterface:
    def test_acquisition_time(self):
        sensor = SensorInterface(bandwidth=1e6)
        assert sensor.acquisition_time(2000) == pytest.approx(2e-3)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SensorInterface(bandwidth=0)
        with pytest.raises(ConfigurationError):
            SensorInterface().acquisition_time(-1)

    def test_dedicated_port_costs_standing_power(self):
        assert DEDICATED_SENSOR_PORT.extra_idle_power > 0
        assert SensorInterface().extra_idle_power == 0


class TestSensorPipeline:
    @pytest.fixture(scope="class")
    def comparison(self):
        return SensorPipeline().compare(HogKernel(), host_frequency=mhz(4))

    def test_both_paths_evaluated(self, comparison):
        assert set(comparison) == {SensorPath.THROUGH_HOST, SensorPath.DIRECT}

    def test_direct_path_reduces_link_traffic(self, comparison):
        through = comparison[SensorPath.THROUGH_HOST]
        direct = comparison[SensorPath.DIRECT]
        assert direct.link_bytes_per_frame < through.link_bytes_per_frame
        # hog: only the 36 kB descriptor crosses in the direct case.
        assert direct.link_bytes_per_frame == 36864

    def test_direct_path_at_least_as_fast(self, comparison):
        through = comparison[SensorPath.THROUGH_HOST]
        direct = comparison[SensorPath.DIRECT]
        assert direct.frame_rate >= through.frame_rate

    def test_compute_bound_kernel_indifferent(self):
        # cnn moves 2 kB/frame: both paths are compute-bound and agree.
        comparison = SensorPipeline().compare(CnnKernel(),
                                              host_frequency=mhz(8))
        through = comparison[SensorPath.THROUGH_HOST]
        direct = comparison[SensorPath.DIRECT]
        assert direct.frame_time == pytest.approx(through.frame_time,
                                                  rel=0.05)

    def test_frame_rate_positive(self, comparison):
        for report in comparison.values():
            assert report.frame_rate > 1
            assert report.frame_energy > 0


class TestDualTask:
    def test_light_task_feasible_everywhere(self):
        model = DualTaskModel()
        task = HostTask("sampler", cycles_per_period=1000, period=0.01)
        points = model.evaluate(MatmulKernel("char"), task)
        assert all(p.feasible for p in points)

    def test_heavy_task_needs_fast_host(self):
        model = DualTaskModel()
        task = HostTask("control", cycles_per_period=40000, period=0.01)
        points = {p.host_frequency: p
                  for p in model.evaluate(CnnKernel(), task)}
        assert not points[mhz(2)].feasible    # 200% utilization
        assert points[mhz(8)].feasible

    def test_best_maximizes_speedup(self):
        model = DualTaskModel()
        task = HostTask("control", cycles_per_period=40000, period=0.01)
        best = model.best(CnnKernel(), task)
        assert best.feasible
        others = [p for p in model.evaluate(CnnKernel(), task) if p.feasible]
        assert best.accelerator_speedup == max(
            p.accelerator_speedup for p in others)

    def test_impossible_task_raises(self):
        model = DualTaskModel()
        task = HostTask("hog-on-host", cycles_per_period=1e9, period=0.01)
        with pytest.raises(BudgetError):
            model.best(MatmulKernel("char"), task)

    def test_utilization_math(self):
        task = HostTask("t", cycles_per_period=8000, period=1e-3)
        assert task.utilization(mhz(8)) == pytest.approx(1.0)
        assert task.utilization(mhz(16)) == pytest.approx(0.5)

    def test_invalid_task(self):
        with pytest.raises(ConfigurationError):
            HostTask("t", cycles_per_period=0, period=1.0)

    def test_power_stays_in_envelope(self):
        model = DualTaskModel()
        task = HostTask("sampler", cycles_per_period=100, period=0.01)
        for point in model.evaluate(MatmulKernel("char"), task):
            assert point.total_power <= 10e-3 * (1 + 1e-6)
