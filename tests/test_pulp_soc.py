"""Tests for the PULP SoC control plane, QSPI slave and FLL."""

import pytest

from repro.errors import (
    ConfigurationError,
    OperatingPointError,
    ProtocolError,
    SimulationError,
)
from repro.link.protocol import Command, Frame
from repro.pulp.binary import KernelBinary
from repro.pulp.fll import ClockDivider, FrequencyLockedLoop
from repro.pulp.soc import PulpSoc, SocState
from repro.power.pulp_model import PULP3_TABLE
from repro.units import mhz


def _loaded_soc():
    soc = PulpSoc()
    binary = KernelBinary("demo", code_bytes=256)
    soc.register_binary(binary, 0)
    soc.handle_frame(Frame(Command.LOAD_BINARY, 0, binary.to_bytes()))
    return soc, binary


class TestQspiSlave:
    def test_load_binary_lands_in_l2(self):
        soc, binary = _loaded_soc()
        assert soc.l2.read(0, binary.image_bytes) == binary.to_bytes()
        assert soc.state is SocState.LOADED

    def test_write_then_read_data(self):
        soc, _ = _loaded_soc()
        soc.handle_frame(Frame(Command.WRITE_DATA, 0x400, b"input!"))
        response = soc.handle_frame(Frame(Command.READ_DATA, 0x400))
        assert response == b"input!"

    def test_read_with_explicit_length(self):
        soc, _ = _loaded_soc()
        soc.handle_frame(Frame(Command.WRITE_DATA, 0x400, b"abcdef"))
        response = soc.handle_frame(
            Frame(Command.READ_DATA, 0x400, (4).to_bytes(4, "little")))
        assert response == b"abcd"

    def test_read_unknown_region_rejected(self):
        soc, _ = _loaded_soc()
        with pytest.raises(ProtocolError):
            soc.handle_frame(Frame(Command.READ_DATA, 0x999))

    def test_status_reports_state(self):
        soc, _ = _loaded_soc()
        status = soc.handle_frame(Frame(Command.STATUS, 0))
        assert status == bytes([list(SocState).index(SocState.LOADED)])

    def test_start_requires_loaded_binary(self):
        soc = PulpSoc()
        with pytest.raises(ProtocolError):
            soc.handle_frame(Frame(Command.START, 0))

    def test_full_control_sequence(self):
        soc, _ = _loaded_soc()
        soc.handle_frame(Frame(Command.START, 0))
        assert soc.state is SocState.RUNNING
        soc.trigger_fetch_enable(time=1.0)
        soc.computation_done(time=2.0)
        assert soc.state is SocState.DONE
        assert soc.fetch_enable.edge_count == 2
        assert soc.end_of_computation.edge_count == 2

    def test_write_while_running_rejected(self):
        soc, _ = _loaded_soc()
        soc.handle_frame(Frame(Command.START, 0))
        with pytest.raises(ProtocolError):
            soc.handle_frame(Frame(Command.WRITE_DATA, 0x100, b"x"))

    def test_fetch_enable_requires_running(self):
        soc, _ = _loaded_soc()
        with pytest.raises(SimulationError):
            soc.trigger_fetch_enable(time=0.0)

    def test_eoc_requires_running(self):
        soc, _ = _loaded_soc()
        with pytest.raises(SimulationError):
            soc.computation_done(time=0.0)

    def test_reset_keeps_binary_resident(self):
        soc, _ = _loaded_soc()
        soc.handle_frame(Frame(Command.START, 0))
        soc.trigger_fetch_enable(1.0)
        soc.computation_done(2.0)
        soc.reset()
        assert soc.state is SocState.LOADED
        soc.handle_frame(Frame(Command.START, 0))  # restart works

    def test_frames_handled_counter(self):
        soc, _ = _loaded_soc()
        assert soc.frames_handled == 1


class TestClockDivider:
    def test_divides(self):
        divider = ClockDivider("periph", 4)
        assert divider.output(mhz(100)) == mhz(25)

    def test_invalid_divisor(self):
        with pytest.raises(ConfigurationError):
            ClockDivider("x", 0)
        with pytest.raises(ConfigurationError):
            ClockDivider("x", 1.5)


class TestFrequencyLockedLoop:
    def test_set_frequency_close_from_below(self):
        fll = FrequencyLockedLoop(PULP3_TABLE)
        fll.set_frequency(mhz(100), voltage=0.8)
        assert fll.frequency <= mhz(100)
        assert fll.frequency == pytest.approx(mhz(100), rel=0.001)

    def test_lock_time_returned(self):
        fll = FrequencyLockedLoop(PULP3_TABLE)
        assert fll.set_frequency(mhz(50), 0.6) == fll.lock_time
        assert fll.hops == 1

    def test_over_fmax_rejected(self):
        fll = FrequencyLockedLoop(PULP3_TABLE)
        with pytest.raises(OperatingPointError):
            fll.set_frequency(mhz(400), voltage=0.5)

    def test_domain_dividers(self):
        fll = FrequencyLockedLoop(PULP3_TABLE)
        fll.set_frequency(mhz(100), voltage=0.8)
        assert fll.cluster_frequency == fll.frequency
        assert fll.peripheral_frequency == fll.frequency / 2

    def test_invalid_target(self):
        fll = FrequencyLockedLoop(PULP3_TABLE)
        with pytest.raises(ConfigurationError):
            fll.set_frequency(0, 0.5)
