"""Failure-injection tests: noisy link + retransmission protocol."""

import pytest

from repro.errors import LinkError
from repro.link.noise import NoisyChannel, RetransmittingSender
from repro.link.protocol import Command, Frame


class TestNoisyChannel:
    def test_clean_channel_passthrough(self):
        channel = NoisyChannel(0.0)
        data = bytes(range(64))
        assert channel.transmit(data) == data
        assert channel.bits_flipped == 0

    def test_noise_corrupts(self):
        channel = NoisyChannel(0.05, seed=3)
        data = bytes(64)
        corrupted = channel.transmit(data)
        assert corrupted != data
        assert channel.bits_flipped > 0

    def test_deterministic_per_seed(self):
        data = bytes(range(128))
        first = NoisyChannel(0.01, seed=7).transmit(data)
        second = NoisyChannel(0.01, seed=7).transmit(data)
        assert first == second

    def test_different_seeds_differ(self):
        data = bytes(128)
        assert NoisyChannel(0.02, seed=1).transmit(data) != \
            NoisyChannel(0.02, seed=2).transmit(data)

    def test_observed_rate_tracks_configured(self):
        channel = NoisyChannel(0.02, seed=5)
        channel.transmit(bytes(4096))
        assert channel.observed_error_rate == pytest.approx(0.02, rel=0.3)

    def test_invalid_rate(self):
        with pytest.raises(LinkError):
            NoisyChannel(1.0)
        with pytest.raises(LinkError):
            NoisyChannel(-0.1)


class TestRetransmittingSender:
    def _frame(self, size=256):
        return Frame(Command.WRITE_DATA, 0x100, bytes(range(256)) * (size // 256))

    def test_clean_channel_single_attempt(self):
        sender = RetransmittingSender(NoisyChannel(0.0))
        received = sender.send(self._frame())
        assert received == self._frame()
        assert sender.total_attempts == 1
        assert sender.retransmission_overhead == 0.0

    def test_noisy_channel_retransmits(self):
        # BER 1e-3 on a ~270-byte frame corrupts most transmissions.
        sender = RetransmittingSender(NoisyChannel(1e-3, seed=11),
                                      max_attempts=64)
        received = sender.send(self._frame())
        assert received == self._frame()
        assert sender.total_attempts >= 1
        assert sender.log[0].wire_bytes >= self._frame().wire_size

    def test_checksum_never_accepts_corruption(self):
        # Deliver many frames over a noisy channel: every accepted frame
        # must be byte-identical to what was sent.
        sender = RetransmittingSender(NoisyChannel(5e-4, seed=23),
                                      max_attempts=128)
        for index in range(20):
            frame = Frame(Command.WRITE_DATA, index * 64,
                          bytes([index]) * 128)
            assert sender.send(frame) == frame

    def test_hopeless_channel_raises(self):
        sender = RetransmittingSender(NoisyChannel(0.2, seed=1),
                                      max_attempts=4)
        with pytest.raises(LinkError):
            sender.send(self._frame())

    def test_delivery_callback(self):
        delivered = []
        sender = RetransmittingSender(NoisyChannel(0.0),
                                      deliver=delivered.append)
        sender.send(self._frame())
        assert delivered == [self._frame()]

    def test_overhead_metric(self):
        sender = RetransmittingSender(NoisyChannel(2e-3, seed=9),
                                      max_attempts=256)
        for _ in range(10):
            sender.send(self._frame())
        assert sender.retransmission_overhead > 0.0

    def test_invalid_max_attempts(self):
        with pytest.raises(LinkError):
            RetransmittingSender(NoisyChannel(0.0), max_attempts=0)


class TestEndToEndNoisyOffload:
    def test_soc_receives_clean_payload_through_noise(self):
        """A full LOAD/WRITE/START sequence over a noisy wire."""
        from repro.pulp.binary import KernelBinary
        from repro.pulp.soc import PulpSoc, SocState

        soc = PulpSoc()
        binary = KernelBinary("noisy-demo", code_bytes=512)
        soc.register_binary(binary, 0)
        sender = RetransmittingSender(NoisyChannel(5e-4, seed=42),
                                      max_attempts=128,
                                      deliver=soc.handle_frame)
        sender.send(Frame(Command.LOAD_BINARY, 0, binary.to_bytes()))
        sender.send(Frame(Command.WRITE_DATA, 0x1000, b"sensor data"))
        sender.send(Frame(Command.START, 0))
        assert soc.state is SocState.RUNNING
        assert soc.l2.read(0x1000, 11) == b"sensor data"
        assert soc.l2.read(0, binary.image_bytes) == binary.to_bytes()
