"""Tests for repro.learn: datasets, models, regret, and the
predicted serving backend."""

import json

import pytest

from repro.analysis import FEATURES_VERSION, feature_schema, features, mix_features
from repro.cli import main
from repro.errors import ConfigurationError
from repro.learn import (
    CORPUS,
    Dataset,
    build_dataset,
    evaluate,
    load_dataset,
    load_model,
    loko_folds,
    model_from_dict,
    save_dataset,
    save_model,
    train_model,
)
from repro.learn.dataset import (
    config_label,
    corpus_features,
    dataset_feature_names,
    label_knobs,
)
from repro.learn.service import (
    BENCHMARK_TWINS,
    PredictedServiceBook,
    predictor_from_file,
)
from repro.machine.programs import BUILTIN_PROGRAMS
from repro.obs import Telemetry, use_telemetry
from repro.serve import (
    PoissonWorkload,
    Policy,
    Scheduler,
    SchedulerConfig,
    ServeConfig,
    ServeEngine,
    register_policy,
    register_service_book,
    registered_policies,
    service_book_by_name,
)


@pytest.fixture(scope="session")
def tiny_dataset():
    """The reduced-grid dataset, built once for the whole session."""
    return build_dataset(tiny=True)


# -- feature schema (the learning contract) --------------------------------------


class TestFeatureSchema:
    def test_version_stamp(self, tiny_dataset):
        # The version rides on datasets/models, not in the vector
        # itself (a constant column would be noise to every learner).
        assert FEATURES_VERSION == 2
        assert tiny_dataset.features_version == FEATURES_VERSION
        fitted = train_model(tiny_dataset, kind="dummy")
        assert fitted.features_version == FEATURES_VERSION

    def test_schema_is_sorted_and_stable(self):
        schema = feature_schema()
        assert list(schema) == sorted(schema)
        assert feature_schema(cores=1) == feature_schema()

    def test_builtin_keys_pinned_exactly(self):
        # The exact single-core key set: any drift must bump
        # FEATURES_VERSION and retrain shipped models.
        program = BUILTIN_PROGRAMS["memcpy_words"]
        out = features(program.unit, name="memcpy_words",
                       entry_regs=program.entry_regs)
        assert tuple(sorted(out)) == feature_schema(cores=1)

    def test_multicore_schema_adds_concurrency_keys(self):
        extra = set(feature_schema(cores=4)) - set(feature_schema(cores=1))
        assert extra
        assert all(key.startswith("concurrency.") for key in extra)

    def test_mix_separates_compute_from_io(self):
        def intensity(name):
            program = BUILTIN_PROGRAMS[name]
            return mix_features(program.unit)["mix.ops_per_mem"]

        for io_name in ("memcpy_words", "vector_add_i8", "dot_product_i8"):
            for compute_name in ("dwconv3_i8", "fir8_i32", "mag_hist_i32"):
                assert intensity(compute_name) > 2 * intensity(io_name)

    def test_mix_counts_on_fir(self):
        out = mix_features(BUILTIN_PROGRAMS["fir8_i32"].unit)
        assert out["mix.mac"] == 8
        assert out["mix.loads"] == 1
        assert out["mix.stores"] == 1
        assert out["mix.loop_depth_max"] == 1


# -- dataset ---------------------------------------------------------------------


class TestDataset:
    def test_labels_and_columns(self, tiny_dataset):
        assert tiny_dataset.feature_names == dataset_feature_names()
        assert "context.iterations" in tiny_dataset.feature_names
        for row in tiny_dataset.rows:
            assert row.label in row.candidates
            assert row.candidates[row.label]["feasible"]
            assert row.oracle["label"] == row.label
            assert set(row.features) == set(tiny_dataset.feature_names)

    def test_oracle_is_edp_min(self, tiny_dataset):
        for row in tiny_dataset.rows:
            best = min(entry["edp"] for entry in row.candidates.values()
                       if entry["feasible"])
            assert row.oracle["edp"] == pytest.approx(best)

    def test_deterministic_digest(self, tiny_dataset):
        again = build_dataset(tiny=True)
        assert again.digest == tiny_dataset.digest

    def test_roundtrip_and_tamper_detection(self, tiny_dataset, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        assert loaded.digest == tiny_dataset.digest
        doc = json.loads(path.read_text())
        doc["results"]["rows"][0]["label"] = "b32/c1/sbuf"
        path.write_text(json.dumps(doc))
        with pytest.raises(ConfigurationError, match="digest mismatch"):
            load_dataset(path)

    def test_label_knobs_roundtrip(self):
        label = config_label(12.0, 4, True)
        assert label == "b12/c4/dbuf"
        assert label_knobs(label) == {"budget_mw": 12.0, "cluster_size": 4,
                                      "double_buffered": True}
        with pytest.raises(ConfigurationError):
            label_knobs("nonsense")

    def test_unknown_program_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown corpus"):
            corpus_features("nonesuch", 1)


# -- models ----------------------------------------------------------------------


class TestModels:
    @pytest.mark.parametrize("kind", ["tree", "ridge", "dummy"])
    def test_json_roundtrip_preserves_predictions(self, tiny_dataset, kind):
        fitted = train_model(tiny_dataset, kind=kind)
        clone = model_from_dict(fitted.to_dict())
        for row in tiny_dataset.rows:
            assert clone.predict(row.features) == fitted.predict(row.features)
            assert clone.ranked(row.features) == fitted.ranked(row.features)

    def test_tree_fits_training_set_well(self, tiny_dataset):
        fitted = train_model(tiny_dataset, kind="tree")
        hits = sum(fitted.predict(row.features) == row.label
                   for row in tiny_dataset.rows)
        assert hits >= 0.9 * len(tiny_dataset.rows)

    def test_importances_name_real_features(self, tiny_dataset):
        fitted = train_model(tiny_dataset, kind="tree")
        importances = fitted.importances()
        assert importances
        assert set(importances) <= set(tiny_dataset.feature_names)
        assert sum(importances.values()) == pytest.approx(1.0)

    def test_save_load(self, tiny_dataset, tmp_path):
        fitted = train_model(tiny_dataset, kind="tree")
        path = tmp_path / "model.json"
        save_model(fitted, path)
        loaded = load_model(path)
        assert loaded.kind == "tree"
        assert loaded.dataset_digest == tiny_dataset.digest
        row = tiny_dataset.rows[0]
        assert loaded.predict(row.features) == fitted.predict(row.features)

    def test_unknown_kind_rejected(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            train_model(tiny_dataset, kind="forest")


# -- leave-one-kernel-out evaluation ---------------------------------------------


class TestEvaluation:
    def test_folds_partition_by_benchmark(self, tiny_dataset):
        folds = loko_folds(tiny_dataset)
        assert len(folds) == len({row.benchmark
                                  for row in tiny_dataset.rows})
        for group, train, test in folds:
            assert not set(train) & set(test)
            assert all(tiny_dataset.rows[i].benchmark == group
                       for i in test)
            assert all(tiny_dataset.rows[i].benchmark != group
                       for i in train)

    def test_acceptance_tree_beats_dummy_within_regret(self, tiny_dataset):
        report = evaluate(tiny_dataset)
        tree = report.model("tree")
        dummy = report.model("dummy")
        assert tree.top1_accuracy > dummy.top1_accuracy
        assert tree._mean("energy") <= 0.15
        # The dummy's one-class answer cannot track the oracle on EDP.
        assert tree._mean("edp") < dummy._mean("edp")

    def test_report_is_deterministic(self, tiny_dataset):
        a = evaluate(tiny_dataset).to_dict()
        b = evaluate(tiny_dataset).to_dict()
        assert a == b

    def test_regret_nonnegative_and_zero_on_hits(self, tiny_dataset):
        report = evaluate(tiny_dataset)
        for evaluation in report.models.values():
            for prediction in evaluation.predictions:
                regret = prediction["regret"]
                assert all(value >= 0.0 for value in regret.values())
                if prediction["correct"]:
                    assert regret["edp"] == 0.0


# -- the predicted serving backend -----------------------------------------------


class TestPredictedServiceBook:
    def test_twins_cover_the_corpus(self):
        assert set(BENCHMARK_TWINS.values()) <= set(CORPUS)
        assert set(BENCHMARK_TWINS) == {twin for _, twin in CORPUS.values()}

    def test_decisions_and_counters(self, tiny_dataset):
        book = PredictedServiceBook(train_model(tiny_dataset, kind="tree"))
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            predicted = book.profile("cnn", "fast")
            book.profile("svm (poly)", "fast")   # not in the corpus
        assert book.decisions["cnn"] is not None
        assert book.decisions["svm (poly)"] is None
        assert hub.counters["learn.predictions"].value == 1
        assert hub.counters["learn.fallbacks"].value == 1
        # The predicted point prices through the same stack: a real
        # operating point with positive costs.
        assert predicted.active_power > 0
        assert predicted.unit_compute_time > 0

    def test_low_confidence_falls_back(self, tiny_dataset):
        fitted = train_model(tiny_dataset, kind="dummy")
        threshold = fitted.confidence(tiny_dataset.rows[0].features) + 0.01
        book = PredictedServiceBook(fitted, confidence=min(threshold, 1.0))
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            book.profile("cnn", "fast")
        assert book.decisions["cnn"] is None
        assert "learn.predictions" not in hub.counters

    def test_fallback_matches_analytic_pricing(self, tiny_dataset):
        from repro.serve import AnalyticServiceBook

        book = PredictedServiceBook(train_model(tiny_dataset, kind="tree"))
        analytic = AnalyticServiceBook()
        assert book.profile("svm (poly)", "fast") == \
            analytic.profile("svm (poly)", "fast")
        # The eco tier stays analytic even for predicted kernels.
        assert book.profile("cnn", "eco") == analytic.profile("cnn", "eco")

    def test_predictor_from_file_checks_version(self, tiny_dataset,
                                                tmp_path):
        fitted = train_model(tiny_dataset, kind="tree")
        path = tmp_path / "model.json"
        save_model(fitted, path)
        assert predictor_from_file(path).kind == "tree"
        doc = json.loads(path.read_text())
        doc["results"]["features_version"] = FEATURES_VERSION + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(ConfigurationError, match="feature schema"):
            predictor_from_file(path)

    def test_serve_end_to_end_with_predicted_policy(self, tiny_dataset):
        book = PredictedServiceBook(train_model(tiny_dataset, kind="tree"))
        config = ServeConfig(
            workload=PoissonWorkload(rate=250.0, requests=80, seed=7),
            nodes=2,
            scheduler=SchedulerConfig(policy="predicted"),
            seed=7, book=book)
        hub = Telemetry(enabled=True)
        with use_telemetry(hub):
            report = ServeEngine(config).run()
        assert report.policy == "predicted"
        assert len(report.records) == 80
        assert hub.counters["learn.predictions"].value > 0
        assert any(label is not None
                   for label in book.decisions.values())


# -- serve plug points -----------------------------------------------------------


class TestServePlugPoints:
    def test_builtin_policy_accepted_as_string(self):
        config = SchedulerConfig(policy="sjf")
        assert config.policy is Policy.SJF

    def test_unknown_policy_rejected_at_scheduler(self):
        from repro.serve import AnalyticServiceBook

        config = SchedulerConfig(policy="nonesuch")
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            Scheduler(config, AnalyticServiceBook())

    def test_builtin_policy_name_cannot_be_shadowed(self):
        with pytest.raises(ConfigurationError, match="shadow"):
            register_policy("fifo", lambda scheduler, now: 0)

    def test_custom_policy_registered_by_name(self, tiny_dataset):
        register_policy("lifo-test", lambda scheduler, now:
                        len(scheduler.queue) - 1)
        assert "lifo-test" in registered_policies()
        config = ServeConfig(
            workload=PoissonWorkload(rate=250.0, requests=40, seed=5),
            nodes=2,
            scheduler=SchedulerConfig(policy="lifo-test"),
            seed=5)
        report = ServeEngine(config).run()
        assert report.policy == "lifo-test"
        assert len(report.records) == 40

    def test_custom_service_book_registered_by_name(self):
        from repro.serve import AnalyticServiceBook

        class FlatBook(AnalyticServiceBook):
            pass

        register_service_book("flat-test",
                              lambda **kwargs: FlatBook(**kwargs))
        book = service_book_by_name("flat-test", host_mhz=4.0)
        assert isinstance(book, FlatBook)
        with pytest.raises(ConfigurationError, match="unknown service"):
            service_book_by_name("nonesuch")

    def test_analytic_book_registered_by_default(self):
        from repro.serve import AnalyticServiceBook

        book = service_book_by_name("analytic")
        assert isinstance(book, AnalyticServiceBook)


# -- the CLI ---------------------------------------------------------------------


class TestLearnCli:
    @pytest.fixture()
    def dataset_path(self, tiny_dataset, tmp_path):
        path = tmp_path / "ds.json"
        save_dataset(tiny_dataset, path)
        return path

    def test_dataset_subset_build(self, tmp_path, capsys):
        out = tmp_path / "subset.json"
        assert main(["learn", "dataset", "--tiny", "--out", str(out),
                     "--programs", "memcpy_words,dwconv3_i8",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == 4    # 2 programs x 2 tiny contexts
        assert load_dataset(out).digest == payload["digest"]

    def test_train_then_predict(self, dataset_path, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert main(["learn", "train", "--dataset", str(dataset_path),
                     "--out", str(model_path)]) == 0
        capsys.readouterr()
        assert main(["learn", "predict", "--model", str(model_path),
                     "--program", "dwconv3_i8", "--iterations", "64",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ranked"]
        assert "budget_mw" in payload["ranked"][0]

    def test_eval_gate_exit_codes(self, dataset_path, capsys):
        assert main(["learn", "eval", "--dataset", str(dataset_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["primary"] == "tree"
        from repro.learn.cli import LEARN_EXIT_REGRET

        assert main(["learn", "eval", "--dataset", str(dataset_path),
                     "--max-regret", "0.0"]) == LEARN_EXIT_REGRET

    def test_eval_output_is_deterministic(self, dataset_path, capsys):
        assert main(["learn", "eval", "--dataset", str(dataset_path),
                     "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["learn", "eval", "--dataset", str(dataset_path),
                     "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_missing_dataset_is_clean_error(self):
        with pytest.raises(SystemExit, match="cannot load dataset"):
            main(["learn", "train", "--dataset", "/nonexistent.json"])

    def test_serve_predicted_without_model_errors(self):
        with pytest.raises(SystemExit, match="needs --model"):
            main(["serve", "--scheduler", "predicted",
                  "--requests", "40"])

    def test_serve_with_predicted_model(self, dataset_path, tiny_dataset,
                                        tmp_path, capsys):
        model_path = tmp_path / "model.json"
        save_model(train_model(tiny_dataset, kind="tree"), model_path)
        assert main(["serve", "--scheduler", "predicted",
                     "--model", str(model_path), "--nodes", "2",
                     "--requests", "60", "--seed", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "predicted"
        assert payload["completed"] + payload["dropped"] \
            == payload["arrivals"]
