"""Regression check: headline numbers versus pinned golden values.

``benchmarks/results/golden.json`` pins the Table I per-kernel numbers
and the Figure 4 aggregates.  Any model change that moves them fails
here, so drift is a conscious decision, not an accident.  To re-pin
after an intentional change::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.experiments import table1, figure4
    rows, f4 = table1.run(), figure4.run()
    golden = json.load(open("benchmarks/results/golden.json"))
    golden["table1"] = {r.name: {
        "risc_ops": r.risc_ops, "binary_bytes": r.binary_bytes,
        "input_bytes": r.input_bytes, "output_bytes": r.output_bytes,
    } for r in rows}
    golden["figure4"] = {
        "mean_parallel_speedup": f4.mean_parallel_speedup,
        "mean_runtime_overhead": f4.mean_runtime_overhead,
        "rows": {r.name: {
            "or10n_cycles": r.or10n_cycles,
            "parallel_speedup": r.parallel_speedup,
            "arch_speedup_vs_m4": r.arch_speedup_vs_m4,
        } for r in f4.rows}}
    json.dump(golden, open("benchmarks/results/golden.json", "w"), indent=2)
    PY
"""

import json
from pathlib import Path

import pytest

from repro.experiments import figure4, table1

GOLDEN_PATH = (Path(__file__).resolve().parent.parent
               / "benchmarks" / "results" / "golden.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestTable1Golden:
    def test_all_kernels_pinned(self, golden):
        measured = {row.name for row in table1.run()}
        assert measured == set(golden["table1"])

    def test_rows_match_pinned_values(self, golden):
        for row in table1.run():
            pinned = golden["table1"][row.name]
            assert row.risc_ops == pytest.approx(pinned["risc_ops"],
                                                 rel=1e-9), row.name
            assert row.binary_bytes == pinned["binary_bytes"], row.name
            assert row.input_bytes == pinned["input_bytes"], row.name
            assert row.output_bytes == pinned["output_bytes"], row.name


class TestFigure4Golden:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run()

    def test_aggregates_match(self, golden, result):
        assert result.mean_parallel_speedup == pytest.approx(
            golden["figure4"]["mean_parallel_speedup"], rel=1e-9)
        assert result.mean_runtime_overhead == pytest.approx(
            golden["figure4"]["mean_runtime_overhead"], rel=1e-9)

    def test_per_row_values_match(self, golden, result):
        pinned_rows = golden["figure4"]["rows"]
        assert {row.name for row in result.rows} == set(pinned_rows)
        for row in result.rows:
            pinned = pinned_rows[row.name]
            assert row.or10n_cycles == pytest.approx(
                pinned["or10n_cycles"], rel=1e-9), row.name
            assert row.parallel_speedup == pytest.approx(
                pinned["parallel_speedup"], rel=1e-9), row.name
            assert row.arch_speedup_vs_m4 == pytest.approx(
                pinned["arch_speedup_vs_m4"], rel=1e-9), row.name


class TestDsePareto:
    """The pinned small-grid Pareto frontier (see benchmarks/results/
    golden.json, key ``dse_pareto``).  Re-pin with::

        PYTHONPATH=src python - <<'EOF'
        import json
        from repro.dse import ParameterSpace, ExplorationEngine, \
            pareto_frontier
        golden = json.load(open("benchmarks/results/golden.json"))
        space = ParameterSpace.from_dict(golden["dse_pareto"]["spec"])
        result = ExplorationEngine(jobs=1).run(space)
        golden["dse_pareto"]["frontier"] = [{
            "config_hash": r["config_hash"], "config": r["config"],
            "effective_speedup": r["metrics"]["effective_speedup"],
            "energy_per_iteration_j":
                r["metrics"]["energy_per_iteration_j"],
            "total_power_w": r["metrics"]["total_power_w"],
        } for r in pareto_frontier(result.records)]
        json.dump(golden, open("benchmarks/results/golden.json", "w"),
                  indent=2)
        EOF
    """

    @pytest.fixture(scope="class")
    def frontier(self, request):
        from repro.dse import ExplorationEngine, ParameterSpace, \
            pareto_frontier
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        space = ParameterSpace.from_dict(golden["dse_pareto"]["spec"])
        result = ExplorationEngine(jobs=1).run(space)
        return golden["dse_pareto"]["frontier"], \
            pareto_frontier(result.records)

    def test_frontier_membership_matches(self, frontier):
        pinned, measured = frontier
        assert [r["config_hash"] for r in measured] \
            == [r["config_hash"] for r in pinned]

    def test_frontier_objectives_match(self, frontier):
        pinned, measured = frontier
        for pin, got in zip(pinned, measured):
            metrics = got["metrics"]
            for key in ("effective_speedup", "energy_per_iteration_j",
                        "total_power_w"):
                assert metrics[key] == pytest.approx(pin[key], rel=1e-9), \
                    pin["config_hash"]
