"""Systematic cross-validation between the three timing paths.

The library computes the same quantities at three abstraction levels:

1. analytic (cost tables + contention formula),
2. discrete-event (cluster of op-stream cores),
3. instruction-level (OR10N-mini ISS, single and multicore).

These tests sweep configurations and assert the levels agree where they
model the same thing, and diverge in the direction the abstractions
predict where they don't.
"""

import numpy as np
import pytest

from repro.isa.or10n import Or10nTarget
from repro.isa.report import LoweredReport
from repro.kernels.matmul import MatmulKernel
from repro.machine.programs import run_matmul_i8_parallel
from repro.pulp.cluster import Cluster
from repro.pulp.executor import CycleLevelExecutor
from repro.pulp.timing import ContentionModel, op_stream_from_report
from repro.runtime.omp import DeviceOpenMp


class TestAnalyticVsDes:
    @pytest.mark.parametrize("threads", [1, 2, 3, 4])
    def test_thread_sweep_on_matmul(self, threads):
        program = MatmulKernel("char", n=12).build_program()
        executor = CycleLevelExecutor(Or10nTarget(), threads=threads)
        result = executor.execute(program)
        assert result.deviation < 0.06, threads

    @pytest.mark.parametrize("banks", [4, 8, 16])
    def test_bank_sweep_contention(self, banks):
        intensity = 0.6
        cycles = 3000.0
        streams = []
        for core in range(4):
            report = LoweredReport("x", cycles=cycles,
                                   memory_accesses=cycles * intensity)
            streams.append(op_stream_from_report(report, core_index=core,
                                                 pattern="random"))
        run = Cluster(banks=banks).run(streams)
        analytic = ContentionModel(banks=banks).stall_factor(4, intensity)
        des = run.wall_cycles / cycles
        assert des == pytest.approx(analytic, abs=0.08), banks

    def test_speedup_curves_track(self):
        """Analytic and DES parallel speedups agree across team sizes."""
        program = MatmulKernel("char", n=12).build_program()
        target = Or10nTarget()
        for threads in (2, 4):
            analytic = DeviceOpenMp(target, threads).execute(program)
            single = DeviceOpenMp(target, 1).execute(program)
            analytic_speedup = single.wall_cycles / analytic.wall_cycles
            des = CycleLevelExecutor(target, threads).execute(program)
            des_single = CycleLevelExecutor(target, 1).execute(program)
            des_speedup = des_single.wall_cycles / des.wall_cycles
            assert des_speedup == pytest.approx(analytic_speedup, rel=0.08)


class TestIssVsAnalyticParallel:
    def test_parallel_efficiency_bracket(self):
        """The ISS's measured 4-core efficiency lands within the
        envelope the analytic OpenMP model predicts for a kernel with
        negligible runtime overhead (the assembly version has none)."""
        kernel = MatmulKernel("char", n=16)
        inputs = kernel.generate_inputs(7)
        from repro.machine.programs import run_matmul_i8
        _, single = run_matmul_i8(inputs["a"], inputs["b"])
        _, multi = run_matmul_i8_parallel(inputs["a"], inputs["b"])
        iss_speedup = single.cycles / multi.wall_cycles
        # No fork/join software in the assembly version: its speedup
        # must beat the analytic model's (which charges the OpenMP
        # runtime) but stay at or below the ideal 4.
        program = kernel.build_program()
        omp_speedup = DeviceOpenMp(Or10nTarget(), 4).speedup_vs_single(program)
        assert omp_speedup - 0.2 <= iss_speedup <= 4.0

    def test_iss_conflicts_consistent_with_contention_model(self):
        kernel = MatmulKernel("char", n=16)
        inputs = kernel.generate_inputs(3)
        _, multi = run_matmul_i8_parallel(inputs["a"], inputs["b"])
        # The ISS's measured wall stretch from conflicts stays within
        # the same order as the analytic stall factor for the measured
        # access intensity.
        active = sum(core.cycles_active for core in multi.cores)
        stalled = sum(core.cycles_stalled for core in multi.cores)
        stretch = 1.0 + stalled / active
        intensity = multi.bank_accesses / (4 * multi.wall_cycles)
        analytic = ContentionModel().stall_factor(4, min(1.0, intensity * 4))
        assert stretch < analytic + 0.15

    def test_bit_exactness_all_team_sizes(self):
        kernel = MatmulKernel("char", n=12)
        inputs = kernel.generate_inputs(9)
        expected = kernel.compute(inputs)["c"]
        for cores in (1, 2, 3, 4):
            out, _ = run_matmul_i8_parallel(inputs["a"], inputs["b"],
                                            cores=cores)
            assert np.array_equal(out, expected), cores
