"""Tests for the shared fixed-point math routines."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FixedPointError
from repro.kernels.fixmath import (
    CORDIC_ITERATIONS,
    Q15_ONE,
    Q16_ONE,
    cordic_vectoring,
    cube_q15,
    exp_neg_q,
    hardtanh_q15,
    rsqrt_q16,
    tanh_q15,
)


class TestExpNeg:
    def test_exp_zero_is_one(self):
        assert exp_neg_q(np.array([0]))[0] == pytest.approx(Q15_ONE, abs=64)

    def test_matches_float_exp(self):
        xs = np.linspace(0.0, 6.0, 50)
        raw = exp_neg_q((xs * Q16_ONE).astype(np.int64))
        expected = np.exp(-xs)
        assert np.allclose(raw / Q15_ONE, expected, atol=2e-3)

    def test_underflow_to_zero(self):
        assert exp_neg_q(np.array([20 * Q16_ONE]))[0] == 0

    def test_monotone_decreasing(self):
        xs = (np.linspace(0, 7.9, 100) * Q16_ONE).astype(np.int64)
        values = exp_neg_q(xs)
        assert np.all(np.diff(values) <= 0)

    def test_negative_input_rejected(self):
        with pytest.raises(FixedPointError):
            exp_neg_q(np.array([-1]))


class TestCube:
    def test_matches_float(self):
        xs = np.linspace(-0.9, 0.9, 30)
        raw = cube_q15((xs * Q15_ONE).astype(np.int64))
        assert np.allclose(raw / Q15_ONE, xs ** 3, atol=2e-3)

    def test_odd_symmetry_within_shift_floor(self):
        # Arithmetic >> floors toward -inf, so the fixed-point cube is
        # odd only to within one LSB (faithful to the embedded code).
        x = np.array([12345])
        assert abs(cube_q15(x)[0] + cube_q15(-x)[0]) <= 2


class TestTanh:
    def test_matches_float_tanh(self):
        xs = np.linspace(-3.5, 3.5, 100)
        raw = tanh_q15((xs * Q15_ONE).astype(np.int64))
        assert np.allclose(raw / Q15_ONE, np.tanh(xs), atol=4e-3)

    def test_saturates_at_extremes(self):
        big = tanh_q15(np.array([100 * Q15_ONE]))[0]
        assert big / Q15_ONE == pytest.approx(1.0, abs=1e-3)

    def test_odd(self):
        x = np.array([7777])
        assert tanh_q15(x)[0] == -tanh_q15(-x)[0]

    def test_hardtanh_clips(self):
        xs = np.array([-3 * Q15_ONE, 0, 3 * Q15_ONE])
        out = hardtanh_q15(xs)
        assert out[0] == -Q15_ONE
        assert out[1] == 0
        assert out[2] == Q15_ONE - 1


class TestCordic:
    def test_angle_matches_atan2(self):
        rng = np.random.default_rng(1)
        dx = rng.integers(-255, 256, 500) << 16
        dy = rng.integers(-255, 256, 500) << 16
        mask = (dx != 0) | (dy != 0)
        _, angle = cordic_vectoring(dx, dy)
        expected = np.arctan2(dy[mask], dx[mask])
        assert np.allclose(angle[mask] / Q16_ONE, expected, atol=2e-3)

    def test_magnitude_matches_hypot(self):
        rng = np.random.default_rng(2)
        dx = rng.integers(-255, 256, 500) << 16
        dy = rng.integers(-255, 256, 500) << 16
        magnitude, _ = cordic_vectoring(dx, dy)
        expected = np.hypot(dx.astype(float), dy.astype(float))
        nonzero = expected > 0
        assert np.allclose(magnitude[nonzero], expected[nonzero], rtol=5e-3)

    def test_axis_cases(self):
        mag, ang = cordic_vectoring(np.array([100 << 16]), np.array([0]))
        assert ang[0] == pytest.approx(0, abs=200)
        mag, ang = cordic_vectoring(np.array([0]), np.array([100 << 16]))
        assert ang[0] / Q16_ONE == pytest.approx(math.pi / 2, abs=1e-3)
        mag, ang = cordic_vectoring(np.array([-100 << 16]), np.array([0]))
        assert abs(ang[0]) / Q16_ONE == pytest.approx(math.pi, abs=1e-2)

    def test_invalid_iterations(self):
        with pytest.raises(FixedPointError):
            cordic_vectoring(np.array([1]), np.array([1]), iterations=0)
        with pytest.raises(FixedPointError):
            cordic_vectoring(np.array([1]), np.array([1]),
                             iterations=CORDIC_ITERATIONS + 1)


class TestRsqrt:
    @pytest.mark.parametrize("value", [0.01, 0.5, 1.0, 7.0, 100.0, 5e4, 2e6])
    def test_matches_float(self, value):
        raw = int(value * Q16_ONE)
        got = rsqrt_q16(np.array([raw]), iterations=5)[0] / Q16_ONE
        assert got == pytest.approx(value ** -0.5, rel=0.03)

    def test_positive_required(self):
        with pytest.raises(FixedPointError):
            rsqrt_q16(np.array([0]))

    @given(st.floats(0.01, 1e5))
    @settings(max_examples=60)
    def test_sqrt_identity(self, value):
        raw = int(value * Q16_ONE)
        rsqrt = rsqrt_q16(np.array([raw]), iterations=5)[0]
        sqrt = (raw * rsqrt) >> 16
        assert sqrt / Q16_ONE == pytest.approx(math.sqrt(value), rel=0.05)
