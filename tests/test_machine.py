"""Tests for the OR10N-mini ISS: encoding, assembler, interpreter,
assembly kernels, and the cross-check against the analytic cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError, KernelError, SimulationError
from repro.machine import Machine, Opcode, assemble, decode, encode
from repro.machine.assembler import disassemble
from repro.machine.encoding import I_TYPE, Instruction
from repro.machine.programs import (
    run_dot_product_i8,
    run_matmul_i8,
    run_memcpy,
    run_vector_add_i8,
)


class TestEncoding:
    def test_r_type_roundtrip(self):
        instruction = Instruction(Opcode.MAC, rd=5, ra=12, rb=31)
        assert decode(encode(instruction)) == instruction

    def test_i_type_roundtrip_negative_imm(self):
        instruction = Instruction(Opcode.ADDI, rd=1, ra=2, imm=-1234)
        assert decode(encode(instruction)) == instruction

    def test_hwloop_roundtrip(self):
        instruction = Instruction(Opcode.HWLOOP, ra=3, imm=17)
        assert decode(encode(instruction)) == instruction

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IsaError):
            decode(0x3A << 26)

    def test_register_range_validated(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.ADD, rd=32)

    def test_immediate_range_validated(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.ADDI, rd=1, ra=1, imm=1 << 20)

    @given(st.sampled_from(list(Opcode)),
           st.integers(0, 31), st.integers(0, 31), st.integers(0, 31),
           st.integers(-(1 << 11), (1 << 11) - 1))
    @settings(max_examples=200)
    def test_roundtrip_property(self, opcode, rd, ra, rb, imm):
        if opcode in I_TYPE:
            instruction = Instruction(opcode, rd=rd, ra=ra, imm=imm)
        elif opcode is Opcode.HWLOOP:
            instruction = Instruction(opcode, ra=ra, rb=rb,
                                      imm=abs(imm) & 0x7FF)
        else:
            instruction = Instruction(opcode, rd=rd, ra=ra, rb=rb)
        assert decode(encode(instruction)) == instruction


class TestAssembler:
    def test_basic_program(self):
        program = assemble("""
            addi r1, r0, 5
            add  r2, r1, r1
            halt
        """)
        assert [i.opcode for i in program] == [Opcode.ADDI, Opcode.ADD,
                                               Opcode.HALT]

    def test_comments_and_blank_lines(self):
        program = assemble("""
            ; leading comment

            addi r1, r0, 1   # trailing comment
            halt
        """)
        assert len(program) == 2

    def test_label_branch_resolution(self):
        program = assemble("""
        top:
            addi r1, r1, 1
            bne  r1, r2, top
            halt
        """)
        # Branch at index 1 targets index 0: offset relative to pc+1 = -2.
        assert program[1].imm == -2

    def test_forward_label(self):
        program = assemble("""
            beq r0, r0, done
            addi r1, r0, 1
        done:
            halt
        """)
        assert program[0].imm == 1

    def test_memory_operand_syntax(self):
        program = assemble("lw r4, -8(r2)\nhalt")
        assert program[0].ra == 2
        assert program[0].imm == -8

    def test_duplicate_label_rejected(self):
        with pytest.raises(IsaError):
            assemble("x:\nhalt\nx:\nhalt")

    def test_unknown_mnemonic(self):
        with pytest.raises(IsaError):
            assemble("frobnicate r1, r2, r3")

    def test_unknown_label(self):
        with pytest.raises(IsaError):
            assemble("jump nowhere")

    def test_operand_count_enforced(self):
        with pytest.raises(IsaError):
            assemble("add r1, r2")

    def test_hwloop_body_required(self):
        with pytest.raises(IsaError):
            assemble("end:\nhwloop r1, end\nhalt")

    def test_disassemble_reparses(self):
        source = """
            addi r1, r0, 3
            lw   r2, 4(r1)
            mac  r3, r2, r2
            sb   r3, 0(r1)
            halt
        """
        program = assemble(source)
        again = assemble(disassemble(program))
        assert again == program

    def test_disassemble_reparses_hwloop(self):
        """hwloop operands are absolute end positions in assembly but
        body lengths in Instruction.imm; disassemble must bridge the
        two with synthetic end labels."""
        program = assemble("""
            hwloop r3, copy_end
            lw   r4, 0(r1)
            sw   r4, 0(r2)
        copy_end:
            halt
        """)
        again = assemble(disassemble(program))
        assert again == program


class TestAssemblerDiagnostics:
    def test_errors_carry_line_numbers(self):
        with pytest.raises(IsaError, match="line 3"):
            assemble("addi r1, r0, 1\nhalt\nfrobnicate r1")

    def test_bad_operand_line_number(self):
        with pytest.raises(IsaError, match="line 2"):
            assemble("halt\nadd r1, r2")

    def test_duplicate_label_line_number(self):
        with pytest.raises(IsaError, match="line 3"):
            assemble("x:\nhalt\nx:\nhalt")

    def test_assemble_unit_maps_lines(self):
        from repro.machine.assembler import assemble_unit
        unit = assemble_unit("""
            addi r1, r0, 1

            addi r2, r0, 2
            halt
        """)
        assert unit.lines == (2, 4, 5)
        assert len(unit) == 3
        assert unit.labels == {}

    def test_branch_target_past_end_rejected(self):
        with pytest.raises(IsaError, match="outside program"):
            assemble("beq r1, r2, 5\nhalt")

    def test_negative_jump_target_rejected(self):
        with pytest.raises(IsaError, match="outside program"):
            assemble("halt\njump -10\nhalt")

    def test_branch_to_program_end_is_allowed(self):
        # Falling off the end terminates cleanly; the analyzer warns
        # (OR005) but the assembler accepts it.
        program = assemble("beq r1, r2, 1\nhalt")
        assert program[0].imm == 1

    def test_hwloop_end_past_last_instruction_rejected(self):
        with pytest.raises(IsaError, match="past the last"):
            assemble("hwloop r1, 5\naddi r2, r2, 1\nhalt")


class TestInterpreter:
    def _run(self, source, setup=None):
        machine = Machine()
        if setup:
            setup(machine)
        return machine, machine.run(assemble(source))

    def test_alu_basics(self):
        _, result = self._run("""
            addi r1, r0, 7
            addi r2, r0, 5
            sub  r3, r1, r2
            mul  r4, r1, r2
            halt
        """)
        assert result.registers[3] == 2
        assert result.registers[4] == 35

    def test_r0_hardwired_zero(self):
        _, result = self._run("""
            addi r0, r0, 99
            add  r1, r0, r0
            halt
        """)
        assert result.registers[0] == 0
        assert result.registers[1] == 0

    def test_mac_accumulates(self):
        _, result = self._run("""
            addi r1, r0, 3
            addi r2, r0, 4
            addi r3, r0, 10
            mac  r3, r1, r2
            mac  r3, r1, r2
            halt
        """)
        assert result.registers[3] == 10 + 12 + 12

    def test_wrapping_arithmetic(self):
        _, result = self._run("""
            addi r1, r0, 1
            slli r1, r1, 31
            addi r1, r1, -1
            addi r1, r1, 1
            halt
        """)
        assert result.registers[1] == -(1 << 31)

    def test_memory_roundtrip_and_sign_extension(self):
        def setup(machine):
            machine.write_block(0x10, (200).to_bytes(1, "little"))
        _, result = self._run("""
            lb r1, 16(r0)
            halt
        """, setup)
        assert result.registers[1] == 200 - 256

    def test_simd_add4_lanes(self):
        machine = Machine()
        machine.registers[1] = int.from_bytes(
            np.array([1, -2, 127, -128], dtype=np.int8).tobytes(),
            "little", signed=False)
        machine.registers[2] = int.from_bytes(
            np.array([1, -2, 1, -1], dtype=np.int8).tobytes(),
            "little", signed=False)
        result = machine.run(assemble("add4 r3, r1, r2\nhalt"))
        lanes = np.frombuffer(
            (result.registers[3] & 0xFFFFFFFF).to_bytes(4, "little"),
            dtype=np.int8)
        assert list(lanes) == [2, -4, -128, 127]  # lanes wrap

    def test_branch_loop(self):
        _, result = self._run("""
            addi r1, r0, 0
            addi r2, r0, 10
        loop:
            addi r1, r1, 1
            blt  r1, r2, loop
            halt
        """)
        assert result.registers[1] == 10

    def test_hwloop_zero_trips_skips_body(self):
        _, result = self._run("""
            addi r1, r0, 0
            addi r2, r0, 0
            hwloop r1, end
            addi r2, r2, 1
        end:
            halt
        """)
        assert result.registers[2] == 0

    def test_hwloop_iterates_without_branch_cost(self):
        machine = Machine()
        machine.registers[1] = 100
        result = machine.run(assemble("""
            hwloop r1, end
            addi r2, r2, 1
        end:
            halt
        """))
        assert result.registers[2] == 100
        # setup(2) + 100 adds (1 each) + halt(1): back edges free.
        assert result.cycles == 2 + 100 + 1

    def test_nested_hwloops(self):
        machine = Machine()
        machine.registers[1] = 5
        machine.registers[2] = 4
        result = machine.run(assemble("""
            hwloop r1, outer_end
            addi r4, r2, 0
            hwloop r4, inner_end
            addi r3, r3, 1
        inner_end:
            addi r5, r5, 1
        outer_end:
            halt
        """))
        assert result.registers[3] == 20
        assert result.registers[5] == 5

    def test_hwloop_nesting_limit(self):
        machine = Machine()
        for reg in (1, 2, 3):
            machine.registers[reg] = 2
        with pytest.raises(SimulationError):
            machine.run(assemble("""
                hwloop r1, e1
                hwloop r2, e2
                hwloop r3, e3
                addi r4, r4, 1
            e3:
                addi r5, r5, 1
            e2:
                addi r6, r6, 1
            e1:
                halt
            """))

    def test_runaway_detection(self):
        with pytest.raises(SimulationError):
            Machine().run(assemble("jump -1\nhalt"), max_steps=1000)

    def test_memory_bounds_checked(self):
        with pytest.raises(SimulationError):
            Machine(memory_size=64).run(assemble("lw r1, 100(r0)\nhalt"))

    def test_load_costs_two_cycles(self):
        _, result = self._run("lw r1, 0(r0)\nhalt")
        assert result.cycles == 2 + 1


class TestAssemblyKernels:
    def test_memcpy(self):
        data = bytes(range(256)) * 2
        out, result = run_memcpy(data)
        assert out == data
        assert result.loads == len(data) // 4
        assert result.stores == len(data) // 4

    def test_vector_add_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = rng.integers(-128, 128, 64).astype(np.int8)
        b = rng.integers(-128, 128, 64).astype(np.int8)
        out, _ = run_vector_add_i8(a, b)
        expected = (a.astype(np.int16) + b).astype(np.int8)  # wrapping
        assert np.array_equal(out, expected)

    def test_dot_product_matches_numpy(self):
        rng = np.random.default_rng(2)
        a = rng.integers(-128, 128, 100).astype(np.int8)
        b = rng.integers(-128, 128, 100).astype(np.int8)
        value, _ = run_dot_product_i8(a, b)
        assert value == int(a.astype(np.int64) @ b.astype(np.int64))

    @pytest.mark.parametrize("n", [4, 8, 12])
    def test_matmul_matches_analytic_kernel(self, n):
        from repro.kernels.matmul import MatmulKernel
        kernel = MatmulKernel("char", n=n)
        inputs = kernel.generate_inputs(5)
        expected = kernel.compute(inputs)["c"]
        out, result = run_matmul_i8(inputs["a"], inputs["b"])
        assert np.array_equal(out, expected)
        assert result.halted

    def test_matmul_shape_validation(self):
        with pytest.raises(KernelError):
            run_matmul_i8(np.zeros((4, 4), dtype=np.int8),
                          np.zeros((8, 8), dtype=np.int8))

    def test_vector_add_simd_speedup(self):
        """The instruction-level counterpart of the SIMD model: lanewise
        add4 processes 4 elements per iteration."""
        rng = np.random.default_rng(3)
        a = rng.integers(-100, 100, 64).astype(np.int8)
        b = rng.integers(-100, 100, 64).astype(np.int8)
        _, vectorized = run_vector_add_i8(a, b)
        # A scalar equivalent touches each byte individually.
        scalar = Machine()
        scalar.write_block(0x100, a.tobytes())
        scalar.write_block(0x1100, b.tobytes())
        scalar.registers[1] = 0x100
        scalar.registers[2] = 0x1100
        scalar.registers[3] = 0x2100
        scalar.registers[4] = len(a)
        scalar_result = scalar.run(assemble("""
            hwloop r4, end
            lb   r5, 0(r1)
            lb   r6, 0(r2)
            add  r7, r5, r6
            sb   r7, 0(r3)
            addi r1, r1, 1
            addi r2, r2, 1
            addi r3, r3, 1
        end:
            halt
        """))
        assert vectorized.cycles < scalar_result.cycles / 2.5


class TestIssVsAnalyticModel:
    def test_dot_product_cycles_track_cost_table(self):
        """The ISS inner loop (lb, lb, mac, addi, add under a hwloop)
        costs 8 cycles/element; the analytic model's equivalent body
        (LOAD, LOAD, MAC with folded address updates) costs 5.  The
        difference is exactly the two explicit pointer bumps the
        mini-ISA lacks post-increment addressing for, plus the wider
        second add."""
        from repro.isa.or10n import Or10nTarget
        from repro.isa.program import Block, Loop, Program
        from repro.isa.vop import DType, addr, load, mac

        n = 200
        a = np.ones(n, dtype=np.int8)
        _, iss = run_dot_product_i8(a, a)
        iss_per_element = (iss.cycles - 5) / n  # minus setup/halt-ish

        program = Program("dot", [Loop(n, [Block([
            load(DType.I8), load(DType.I8), mac(DType.I8), addr(count=2),
        ])])])
        analytic = Or10nTarget().lower(program)
        analytic_per_element = analytic.cycles / n
        # ISS pays 2 extra explicit address adds per element.
        assert iss_per_element == pytest.approx(analytic_per_element + 2,
                                                abs=0.3)
