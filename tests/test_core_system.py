"""End-to-end tests of the HeterogeneousSystem facade."""

import numpy as np
import pytest

from repro.errors import OffloadError
from repro.core.system import HeterogeneousSystem
from repro.kernels import all_kernels, kernel_by_name
from repro.kernels.matmul import MatmulKernel
from repro.link.spi import SpiLink, SpiMode
from repro.units import mhz


class TestHostBaseline:
    def test_run_on_host(self, system):
        run = system.run_on_host(MatmulKernel("char"))
        assert run.frequency == mhz(32)
        assert run.time > 0
        assert run.energy == pytest.approx(run.time * run.power)

    def test_host_time_scales_with_frequency(self, system):
        kernel = MatmulKernel("char")
        slow = system.run_on_host(kernel, mhz(16))
        fast = system.run_on_host(kernel, mhz(32))
        assert slow.time == pytest.approx(2 * fast.time)


class TestOffload:
    @pytest.mark.parametrize("name", [k.name for k in all_kernels()])
    def test_every_kernel_offloads_and_verifies(self, name):
        system = HeterogeneousSystem()
        result = system.offload(kernel_by_name(name), host_frequency=mhz(8))
        assert result.verified, name
        assert result.compute_speedup > 10, name

    def test_outputs_match_direct_compute(self, system):
        kernel = MatmulKernel("char")
        result = system.offload(kernel, seed=9)
        direct = kernel.compute(kernel.generate_inputs(9))
        assert np.array_equal(result.outputs["c"], direct["c"])

    def test_report_is_readable(self, system):
        result = system.offload(MatmulKernel("char"))
        text = result.report()
        assert "speedup" in text
        assert "verified: True" in text

    def test_binary_cached_across_offloads(self, system):
        kernel = MatmulKernel("char")
        first = system.offload(kernel)
        second = system.offload(kernel)
        assert first.timing.binary_time > 0
        assert second.timing.binary_time == 0

    def test_binary_reloaded_after_kernel_switch(self, system):
        system.offload(MatmulKernel("char"))
        system.offload(MatmulKernel("short"))
        third = system.offload(MatmulKernel("char"))
        assert third.timing.binary_time > 0

    def test_no_budget_at_32mhz(self, system):
        with pytest.raises(OffloadError):
            system.offload(MatmulKernel("char"), host_frequency=mhz(32))

    def test_double_buffered_faster_at_many_iterations(self, system):
        kernel = MatmulKernel("char")
        serial = system.offload(kernel, iterations=64)
        overlapped = HeterogeneousSystem().offload(
            kernel, iterations=64, double_buffered=True)
        assert overlapped.timing.total_time < serial.timing.total_time

    def test_effective_speedup_below_compute_speedup(self, system):
        result = system.offload(MatmulKernel("char"), iterations=1)
        assert result.effective_speedup < result.compute_speedup

    def test_envelope_within_budget(self, system):
        result = system.offload(MatmulKernel("char"), host_frequency=mhz(8))
        assert result.envelope.total_power <= 10e-3 * (1 + 1e-6)

    def test_single_spi_slower_than_quad(self):
        quad = HeterogeneousSystem(link=SpiLink(SpiMode.QUAD))
        single = HeterogeneousSystem(link=SpiLink(SpiMode.SINGLE))
        kernel = MatmulKernel("char")
        quad_result = quad.offload(kernel)
        single_result = single.offload(kernel)
        assert single_result.timing.input_time > \
            2 * quad_result.timing.input_time

    def test_custom_budget_system(self):
        generous = HeterogeneousSystem(budget=50e-3)
        result = generous.offload(MatmulKernel("char"),
                                  host_frequency=mhz(32))
        assert result.verified

    def test_fewer_threads_slower(self):
        quad = HeterogeneousSystem(threads=4)
        dual = HeterogeneousSystem(threads=2)
        kernel = MatmulKernel("char")
        assert dual.offload(kernel).timing.compute_time > \
            quad.offload(kernel).timing.compute_time

    def test_soc_state_machine_sequenced(self, system):
        result = system.offload(MatmulKernel("char"))
        assert system.soc.fetch_enable.edge_count == 2
        assert system.soc.end_of_computation.edge_count == 2
        assert result.verified
