"""Tests filling coverage gaps across modules: CLI report, figure-5
internals, non-default configurations and error paths."""

import pytest

from repro.cli import main
from repro.core.envelope import PowerEnvelopeSolver
from repro.errors import (
    BudgetError,
    ConfigurationError,
    OffloadError,
    KernelError,
)
from repro.experiments import figure5
from repro.kernels.matmul import MatmulKernel
from repro.kernels.svm import SvmKernel
from repro.power.activity import ActivityProfile
from repro.units import mhz, mw


class TestCliReport:
    def test_report_command(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "anchors reproduced" in out
        assert "[FAIL]" not in out

    def test_all_command(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for title in ("Table I", "Figure 3", "Figure 4", "Figure 5a",
                      "Figure 5b"):
            assert title in out

    def test_figure5a_command(self, capsys):
        assert main(["figure5a"]) == 0
        assert "strassen" in capsys.readouterr().out


class TestFigure5Internals:
    def test_figure5a_custom_frequencies(self):
        result = figure5.run_figure5a(host_frequencies=(mhz(4), mhz(8)))
        assert len(result.cells) == 10 * 2
        assert len(result.kernels()) == 10

    def test_figure5b_custom_kernel_and_sweep(self):
        result = figure5.run_figure5b(
            kernel=MatmulKernel("short"),
            host_frequencies=(mhz(8),),
            iteration_counts=(1, 8))
        assert result.kernel == "matmul (short)"
        assert len(result.points) == 4  # 1 freq x 2 modes x 2 counts

    def test_figure5b_skips_hostclocks_without_budget(self):
        result = figure5.run_figure5b(host_frequencies=(mhz(32),))
        assert result.points == []

    def test_best_speedup_of_unknown_kernel_is_zero(self):
        result = figure5.run_figure5a(host_frequencies=(mhz(8),))
        assert result.best_speedup("nonexistent") == 0.0


class TestNonDefaultConfigurations:
    def test_matmul_small_sizes_consistent(self, baseline_target):
        small = baseline_target.risc_ops(MatmulKernel("char", n=8)
                                         .build_program())
        large = baseline_target.risc_ops(MatmulKernel("char", n=16)
                                         .build_program())
        # ~n^3 scaling.
        assert large / small == pytest.approx(8.0, rel=0.15)

    def test_svm_binary_classification(self):
        kernel = SvmKernel("linear", classes=2, support_vectors=4,
                           test_vectors=6, dimensions=16)
        outputs = kernel.compute(kernel.generate_inputs(0))
        assert outputs["decisions"].shape == (6, 2)
        assert set(outputs["labels"]) <= {0, 1}

    def test_envelope_solver_with_different_host(self):
        from repro.mcu.catalog import mcu_by_name
        apollo = mcu_by_name("Ambiq Apollo")
        solver = PowerEnvelopeSolver(host_device=apollo)
        point = solver.solve(mhz(24), ActivityProfile.matmul())
        # The Apollo at full speed burns ~2.7 mW: lots left for PULP.
        assert point.accelerator_usable
        assert point.pulp_frequency > mhz(150)

    def test_envelope_link_reserve_counts(self):
        tight = PowerEnvelopeSolver(link_reserve=mw(5))
        loose = PowerEnvelopeSolver(link_reserve=mw(0.05))
        activity = ActivityProfile.matmul()
        assert tight.solve(mhz(8), activity).pulp_frequency < \
            loose.solve(mhz(8), activity).pulp_frequency

    def test_envelope_invalid_reserve(self):
        with pytest.raises(BudgetError):
            PowerEnvelopeSolver(link_reserve=-1.0)


class TestErrorPaths:
    def test_offload_with_mismatched_serialization(self, system):
        class BrokenKernel(MatmulKernel):
            def serialize_inputs(self, inputs):
                return b"wrong size"

        with pytest.raises(OffloadError):
            system.offload(BrokenKernel("char"), host_frequency=mhz(8))

    def test_kernel_bad_inputs_shape(self):
        import numpy as np
        kernel = SvmKernel("linear")
        inputs = kernel.generate_inputs(0)
        inputs["x"] = np.zeros((1, 1), dtype=np.int16)
        with pytest.raises(KernelError):
            kernel.compute(inputs)

    def test_sensor_pipeline_without_budget(self):
        from repro.core.sensor import SensorPath, SensorPipeline
        pipeline = SensorPipeline()
        with pytest.raises(OffloadError):
            pipeline.evaluate(MatmulKernel("char"),
                              SensorPath.THROUGH_HOST,
                              host_frequency=mhz(32))

    def test_trace_requires_positive_width(self):
        from repro.core.trace import render_gantt, TracePhase
        with pytest.raises(ConfigurationError):
            render_gantt([TracePhase("x", 0.0, 1.0)], width=2)

    def test_fll_tracks_hops(self):
        from repro.pulp.fll import FrequencyLockedLoop
        from repro.power.pulp_model import PULP3_TABLE
        fll = FrequencyLockedLoop(PULP3_TABLE)
        fll.set_frequency(mhz(40), 0.5)
        fll.set_frequency(mhz(100), 0.7)
        assert fll.hops == 2
