"""Differential fuzzing (hypothesis).

* Random straight-line ALU programs run on the OR10N-mini ISS and on a
  direct golden evaluator of the same semantics; results must agree.
* Random instruction lists — including out-of-bounds edges and illegal
  hardware loops — never crash the static analyzer.
* Random valid programs survive assemble -> disassemble -> reassemble
  byte-identically.
* Random byte blobs fed to the wire-protocol decoder must either raise
  a ProtocolError or decode into frames that re-encode byte-identically.
* Random frame sequences survive an encode/corrupt/detect cycle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AnalysisReport, lint_instructions
from repro.errors import ProtocolError
from repro.link.protocol import decode_frames, encode_frame
from repro.machine import Machine, Opcode, assemble
from repro.machine.assembler import disassemble
from repro.machine.encoding import Instruction

_MASK32 = 0xFFFFFFFF


def _wrap32(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value & 0x80000000 else value


_ALU_OPS = (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MAC, Opcode.AND,
            Opcode.OR, Opcode.XOR, Opcode.MIN, Opcode.MAX)
_IMM_OPS = (Opcode.ADDI, Opcode.MULI, Opcode.SLLI, Opcode.SRAI)


def _golden(program, registers):
    """Direct evaluator of straight-line ALU semantics."""
    registers = list(registers)
    for instruction in program:
        if instruction.opcode is Opcode.HALT:
            break
        a = registers[instruction.ra]
        b = registers[instruction.rb]
        imm = instruction.imm
        d = registers[instruction.rd]
        op = instruction.opcode
        if op is Opcode.ADD:
            value = _wrap32(a + b)
        elif op is Opcode.SUB:
            value = _wrap32(a - b)
        elif op is Opcode.MUL:
            value = _wrap32(a * b)
        elif op is Opcode.MAC:
            value = _wrap32(d + a * b)
        elif op is Opcode.AND:
            value = _wrap32(a & b)
        elif op is Opcode.OR:
            value = _wrap32(a | b)
        elif op is Opcode.XOR:
            value = _wrap32(a ^ b)
        elif op is Opcode.MIN:
            value = min(a, b)
        elif op is Opcode.MAX:
            value = max(a, b)
        elif op is Opcode.ADDI:
            value = _wrap32(a + imm)
        elif op is Opcode.MULI:
            value = _wrap32(a * imm)
        elif op is Opcode.SLLI:
            value = _wrap32(a << (imm & 31))
        elif op is Opcode.SRAI:
            value = _wrap32(a >> (imm & 31))
        else:  # pragma: no cover - strategy never generates others
            raise AssertionError(op)
        if instruction.rd != 0:
            registers[instruction.rd] = value
        registers[0] = 0
    return registers


@st.composite
def _alu_instruction(draw):
    if draw(st.booleans()):
        opcode = draw(st.sampled_from(_ALU_OPS))
        return Instruction(opcode,
                           rd=draw(st.integers(0, 15)),
                           ra=draw(st.integers(0, 15)),
                           rb=draw(st.integers(0, 15)))
    opcode = draw(st.sampled_from(_IMM_OPS))
    imm = draw(st.integers(0, 31)) if opcode in (Opcode.SLLI, Opcode.SRAI) \
        else draw(st.integers(-32768, 32767))
    return Instruction(opcode,
                       rd=draw(st.integers(0, 15)),
                       ra=draw(st.integers(0, 15)),
                       imm=imm)


class TestIssDifferential:
    @given(st.lists(_alu_instruction(), min_size=1, max_size=40),
           st.lists(st.integers(-(1 << 31), (1 << 31) - 1),
                    min_size=16, max_size=16))
    @settings(max_examples=150, deadline=None)
    def test_random_alu_programs_match_golden(self, body, seeds):
        program = body + [Instruction(Opcode.HALT)]
        machine = Machine()
        for index, seed in enumerate(seeds):
            machine.registers[index] = seed
        machine.registers[0] = 0
        expected = _golden(program, machine.registers)
        result = machine.run(program)
        assert result.registers[:16] == expected[:16]
        assert result.halted
        assert result.instructions == len(program)

    @given(st.lists(_alu_instruction(), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_alu_programs_cost_one_cycle_each(self, body):
        program = body + [Instruction(Opcode.HALT)]
        result = Machine().run(program)
        assert result.cycles == len(program)


_MEM_OPS = (Opcode.LW, Opcode.LH, Opcode.LB, Opcode.SW, Opcode.SH,
            Opcode.SB)


@st.composite
def _any_instruction(draw):
    """Arbitrary instructions, *including* illegal control flow."""
    from repro.machine.encoding import I_TYPE

    opcode = draw(st.sampled_from(list(Opcode)))
    rd = draw(st.integers(0, 31))
    ra = draw(st.integers(0, 31))
    rb = draw(st.integers(0, 31))
    if opcode in I_TYPE:
        return Instruction(opcode, rd=rd, ra=ra,
                           imm=draw(st.integers(-200, 200)))
    if opcode is Opcode.HWLOOP:
        return Instruction(opcode, ra=ra,
                           imm=draw(st.integers(-50, 50)))
    return Instruction(opcode, rd=rd, ra=ra, rb=rb)


@st.composite
def _valid_program(draw):
    """Structurally valid programs: in-bounds branches, proper hwloops."""
    body = draw(st.lists(_alu_instruction(), min_size=2, max_size=20))
    length = len(body) + 1  # plus the final halt
    program = list(body)
    # Optionally wrap a suffix of the body in a hardware loop.
    if draw(st.booleans()) and len(body) >= 3:
        start = draw(st.integers(1, len(body) - 2))
        loop_body = len(body) - start
        program.insert(start, Instruction(Opcode.HWLOOP,
                                          ra=draw(st.integers(1, 15)),
                                          imm=loop_body))
        length += 1
    # Optionally add an in-bounds forward branch at the front.
    if draw(st.booleans()):
        target = draw(st.integers(0, length))
        program.insert(0, Instruction(Opcode.BEQ,
                                      ra=draw(st.integers(0, 15)),
                                      rb=draw(st.integers(0, 15)),
                                      imm=target - 1))
    program.append(Instruction(Opcode.HALT))
    return program


class TestAnalyzerFuzz:
    @given(st.lists(_any_instruction(), min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_analyzer_never_crashes(self, program):
        report = lint_instructions(program)
        assert isinstance(report, AnalysisReport)
        for finding in report.findings:
            assert finding.code.startswith("OR")
            assert str(finding)

    @given(_valid_program())
    @settings(max_examples=150, deadline=None)
    def test_assemble_disassemble_roundtrip(self, program):
        text = disassemble(program)
        assert assemble(text) == program

    @given(_valid_program())
    @settings(max_examples=100, deadline=None)
    def test_valid_programs_get_a_cfg(self, program):
        report = lint_instructions(program)
        assert report.cfg is not None
        covered = sorted(pc for block in report.cfg.blocks
                         for pc in block.pcs())
        assert covered == list(range(len(program)))


class TestProtocolFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_decoder_never_misbehaves(self, blob):
        try:
            frames = decode_frames(blob)
        except ProtocolError:
            return
        # Anything accepted must re-encode to exactly the input.
        assert b"".join(encode_frame(f) for f in frames) == blob

    @given(st.integers(0, 2**31 - 1), st.binary(min_size=0, max_size=64))
    @settings(max_examples=100)
    def test_injector_mangled_streams_never_crash_decoder(self, seed,
                                                          payload):
        """Seeded fault-injection fuzz: every mangling the injector can
        produce (drop, truncate, duplicate, plus bit errors on top) must
        either decode cleanly or raise ProtocolError — never anything
        else, never a hang."""
        from repro.faults import FaultInjector, FaultPlan
        from repro.link.protocol import Command, Frame

        plan = FaultPlan.combined(
            "fuzz",
            FaultPlan.drop_frames(rate=0.3),
            FaultPlan.truncate_frames(rate=0.3),
            FaultPlan.duplicate_frames(rate=0.3),
            FaultPlan.bit_errors(1e-3))
        injector = FaultInjector(plan, seed=seed)
        channel = injector.channel()
        encoded = encode_frame(Frame(Command.WRITE_DATA, 0x40, payload))
        for _ in range(8):
            received = channel.transmit(encoded)
            try:
                frames = decode_frames(received)
            except ProtocolError:
                continue
            for frame in frames:
                assert encode_frame(frame)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_injector_is_deterministic_per_seed(self, seed):
        from repro.faults import FaultInjector, FaultPlan

        def run(seed):
            injector = FaultInjector(
                FaultPlan.combined("det",
                                   FaultPlan.drop_frames(rate=0.5),
                                   FaultPlan.boot_failure(count=2)),
                seed=seed)
            trail = []
            for _ in range(16):
                trail.append(injector.mangle_transmission(b"x" * 16))
                trail.append(injector.boot_fails())
            return trail, list(injector.events)

        assert run(seed) == run(seed)

    @given(st.binary(min_size=1, max_size=64),
           st.integers(0, 2**32 - 1))
    @settings(max_examples=100)
    def test_single_bit_flips_always_detected(self, payload, address):
        from repro.link.protocol import Command, Frame
        encoded = bytearray(encode_frame(
            Frame(Command.WRITE_DATA, address, payload)))
        # Flip one bit somewhere in the checksummed region.
        position = (address + len(payload)) % len(encoded)
        encoded[position] ^= 1 << (address % 8)
        try:
            frames = decode_frames(bytes(encoded))
        except ProtocolError:
            return  # detected
        # A flip in the *length* field can make the frame consume a
        # different span; if decode succeeded the result must still be
        # self-consistent.
        assert b"".join(encode_frame(f) for f in frames) == bytes(encoded)
