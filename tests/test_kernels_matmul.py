"""Tests for the matmul kernels (char / short / fixed) and strassen."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels.matmul import MatmulKernel
from repro.kernels.strassen import StrassenKernel, strassen_multiply


class TestMatmulFunctional:
    @pytest.mark.parametrize("variant", ["char", "short", "fixed"])
    def test_identity_like(self, variant):
        kernel = MatmulKernel(variant, n=8)
        fmt_max = {"char": 127, "short": 32767, "fixed": 32767}[variant]
        shift = {"char": 7, "short": 15, "fixed": 15}[variant]
        dtype = {"char": np.int8, "short": np.int16,
                 "fixed": np.int16}[variant]
        # A diagonal "one" in the fixed-point sense: scale = 1 << shift
        # would overflow, so use scale/2 and expect halved outputs.
        half = 1 << (shift - 1)
        a = np.zeros((8, 8), dtype=dtype)
        np.fill_diagonal(a, min(half, fmt_max))
        b = (np.arange(64).reshape(8, 8) - 32).astype(dtype)
        out = kernel.compute({"a": a, "b": b})["c"]
        expected = (b.astype(np.int64) + 1) >> 1  # round-half-up of b/2
        assert np.array_equal(out, expected.astype(dtype))

    def test_zero_inputs(self):
        kernel = MatmulKernel("char", n=4)
        zero = np.zeros((4, 4), dtype=np.int8)
        assert not kernel.compute({"a": zero, "b": zero})["c"].any()

    @pytest.mark.parametrize("variant", ["char", "short"])
    def test_matches_reference_within_rounding(self, variant):
        kernel = MatmulKernel(variant, n=16)
        inputs = kernel.generate_inputs(0)
        out = kernel.compute(inputs)["c"].astype(np.float64)
        ref = kernel.reference(inputs)["c"]
        info = np.iinfo(kernel.compute(inputs)["c"].dtype)
        ref_clipped = np.clip(ref, info.min, info.max)
        assert np.abs(out - ref_clipped).max() <= 1.0

    def test_fixed_renormalization_differs_from_wide_accumulate(self):
        # Per-product renormalization loses precision versus accumulating
        # the raw products — the outputs should be close but not equal.
        kernel = MatmulKernel("fixed", n=16)
        inputs = kernel.generate_inputs(1)
        out = kernel.compute(inputs)["c"].astype(np.float64)
        ref = kernel.reference(inputs)["c"]
        error = np.abs(out - np.clip(ref, -32768, 32767))
        assert 0 < error.max() <= 16

    def test_saturation(self):
        kernel = MatmulKernel("char", n=4)
        a = np.full((4, 4), 127, dtype=np.int8)
        b = np.full((4, 4), 127, dtype=np.int8)
        out = kernel.compute({"a": a, "b": b})["c"]
        assert np.all(out == 127)  # 4*127*127 >> 7 saturates

    def test_shape_validation(self):
        kernel = MatmulKernel("char", n=8)
        bad = np.zeros((4, 4), dtype=np.int8)
        with pytest.raises(KernelError):
            kernel.compute({"a": bad, "b": bad})

    def test_unknown_variant(self):
        with pytest.raises(KernelError):
            MatmulKernel("double")

    def test_serialization_roundtrip(self):
        kernel = MatmulKernel("short", n=8)
        result = kernel.run(seed=2)
        out = np.frombuffer(result.output_payload, dtype=np.int16)
        assert np.array_equal(out.reshape(8, 8), result.outputs["c"])

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_in_seed(self, seed):
        kernel = MatmulKernel("char", n=8)
        first = kernel.run(seed).output_payload
        second = kernel.run(seed).output_payload
        assert first == second


class TestMatmulProgram:
    def test_table1_sizes(self):
        program = MatmulKernel("char").build_program()
        assert program.input_bytes == 8192
        assert program.output_bytes == 4096
        program = MatmulKernel("short").build_program()
        assert program.input_bytes == 16384
        assert program.output_bytes == 8192

    def test_risc_ops_near_paper(self, baseline_target):
        ops = baseline_target.risc_ops(MatmulKernel("char").build_program())
        assert ops == pytest.approx(2.4e6, rel=0.05)
        ops = baseline_target.risc_ops(MatmulKernel("fixed").build_program())
        assert ops == pytest.approx(2.7e6, rel=0.05)

    def test_fixed_has_more_ops_than_char(self, baseline_target):
        char_ops = baseline_target.risc_ops(MatmulKernel("char").build_program())
        fixed_ops = baseline_target.risc_ops(MatmulKernel("fixed").build_program())
        assert fixed_ops > char_ops

    def test_fixed_not_vectorizable(self, or10n_target):
        program = MatmulKernel("fixed").build_program()
        j_loop = program.body[0].body[0]
        assert or10n_target.vector_plan(j_loop) is None

    def test_char_vectorizable(self, or10n_target):
        program = MatmulKernel("char").build_program()
        j_loop = program.body[0].body[0]
        plan = or10n_target.vector_plan(j_loop)
        assert plan is not None and plan.lanes == 4


class TestStrassen:
    def test_strassen_multiply_exact(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-100, 100, (32, 32))
        b = rng.integers(-100, 100, (32, 32))
        assert np.array_equal(strassen_multiply(a, b, threshold=8), a @ b)

    def test_recursion_depth_irrelevant(self):
        rng = np.random.default_rng(1)
        a = rng.integers(-50, 50, (64, 64))
        b = rng.integers(-50, 50, (64, 64))
        assert np.array_equal(strassen_multiply(a, b, threshold=8),
                              strassen_multiply(a, b, threshold=64))

    def test_kernel_matches_classic_matmul(self):
        matmul = MatmulKernel("char")
        strassen = StrassenKernel()
        inputs = matmul.generate_inputs(3)
        assert np.array_equal(matmul.compute(inputs)["c"],
                              strassen.compute(inputs)["c"])

    def test_odd_size_rejected(self):
        with pytest.raises(KernelError):
            StrassenKernel(n=63)

    def test_fewer_risc_ops_than_classic(self, baseline_target):
        classic = baseline_target.risc_ops(MatmulKernel("char").build_program())
        fast = baseline_target.risc_ops(StrassenKernel().build_program())
        assert fast < classic
        assert fast == pytest.approx(2.3e6, rel=0.05)

    def test_program_has_three_phases(self):
        program = StrassenKernel().build_program()
        assert len(program.body) == 3
        assert all(loop.parallelizable for loop in program.body)
