"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.system import HeterogeneousSystem
from repro.isa.baseline import BaselineRiscTarget
from repro.isa.cortexm import CortexM3Target, CortexM4Target
from repro.isa.or10n import Or10nTarget
from repro.isa.program import Block, Loop, Program
from repro.isa.vop import DType, addr, load, mac, store
from repro.kernels.matmul import MatmulKernel


@pytest.fixture
def baseline_target():
    return BaselineRiscTarget()


@pytest.fixture
def or10n_target():
    return Or10nTarget()


@pytest.fixture
def m4_target():
    return CortexM4Target()


@pytest.fixture
def m3_target():
    return CortexM3Target()


@pytest.fixture
def small_matmul():
    """A small matmul kernel for fast functional tests."""
    return MatmulKernel("char", n=16)


@pytest.fixture
def matmul_program():
    """The full-size char matmul program (the Table-I configuration)."""
    return MatmulKernel("char").build_program()


@pytest.fixture
def simple_program():
    """A tiny, hand-checkable loop-nest program.

    Structure: one parallel loop of 8 iterations, each running an inner
    loop of 4 iterations of [load, load, mac, addr] and an epilogue
    [store].
    """
    inner = Loop(4, [Block([
        load(DType.I32), load(DType.I32), mac(DType.I32), addr(),
    ])], name="inner")
    outer = Loop(8, [inner, Block([store(DType.I32)])],
                 parallelizable=True, name="outer")
    return Program("simple", [outer], input_bytes=128, output_bytes=32)


@pytest.fixture
def system():
    """A fresh heterogeneous system."""
    return HeterogeneousSystem()
