"""Semantic end-to-end tests using the structured data generators."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.cnn import CnnKernel
from repro.kernels.data import (
    classification_accuracy,
    prototype_svm_problem,
    synthetic_image,
)
from repro.kernels.hog import HogKernel
from repro.kernels.svm import SvmKernel


class TestSyntheticImages:
    def test_kinds(self):
        for kind in ("gradient", "checker", "blobs"):
            image = synthetic_image(64, kind)
            assert image.shape == (64, 64)
            assert image.dtype == np.uint8

    def test_gradient_is_monotone(self):
        image = synthetic_image(64, "gradient")
        assert np.all(np.diff(image[0].astype(int)) >= 0)

    def test_blobs_deterministic_per_seed(self):
        assert np.array_equal(synthetic_image(64, "blobs", 5),
                              synthetic_image(64, "blobs", 5))
        assert not np.array_equal(synthetic_image(64, "blobs", 5),
                                  synthetic_image(64, "blobs", 6))

    def test_unknown_kind(self):
        with pytest.raises(KernelError):
            synthetic_image(64, "noise2d")

    def test_too_small(self):
        with pytest.raises(KernelError):
            synthetic_image(4)


class TestHogSemantics:
    def test_gradient_image_concentrates_horizontal_bins(self):
        """A pure horizontal ramp has only horizontal gradients: the
        0-ish orientation bins must hold nearly all the energy."""
        kernel = HogKernel()
        image = synthetic_image(128, "gradient")
        descriptor = kernel.compute({"image": image})["descriptor"]
        by_bin = descriptor.astype(np.int64).sum(axis=(0, 1, 2))
        assert by_bin.argmax() in (0, len(by_bin) - 1)

    def test_checker_has_more_energy_than_flat(self):
        kernel = HogKernel()
        checker = kernel.compute(
            {"image": synthetic_image(128, "checker")})["descriptor"]
        flat = kernel.compute(
            {"image": np.full((128, 128), 90, np.uint8)})["descriptor"]
        assert checker.sum() > 100 * max(1, flat.sum())

    def test_blob_centers_energize_their_cells(self):
        kernel = HogKernel()
        image = np.full((128, 128), 20, np.uint8)
        image[24:40, 24:40] = 220  # one bright square at cells (3..4, 3..4)
        descriptor = kernel.compute({"image": image})["descriptor"]
        cell_energy = descriptor.astype(np.int64).sum(axis=(2, 3))
        hot = np.unravel_index(cell_energy.argmax(), cell_energy.shape)
        assert 2 <= hot[0] <= 5 and 2 <= hot[1] <= 5


class TestSvmSemantics:
    @pytest.mark.parametrize("variant", ["linear", "poly", "RBF"])
    def test_prototype_problem_solved(self, variant):
        accuracy = classification_accuracy(SvmKernel(variant), seed=0)
        assert accuracy == 1.0

    @pytest.mark.parametrize("variant", ["linear", "RBF"])
    def test_robust_across_seeds(self, variant):
        kernel = SvmKernel(variant)
        accuracies = [classification_accuracy(kernel, seed=s)
                      for s in range(5)]
        assert min(accuracies) >= 0.9

    def test_accuracy_degrades_with_noise(self):
        kernel = SvmKernel("linear")
        clean = classification_accuracy(kernel, seed=3, noise=0.02)
        noisy = classification_accuracy(kernel, seed=3, noise=0.6)
        assert clean >= noisy

    def test_labels_match_float_reference_on_structured_data(self):
        kernel = SvmKernel("RBF")
        inputs, _ = prototype_svm_problem(kernel, seed=2)
        fixed = kernel.compute(inputs)["labels"]
        ref = kernel.reference(inputs)["labels"]
        assert (fixed == ref).mean() >= 0.95

    def test_needs_enough_support_vectors(self):
        kernel = SvmKernel("linear", support_vectors=4, classes=16)
        with pytest.raises(KernelError):
            prototype_svm_problem(kernel)


class TestCnnOnStructuredData:
    def test_distinct_images_distinct_scores(self):
        kernel = CnnKernel()
        inputs = kernel.generate_inputs(0)
        blob = synthetic_image(32, "blobs", 1).astype(np.int64)
        checker = synthetic_image(32, "checker").astype(np.int64)
        scale = 64  # uint8 -> roughly Q1.15 quarter-scale
        a = dict(inputs, image=(blob * scale).astype(np.int16))
        b = dict(inputs, image=(checker * scale).astype(np.int16))
        assert not np.array_equal(kernel.compute(a)["scores"],
                                  kernel.compute(b)["scores"])
