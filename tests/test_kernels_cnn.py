"""Tests for the CNN kernel and its approximated variant."""

import numpy as np
import pytest

from repro.kernels.cnn import (
    CnnKernel,
    CONV1_MAPS,
    CONV2_CONNECTIVITY,
    CONV2_MAPS,
    PERFORATION,
    _avg_pool,
    _conv2d_valid,
    conv2_connection_table,
    perforation_mask,
)


class TestBuildingBlocks:
    def test_conv2d_valid_shape(self):
        image = np.zeros((32, 32), dtype=np.int64)
        weights = np.ones((5, 5), dtype=np.int64)
        assert _conv2d_valid(image, weights).shape == (28, 28)

    def test_conv2d_matches_direct(self):
        rng = np.random.default_rng(0)
        image = rng.integers(-100, 100, (10, 10))
        weights = rng.integers(-10, 10, (3, 3))
        out = _conv2d_valid(image, weights)
        direct = sum(weights[dy, dx] * image[dy:dy + 8, dx:dx + 8]
                     for dy in range(3) for dx in range(3))
        assert np.array_equal(out, direct)

    def test_avg_pool(self):
        maps = np.arange(16).reshape(1, 4, 4).astype(np.int64)
        pooled = _avg_pool(maps)
        assert pooled.shape == (1, 2, 2)
        assert pooled[0, 0, 0] == (0 + 1 + 4 + 5) >> 2

    def test_connection_table_density(self):
        table = conv2_connection_table()
        assert table.shape == (CONV2_MAPS, CONV1_MAPS)
        density = table.sum() / table.size
        assert density == pytest.approx(CONV2_CONNECTIVITY, abs=0.05)

    def test_connection_table_every_input_used(self):
        table = conv2_connection_table()
        assert table.any(axis=0).all()
        assert table.any(axis=1).all()

    def test_perforation_mask_density(self):
        mask = perforation_mask()
        computed = mask.sum() / mask.size
        assert computed == pytest.approx(1 - PERFORATION, abs=0.05)


class TestFunctional:
    def test_scores_match_float_reference(self):
        kernel = CnnKernel()
        inputs = kernel.generate_inputs(0)
        fixed = kernel.compute(inputs)
        ref = kernel.reference(inputs)
        assert np.allclose(fixed["scores"] / 65536.0, ref["scores"],
                           atol=0.02)

    def test_labels_match_reference(self):
        for seed in range(5):
            kernel = CnnKernel()
            inputs = kernel.generate_inputs(seed)
            assert kernel.compute(inputs)["label"][0] == \
                kernel.reference(inputs)["label"][0]

    def test_approx_close_to_exact(self):
        exact = CnnKernel(approximate=False)
        approx = CnnKernel(approximate=True)
        inputs = exact.generate_inputs(0)
        exact_scores = exact.compute(inputs)["scores"] / 65536.0
        approx_scores = approx.compute(inputs)["scores"] / 65536.0
        # Approximation error is visible but bounded.
        assert 0 < np.abs(exact_scores - approx_scores).max() < 0.5

    def test_output_is_forty_bytes(self):
        result = CnnKernel().run(seed=1)
        assert result.output_bytes == 40

    def test_deterministic(self):
        kernel = CnnKernel(approximate=True)
        assert kernel.run(3).output_payload == kernel.run(3).output_payload

    def test_zero_image_gives_bias_response(self):
        kernel = CnnKernel()
        inputs = kernel.generate_inputs(0)
        inputs["image"] = np.zeros_like(inputs["image"])
        scores = kernel.compute(inputs)["scores"]
        assert scores.shape == (10,)


class TestProgram:
    def test_table1_sizes(self):
        program = CnnKernel().build_program()
        assert program.input_bytes == 2048
        assert program.output_bytes == 40

    def test_risc_ops_near_paper(self, baseline_target):
        exact = baseline_target.risc_ops(CnnKernel().build_program())
        approx = baseline_target.risc_ops(
            CnnKernel(approximate=True).build_program())
        assert exact == pytest.approx(3.3e6, rel=0.08)
        assert approx == pytest.approx(2.6e6, rel=0.08)
        assert approx < exact

    def test_binary_near_paper(self):
        from repro.pulp.binary import KernelBinary
        binary = KernelBinary.from_program(CnnKernel().build_program())
        assert binary.image_bytes == pytest.approx(48.1 * 1024, rel=0.05)

    def test_weight_bytes_accounting(self):
        kernel = CnnKernel()
        # The fully-connected layer dominates the 48 kB binary.
        assert kernel.weight_bytes() > 35 * 1024

    def test_six_parallel_regions(self):
        program = CnnKernel().build_program()
        assert len(program.parallel_loops()) == 6

    def test_approx_adds_fill_region(self):
        program = CnnKernel(approximate=True).build_program()
        assert len(program.parallel_loops()) == 7
