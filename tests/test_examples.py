"""Smoke tests: every example script runs to completion.

Keeps the documented examples from rotting as the library evolves; each
main() is executed in-process and its stdout sanity-checked.
"""

import importlib.util
import pathlib


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name, capsys):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "speedup vs host" in out
    assert "verified: True" in out


def test_smart_camera(capsys):
    out = _run_example("smart_camera", capsys)
    assert "pipeline total" in out
    assert "frames/s" in out
    assert "verified: True" in out


def test_biosignal_classifier(capsys):
    out = _run_example("biosignal_classifier", capsys)
    assert "years on a CR2032" in out
    assert out.count("best at host") == 3


def test_design_space_exploration(capsys):
    out = _run_example("design_space_exploration", capsys)
    assert "power budget sweep" in out
    assert "untying the SPI clock" in out
    assert "cluster size" in out
    assert "Pareto-best cluster" in out


def test_assembly_playground(capsys):
    out = _run_example("assembly_playground", capsys)
    assert "outputs equal = True" in out
    assert "cycles/element" in out


def test_node_designer(capsys):
    out = _run_example("node_designer", capsys)
    assert "library plan" in out
    assert "bottleneck" in out
    assert "total" in out
