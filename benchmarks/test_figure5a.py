"""Benchmark: regenerate Figure 5a (speedup within the 10 mW envelope)."""

import pytest

from repro.experiments import figure5
from repro.units import mhz

from .conftest import save_result


def test_figure5a(benchmark, results_dir):
    result = benchmark(figure5.run_figure5a)
    save_result(results_dir, "figure5a", figure5.render_figure5a(result))

    best = {name: result.best_speedup(name) for name in result.kernels()}

    # "as much as 60x in the case of the fastest benchmark (strassen)".
    assert best["strassen"] == max(best.values())
    assert best["strassen"] == pytest.approx(60, rel=0.08)
    # "more than 25x for all the fixed point benchmarks".
    for name in ("matmul (fixed)", "svm (linear)", "svm (poly)",
                 "svm (RBF)", "cnn", "cnn (approx)"):
        assert best[name] > 25, name
    # "and 20x for the worst-case benchmark (hog)".
    assert best["hog"] == min(best.values())
    assert best["hog"] == pytest.approx(20, rel=0.15)

    # "When the MCU is used at [32 MHz], there is no additional room for
    # acceleration."
    for cell in result.cells:
        if cell.host_frequency >= mhz(32):
            assert not cell.within_budget
        else:
            assert cell.within_budget
            assert cell.total_power <= 10e-3 * (1 + 1e-6)
