"""Bench: calibration sensitivity of the headline anchors."""

import pytest

from repro.experiments import sensitivity

from .conftest import save_result


def test_sensitivity(benchmark, results_dir):
    rows = benchmark(sensitivity.run)
    save_result(results_dir, "sensitivity", sensitivity.render(rows))

    nominal = [r for r in rows if r.factor == 1.0]
    for row in nominal:
        assert row.peak_efficiency == pytest.approx(304, rel=0.08)

    # The structural conclusions survive +/-25% perturbation of any
    # single knob: PULP stays >1 order of magnitude above the <5 GOPS/W
    # MCU cloud, and the integer architectural speedup stays > 1.8x.
    for row in rows:
        assert row.peak_efficiency > 150
        assert row.arch_speedup > 1.8
