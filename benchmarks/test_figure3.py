"""Benchmark: regenerate Figure 3 (GOPS vs power, PULP vs MCUs)."""

import pytest

from repro.experiments import figure3

from .conftest import save_result


def test_figure3(benchmark, results_dir):
    result = benchmark(figure3.run)
    save_result(results_dir, "figure3", figure3.render(result))

    # Paper anchors: PULP peaks at 304 GOPS/W consuming 1.48 mW ...
    peak = result.pulp_peak
    assert peak.gops_per_watt == pytest.approx(304, rel=0.08)
    assert peak.power == pytest.approx(1.48e-3, rel=0.08)
    assert peak.voltage == 0.5

    # ... while the MCUs stay below 5 GOPS/W, except the Apollo at
    # ~10 GOPS/W on a low-performance ~24 MOPS operating point.
    for point in result.mcu_points:
        if point.device == "Ambiq Apollo":
            assert point.gops_per_watt == pytest.approx(10, rel=0.15)
            assert point.gops * 1e3 == pytest.approx(24, rel=0.2)
        else:
            assert point.gops_per_watt < 5

    # "a gain of 1.5 orders of magnitude in energy efficiency".
    assert 20 < result.efficiency_gap() < 60
