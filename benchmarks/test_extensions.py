"""Benches for the extension models: DES executor validation, noisy-link
overhead, DVFS policies, and the ISS-vs-model bridge."""

import numpy as np

from repro.core.dvfs import DvfsController, DvfsPolicy
from repro.isa.or10n import Or10nTarget
from repro.kernels.matmul import MatmulKernel
from repro.kernels.svm import SvmKernel
from repro.link.noise import NoisyChannel, RetransmittingSender
from repro.link.protocol import Command, Frame
from repro.machine.programs import run_matmul_i8
from repro.power.activity import ActivityProfile
from repro.pulp.executor import CycleLevelExecutor
from repro.units import mw

from .conftest import save_result


def test_des_executor_validation(benchmark, results_dir):
    """Cycle-level cluster vs analytic model on scaled-down kernels."""

    def run():
        rows = []
        for kernel in (MatmulKernel("char", n=16),
                       MatmulKernel("fixed", n=16),
                       SvmKernel("linear", dimensions=32, support_vectors=8,
                                 test_vectors=8, classes=4)):
            executor = CycleLevelExecutor(Or10nTarget(), threads=4)
            result = executor.execute(kernel.build_program())
            rows.append((kernel.name, result.wall_cycles,
                         result.analytic_cycles, result.deviation))
        return rows

    rows = benchmark(run)
    lines = ["DES cluster vs analytic timing (4 threads, small configs):",
             f"  {'kernel':16s} {'DES':>10s} {'analytic':>10s} {'dev':>7s}"]
    for name, des, analytic, deviation in rows:
        lines.append(f"  {name:16s} {des:10,.0f} {analytic:10,.0f} "
                     f"{deviation:6.1%}")
    save_result(results_dir, "extension_des_validation", "\n".join(lines))
    for name, _, _, deviation in rows:
        assert deviation < 0.05, name


def test_noisy_link_overhead(benchmark, results_dir):
    """Retransmission overhead vs bit error rate (failure injection)."""

    def run():
        rows = []
        for ber in (1e-6, 1e-5, 1e-4, 5e-4):
            sender = RetransmittingSender(NoisyChannel(ber, seed=13),
                                          max_attempts=256)
            for index in range(12):
                frame = Frame(Command.WRITE_DATA, index * 512, bytes(512))
                sender.send(frame)
            rows.append((ber, sender.retransmission_overhead))
        return rows

    rows = benchmark(run)
    lines = ["retransmission overhead vs BER (512-byte frames):"]
    for ber, overhead in rows:
        lines.append(f"  BER {ber:8.0e}: +{overhead:6.1%} wire traffic")
    save_result(results_dir, "extension_noisy_link", "\n".join(lines))
    overheads = [overhead for _, overhead in rows]
    assert overheads[0] <= overheads[-1]
    assert overheads[0] < 0.05


def test_dvfs_policies(benchmark, results_dir):
    """Race-to-idle vs pace-to-deadline across deadline slack."""
    controller = DvfsController()
    activity = ActivityProfile.matmul()
    cycles = 2e6

    def run():
        rows = []
        for period in (12e-3, 25e-3, 50e-3, 100e-3):
            race = controller.evaluate(DvfsPolicy.RACE_TO_IDLE, cycles,
                                       period, activity, power_budget=mw(10))
            pace = controller.evaluate(DvfsPolicy.PACE_TO_DEADLINE, cycles,
                                       period, activity)
            rows.append((period, race.energy, pace.energy))
        return rows

    rows = benchmark(run)
    lines = ["DVFS: energy per period, 2M cycles of work:",
             f"  {'period':>8s} {'race-to-idle':>14s} {'pace':>10s} {'winner':>8s}"]
    for period, race, pace in rows:
        winner = "pace" if pace < race else "race"
        lines.append(f"  {period * 1e3:6.0f}ms {race * 1e6:12.1f}uJ "
                     f"{pace * 1e6:8.1f}uJ {winner:>8s}")
    save_result(results_dir, "extension_dvfs", "\n".join(lines))
    # With slack, pacing at low voltage always wins on this leakage model.
    assert rows[-1][2] < rows[-1][1]


def test_multicore_iss_parallel_speedup(benchmark, results_dir):
    """Instruction-level Figure 4 (right): the lockstep 4-core cluster
    on a row-partitioned assembly matmul."""
    from repro.machine.programs import run_matmul_i8_parallel

    kernel = MatmulKernel("char", n=16)
    inputs = kernel.generate_inputs(4)
    expected = kernel.compute(inputs)["c"]
    _, single = run_matmul_i8(inputs["a"], inputs["b"])

    out, multi = benchmark(run_matmul_i8_parallel, inputs["a"], inputs["b"])
    assert np.array_equal(out, expected)
    speedup = single.cycles / multi.wall_cycles
    save_result(results_dir, "extension_multicore_iss",
                f"lockstep 4-core ISS, 16x16 char matmul:\n"
                f"  single-core {single.cycles:,.0f} cycles, "
                f"4-core wall {multi.wall_cycles:,} cycles\n"
                f"  parallel speedup {speedup:.2f}x "
                f"(analytic model: ~3.9x)\n"
                f"  bank conflict rate {multi.conflict_rate:.1%} over "
                f"{multi.bank_accesses:,} accesses")
    assert 3.4 < speedup <= 4.0


def test_mcu_efficiency_grid(benchmark, results_dir):
    """Figure 3's comparison extended to all ten kernels."""
    from repro.experiments import mcu_grid

    rows = benchmark(mcu_grid.run)
    save_result(results_dir, "extension_mcu_grid", mcu_grid.render(rows))
    gaps = {row.kernel: row.efficiency_gap for row in rows}
    # PULP wins everywhere; the slack narrows exactly where Figure 4
    # says OR10N loses its edge (hog), and peaks on the SIMD-friendly
    # integer kernels.
    assert all(gap > 5 for gap in gaps.values())
    assert gaps["hog"] == min(gaps.values())
    assert max(gaps.values()) > 25


def test_iss_bridge(benchmark, results_dir):
    """The ISS executes the real matmul and matches the kernel bit-exactly."""
    kernel = MatmulKernel("char", n=12)
    inputs = kernel.generate_inputs(3)
    expected = kernel.compute(inputs)["c"]

    out, result = benchmark(run_matmul_i8, inputs["a"], inputs["b"])
    assert np.array_equal(out, expected)
    save_result(results_dir, "extension_iss_bridge",
                f"OR10N-mini ISS, 12x12 char matmul:\n"
                f"  bit-exact vs analytic kernel: "
                f"{np.array_equal(out, expected)}\n"
                f"  {result.instructions:,} instructions, "
                f"{result.cycles:,.0f} cycles "
                f"({result.cycles / 12 ** 3:.2f} cycles/element)")
