"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one architectural knob and quantifies its effect on
a paper-level metric:

* SPI width (single vs quad) on offload efficiency;
* TCDM bank count on cluster contention;
* hardware loops and each OR10N ISA feature on architectural speedup;
* the HW synchronizer's few-cycle barrier vs a software barrier on the
  OpenMP overhead;
* the analytic timing model against the cycle-level cluster.
"""

import pytest

from repro.core.offload import OffloadCostModel
from repro.isa.costs import or10n_costs
from repro.isa.cortexm import CortexM4Target
from repro.isa.vop import OpKind
from repro.isa.or10n import Or10nTarget
from repro.isa.report import LoweredReport
from repro.isa.target import Target
from repro.kernels.matmul import MatmulKernel
from repro.kernels.registry import all_kernels
from repro.link.spi import SpiLink, SpiMode
from repro.pulp.binary import KernelBinary
from repro.pulp.cluster import Cluster
from repro.pulp.timing import ContentionModel, op_stream_from_report
from repro.power.activity import ActivityProfile
from repro.runtime.omp import DeviceOpenMp
from repro.runtime.overheads import OmpOverheads
from repro.units import mhz

from .conftest import save_result


def test_ablation_spi_width(benchmark, results_dir):
    """Quad SPI buys ~4x link bandwidth; how much offload efficiency?"""
    program = MatmulKernel("char").build_program()
    binary = KernelBinary.from_program(program)
    omp = DeviceOpenMp(Or10nTarget(), 4)
    execution = omp.execute(program)
    activity = ActivityProfile.compute(4, execution.memory_intensity)

    def efficiency(mode):
        model = OffloadCostModel(link=SpiLink(mode))
        timing = model.offload_timing(
            binary_bytes=binary.image_bytes,
            input_bytes=program.input_bytes,
            output_bytes=program.output_bytes,
            compute_cycles=execution.wall_cycles,
            pulp_frequency=mhz(150), pulp_voltage=0.65,
            activity=activity, host_frequency=mhz(16), iterations=32)
        return timing.efficiency

    single, quad = benchmark(
        lambda: (efficiency(SpiMode.SINGLE), efficiency(SpiMode.QUAD)))
    save_result(results_dir, "ablation_spi_width",
                f"matmul offload efficiency at host 16 MHz, 32 iterations:\n"
                f"  single SPI: {single:.1%}\n  quad SPI:   {quad:.1%}")
    assert quad > single
    assert quad > 1.5 * single


def test_ablation_tcdm_banks(benchmark, results_dir):
    """Word-interleaved banking: contention vs bank count (DES)."""

    def run_with_banks(banks):
        cluster = Cluster(banks=banks)
        streams = []
        for core in range(4):
            report = LoweredReport("x", cycles=3000.0, memory_accesses=1800.0)
            streams.append(op_stream_from_report(report, core_index=core,
                                                 pattern="random"))
        return cluster.run(streams).wall_cycles / 3000.0

    factors = benchmark(lambda: {b: run_with_banks(b) for b in (2, 4, 8, 16)})
    lines = ["TCDM bank-count ablation (4 cores, 60% memory intensity):"]
    for banks, factor in factors.items():
        lines.append(f"  {banks:2d} banks: {factor:.3f}x slowdown")
    save_result(results_dir, "ablation_tcdm_banks", "\n".join(lines))
    assert factors[2] > factors[8]
    assert factors[16] < 1.2


def test_ablation_or10n_features(benchmark, results_dir):
    """Per-feature breakdown of the OR10N architectural speedup."""
    program = MatmulKernel("char").build_program()
    m4_cycles = CortexM4Target().lower(program).cycles

    variants = {
        "full OR10N": or10n_costs(),
        "no hardware loops": or10n_costs().with_overrides(hardware_loops=0),
        "no post-increment": or10n_costs().with_overrides(addr_folded=False),
        "no SIMD": or10n_costs().with_overrides(simd={}),
        "2-cycle MAC": or10n_costs().with_overrides(
            op_cycles={**dict(or10n_costs().op_cycles), OpKind.MAC: 2.0}),
    }

    def compute():
        return {name: m4_cycles / Target(costs).lower(program).cycles
                for name, costs in variants.items()}

    speedups = benchmark(compute)
    lines = ["architectural speedup of matmul (char) vs Cortex-M4:"]
    for name, value in speedups.items():
        lines.append(f"  {name:20s} {value:.2f}x")
    save_result(results_dir, "ablation_or10n_features", "\n".join(lines))
    full = speedups["full OR10N"]
    for name, value in speedups.items():
        if name != "full OR10N":
            assert value < full, name


def test_ablation_barrier_cost(benchmark, results_dir):
    """HW synchronizer (~100-cycle barriers) vs a software barrier
    (~1k cycles) on the mean OpenMP runtime overhead."""

    def mean_overhead(barrier_cycles):
        overheads = OmpOverheads(barrier=barrier_cycles)
        omp = DeviceOpenMp(Or10nTarget(), 4, overheads=overheads)
        fractions = [omp.execute(k.build_program()).overhead_fraction
                     for k in all_kernels()]
        return sum(fractions) / len(fractions)

    hw, sw = benchmark(lambda: (mean_overhead(100.0), mean_overhead(1200.0)))
    save_result(results_dir, "ablation_barrier_cost",
                f"mean OpenMP runtime overhead across the 10 benchmarks:\n"
                f"  HW synchronizer barrier (100 cy): {hw:.2%}\n"
                f"  software barrier (1200 cy):       {sw:.2%}")
    assert sw > hw


def test_cycle_breakdown(benchmark, results_dir):
    """Where each target spends its cycles (mechanism drill-down)."""
    from repro.experiments import cycle_breakdown

    rows = benchmark(cycle_breakdown.run)
    text = "\n\n".join(cycle_breakdown.render(rows, target=t)
                       for t in ("or10n", "cortex-m4"))
    save_result(results_dir, "cycle_breakdown", text)
    by_key = {(r.kernel, r.target): r for r in rows}
    # hog's software 64-bit arithmetic dominates OR10N only.
    assert by_key[("hog", "or10n")].share("wide64") > 0.35
    assert by_key[("hog", "cortex-m4")].share("wide64") < \
        by_key[("hog", "or10n")].share("wide64")


def test_ablation_analytic_vs_des(benchmark, results_dir):
    """Cross-validation: the analytic contention model against the
    cycle-level cluster across the intensity range."""

    def compare():
        rows = []
        for intensity in (0.2, 0.4, 0.6, 0.8):
            cycles = 3000.0
            streams = []
            for core in range(4):
                report = LoweredReport("x", cycles=cycles,
                                       memory_accesses=cycles * intensity)
                streams.append(op_stream_from_report(
                    report, core_index=core, pattern="random"))
            des = Cluster().run(streams).wall_cycles / cycles
            analytic = ContentionModel().stall_factor(4, intensity)
            rows.append((intensity, des, analytic))
        return rows

    rows = benchmark(compare)
    lines = ["analytic vs discrete-event contention factor (4 cores):",
             "  intensity   DES     analytic"]
    for intensity, des, analytic in rows:
        lines.append(f"  {intensity:9.1f}   {des:.3f}   {analytic:.3f}")
    save_result(results_dir, "ablation_analytic_vs_des", "\n".join(lines))
    for intensity, des, analytic in rows:
        assert des == pytest.approx(analytic, abs=0.07)
