"""Benchmark: regenerate Table I (benchmark kernel summary)."""

import pytest

from repro.experiments import table1

from .conftest import save_result


def test_table1(benchmark, results_dir):
    rows = benchmark(table1.run)
    save_result(results_dir, "table1", table1.render(rows))
    from repro.experiments.store import save_results
    save_results(rows, results_dir / "table1.json",
                 metadata={"experiment": "table1"})

    by_name = {row.name: row for row in rows}
    # RISC-op anchors from the paper (hog is the documented deviation).
    assert by_name["matmul"].risc_ops == pytest.approx(2.4e6, rel=0.05)
    assert by_name["matmul (short)"].risc_ops == pytest.approx(2.4e6, rel=0.05)
    assert by_name["matmul (fixed)"].risc_ops == pytest.approx(2.7e6, rel=0.05)
    assert by_name["strassen"].risc_ops == pytest.approx(2.3e6, rel=0.05)
    assert by_name["svm (linear)"].risc_ops == pytest.approx(650e3, rel=0.08)
    assert by_name["svm (poly)"].risc_ops == pytest.approx(684e3, rel=0.08)
    assert by_name["svm (RBF)"].risc_ops == pytest.approx(781e3, rel=0.08)
    assert by_name["cnn"].risc_ops == pytest.approx(3.3e6, rel=0.08)
    assert by_name["cnn (approx)"].risc_ops == pytest.approx(2.6e6, rel=0.08)
    assert 0.6 * 31e6 < by_name["hog"].risc_ops < 1.1 * 31e6

    # I/O sizes match the paper exactly (within rounding of its kB units).
    for row in rows:
        assert row.input_bytes == pytest.approx(row.paper_input_bytes,
                                                rel=0.05)
        assert row.output_bytes == pytest.approx(row.paper_output_bytes,
                                                 rel=0.05)
