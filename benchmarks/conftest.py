"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, asserts
its headline anchors, times the computation with pytest-benchmark, and
writes the rendered text into ``results/`` next to this directory so the
reproduction artifacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one rendered table/figure and echo it."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {name} (saved to {path}) ===")
    print(text)
