"""Bench: the Figure-5b plateau matrix across all ten benchmarks.

The paper shows one benchmark's curves; this supplementary matrix shows
every kernel's serial-efficiency plateau per host clock, separating the
compute-dense kernels (cnn, hog, svm — high plateaus) from the
transfer-bound linear-algebra ones.
"""


from repro.experiments import figure5
from repro.kernels.registry import all_kernels
from repro.units import mhz

from .conftest import save_result

_FREQUENCIES = (mhz(2), mhz(8), mhz(26))


def _matrix():
    rows = {}
    for kernel in all_kernels():
        result = figure5.run_figure5b(
            kernel=kernel, host_frequencies=_FREQUENCIES,
            iteration_counts=(1, 32, 256))
        rows[kernel.name] = {
            frequency: result.plateau(frequency, double_buffered=False)
            for frequency in _FREQUENCIES}
    return rows


def test_figure5b_matrix(benchmark, results_dir):
    rows = benchmark(_matrix)
    lines = ["serial-efficiency plateau (256 iterations/offload):",
             f"  {'kernel':16s}" + "".join(
                 f" {f / 1e6:5.0f}MHz" for f in _FREQUENCIES)]
    for name, row in rows.items():
        lines.append(f"  {name:16s}" + "".join(
            f" {row[f]:7.1%}" for f in _FREQUENCIES))
    save_result(results_dir, "figure5b_matrix", "\n".join(lines))

    # Compute-dense kernels approach full efficiency at the fast host;
    # the transfer-heavy matmuls stay link-bound there.
    assert rows["cnn"][mhz(26)] > 0.95
    assert rows["hog"][mhz(26)] > 0.8
    assert rows["matmul (short)"][mhz(26)] < 0.7
    # Every kernel degrades monotonically as the host (and the SPI
    # clock tied to it) slows down.
    for name, row in rows.items():
        assert row[mhz(2)] <= row[mhz(8)] <= row[mhz(26)], name
