"""Benchmark: regenerate Figure 5b (efficiency vs iterations/offload)."""


from repro.experiments import figure5
from repro.kernels.matmul import MatmulKernel
from repro.units import mhz

from .conftest import save_result


def test_figure5b(benchmark, results_dir):
    result = benchmark(figure5.run_figure5b)
    save_result(results_dir, "figure5b", figure5.render_figure5b(result))

    # "if the SPI link between the MCU and the accelerator is fast
    # enough, the computation time dominates and full efficiency can be
    # reached after as few as 32 iterations; this is the case of the two
    # configurations in which the STM32 is fastest (16MHz and 26MHz)".
    for frequency in (mhz(16), mhz(26)):
        curve = dict(result.curve(frequency, double_buffered=False))
        assert curve[32] > 0.9, frequency

    # "Conversely, if the bandwidth of the SPI link is too low, the
    # efficiency reaches a plateau."
    slow = dict(result.curve(mhz(2), double_buffered=False))
    assert slow[256] < 0.8
    assert abs(slow[256] - slow[128]) < 0.03

    # The rightmost plot: "traditional double buffering schemes can be
    # implemented to overlap data transfers with useful computation".
    for frequency in (mhz(2), mhz(4), mhz(8)):
        serial = result.plateau(frequency, double_buffered=False)
        overlapped = result.plateau(frequency, double_buffered=True)
        assert overlapped > serial, frequency


def test_figure5b_transfer_bound_counterpoint(benchmark, results_dir):
    """The same experiment on matmul: 12 kB of data per iteration makes
    the link the bottleneck at every slow operating point."""
    result = benchmark(figure5.run_figure5b, MatmulKernel("char"))
    save_result(results_dir, "figure5b_matmul",
                figure5.render_figure5b(result))
    # Transfer-bound: even 256 iterations cannot recover full efficiency
    # at the slow host clocks without double buffering.
    assert result.plateau(mhz(8), double_buffered=False) < 0.5
    assert result.plateau(mhz(26), double_buffered=True) > \
        result.plateau(mhz(26), double_buffered=False)
