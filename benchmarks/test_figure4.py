"""Benchmark: regenerate Figure 4 (architectural + parallel speedups)."""


from repro.experiments import figure4

from .conftest import save_result


def test_figure4(benchmark, results_dir):
    result = benchmark(figure4.run)
    save_result(results_dir, "figure4", figure4.render(result))

    by_name = {row.name: row for row in result.rows}

    # Left panel: "the integer tests ... show a speedup of 2-2.5x".
    for name in ("matmul", "matmul (short)", "strassen"):
        assert 2.0 <= by_name[name].arch_speedup_vs_m4 <= 2.6, name
    # "tests based on fixed-point computations cannot exploit the OR10N
    # microarchitectural enhancements to the same level".
    for name in ("matmul (fixed)", "svm (linear)", "svm (poly)",
                 "svm (RBF)", "cnn", "cnn (approx)"):
        assert by_name[name].arch_speedup_vs_m4 < 2.0, name
    # "the slight architectural slowdown" of hog.
    assert by_name["hog"].arch_speedup_vs_m4 < 1.0

    # Right panel: near-ideal parallel speedups with a small runtime
    # overhead (paper: 6% on average; see EXPERIMENTS.md for why our
    # coarse-region kernels land lower).
    for row in result.rows:
        assert 3.5 < row.parallel_speedup < 4.0, row.name
    assert 0.002 < result.mean_runtime_overhead < 0.06
