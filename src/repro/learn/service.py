"""The ``predicted`` serving backend: model-driven operating points.

:class:`PredictedServiceBook` closes the loop from
:mod:`repro.learn.models` back into :mod:`repro.serve`.  For every
kernel the fleet serves, the book

1. maps the Table-I benchmark to its corpus twin (the inverse of
   :data:`repro.learn.dataset.CORPUS`), computes the twin's static
   feature vector at the book's pinned iteration context, and asks the
   trained model for a configuration label;
2. if the model is confident, prices the *fast* tier at the predicted
   operating point — the predicted envelope budget, cluster size and
   schedule — through the exact same offload stack the analytic book
   uses;
3. otherwise falls back to the analytic fast-tier point.

Every decision is counted on the live :mod:`repro.obs` hub:
``learn.predictions`` (model-priced kernels), ``learn.fallbacks``
(low confidence / unknown kernel / unpriceable prediction).  The *eco*
tier and the host fallback stay analytic — the power-cap ladder must
keep its calibrated meaning regardless of the model.

Importing this module registers the ``predicted`` dispatch policy: a
shortest-predicted-service ordering (SJF through whatever book the
scheduler holds, i.e. through the learned operating points when paired
with this book).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.system import HeterogeneousSystem
from repro.errors import ConfigurationError
from repro.learn.dataset import CORPUS, label_knobs
from repro.learn.models import FittedModel, load_model
from repro.serve.fleet import (
    AnalyticServiceBook,
    ServiceProfile,
    register_service_book,
)
from repro.serve.scheduler import register_policy
from repro.units import mw

#: Minimum model confidence (ranked-first probability mass) before the
#: book trusts a prediction over the analytic operating point.
DEFAULT_CONFIDENCE = 0.5

#: Iteration context the per-kernel prediction is made at.  The book
#: prices a kernel once per tier, so one context must stand in for the
#: whole request stream; 8 is the pinned grid's midpoint.
DEFAULT_CONTEXT_ITERATIONS = 8

#: Table-I benchmark -> corpus twin (first corpus program per twin, in
#: corpus-name order — deterministic).
BENCHMARK_TWINS: Dict[str, str] = {}
for _program in sorted(CORPUS):
    BENCHMARK_TWINS.setdefault(CORPUS[_program][1], _program)


def predictor_from_file(path) -> FittedModel:
    """Load a trained model for serving, checking schema compatibility."""
    from repro.analysis import FEATURES_VERSION

    fitted = load_model(path)
    if fitted.features_version != FEATURES_VERSION:
        raise ConfigurationError(
            f"model {path} was trained on feature schema "
            f"v{fitted.features_version}, but this build extracts "
            f"v{FEATURES_VERSION} — rebuild the dataset and retrain")
    return fitted


class PredictedServiceBook(AnalyticServiceBook):
    """Prices the fast tier at the model's predicted operating point."""

    def __init__(self, model: FittedModel,
                 confidence: float = DEFAULT_CONFIDENCE,
                 context_iterations: int = DEFAULT_CONTEXT_ITERATIONS,
                 host_mhz: float = 8.0):
        if not 0.0 <= confidence <= 1.0:
            raise ConfigurationError(
                f"confidence threshold must be in [0, 1]: {confidence}")
        if context_iterations < 1:
            raise ConfigurationError(
                f"context iterations must be >= 1: {context_iterations}")
        super().__init__(host_mhz=host_mhz)
        self.model = model
        self.confidence = confidence
        self.context_iterations = context_iterations
        #: kernel -> chosen label (None = analytic fallback), for
        #: reports and tests; one entry per priced kernel.
        self.decisions: Dict[str, Optional[str]] = {}
        self._systems: Dict[int, HeterogeneousSystem] = {}

    # -- the decision ------------------------------------------------------------

    def _decide(self, kernel_name: str) -> Optional[Dict[str, object]]:
        """Predicted knobs for *kernel_name*, or None to stay analytic."""
        from repro.learn.dataset import corpus_features
        from repro.obs import get_telemetry

        hub = get_telemetry()
        program = BENCHMARK_TWINS.get(kernel_name)
        if program is None:
            hub.count("learn.fallbacks", unit="decisions")
            self.decisions[kernel_name] = None
            return None
        features = corpus_features(program, self.context_iterations)
        ranked = self.model.ranked(features)
        label, confidence = ranked[0]
        if confidence < self.confidence:
            hub.count("learn.fallbacks", unit="decisions")
            self.decisions[kernel_name] = None
            return None
        try:
            knobs = label_knobs(label)
        except ConfigurationError:
            hub.count("learn.fallbacks", unit="decisions")
            self.decisions[kernel_name] = None
            return None
        hub.count("learn.predictions", unit="decisions")
        self.decisions[kernel_name] = label
        return knobs

    def _system_for(self, cluster_size: int) -> HeterogeneousSystem:
        system = self._systems.get(cluster_size)
        if system is None:
            system = HeterogeneousSystem(threads=cluster_size)
            self._systems[cluster_size] = system
        return system

    # -- pricing -----------------------------------------------------------------

    def _build(self, kernel_name: str, tier: str) -> ServiceProfile:
        from repro.obs import Telemetry, use_telemetry

        knobs = self._decide(kernel_name) if tier == "fast" else None
        with use_telemetry(Telemetry(enabled=False)):
            if knobs is None:
                return self._build_quiet(kernel_name, tier)
            try:
                return self._build_quiet(
                    kernel_name, tier,
                    budget=mw(knobs["budget_mw"]),
                    system=self._system_for(knobs["cluster_size"]),
                    double_buffered=knobs["double_buffered"])
            except ConfigurationError:
                # The predicted point does not close an envelope here
                # (e.g. a different host clock than the training grid):
                # serve analytically rather than fail the fleet.
                self.decisions[kernel_name] = None
        from repro.obs import get_telemetry

        get_telemetry().count("learn.infeasible", unit="decisions")
        with use_telemetry(Telemetry(enabled=False)):
            return self._build_quiet(kernel_name, tier)


def _predicted_select(scheduler, now: float) -> int:
    """Shortest predicted service first (stable on queue order)."""
    return min(range(len(scheduler.queue)),
               key=lambda i: (scheduler.book.estimate(scheduler.queue[i]), i))


register_policy("predicted", _predicted_select)
register_service_book(
    "predicted", lambda **kwargs: PredictedServiceBook(**kwargs))
