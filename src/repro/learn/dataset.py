"""Deterministic labeled datasets: program features -> oracle-best config.

One dataset row is one *(corpus program, iterations context)* pair:

- **features** — :func:`repro.analysis.features` of the program's
  machine code (SPMD programs analyzed at their canonical 4-core
  launch), unified onto the ``cores >= 2`` schema (absent concurrency
  phenomena report 0), plus the ``context.iterations`` column;
- **label** — the candidate configuration with the lowest
  energy-delay product (EDP) when the program's Table-I benchmark twin
  is swept over the pinned candidate grid through
  :class:`repro.dse.ExplorationEngine`;
- **candidates** — energy/latency/EDP of *every* candidate, kept so
  :mod:`repro.learn.eval` can price any prediction's regret against
  the oracle without re-running the models.

The candidate grid is pinned (host 8 MHz, quad tied SPI, budgets x
cluster sizes x schedule) and chosen to be feasible everywhere, so a
predicted label always prices.  EDP is the selection objective because
pure energy is degenerate on this model family — the minimum-energy
point is the lowest budget for every kernel, leaving nothing to learn.

Everything is deterministic: same corpus, same grid, same model
version => bit-identical rows and the same content digest.  Datasets
persist through :mod:`repro.experiments.store`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.features import FEATURES_VERSION, feature_schema, features
from repro.dse import (
    ExplorationEngine,
    MODEL_VERSION,
    ParameterSpace,
    ResultCache,
    to_rows,
)
from repro.errors import ConfigurationError

#: Document schema tag of a persisted dataset.
DATASET_SCHEMA = "repro.learn/dataset-v1"

#: Corpus program -> (registry kind, Table-I benchmark twin).  The twin
#: supplies the cost-model labels and names the leave-one-kernel-out
#: group; programs sharing a twin are held out together.  IO-bound
#: streaming programs map to the IO-bound Table-I kernels and the
#: compute-dense programs to cnn/hog, matching their static
#: ``mix.ops_per_mem`` signatures.
CORPUS: Dict[str, Tuple[str, str]] = {
    "memcpy_words": ("builtin", "matmul (short)"),
    "vector_add_i8": ("builtin", "strassen"),
    "dot_product_i8": ("builtin", "svm (linear)"),
    "matmul_i8": ("builtin", "matmul"),
    "matmul_rows_i8": ("builtin", "matmul (fixed)"),
    "dwconv3_i8": ("builtin", "cnn"),
    "fir8_i32": ("builtin", "cnn (approx)"),
    "mag_hist_i32": ("builtin", "hog"),
    "vector_add_sync_i8": ("spmd", "strassen"),
    "matmul_rows_sync_i8": ("spmd", "matmul (fixed)"),
    "conv_cols_i32": ("spmd", "svm (RBF)"),
}

#: The pinned candidate grid (all-feasible at an 8 MHz host).
HOST_MHZ = 8.0
BUDGETS_MW: Tuple[float, ...] = (5.0, 8.0, 12.0, 20.0, 32.0)
CLUSTER_SIZES: Tuple[int, ...] = (1, 2, 4)
SCHEDULES: Tuple[bool, ...] = (False, True)
ITERATION_CONTEXTS: Tuple[int, ...] = (1, 8, 64)

#: Reduced grid for smoke datasets (``--tiny``): same structure, fewer
#: candidates and contexts, still non-degenerate.
TINY_BUDGETS_MW: Tuple[float, ...] = (5.0, 8.0, 20.0, 32.0)
TINY_CLUSTER_SIZES: Tuple[int, ...] = (1, 4)
TINY_SCHEDULES: Tuple[bool, ...] = (False, True)
TINY_ITERATION_CONTEXTS: Tuple[int, ...] = (1, 64)


def config_label(budget_mw: float, cluster_size: int,
                 double_buffered: bool) -> str:
    """Canonical class label of one candidate configuration."""
    schedule = "dbuf" if double_buffered else "sbuf"
    return f"b{budget_mw:g}/c{cluster_size}/{schedule}"


def label_knobs(label: str) -> Dict[str, Any]:
    """Parse a class label back into its knob values."""
    try:
        budget, cluster, schedule = label.split("/")
        if not (budget.startswith("b") and cluster.startswith("c")):
            raise ValueError(label)
        if schedule not in ("dbuf", "sbuf"):
            raise ValueError(label)
        return {
            "budget_mw": float(budget[1:]),
            "cluster_size": int(cluster[1:]),
            "double_buffered": schedule == "dbuf",
        }
    except ValueError:
        raise ConfigurationError(f"malformed config label {label!r}")


@dataclass(frozen=True)
class DatasetRow:
    """One labeled example."""

    program: str
    kind: str
    benchmark: str          #: Table-I twin; also the LOKO group key.
    iterations: int
    features: Dict[str, float]
    label: str              #: EDP-best candidate's class label.
    oracle: Dict[str, float]
    #: label -> {"feasible", "energy_per_iteration_j",
    #:           "time_per_iteration_s", "edp"} for every candidate.
    candidates: Dict[str, Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "kind": self.kind,
            "benchmark": self.benchmark,
            "iterations": self.iterations,
            "features": dict(self.features),
            "label": self.label,
            "oracle": dict(self.oracle),
            "candidates": {k: dict(v) for k, v in self.candidates.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DatasetRow":
        return cls(
            program=payload["program"],
            kind=payload["kind"],
            benchmark=payload["benchmark"],
            iterations=int(payload["iterations"]),
            features=dict(payload["features"]),
            label=payload["label"],
            oracle=dict(payload["oracle"]),
            candidates={k: dict(v)
                        for k, v in payload["candidates"].items()},
        )


@dataclass
class Dataset:
    """A labeled dataset plus everything needed to reproduce it."""

    feature_names: Tuple[str, ...]
    rows: List[DatasetRow]
    features_version: int = FEATURES_VERSION
    model_version: str = MODEL_VERSION
    objective: str = "edp"
    space: Dict[str, Any] = field(default_factory=dict)

    @property
    def labels(self) -> Tuple[str, ...]:
        """Every candidate class label, sorted."""
        seen = set()
        for row in self.rows:
            seen.update(row.candidates)
        return tuple(sorted(seen))

    @property
    def digest(self) -> str:
        """Content hash over the rows and feature schema."""
        blob = json.dumps(
            {"schema": DATASET_SCHEMA,
             "features_version": self.features_version,
             "model_version": self.model_version,
             "objective": self.objective,
             "feature_names": list(self.feature_names),
             "space": self.space,
             "rows": [row.to_dict() for row in self.rows]},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def matrix(self) -> List[List[float]]:
        """Feature matrix in ``feature_names`` column order."""
        return [[float(row.features[name]) for name in self.feature_names]
                for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": DATASET_SCHEMA,
            "features_version": self.features_version,
            "model_version": self.model_version,
            "objective": self.objective,
            "feature_names": list(self.feature_names),
            "space": self.space,
            "digest": self.digest,
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Dataset":
        if payload.get("schema") != DATASET_SCHEMA:
            raise ConfigurationError(
                f"not a {DATASET_SCHEMA} document: "
                f"schema={payload.get('schema')!r}")
        dataset = cls(
            feature_names=tuple(payload["feature_names"]),
            rows=[DatasetRow.from_dict(row) for row in payload["rows"]],
            features_version=int(payload["features_version"]),
            model_version=payload["model_version"],
            objective=payload.get("objective", "edp"),
            space=dict(payload.get("space", {})),
        )
        recorded = payload.get("digest")
        if recorded is not None and recorded != dataset.digest:
            raise ConfigurationError(
                "dataset digest mismatch: stored "
                f"{recorded[:12]}..., recomputed {dataset.digest[:12]}... "
                "(corrupt file or drifted schema)")
        return dataset


def corpus_features(program: str,
                    iterations: int) -> Dict[str, float]:
    """The unified feature vector of one corpus program + context.

    Builtins are analyzed single-core and their absent ``concurrency.*``
    columns report 0; SPMD programs are analyzed at their canonical
    4-core launch.  ``context.iterations`` carries the offload context.
    """
    kind, _ = _corpus_entry(program)
    if kind == "builtin":
        from repro.machine.programs import BUILTIN_PROGRAMS

        registered = BUILTIN_PROGRAMS[program]
        raw = features(registered.unit, name=program,
                       entry_regs=registered.entry_regs)
    else:
        from repro.machine.parallel import PARALLEL_PROGRAMS

        registered = PARALLEL_PROGRAMS[program]
        raw = features(registered.unit, name=program,
                       entry_regs=registered.entry_regs, cores=4,
                       presets=registered.presets(4),
                       dma_out=registered.dma_out)
    unified = {name: float(raw.get(name, 0.0))
               for name in feature_schema(cores=4)}
    unified["context.iterations"] = float(iterations)
    return unified


def _corpus_entry(program: str) -> Tuple[str, str]:
    try:
        return CORPUS[program]
    except KeyError:
        raise ConfigurationError(
            f"unknown corpus program {program!r}; "
            f"known: {sorted(CORPUS)}") from None


def dataset_feature_names() -> Tuple[str, ...]:
    """Column order of every dataset built by :func:`build_dataset`."""
    return tuple(sorted(feature_schema(cores=4) + ("context.iterations",)))


def build_dataset(programs: Optional[Sequence[str]] = None,
                  tiny: bool = False,
                  cache: Optional[ResultCache] = None,
                  jobs: int = 1) -> Dataset:
    """Sweep the corpus through the DSE engine and label every row.

    One :class:`~repro.dse.ParameterSpace` covers every (benchmark,
    context, candidate) triple; the engine deduplicates identical
    configurations, optionally persists them in *cache*, and the rows
    come back in corpus order regardless of *jobs*.
    """
    names = list(programs) if programs is not None else sorted(CORPUS)
    budgets = TINY_BUDGETS_MW if tiny else BUDGETS_MW
    clusters = TINY_CLUSTER_SIZES if tiny else CLUSTER_SIZES
    schedules = TINY_SCHEDULES if tiny else SCHEDULES
    contexts = TINY_ITERATION_CONTEXTS if tiny else ITERATION_CONTEXTS
    benchmarks = sorted({_corpus_entry(name)[1] for name in names})
    grid = {
        "kernel": benchmarks,
        "host_mhz": [HOST_MHZ],
        "budget_mw": list(budgets),
        "cluster_size": list(clusters),
        "double_buffered": list(schedules),
        "iterations": list(contexts),
    }
    space = ParameterSpace.from_dict({"grid": grid})
    engine = ExplorationEngine(cache=cache, jobs=jobs)
    result = engine.run(space)
    # (benchmark, iterations) -> label -> candidate pricing.
    priced: Dict[Tuple[str, int], Dict[str, Dict[str, Any]]] = {}
    for record in to_rows(result):
        key = (record["knob.kernel"], record["knob.iterations"])
        label = config_label(record["knob.budget_mw"],
                             record["knob.cluster_size"],
                             record["knob.double_buffered"])
        entry: Dict[str, Any] = {"feasible": record["feasible"]}
        if record["feasible"]:
            energy = record["metric.energy_per_iteration_j"]
            time = record["metric.time_per_iteration_s"]
            entry.update({
                "energy_per_iteration_j": energy,
                "time_per_iteration_s": time,
                "edp": energy * time,
            })
        priced.setdefault(key, {})[label] = entry
    feature_names = dataset_feature_names()
    rows: List[DatasetRow] = []
    for name in names:
        kind, benchmark = _corpus_entry(name)
        for iterations in contexts:
            candidates = priced[(benchmark, iterations)]
            feasible = {label: entry
                        for label, entry in candidates.items()
                        if entry["feasible"]}
            if not feasible:
                raise ConfigurationError(
                    f"no feasible candidate for {benchmark} "
                    f"x{iterations} — the pinned grid must stay "
                    "all-feasible")
            best = min(sorted(feasible),
                       key=lambda label: feasible[label]["edp"])
            oracle = {"label": best, **feasible[best]}
            oracle.pop("feasible", None)
            rows.append(DatasetRow(
                program=name, kind=kind, benchmark=benchmark,
                iterations=iterations,
                features=corpus_features(name, iterations),
                label=best, oracle=oracle,
                candidates={label: candidates[label]
                            for label in sorted(candidates)}))
    return Dataset(feature_names=feature_names, rows=rows,
                   space={"grid": grid, "tiny": tiny,
                          "programs": names})


def save_dataset(dataset: Dataset, path) -> None:
    """Persist through the experiment store (metadata + results)."""
    from repro.experiments.store import save_results

    save_results(dataset.to_dict(), path,
                 metadata={"schema": DATASET_SCHEMA,
                           "digest": dataset.digest,
                           "rows": len(dataset.rows)})


def load_dataset(path) -> Dataset:
    """Load a persisted dataset, verifying its content digest."""
    from repro.experiments.store import load_results

    return Dataset.from_dict(load_results(path)["results"])
