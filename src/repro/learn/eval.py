"""Leave-one-kernel-out evaluation against the DSE oracle.

The honest measurement: folds are grouped by the row's Table-I
benchmark twin, so a model is always scored on a kernel *family* it
never saw during training — the deployment scenario (an unseen kernel
arrives at the serving runtime) rather than a shuffled split that
leaks near-identical program variants across the boundary.

Three numbers matter per model:

- **top-1 / top-k accuracy** — did the predicted configuration match
  the oracle's EDP-best choice (or appear in the model's first k)?
- **regret** — when it did not, how much worse was the predicted
  configuration, priced from the dataset's stored candidate table:
  ``max(0, predicted/oracle - 1)`` on EDP, energy per iteration and
  latency per iteration.  A prediction that is cheaper than the
  oracle's choice on a secondary metric counts as zero regret.
- **importances** — which static features the full-data tree actually
  split on.

Everything is deterministic: same dataset => bit-identical report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.learn.dataset import Dataset, DatasetRow
from repro.learn.models import train_model

#: Report schema tag (the ``--json`` surface of ``repro learn eval``).
EVAL_SCHEMA = "repro.learn/eval-v1"

#: Model kinds evaluated by default, strongest first.
DEFAULT_KINDS: Tuple[str, ...] = ("tree", "ridge", "dummy")


def loko_folds(dataset: Dataset) -> List[Tuple[str, List[int], List[int]]]:
    """``(group, train_indices, test_indices)`` per benchmark group."""
    groups = sorted({row.benchmark for row in dataset.rows})
    folds = []
    for group in groups:
        test = [i for i, row in enumerate(dataset.rows)
                if row.benchmark == group]
        train = [i for i, row in enumerate(dataset.rows)
                 if row.benchmark != group]
        if not train:
            raise ConfigurationError(
                "leave-one-kernel-out needs at least two benchmark groups")
        folds.append((group, train, test))
    return folds


def _subset(dataset: Dataset, indices: Sequence[int]) -> Dataset:
    return Dataset(feature_names=dataset.feature_names,
                   rows=[dataset.rows[i] for i in indices],
                   features_version=dataset.features_version,
                   model_version=dataset.model_version,
                   objective=dataset.objective,
                   space=dataset.space)


def _regrets(row: DatasetRow, predicted: str) -> Dict[str, float]:
    """Regret of serving *row* at *predicted* instead of the oracle."""
    oracle = row.oracle
    entry = row.candidates.get(predicted)
    if entry is None or not entry.get("feasible"):
        # The pinned grid is all-feasible, so this only triggers for a
        # label from outside the grid: price it pessimistically at the
        # worst feasible candidate so the miss cannot hide.
        feasible = [c for c in row.candidates.values()
                    if c.get("feasible")]
        entry = max(feasible, key=lambda c: c["edp"])
    return {
        "edp": max(0.0, entry["edp"] / oracle["edp"] - 1.0),
        "energy": max(0.0, entry["energy_per_iteration_j"]
                      / oracle["energy_per_iteration_j"] - 1.0),
        "latency": max(0.0, entry["time_per_iteration_s"]
                       / oracle["time_per_iteration_s"] - 1.0),
    }


@dataclass
class ModelEval:
    """One model kind's cross-validated scorecard."""

    kind: str
    predictions: List[Dict[str, Any]] = field(default_factory=list)

    def _mean(self, metric: str) -> float:
        if not self.predictions:
            return 0.0
        return sum(p["regret"][metric] for p in self.predictions) \
            / len(self.predictions)

    def _max(self, metric: str) -> float:
        return max((p["regret"][metric] for p in self.predictions),
                   default=0.0)

    @property
    def top1_accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return sum(p["correct"] for p in self.predictions) \
            / len(self.predictions)

    @property
    def topk_accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return sum(p["in_topk"] for p in self.predictions) \
            / len(self.predictions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "top1_accuracy": self.top1_accuracy,
            "topk_accuracy": self.topk_accuracy,
            "mean_edp_regret": self._mean("edp"),
            "max_edp_regret": self._max("edp"),
            "mean_energy_regret": self._mean("energy"),
            "max_energy_regret": self._max("energy"),
            "mean_latency_regret": self._mean("latency"),
            "max_latency_regret": self._max("latency"),
            "predictions": list(self.predictions),
        }


@dataclass
class EvalReport:
    """The full leave-one-kernel-out report."""

    dataset_digest: str
    rows: int
    groups: List[str]
    topk: int
    models: Dict[str, ModelEval]
    importances: Dict[str, float]

    def model(self, kind: str) -> ModelEval:
        return self.models[kind]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": EVAL_SCHEMA,
            "dataset_digest": self.dataset_digest,
            "rows": self.rows,
            "groups": list(self.groups),
            "topk": self.topk,
            "models": {kind: evaluation.to_dict()
                       for kind, evaluation in sorted(self.models.items())},
            "importances": dict(sorted(self.importances.items(),
                                       key=lambda kv: (-kv[1], kv[0]))),
        }

    def render(self) -> str:
        lines = [
            f"leave-one-kernel-out over {self.rows} row(s), "
            f"{len(self.groups)} benchmark group(s) "
            f"(dataset {self.dataset_digest[:12]}...)",
            "",
            f"{'model':8s} {'top-1':>7s} {'top-' + str(self.topk):>7s} "
            f"{'EDP regret':>16s} {'energy regret':>16s} "
            f"{'latency regret':>16s}",
        ]
        for kind in sorted(self.models):
            ev = self.models[kind]
            lines.append(
                f"{kind:8s} {ev.top1_accuracy:7.1%} "
                f"{ev.topk_accuracy:7.1%} "
                f"{ev._mean('edp'):7.1%} mean "
                f"{ev._mean('energy'):9.1%} mean "
                f"{ev._mean('latency'):9.1%} mean")
        misses = [p for p in self.models["tree"].predictions
                  if not p["correct"]] if "tree" in self.models else []
        if misses:
            lines.append("")
            lines.append("tree misses:")
            for p in misses:
                lines.append(
                    f"  {p['program']:22s} x{p['iterations']:<3d} "
                    f"predicted {p['predicted']:14s} oracle "
                    f"{p['oracle']:14s} EDP +{p['regret']['edp']:.1%}")
        ranked = sorted(self.importances.items(),
                        key=lambda kv: (-kv[1], kv[0]))[:8]
        if ranked:
            lines.append("")
            lines.append("top feature importances (full-data tree):")
            for name, value in ranked:
                lines.append(f"  {name:40s} {value:6.1%}")
        return "\n".join(lines)


def evaluate(dataset: Dataset,
             kinds: Sequence[str] = DEFAULT_KINDS,
             topk: int = 3,
             model_params: Optional[Mapping[str, Mapping[str, Any]]] = None
             ) -> EvalReport:
    """Cross-validate every model kind on *dataset*."""
    if topk < 1:
        raise ConfigurationError(f"topk must be >= 1: {topk}")
    params = dict(model_params or {})
    folds = loko_folds(dataset)
    models = {kind: ModelEval(kind=kind) for kind in kinds}
    for group, train, test in folds:
        train_set = _subset(dataset, train)
        for kind in kinds:
            fitted = train_model(train_set, kind=kind,
                                 **params.get(kind, {}))
            for index in test:
                row = dataset.rows[index]
                ranked = fitted.ranked(row.features)
                predicted = ranked[0][0]
                top = [label for label, _ in ranked[:topk]]
                models[kind].predictions.append({
                    "program": row.program,
                    "iterations": row.iterations,
                    "group": group,
                    "predicted": predicted,
                    "confidence": ranked[0][1],
                    "oracle": row.label,
                    "correct": predicted == row.label,
                    "in_topk": row.label in top,
                    "regret": _regrets(row, predicted),
                })
    importances = {}
    if "tree" in models:
        importances = train_model(dataset, kind="tree",
                                  **params.get("tree", {})).importances()
    return EvalReport(dataset_digest=dataset.digest,
                      rows=len(dataset.rows),
                      groups=[group for group, _, _ in folds],
                      topk=topk, models=models, importances=importances)
