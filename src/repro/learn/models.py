"""Dependency-free, seeded learners with JSON-serializable state.

Three model families, one protocol: ``fit(matrix, labels)``,
``predict(vector) -> label``, ``ranked(vector) -> [(label, score)]``
(descending, deterministic tie-breaks), ``confidence(vector)`` and
``to_dict()/from_dict()``.  A fitted model is a plain JSON document —
reviewable in a diff, stable across reruns, loadable without pickling:

- :class:`DecisionTreeModel` — CART with Gini reduction-in-impurity
  splits; features scanned in column order, thresholds ascending, so
  fitting is bit-deterministic without any randomness;
- :class:`RidgeModel` — one-vs-rest ridge regression on standardized
  features (closed form via the normal equations);
- :class:`MajorityClassModel` — the majority-class dummy every real
  model must beat.

:func:`train_model` binds a model to a dataset's feature schema and
stamps the fitted document with ``features_version`` and the dataset
digest, so inference refuses drifted inputs instead of silently
misaligning columns.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Document schema tag of a persisted fitted model.
MODEL_SCHEMA = "repro.learn/model-v1"

Vector = Sequence[float]
Matrix = Sequence[Vector]


def _majority(counts: Mapping[str, int]) -> str:
    """Most frequent label; ties break to the lexicographically first."""
    return min(counts, key=lambda label: (-counts[label], label))


def _gini(counts: Mapping[str, int], total: int) -> float:
    if total == 0:
        return 0.0
    return 1.0 - sum((n / total) ** 2 for n in counts.values())


class MajorityClassModel:
    """Predicts the training majority class, always."""

    kind = "dummy"

    def __init__(self, seed: int = 1):
        self.seed = seed
        self.counts: Dict[str, int] = {}
        self.total = 0

    def fit(self, matrix: Matrix, labels: Sequence[str]) -> "MajorityClassModel":
        self.counts = {}
        for label in labels:
            self.counts[label] = self.counts.get(label, 0) + 1
        self.total = len(labels)
        if not self.total:
            raise ConfigurationError("cannot fit on an empty dataset")
        return self

    def ranked(self, vector: Vector) -> List[Tuple[str, float]]:
        return sorted(((label, count / self.total)
                       for label, count in self.counts.items()),
                      key=lambda item: (-item[1], item[0]))

    def predict(self, vector: Vector) -> str:
        return _majority(self.counts)

    def confidence(self, vector: Vector) -> float:
        return self.counts[_majority(self.counts)] / self.total

    def importances(self) -> Dict[str, float]:
        return {}

    def params(self) -> Dict[str, Any]:
        return {"seed": self.seed}

    def state_to_dict(self) -> Dict[str, Any]:
        return {"counts": dict(sorted(self.counts.items())),
                "total": self.total}

    def state_from_dict(self, state: Mapping[str, Any]) -> None:
        self.counts = dict(state["counts"])
        self.total = int(state["total"])


class DecisionTreeModel:
    """CART classifier with deterministic reduction-in-impurity splits."""

    kind = "tree"

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 2,
                 seed: int = 1):
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1: {max_depth}")
        if min_samples_leaf < 1:
            raise ConfigurationError(
                f"min_samples_leaf must be >= 1: {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.root: Optional[Dict[str, Any]] = None
        self._importance_raw: Dict[int, float] = {}
        self._columns = 0

    # -- fitting -----------------------------------------------------------------

    def fit(self, matrix: Matrix, labels: Sequence[str]) -> "DecisionTreeModel":
        rows = [list(map(float, row)) for row in matrix]
        if not rows:
            raise ConfigurationError("cannot fit on an empty dataset")
        self._columns = len(rows[0])
        self._importance_raw = {}
        self.root = self._grow(list(range(len(rows))), rows, list(labels),
                               depth=0)
        return self

    def _grow(self, indices: List[int], rows: List[List[float]],
              labels: List[str], depth: int) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for i in indices:
            counts[labels[i]] = counts.get(labels[i], 0) + 1
        leaf = {"counts": dict(sorted(counts.items()))}
        if depth >= self.max_depth or len(counts) == 1 \
                or len(indices) < 2 * self.min_samples_leaf:
            return leaf
        split = self._best_split(indices, rows, labels, counts)
        if split is None:
            return leaf
        feature, threshold, gain, left, right = split
        self._importance_raw[feature] = \
            self._importance_raw.get(feature, 0.0) + gain * len(indices)
        return {
            "feature": feature,
            "threshold": threshold,
            "left": self._grow(left, rows, labels, depth + 1),
            "right": self._grow(right, rows, labels, depth + 1),
        }

    def _best_split(self, indices: List[int], rows: List[List[float]],
                    labels: List[str], counts: Mapping[str, int]):
        total = len(indices)
        parent = _gini(counts, total)
        best = None
        best_gain = 1e-12     # require a real improvement
        for feature in range(self._columns):
            ordered = sorted(indices,
                             key=lambda i: (rows[i][feature], i))
            left_counts: Dict[str, int] = {}
            for position in range(1, total):
                prev = ordered[position - 1]
                label = labels[prev]
                left_counts[label] = left_counts.get(label, 0) + 1
                value, prev_value = (rows[ordered[position]][feature],
                                     rows[prev][feature])
                if value == prev_value:
                    continue
                if position < self.min_samples_leaf \
                        or total - position < self.min_samples_leaf:
                    continue
                right_counts = {label: counts[label]
                                - left_counts.get(label, 0)
                                for label in counts}
                weighted = (position / total
                            * _gini(left_counts, position)
                            + (total - position) / total
                            * _gini(right_counts, total - position))
                gain = parent - weighted
                if gain > best_gain:
                    best_gain = gain
                    threshold = (prev_value + value) / 2.0
                    best = (feature, threshold, gain,
                            ordered[:position], ordered[position:])
        return best

    # -- inference ---------------------------------------------------------------

    def _leaf(self, vector: Vector) -> Dict[str, Any]:
        if self.root is None:
            raise ConfigurationError("model is not fitted")
        node = self.root
        while "feature" in node:
            side = "left" if vector[node["feature"]] <= node["threshold"] \
                else "right"
            node = node[side]
        return node

    def ranked(self, vector: Vector) -> List[Tuple[str, float]]:
        counts = self._leaf(vector)["counts"]
        total = sum(counts.values())
        return sorted(((label, count / total)
                       for label, count in counts.items()),
                      key=lambda item: (-item[1], item[0]))

    def predict(self, vector: Vector) -> str:
        return self.ranked(vector)[0][0]

    def confidence(self, vector: Vector) -> float:
        return self.ranked(vector)[0][1]

    def importances(self) -> Dict[str, float]:
        total = sum(self._importance_raw.values())
        if not total:
            return {}
        return {str(feature): value / total
                for feature, value in sorted(self._importance_raw.items())}

    def params(self) -> Dict[str, Any]:
        return {"max_depth": self.max_depth,
                "min_samples_leaf": self.min_samples_leaf,
                "seed": self.seed}

    def state_to_dict(self) -> Dict[str, Any]:
        return {"root": self.root,
                "columns": self._columns,
                "importance": {str(k): v for k, v
                               in sorted(self._importance_raw.items())}}

    def state_from_dict(self, state: Mapping[str, Any]) -> None:
        self.root = state["root"]
        self._columns = int(state["columns"])
        self._importance_raw = {int(k): float(v)
                                for k, v in state["importance"].items()}


class RidgeModel:
    """One-vs-rest ridge regression on standardized features."""

    kind = "ridge"

    def __init__(self, alpha: float = 1.0, seed: int = 1):
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0: {alpha}")
        self.alpha = alpha
        self.seed = seed
        self.classes: List[str] = []
        self.mean: List[float] = []
        self.scale: List[float] = []
        self.weights: List[List[float]] = []   # class x (columns + 1)

    def fit(self, matrix: Matrix, labels: Sequence[str]) -> "RidgeModel":
        import numpy as np

        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2 or not data.size:
            raise ConfigurationError("cannot fit on an empty dataset")
        self.classes = sorted(set(labels))
        mean = data.mean(axis=0)
        scale = data.std(axis=0)
        scale[scale == 0.0] = 1.0
        standardized = (data - mean) / scale
        design = np.hstack([standardized,
                            np.ones((len(standardized), 1))])
        targets = np.array([[1.0 if label == cls else 0.0
                             for cls in self.classes]
                            for label in labels])
        penalty = self.alpha * np.eye(design.shape[1])
        penalty[-1, -1] = 0.0     # never shrink the intercept
        solution = np.linalg.solve(design.T @ design + penalty,
                                   design.T @ targets)
        self.mean = [float(v) for v in mean]
        self.scale = [float(v) for v in scale]
        self.weights = [[float(w) for w in solution[:, k]]
                        for k in range(len(self.classes))]
        return self

    def _scores(self, vector: Vector) -> List[float]:
        if not self.classes:
            raise ConfigurationError("model is not fitted")
        standardized = [(float(v) - m) / s for v, m, s
                        in zip(vector, self.mean, self.scale)]
        standardized.append(1.0)
        return [sum(w * x for w, x in zip(weights, standardized))
                for weights in self.weights]

    def ranked(self, vector: Vector) -> List[Tuple[str, float]]:
        scores = self._scores(vector)
        # Clamped scores renormalized into a pseudo-probability so the
        # confidence-fallback threshold means the same thing across
        # model kinds.
        clipped = [max(score, 0.0) for score in scores]
        total = sum(clipped)
        if total <= 0:
            shares = [1.0 / len(scores)] * len(scores)
        else:
            shares = [score / total for score in clipped]
        return sorted(zip(self.classes, shares),
                      key=lambda item: (-item[1], item[0]))

    def predict(self, vector: Vector) -> str:
        return self.ranked(vector)[0][0]

    def confidence(self, vector: Vector) -> float:
        return self.ranked(vector)[0][1]

    def importances(self) -> Dict[str, float]:
        if not self.weights:
            return {}
        columns = len(self.mean)
        magnitude = [sum(abs(weights[c]) for weights in self.weights)
                     for c in range(columns)]
        total = sum(magnitude)
        if not total:
            return {}
        return {str(c): magnitude[c] / total for c in range(columns)
                if magnitude[c]}

    def params(self) -> Dict[str, Any]:
        return {"alpha": self.alpha, "seed": self.seed}

    def state_to_dict(self) -> Dict[str, Any]:
        return {"classes": list(self.classes),
                "mean": list(self.mean),
                "scale": list(self.scale),
                "weights": [list(row) for row in self.weights]}

    def state_from_dict(self, state: Mapping[str, Any]) -> None:
        self.classes = list(state["classes"])
        self.mean = [float(v) for v in state["mean"]]
        self.scale = [float(v) for v in state["scale"]]
        self.weights = [[float(w) for w in row]
                        for row in state["weights"]]


MODEL_KINDS = {
    "dummy": MajorityClassModel,
    "tree": DecisionTreeModel,
    "ridge": RidgeModel,
}


class FittedModel:
    """A trained learner bound to its feature schema.

    Accepts feature dicts (aligned by name) or pre-ordered vectors,
    and carries the provenance needed to refuse drifted inputs:
    ``features_version`` plus the training dataset's digest.
    """

    def __init__(self, model, feature_names: Sequence[str],
                 features_version: int, dataset_digest: str,
                 labels: Sequence[str]):
        self.model = model
        self.feature_names = tuple(feature_names)
        self.features_version = features_version
        self.dataset_digest = dataset_digest
        self.labels = tuple(labels)

    @property
    def kind(self) -> str:
        return self.model.kind

    def vector(self, features: Mapping[str, float]) -> List[float]:
        """Align a feature dict onto the training column order."""
        missing = [name for name in self.feature_names
                   if name not in features]
        if missing:
            raise ConfigurationError(
                f"feature dict is missing {len(missing)} column(s), "
                f"e.g. {missing[:3]}")
        return [float(features[name]) for name in self.feature_names]

    def _as_vector(self, features) -> List[float]:
        if isinstance(features, Mapping):
            return self.vector(features)
        vector = [float(v) for v in features]
        if len(vector) != len(self.feature_names):
            raise ConfigurationError(
                f"expected {len(self.feature_names)} features, "
                f"got {len(vector)}")
        return vector

    def predict(self, features) -> str:
        return self.model.predict(self._as_vector(features))

    def ranked(self, features) -> List[Tuple[str, float]]:
        return self.model.ranked(self._as_vector(features))

    def confidence(self, features) -> float:
        return self.model.confidence(self._as_vector(features))

    def importances(self) -> Dict[str, float]:
        """Per-feature importances keyed by feature name."""
        raw = self.model.importances()
        return {self.feature_names[int(column)]: value
                for column, value in raw.items()}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": MODEL_SCHEMA,
            "kind": self.model.kind,
            "params": self.model.params(),
            "feature_names": list(self.feature_names),
            "features_version": self.features_version,
            "dataset_digest": self.dataset_digest,
            "labels": list(self.labels),
            "state": self.model.state_to_dict(),
        }


def train_model(dataset, kind: str = "tree", **params) -> FittedModel:
    """Fit one model *kind* on a :class:`~repro.learn.dataset.Dataset`."""
    try:
        factory = MODEL_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown model kind {kind!r}; known: "
            f"{sorted(MODEL_KINDS)}") from None
    model = factory(**params)
    model.fit(dataset.matrix(), [row.label for row in dataset.rows])
    return FittedModel(model, dataset.feature_names,
                       features_version=dataset.features_version,
                       dataset_digest=dataset.digest,
                       labels=dataset.labels)


def model_from_dict(payload: Mapping[str, Any]) -> FittedModel:
    """Rehydrate a fitted model from its JSON document."""
    if payload.get("schema") != MODEL_SCHEMA:
        raise ConfigurationError(
            f"not a {MODEL_SCHEMA} document: "
            f"schema={payload.get('schema')!r}")
    kind = payload.get("kind")
    if kind not in MODEL_KINDS:
        raise ConfigurationError(f"unknown model kind {kind!r}")
    model = MODEL_KINDS[kind](**payload.get("params", {}))
    model.state_from_dict(payload["state"])
    return FittedModel(model, payload["feature_names"],
                       features_version=int(payload["features_version"]),
                       dataset_digest=payload["dataset_digest"],
                       labels=payload.get("labels", ()))


def save_model(fitted: FittedModel, path) -> None:
    """Persist a fitted model through the experiment store."""
    from repro.experiments.store import save_results

    save_results(fitted.to_dict(), path,
                 metadata={"schema": MODEL_SCHEMA, "kind": fitted.kind,
                           "dataset_digest": fitted.dataset_digest})


def load_model(path) -> FittedModel:
    """Load a fitted model persisted by :func:`save_model`."""
    from repro.experiments.store import load_results

    return model_from_dict(load_results(path)["results"])
