"""``python -m repro learn`` — dataset / train / eval / predict.

Four subcommands cover the whole loop, each deterministic (same inputs
=> byte-identical outputs, including ``--json``):

- ``dataset`` sweeps the corpus through the DSE engine and writes the
  labeled dataset;
- ``train`` fits one model kind and writes its JSON document;
- ``eval`` runs the leave-one-kernel-out report and exits
  :data:`LEARN_EXIT_REGRET` when the primary model's mean energy
  regret breaches ``--max-regret``;
- ``predict`` ranks the candidate configurations for one corpus
  program + iteration context.
"""

from __future__ import annotations

import json

#: ``learn eval`` exit code when the primary model's mean energy regret
#: exceeds ``--max-regret``.
LEARN_EXIT_REGRET = 3


def _json_dump(payload) -> str:
    return json.dumps(payload, indent=2, sort_keys=True)


def _load_dataset(path):
    from repro.errors import ReproError
    from repro.learn.dataset import load_dataset

    try:
        return load_dataset(path)
    except (OSError, ReproError) as exc:
        raise SystemExit(f"learn: cannot load dataset {path}: {exc}")


def _cmd_dataset(args) -> str:
    from repro.dse import ResultCache
    from repro.learn.dataset import build_dataset, save_dataset

    programs = None
    if args.programs:
        programs = [name for name in
                    (token.strip() for token in args.programs.split(","))
                    if name]
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    dataset = build_dataset(programs=programs, tiny=args.tiny,
                            cache=cache, jobs=args.jobs)
    save_dataset(dataset, args.out)
    if getattr(args, "json", False):
        return _json_dump({
            "out": args.out,
            "rows": len(dataset.rows),
            "labels": list(dataset.labels),
            "feature_names": len(dataset.feature_names),
            "digest": dataset.digest,
            "tiny": args.tiny,
        })
    return (f"wrote {args.out}: {len(dataset.rows)} rows, "
            f"{len(dataset.labels)} classes, "
            f"{len(dataset.feature_names)} features "
            f"(digest {dataset.digest[:12]}...)")


def _cmd_train(args) -> str:
    from repro.learn.models import save_model, train_model

    dataset = _load_dataset(args.dataset)
    fitted = train_model(dataset, kind=args.model)
    save_model(fitted, args.out)
    importances = sorted(fitted.importances().items(),
                         key=lambda kv: (-kv[1], kv[0]))[:5]
    if getattr(args, "json", False):
        return _json_dump({
            "out": args.out,
            "kind": fitted.kind,
            "labels": list(fitted.labels),
            "dataset_digest": fitted.dataset_digest,
            "importances": dict(importances),
        })
    lines = [f"wrote {args.out}: {fitted.kind} over "
             f"{len(dataset.rows)} rows, {len(fitted.labels)} classes"]
    for name, value in importances:
        if value > 0:
            lines.append(f"  {name:40s} {value:6.1%}")
    return "\n".join(lines)


def _cmd_eval(args) -> str:
    from repro.learn.eval import DEFAULT_KINDS, evaluate

    dataset = _load_dataset(args.dataset)
    kinds = DEFAULT_KINDS
    if args.kinds:
        kinds = tuple(name for name in
                      (token.strip() for token in args.kinds.split(","))
                      if name)
    report = evaluate(dataset, kinds=kinds, topk=args.topk)
    primary = report.models[kinds[0]]
    regret = primary._mean("energy")
    if regret > args.max_regret:
        args._exit_code = LEARN_EXIT_REGRET
    if getattr(args, "json", False):
        payload = report.to_dict()
        payload["max_regret"] = args.max_regret
        payload["primary"] = kinds[0]
        payload["primary_mean_energy_regret"] = regret
        return _json_dump(payload)
    lines = [report.render(), "",
             f"gate: {kinds[0]} mean energy regret {regret:.1%} "
             f"vs ceiling {args.max_regret:.1%} -> "
             + ("FAIL" if regret > args.max_regret else "ok")]
    return "\n".join(lines)


def _cmd_predict(args) -> str:
    from repro.errors import ReproError
    from repro.learn.dataset import corpus_features, label_knobs
    from repro.learn.models import load_model

    try:
        fitted = load_model(args.model)
    except (OSError, ReproError) as exc:
        raise SystemExit(f"learn: cannot load model {args.model}: {exc}")
    try:
        features = corpus_features(args.program, args.iterations)
    except ReproError as exc:
        raise SystemExit(f"learn: {exc}")
    ranked = fitted.ranked(features)[:args.topk]
    if getattr(args, "json", False):
        return _json_dump({
            "program": args.program,
            "iterations": args.iterations,
            "kind": fitted.kind,
            "ranked": [{"label": label, "confidence": confidence,
                        **label_knobs(label)}
                       for label, confidence in ranked],
        })
    lines = [f"{args.program} x{args.iterations} ({fitted.kind}):"]
    for label, confidence in ranked:
        lines.append(f"  {label:14s} {confidence:6.1%}")
    return "\n".join(lines)


_LEARN_COMMANDS = {
    "dataset": _cmd_dataset,
    "train": _cmd_train,
    "eval": _cmd_eval,
    "predict": _cmd_predict,
}


def cmd_learn(args) -> str:
    """Dispatch one ``repro learn`` subcommand."""
    return _LEARN_COMMANDS[args.learn_command](args)


def add_learn_parser(sub) -> None:
    """Attach the ``learn`` subcommand tree to the CLI parser."""
    learn = sub.add_parser(
        "learn", help="learned configuration prediction: labeled "
                      "datasets, seeded models, regret vs the DSE oracle")
    learn_sub = learn.add_subparsers(dest="learn_command", required=True)

    dataset = learn_sub.add_parser(
        "dataset", help="sweep the corpus through the DSE engine and "
                        "write the labeled dataset")
    dataset.add_argument("--out", default="learn_dataset.json",
                         metavar="PATH", help="dataset output path")
    dataset.add_argument("--tiny", action="store_true",
                         help="reduced candidate grid (CI smoke scale)")
    dataset.add_argument("--programs", default=None,
                         help="comma-separated corpus subset "
                              "(default: the whole corpus)")
    dataset.add_argument("--jobs", type=int, default=1,
                         help="DSE worker processes")
    dataset.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent DSE result cache directory")
    dataset.add_argument("--json", action="store_true",
                         help="machine-readable JSON summary")

    train = learn_sub.add_parser(
        "train", help="fit one model on a dataset and write its JSON")
    train.add_argument("--dataset", required=True, metavar="PATH")
    train.add_argument("--out", default="learn_model.json", metavar="PATH",
                       help="model output path")
    train.add_argument("--model", choices=("tree", "ridge", "dummy"),
                       default="tree", help="model kind")
    train.add_argument("--json", action="store_true",
                       help="machine-readable JSON summary")

    evaluate = learn_sub.add_parser(
        "eval", help="leave-one-kernel-out regret report vs the oracle")
    evaluate.add_argument("--dataset", required=True, metavar="PATH")
    evaluate.add_argument("--topk", type=int, default=3,
                          help="top-k window for the accuracy columns")
    evaluate.add_argument("--kinds", default=None,
                          help="comma-separated model kinds (first one "
                               "is the gated primary; default "
                               "tree,ridge,dummy)")
    evaluate.add_argument("--max-regret", type=float, default=0.15,
                          help="mean-energy-regret ceiling before "
                               f"exiting {LEARN_EXIT_REGRET}")
    evaluate.add_argument("--json", action="store_true",
                          help="machine-readable JSON report")

    predict = learn_sub.add_parser(
        "predict", help="rank candidate configurations for one corpus "
                        "program + iteration context")
    predict.add_argument("--model", required=True, metavar="PATH")
    predict.add_argument("--program", required=True,
                         help="corpus program name (see repro.learn.CORPUS)")
    predict.add_argument("--iterations", type=int, default=1,
                         help="offload iteration context")
    predict.add_argument("--topk", type=int, default=3,
                         help="ranked labels to show")
    predict.add_argument("--json", action="store_true",
                         help="machine-readable JSON ranking")
