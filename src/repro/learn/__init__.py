"""Learned configuration prediction over the DSE oracle.

The bridge between the static analyzer and the serving runtime
(ROADMAP item 4, after Parisi et al.): ``repro.analysis.features()``
summarizes a kernel's machine program as a flat feature vector, and
``repro.dse`` can evaluate every candidate operating point of that
kernel through the calibrated cost models.  This package turns the two
into a supervised-learning loop:

- :mod:`~repro.learn.dataset` — drive the
  :class:`~repro.dse.ExplorationEngine` over the builtin + SPMD kernel
  corpus x a pinned candidate grid and emit a deterministic,
  content-addressed labeled dataset (features -> EDP-best
  configuration, with every candidate's energy/latency kept for regret
  evaluation);
- :mod:`~repro.learn.models` — dependency-free, seeded learners (CART
  decision tree, ridge one-vs-rest, majority-class dummy) whose fitted
  state is a reviewable JSON document;
- :mod:`~repro.learn.eval` — leave-one-kernel-out cross-validation
  against the DSE oracle: top-k accuracy, energy/latency/EDP regret,
  per-feature importances;
- :mod:`~repro.learn.service` — a ``predicted`` scheduler policy and
  :class:`~repro.learn.service.PredictedServiceBook` for
  :mod:`repro.serve`, routing each request through the trained model
  (with an analytic fallback under low confidence) and counting every
  decision on :mod:`repro.obs`;
- ``python -m repro learn`` (:mod:`~repro.learn.cli`) — ``dataset`` /
  ``train`` / ``eval`` / ``predict``, deterministic reruns, exit 3
  when mean regret exceeds the threshold.

See ``docs/LEARNING.md`` for formats and methodology.
"""

from repro.learn.dataset import (
    CORPUS,
    DATASET_SCHEMA,
    Dataset,
    DatasetRow,
    build_dataset,
    load_dataset,
    save_dataset,
)
from repro.learn.eval import EvalReport, evaluate, loko_folds
from repro.learn.models import (
    MODEL_SCHEMA,
    DecisionTreeModel,
    MajorityClassModel,
    RidgeModel,
    load_model,
    model_from_dict,
    save_model,
    train_model,
)
from repro.learn.service import PredictedServiceBook, predictor_from_file

__all__ = [
    "CORPUS",
    "DATASET_SCHEMA",
    "Dataset",
    "DatasetRow",
    "DecisionTreeModel",
    "EvalReport",
    "MODEL_SCHEMA",
    "MajorityClassModel",
    "PredictedServiceBook",
    "RidgeModel",
    "build_dataset",
    "evaluate",
    "load_dataset",
    "load_model",
    "loko_folds",
    "model_from_dict",
    "predictor_from_file",
    "save_dataset",
    "save_model",
    "train_model",
]
