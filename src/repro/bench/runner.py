"""The benchmark runner: timed repeats, determinism guard, profiling.

For every selected suite the runner:

1. runs ``repeats`` timed passes — each is ``prepare`` (off the clock),
   then ``execute`` between two reads of the shared monotonic clock —
   under a *disabled* telemetry hub, so the numbers measure the engine,
   not the instrumentation;
2. asserts the suite's deterministic fingerprint and unit count are
   bit-identical across repeats (a drift is a :class:`BenchmarkError`:
   the workload was not pinned);
3. runs one extra *instrumented* pass under an enabled hub with a
   :class:`~repro.obs.profile.PhaseProfiler`, collecting the per-phase
   real-time breakdown, the engine's telemetry counters, and — when
   asked — a per-suite Chrome trace plus a collapsed-stack flamegraph
   through :mod:`repro.obs.export`.

The instrumented pass is excluded from the timing statistics but must
reproduce the timed passes' fingerprint, which doubles as the proof
that telemetry does not perturb results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import BenchmarkError, ObservabilityError
from repro.obs import (
    PhaseProfiler,
    Telemetry,
    collapsed_totals,
    monotonic,
    use_telemetry,
    write_chrome_trace,
)

from repro.bench import report as _report
from repro.bench.workloads import BenchSuite, SuiteResult, default_suites

#: Default repeat counts: median-of-5, median-of-3 under ``--quick``.
DEFAULT_REPEATS = 5
QUICK_REPEATS = 3


@dataclass
class BenchOptions:
    """One runner invocation, fully specified."""

    repeats: int = DEFAULT_REPEATS
    quick: bool = False
    #: Suite-name subset (None = every registered suite).
    suites: Optional[Sequence[str]] = None
    #: Write one Chrome trace per suite, derived from this path.
    profile_path: Optional[str] = None
    #: Write a collapsed-stack flamegraph of all phase totals here.
    flame_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise BenchmarkError(f"repeats must be >= 1, got {self.repeats}")


def _suite_profile_path(base: str, suite: str) -> str:
    """``bench.json`` -> ``bench.sim.json`` for per-suite traces."""
    stem, extension = os.path.splitext(base)
    return f"{stem}.{suite}{extension or '.json'}"


def _bench_only(hub: Telemetry, lane: str) -> Telemetry:
    """A hub holding only the profiler lane's spans plus all counters."""
    reduced = Telemetry(enabled=True)
    reduced.spans = [span for span in hub.spans if span.lane == lane]
    reduced.counters = hub.counters
    return reduced


class BenchRunner:
    """Times every suite and assembles one trajectory document."""

    def __init__(self, options: Optional[BenchOptions] = None):
        self.options = options if options is not None else BenchOptions()
        #: Paths of profile artifacts written by the last run.
        self.artifacts: List[str] = []

    def run(self, index: int = _report.FIRST_INDEX) -> Dict[str, Any]:
        """Execute the selected suites; returns the validated document."""
        options = self.options
        suites = default_suites(
            list(options.suites) if options.suites is not None else None)
        self.artifacts = []
        suite_docs: Dict[str, Dict[str, Any]] = {}
        flame_totals: Dict[str, float] = {}
        for suite in suites:
            suite_docs[suite.name] = self._run_suite(suite, flame_totals)
        if options.flame_path:
            with open(options.flame_path, "w", encoding="utf-8") as handle:
                text = collapsed_totals(flame_totals, root="bench")
                handle.write(text + ("\n" if text else ""))
            self.artifacts.append(options.flame_path)
        return _report.build_report(suite_docs, repeats=options.repeats,
                                    quick=options.quick, index=index)

    # -- one suite ---------------------------------------------------------------

    def _run_suite(self, suite: BenchSuite,
                   flame_totals: Dict[str, float]) -> Dict[str, Any]:
        wall_s: List[float] = []
        reference: Optional[SuiteResult] = None
        # Timed passes: a disabled hub guarantees the engines run their
        # no-telemetry fast path, whatever hub the caller installed.
        quiet = Telemetry(enabled=False)
        off_profiler = PhaseProfiler(quiet)
        with use_telemetry(quiet):
            for _ in range(self.options.repeats):
                state = suite.prepare(off_profiler)
                try:
                    started = monotonic()
                    result = suite.execute(state, off_profiler)
                    wall_s.append(monotonic() - started)
                finally:
                    suite.cleanup(state)
                reference = self._checked(suite, reference, result)
        # Instrumented pass: phase breakdown + engine counters.
        hub = Telemetry(enabled=True)
        profiler = PhaseProfiler(hub, lane="bench")
        with use_telemetry(hub):
            state = suite.prepare(profiler)
            try:
                result = suite.execute(state, profiler)
            finally:
                suite.cleanup(state)
        self._checked(suite, reference, result)
        if self.options.profile_path:
            self._export_profile(suite.name, hub)
        for phase, seconds in profiler.totals_s.items():
            flame_totals[phase] = flame_totals.get(phase, 0.0) + seconds
        return {
            "units": suite.units,
            "spec": dict(suite.spec),
            "units_per_run": reference.units,
            "fingerprint": dict(reference.fingerprint),
            "counters": {name: counter.value for name, counter
                         in sorted(hub.counters.items())},
            "timing": _report.suite_timing(
                wall_s, reference.units, profiler.totals_s, profiler.calls),
        }

    def _checked(self, suite: BenchSuite, reference: Optional[SuiteResult],
                 result: SuiteResult) -> SuiteResult:
        """Enforce the bit-identical-fingerprint contract across passes."""
        if reference is None:
            return result
        if (result.fingerprint != reference.fingerprint
                or result.units != reference.units):
            raise BenchmarkError(
                f"suite {suite.name!r} is not deterministic: repeat "
                f"produced {result.fingerprint} != {reference.fingerprint}")
        return reference

    def _export_profile(self, suite_name: str, hub: Telemetry) -> None:
        path = _suite_profile_path(self.options.profile_path, suite_name)
        try:
            write_chrome_trace(hub, path)
        except ObservabilityError:
            # Engine spans that overlap on a lane (model-time streams
            # from repeated sub-runs) cannot serialize as B/E pairs;
            # fall back to the profiler's own lane plus the counters.
            write_chrome_trace(_bench_only(hub, "bench"), path)
        self.artifacts.append(path)
