"""Pinned benchmark workloads: one fixed spec per engine hot path.

Every suite is a :class:`BenchSuite` with a frozen ``spec`` (workload
knobs *including seeds*), an untimed :meth:`~BenchSuite.prepare` step
(building workloads, lowering kernels, seeding caches), and a timed
:meth:`~BenchSuite.execute` step that returns the work-unit count plus
a *deterministic fingerprint* of the engine's output.  The runner times
``execute`` alone, asserts the fingerprint is bit-identical across
repeats, and attributes time to phases through the
:class:`~repro.obs.profile.PhaseProfiler` passed into both steps.

The registry covers every engine named by ROADMAP item 1:

========== ============ ====================================================
suite      units        hot path
========== ============ ====================================================
sim        cycles       DES cluster replay of a lowered kernel loop
serve      requests     ``repro.serve`` Poisson run to drain
dse_cold   configs      ``repro.dse`` exploration, empty result cache
dse_cached configs      same exploration served entirely from the cache
faults     scenarios    ``repro.faults`` campaign on the resilient driver
analysis   programs     ``repro.analysis`` lint + SPMD pass over builtins
learn      predictions  ``repro.learn`` model inference over the corpus
capacity   evaluations  ``repro.capacity`` analytic fleet predictions
========== ============ ====================================================
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import BenchmarkError
from repro.obs.profile import PhaseProfiler


def fingerprint_digest(payload: Any) -> str:
    """Short stable digest of a JSON-serializable payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SuiteResult:
    """What one timed execution produced."""

    units: float                    #: work units processed (for throughput)
    fingerprint: Dict[str, Any]     #: deterministic engine-output summary


class BenchSuite:
    """One pinned workload: untimed prepare, timed execute."""

    #: Registry key and BENCH_<n>.json suite name.
    name: str = ""
    #: What one unit of work is (``throughput`` is units per second).
    units: str = ""
    #: Pinned workload knobs, including every seed.
    spec: Dict[str, Any] = {}

    def prepare(self, profiler: PhaseProfiler) -> Any:
        """Build per-repeat state outside the timed window."""
        return None

    def execute(self, state: Any, profiler: PhaseProfiler) -> SuiteResult:
        """Run the hot path once; everything here is on the clock."""
        raise NotImplementedError

    def cleanup(self, state: Any) -> None:
        """Release per-repeat state (temp dirs etc.)."""


class SimSuite(BenchSuite):
    """DES cluster simulation throughput, in simulated cycles/second."""

    name = "sim"
    units = "cycles"
    spec = {"kernel": "matmul", "cores": 4, "cycle_cap": 20000.0,
            "dma_bytes": 1024, "pattern": "strided"}

    def prepare(self, profiler: PhaseProfiler) -> Any:
        from repro.core.system import HeterogeneousSystem
        from repro.kernels import kernel_by_name
        from repro.pulp.timing import kernel_op_streams

        with profiler.phase("sim;lower"):
            system = HeterogeneousSystem()
            kernel = kernel_by_name(self.spec["kernel"])
            streams = kernel_op_streams(
                kernel.build_program(), system.target, self.spec["cores"],
                cycle_cap=self.spec["cycle_cap"])
        dma_bytes = self.spec["dma_bytes"]
        return streams, [(0, 0, dma_bytes, True),
                         (0, 4096, dma_bytes, False)]

    def execute(self, state: Any, profiler: PhaseProfiler) -> SuiteResult:
        from repro.pulp.cluster import Cluster

        streams, dma_jobs = state
        with profiler.phase("sim;simulate"):
            run = Cluster().run(streams, dma_jobs=dma_jobs)
        fingerprint = {
            "wall_cycles": run.wall_cycles,
            "conflict_rate": round(run.conflict_rate, 12),
            "barrier_count": run.barrier_count,
        }
        return SuiteResult(units=run.wall_cycles, fingerprint=fingerprint)


class ServeSuite(BenchSuite):
    """Serving-runtime throughput at drain, in completed requests/second."""

    name = "serve"
    units = "requests"
    spec = {"nodes": 4, "policy": "fifo", "arrival_rate": 250.0,
            "requests": 400, "iterations": 1, "deadline_factor": 25.0,
            "max_batch": 8, "host_mhz": 8.0, "seed": 7}

    def prepare(self, profiler: PhaseProfiler) -> Any:
        from repro.serve import AnalyticServiceBook, PoissonWorkload
        from repro.serve.engine import ServeConfig
        from repro.serve.scheduler import Policy, SchedulerConfig

        with profiler.phase("serve;setup"):
            book = AnalyticServiceBook(host_mhz=self.spec["host_mhz"])
            workload = PoissonWorkload(
                rate=self.spec["arrival_rate"],
                requests=self.spec["requests"],
                deadline_factor=self.spec["deadline_factor"],
                iterations=self.spec["iterations"], seed=self.spec["seed"])
            return ServeConfig(
                workload=workload, nodes=self.spec["nodes"],
                scheduler=SchedulerConfig(
                    policy=Policy(self.spec["policy"]),
                    max_batch=self.spec["max_batch"]),
                seed=self.spec["seed"], book=book)

    def execute(self, state: Any, profiler: PhaseProfiler) -> SuiteResult:
        from repro.serve.engine import ServeEngine

        with profiler.phase("serve;run"):
            report = ServeEngine(state).run()
        payload = report.to_json_dict()
        summary = report.metrics()
        fingerprint = {
            "arrivals": summary["arrivals"],
            "completed": summary["completed"],
            "dropped": summary["dropped"],
            "duration_s": summary["duration_s"],
            "deadline_misses": summary["deadline_misses"],
            "digest": fingerprint_digest(payload),
        }
        return SuiteResult(units=float(summary["completed"]),
                           fingerprint=fingerprint)


#: The pinned exploration grid shared by both DSE suites: 16 configs.
_DSE_GRID = {"kernel": ["matmul"], "host_mhz": [2.0, 4.0, 8.0, 16.0],
             "budget_mw": [5.0, 10.0], "spi_mode": ["single", "quad"]}


class _DseSuite(BenchSuite):
    """Shared machinery of the cold and cached exploration suites."""

    units = "configs"

    def _space(self):
        from repro.dse import ParameterSpace

        return ParameterSpace.from_dict({"grid": self.spec["grid"]})

    def _explore(self, cache):
        from repro.dse import ExplorationEngine

        return ExplorationEngine(cache=cache,
                                 jobs=self.spec["jobs"]).run(self._space())

    def _result(self, result, expect_hits: bool) -> SuiteResult:
        stats = result.stats
        expected = stats.cache_hits if expect_hits else stats.cache_misses
        if expected != stats.configurations:
            raise BenchmarkError(
                f"{self.name}: expected a fully "
                f"{'cached' if expect_hits else 'cold'} run, got "
                f"{stats.cache_hits} hits / {stats.cache_misses} misses "
                f"over {stats.configurations} configurations")
        fingerprint = {
            "configurations": stats.configurations,
            "infeasible": stats.infeasible,
            "model_version": result.model_version,
            "records_digest": fingerprint_digest(result.records),
        }
        return SuiteResult(units=float(stats.configurations),
                           fingerprint=fingerprint)

    def cleanup(self, state: Any) -> None:
        shutil.rmtree(state, ignore_errors=True)


class DseColdSuite(_DseSuite):
    """Exploration with an empty cache: pure evaluation throughput."""

    name = "dse_cold"
    spec = {"grid": _DSE_GRID, "jobs": 1}

    def prepare(self, profiler: PhaseProfiler) -> Any:
        return tempfile.mkdtemp(prefix="repro-bench-dse-cold-")

    def execute(self, state: Any, profiler: PhaseProfiler) -> SuiteResult:
        from repro.dse import ResultCache

        with profiler.phase("dse_cold;explore"):
            result = self._explore(ResultCache(state))
        return self._result(result, expect_hits=False)


class DseCachedSuite(_DseSuite):
    """The same exploration served entirely from a warm result cache."""

    name = "dse_cached"
    spec = {"grid": _DSE_GRID, "jobs": 1}

    def prepare(self, profiler: PhaseProfiler) -> Any:
        from repro.dse import ResultCache

        directory = tempfile.mkdtemp(prefix="repro-bench-dse-warm-")
        with profiler.phase("dse_cached;seed"):
            self._explore(ResultCache(directory))
        return directory

    def execute(self, state: Any, profiler: PhaseProfiler) -> SuiteResult:
        from repro.dse import ResultCache

        with profiler.phase("dse_cached;explore"):
            result = self._explore(ResultCache(state))
        return self._result(result, expect_hits=True)


class FaultsSuite(BenchSuite):
    """Fault-campaign throughput on the resilient driver, scenarios/second."""

    name = "faults"
    units = "scenarios"
    spec = {"scenarios": 11, "seed": 1, "kernel": "matmul",
            "host_mhz": 8.0, "iterations": 1, "bit_error_rate": 2e-5}

    def prepare(self, profiler: PhaseProfiler) -> Any:
        from repro.faults import build_campaign

        with profiler.phase("faults;build"):
            return build_campaign(
                self.spec["scenarios"], seed=self.spec["seed"],
                kernel=self.spec["kernel"], host_mhz=self.spec["host_mhz"],
                iterations=self.spec["iterations"],
                bit_error_rate=self.spec["bit_error_rate"])

    def execute(self, state: Any, profiler: PhaseProfiler) -> SuiteResult:
        from repro.faults import CampaignRunner

        with profiler.phase("faults;run"):
            result = CampaignRunner().run(state)
        payload = result.to_json_dict()
        fingerprint = {
            "outcomes": payload["outcomes"],
            "availability": payload["availability"],
            "digest": fingerprint_digest(payload),
        }
        return SuiteResult(units=float(len(state)), fingerprint=fingerprint)


class AnalysisSuite(BenchSuite):
    """Static-analysis throughput: programs fully linted per second."""

    name = "analysis"
    units = "programs"
    spec = {"programs": "builtin+parallel", "cores": 4}

    def prepare(self, profiler: PhaseProfiler) -> Any:
        from repro.machine.parallel import PARALLEL_PROGRAMS
        from repro.machine.programs import BUILTIN_PROGRAMS

        return (list(BUILTIN_PROGRAMS.values()),
                list(PARALLEL_PROGRAMS.values()))

    def execute(self, state: Any, profiler: PhaseProfiler) -> SuiteResult:
        from repro.analysis.concurrency import analyze_spmd
        from repro.analysis.dataflow import ALL_REGISTERS
        from repro.analysis.linter import lint_instructions, lint_source

        builtins, parallels = state
        cores = self.spec["cores"]
        findings: Dict[str, int] = {}
        with profiler.phase("analysis;lint"):
            for program in builtins:
                report = lint_source(
                    program.source, name=program.name,
                    entry_regs=program.entry_regs,
                    exit_live=program.exit_live
                    if program.exit_live is not None else ALL_REGISTERS)
                findings[program.name] = len(report.findings)
        with profiler.phase("analysis;spmd"):
            for parallel in parallels:
                report = lint_instructions(
                    parallel.unit.instructions, name=parallel.name,
                    lines=parallel.unit.lines,
                    entry_regs=parallel.entry_regs)
                spmd = analyze_spmd(
                    parallel.unit.instructions, cores=cores,
                    presets=parallel.presets(cores),
                    lines=parallel.unit.lines, dma_out=parallel.dma_out)
                findings[parallel.name] = (len(report.findings)
                                           + len(spmd.findings))
        total = len(builtins) + len(parallels)
        fingerprint = {"programs": total, "findings": findings}
        return SuiteResult(units=float(total), fingerprint=fingerprint)


class LearnSuite(BenchSuite):
    """Model-prediction throughput: configurations predicted per second.

    ``prepare`` builds the tiny labeled dataset and fits the decision
    tree off the clock; ``execute`` ranks every (corpus program,
    iteration context) pair through the fitted model.  The fingerprint
    pins the predicted labels, so a model or feature drift fails the
    bit-identical check before it reaches a regret report.
    """

    name = "learn"
    units = "predictions"
    spec = {"tiny": True, "kind": "tree", "contexts": [1, 8, 64],
            "sweep": 400}

    def prepare(self, profiler: PhaseProfiler) -> Any:
        from repro.learn.dataset import CORPUS, build_dataset, corpus_features
        from repro.learn.models import train_model

        with profiler.phase("learn;dataset"):
            dataset = build_dataset(tiny=self.spec["tiny"])
        with profiler.phase("learn;train"):
            fitted = train_model(dataset, kind=self.spec["kind"])
        with profiler.phase("learn;features"):
            queries = [(program, iterations,
                        corpus_features(program, iterations))
                       for program in sorted(CORPUS)
                       for iterations in self.spec["contexts"]]
        return fitted, queries

    def execute(self, state: Any, profiler: PhaseProfiler) -> SuiteResult:
        fitted, queries = state
        predictions: Dict[str, str] = {}
        with profiler.phase("learn;predict"):
            for _ in range(self.spec["sweep"]):
                for program, iterations, features in queries:
                    predictions[f"{program}/x{iterations}"] = \
                        fitted.predict(features)
        fingerprint = {
            "queries": len(queries),
            "sweep": self.spec["sweep"],
            "digest": fingerprint_digest(predictions),
        }
        return SuiteResult(units=float(len(queries) * self.spec["sweep"]),
                           fingerprint=fingerprint)


class ChaosSuite(BenchSuite):
    """Chaos-campaign throughput, in scenario requests served per second.

    ``execute`` runs the pinned fleet-fault campaign (clean, crash
    storm, fleet brownout, flapping, surge+brownout) against the pinned
    serving config with the resilience machinery armed.  The
    fingerprint pins every scenario's scorecard, so a drift anywhere in
    the breaker/hedging/overload/SLO paths fails the bit-identical
    check before it reaches a resilience report.
    """

    name = "chaos"
    units = "requests"
    spec = {"nodes": 4, "seed": 1, "chaos_seed": 1,
            "requests_per_scenario": 240, "scenarios": 5}

    def prepare(self, profiler: PhaseProfiler) -> Any:
        from repro.serve.chaos import (
            pinned_campaign_config,
            pinned_campaign_plans,
        )

        with profiler.phase("chaos;setup"):
            config = pinned_campaign_config(nodes=self.spec["nodes"],
                                            seed=self.spec["seed"])
            plans = pinned_campaign_plans()
        return config, plans

    def execute(self, state: Any, profiler: PhaseProfiler) -> SuiteResult:
        from repro.serve.chaos import run_campaign

        config, plans = state
        with profiler.phase("chaos;campaign"):
            result = run_campaign(config, plans,
                                  chaos_seed=self.spec["chaos_seed"])
        served = sum(run.scorecard["completed"] for run in result.runs)
        fingerprint = {
            "scenarios": len(result.runs),
            "served": served,
            "verdict": result.verdict,
            "digest": fingerprint_digest(result.to_json_dict()),
        }
        return SuiteResult(units=float(served), fingerprint=fingerprint)


class CapacitySuite(BenchSuite):
    """Analytic capacity-model throughput, in scenario evaluations/second.

    ``prepare`` builds and warms the model (kernel pricing and shape
    caches), then times one reference DES run of the pinned scenario
    off the clock; ``execute`` prices the whole pinned rate x fleet
    grid analytically.  Besides the usual bit-identical fingerprint,
    the suite enforces the fast path's reason to exist: one analytic
    evaluation of the reference scenario must be at least
    ``min_speedup`` x faster than its DES run.  The measured ratio
    sits around 150-200x; the pinned floor leaves headroom for noisy
    CI machines while still failing loudly if the fast path ever
    degenerates into something DES-shaped.
    """

    name = "capacity"
    units = "evaluations"
    spec = {"rates": [150.0, 250.0, 350.0, 450.0, 550.0, 650.0],
            "nodes": [2, 4, 6], "requests": 2000, "max_batch": 8,
            "sweep": 8,
            "reference": {"rate": 450.0, "nodes": 4, "seed": 7},
            "min_speedup": 50.0}

    def _scenarios(self):
        from repro.capacity.model import CapacityInputs

        return [CapacityInputs(arrival_rate=rate,
                               requests=self.spec["requests"],
                               nodes=nodes,
                               max_batch=self.spec["max_batch"])
                for nodes in self.spec["nodes"]
                for rate in self.spec["rates"]]

    def prepare(self, profiler: PhaseProfiler) -> Any:
        import time

        from repro.capacity.model import CapacityModel
        from repro.serve import AnalyticServiceBook, PoissonWorkload
        from repro.serve.engine import ServeConfig, ServeEngine

        with profiler.phase("capacity;warm"):
            book = AnalyticServiceBook()
            model = CapacityModel(book)
            scenarios = self._scenarios()
            model.predict(scenarios[0])
        reference = self.spec["reference"]
        with profiler.phase("capacity;des-reference"):
            config = ServeConfig(
                workload=PoissonWorkload(rate=reference["rate"],
                                         requests=self.spec["requests"],
                                         seed=reference["seed"],
                                         deadline_factor=None),
                nodes=reference["nodes"], seed=reference["seed"],
                book=book)
            start = time.perf_counter()
            ServeEngine(config).run()
            des_wall = time.perf_counter() - start
        return model, scenarios, des_wall

    def execute(self, state: Any, profiler: PhaseProfiler) -> SuiteResult:
        import time

        model, scenarios, des_wall = state
        predictions: Dict[str, Any] = {}
        stable = 0
        sweep = self.spec["sweep"]
        with profiler.phase("capacity;analytic"):
            start = time.perf_counter()
            for _ in range(sweep):
                stable = 0
                for inputs in scenarios:
                    prediction = model.predict(inputs)
                    stable += int(prediction.stable)
                    key = f"{inputs.nodes}n@{inputs.arrival_rate:.0f}rps"
                    predictions[key] = prediction.to_json_dict()
            analytic_wall = time.perf_counter() - start
        per_evaluation = analytic_wall / (len(scenarios) * sweep)
        speedup = des_wall / per_evaluation if per_evaluation > 0 \
            else float("inf")
        if speedup < self.spec["min_speedup"]:
            raise BenchmarkError(
                f"capacity: analytic evaluation is only {speedup:.1f}x "
                f"faster than the reference DES run "
                f"(floor {self.spec['min_speedup']:.0f}x)")
        fingerprint = {
            "evaluations": len(scenarios),
            "sweep": sweep,
            "stable": stable,
            "digest": fingerprint_digest(predictions),
        }
        return SuiteResult(units=float(len(scenarios) * sweep),
                           fingerprint=fingerprint)


#: Suite classes in report order.
SUITE_TYPES = (SimSuite, ServeSuite, DseColdSuite, DseCachedSuite,
               FaultsSuite, AnalysisSuite, LearnSuite, ChaosSuite,
               CapacitySuite)


def default_suites(names: Optional[List[str]] = None) -> List[BenchSuite]:
    """Instantiate the registered suites, optionally a named subset."""
    by_name = {suite_type.name: suite_type for suite_type in SUITE_TYPES}
    if names is None:
        return [suite_type() for suite_type in SUITE_TYPES]
    unknown = [name for name in names if name not in by_name]
    if unknown:
        raise BenchmarkError(
            f"unknown bench suites {unknown}; "
            f"available: {', '.join(by_name)}")
    return [by_name[name]() for name in names]
