"""Performance observability: the tracked ``repro bench`` suite.

The paper's claims are throughput and energy numbers, so the repo
tracks its own speed the way it tracks correctness goldens: a pinned
workload per engine hot path (:mod:`repro.bench.workloads`), a runner
that times them under the shared monotonic clock with a determinism
guard and per-phase profiling (:mod:`repro.bench.runner`), and a
numbered ``BENCH_<n>.json`` trajectory with schema validation and
regression gating (:mod:`repro.bench.report`).  ``python -m repro
bench`` is the CLI face; ``docs/BENCHMARKS.md`` documents the schema
and the regression policy.
"""

from repro.bench.report import (
    Comparison,
    ComparisonRow,
    DEFAULT_RESULTS_DIR,
    FIRST_INDEX,
    REGRESSION_THRESHOLD,
    SCHEMA,
    bench_indices,
    bench_path,
    build_report,
    compare,
    environment,
    latest_bench,
    load_report,
    next_index,
    render_comparison,
    render_report,
    strip_timing,
    validate_report,
    write_report,
)
from repro.bench.runner import (
    BenchOptions,
    BenchRunner,
    DEFAULT_REPEATS,
    QUICK_REPEATS,
)
from repro.bench.workloads import (
    BenchSuite,
    SUITE_TYPES,
    SuiteResult,
    default_suites,
    fingerprint_digest,
)

__all__ = [
    "BenchOptions",
    "BenchRunner",
    "BenchSuite",
    "Comparison",
    "ComparisonRow",
    "DEFAULT_REPEATS",
    "DEFAULT_RESULTS_DIR",
    "FIRST_INDEX",
    "QUICK_REPEATS",
    "REGRESSION_THRESHOLD",
    "SCHEMA",
    "SUITE_TYPES",
    "SuiteResult",
    "bench_indices",
    "bench_path",
    "build_report",
    "compare",
    "default_suites",
    "environment",
    "fingerprint_digest",
    "latest_bench",
    "load_report",
    "next_index",
    "render_comparison",
    "render_report",
    "strip_timing",
    "validate_report",
    "write_report",
]
