"""``BENCH_<n>.json``: schema, trajectory numbering, and comparison.

One benchmark run produces a numbered, schema-validated document::

    {
      "schema": "repro.bench/v1",
      "bench_index": 7,
      "created": "...Z",              # wall-clock stamp (a timing field)
      "repeats": 5,
      "quick": false,
      "env": {"python": ..., "platform": ..., "machine": ...,
              "cpu_count": ...},
      "suites": {
        "sim": {
          "units": "cycles",
          "spec": {...pinned knobs and seeds...},
          "units_per_run": 20000.0,
          "fingerprint": {...deterministic engine output..., "digest": ...},
          "counters": {...telemetry counters of the instrumented pass...},
          "timing": {
            "wall_s": [...one entry per repeat...],
            "median_wall_s": ..., "min_wall_s": ...,
            "throughput": ...,      # units_per_run / median_wall_s
            "phases_s": {...PhaseProfiler totals...},
            "phase_calls": {...}
          }
        }, ...
      }
    }

Everything outside ``created`` and the per-suite ``timing`` blocks is
deterministic: rerunning the same pinned workloads reproduces it bit
for bit (:func:`strip_timing` extracts exactly that projection, and the
test suite asserts it).  :func:`compare` matches two documents suite by
suite on the pinned ``spec`` and judges median throughput against the
20% regression threshold; ``repro bench --check`` turns that into CI's
perf gate.  Files are numbered ``BENCH_<n>.json`` starting at
:data:`FIRST_INDEX` — the PR that opened the trajectory — so the
results directory reads as a performance history of the repo.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import re
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import BenchmarkError

#: Schema identifier written into (and required of) every document.
SCHEMA = "repro.bench/v1"

#: The BENCH trajectory starts at the PR that introduced it.
FIRST_INDEX = 7

#: Where the tracked trajectory lives, relative to the repo root.
DEFAULT_RESULTS_DIR = os.path.join("benchmarks", "results")

#: Median-throughput loss beyond which ``--check`` fails the build.
REGRESSION_THRESHOLD = 0.20

_BENCH_FILE = re.compile(r"^BENCH_(\d+)\.json$")

#: Comparison row statuses that make ``--check`` exit nonzero.
REGRESSED = "regressed"


def environment() -> Dict[str, Any]:
    """The host fingerprint stored next to every timing number."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


# -- trajectory files -------------------------------------------------------------


def bench_indices(directory: str) -> List[int]:
    """Sorted indices of the ``BENCH_<n>.json`` files in *directory*."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    indices = []
    for name in names:
        match = _BENCH_FILE.match(name)
        if match:
            indices.append(int(match.group(1)))
    return sorted(indices)


def bench_path(directory: str, index: int) -> str:
    """The path of trajectory entry *index*."""
    return os.path.join(directory, f"BENCH_{index}.json")


def next_index(directory: str) -> int:
    """The next free trajectory index (:data:`FIRST_INDEX` when empty)."""
    indices = bench_indices(directory)
    return indices[-1] + 1 if indices else FIRST_INDEX


def latest_bench(directory: str) -> Optional[str]:
    """Path of the newest committed trajectory entry, if any."""
    indices = bench_indices(directory)
    return bench_path(directory, indices[-1]) if indices else None


# -- validation -------------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchmarkError(f"invalid bench report: {message}")


_SUITE_KEYS = ("units", "spec", "units_per_run", "fingerprint", "counters",
               "timing")
_TIMING_KEYS = ("wall_s", "median_wall_s", "min_wall_s", "throughput",
                "phases_s", "phase_calls")


def validate_report(doc: Any) -> Dict[str, Any]:
    """Check *doc* against the ``repro.bench/v1`` schema; return it."""
    _require(isinstance(doc, dict), "not a JSON object")
    _require(doc.get("schema") == SCHEMA,
             f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    _require(isinstance(doc.get("bench_index"), int)
             and doc["bench_index"] >= 0, "bench_index must be an int >= 0")
    _require(isinstance(doc.get("repeats"), int) and doc["repeats"] >= 1,
             "repeats must be an int >= 1")
    _require(isinstance(doc.get("quick"), bool), "quick must be a bool")
    env = doc.get("env")
    _require(isinstance(env, dict), "env must be an object")
    for key in ("python", "platform", "cpu_count"):
        _require(key in env, f"env.{key} is missing")
    suites = doc.get("suites")
    _require(isinstance(suites, dict) and suites,
             "suites must be a non-empty object")
    for name, suite in suites.items():
        _require(isinstance(suite, dict), f"suite {name!r} is not an object")
        for key in _SUITE_KEYS:
            _require(key in suite, f"suite {name!r} is missing {key!r}")
        _require(isinstance(suite["spec"], dict),
                 f"suite {name!r} spec must be an object")
        _require(isinstance(suite["fingerprint"], dict),
                 f"suite {name!r} fingerprint must be an object")
        _require(isinstance(suite["units_per_run"], (int, float))
                 and suite["units_per_run"] > 0,
                 f"suite {name!r} units_per_run must be > 0")
        timing = suite["timing"]
        _require(isinstance(timing, dict),
                 f"suite {name!r} timing must be an object")
        for key in _TIMING_KEYS:
            _require(key in timing, f"suite {name!r} timing.{key} is missing")
        wall = timing["wall_s"]
        _require(isinstance(wall, list) and len(wall) == doc["repeats"],
                 f"suite {name!r} needs one wall_s entry per repeat")
        _require(all(isinstance(w, (int, float)) and w > 0 for w in wall),
                 f"suite {name!r} wall_s entries must be > 0")
        _require(timing["throughput"] > 0,
                 f"suite {name!r} throughput must be > 0")
    return doc


def strip_timing(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic projection: identical across bit-exact reruns.

    Drops the wall-clock stamp, the repeat-count methodology fields and
    every per-suite ``timing`` block; keeps specs, units, fingerprints
    and counters.
    """
    projection = {key: value for key, value in doc.items()
                  if key not in ("created", "repeats", "quick", "suites")}
    projection["suites"] = {
        name: {key: value for key, value in suite.items() if key != "timing"}
        for name, suite in doc["suites"].items()
    }
    return projection


# -- document assembly ------------------------------------------------------------


def build_report(suites: Dict[str, Dict[str, Any]], *, repeats: int,
                 quick: bool, index: int = FIRST_INDEX) -> Dict[str, Any]:
    """Assemble and validate one trajectory document."""
    doc = {
        "schema": SCHEMA,
        "bench_index": index,
        "created": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "repeats": repeats,
        "quick": quick,
        "env": environment(),
        "suites": suites,
    }
    return validate_report(doc)


def suite_timing(wall_s: List[float], units: float,
                 phases_s: Dict[str, float],
                 phase_calls: Dict[str, int]) -> Dict[str, Any]:
    """The per-suite ``timing`` block from raw repeat measurements."""
    median = statistics.median(wall_s)
    return {
        "wall_s": [round(w, 9) for w in wall_s],
        "median_wall_s": round(median, 9),
        "min_wall_s": round(min(wall_s), 9),
        "throughput": round(units / median, 6),
        "phases_s": {name: round(value, 9)
                     for name, value in phases_s.items()},
        "phase_calls": dict(phase_calls),
    }


def load_report(path: str) -> Dict[str, Any]:
    """Read and validate a trajectory file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchmarkError(f"cannot load bench report {path}: {exc}")
    return validate_report(doc)


def write_report(doc: Dict[str, Any], directory: str) -> str:
    """Write *doc* as the next trajectory entry; returns the path."""
    validate_report(doc)
    os.makedirs(directory, exist_ok=True)
    path = bench_path(directory, doc["bench_index"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")
    return path


# -- comparison -------------------------------------------------------------------


@dataclass(frozen=True)
class ComparisonRow:
    """One suite's old-vs-new verdict."""

    suite: str
    status: str                     #: ok | improved | regressed |
    #: incomparable | added | removed
    old_throughput: Optional[float] = None
    new_throughput: Optional[float] = None
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """new / old median throughput, when both exist."""
        if not self.old_throughput or self.new_throughput is None:
            return None
        return self.new_throughput / self.old_throughput

    def to_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "status": self.status,
            "old_throughput": self.old_throughput,
            "new_throughput": self.new_throughput,
            "ratio": None if self.ratio is None else round(self.ratio, 6),
            "note": self.note,
        }


@dataclass
class Comparison:
    """Suite-by-suite comparison of two trajectory documents."""

    threshold: float
    rows: List[ComparisonRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[str]:
        """Suites whose throughput regressed beyond the threshold."""
        return [row.suite for row in self.rows if row.status == REGRESSED]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "threshold": self.threshold,
            "ok": self.ok,
            "regressions": self.regressions,
            "rows": [row.to_dict() for row in self.rows],
        }


def compare(old: Dict[str, Any], new: Dict[str, Any],
            threshold: float = REGRESSION_THRESHOLD) -> Comparison:
    """Judge *new* against baseline *old*, suite by suite.

    A suite regresses when its median throughput drops by more than
    *threshold* relative to the baseline.  Suites whose pinned ``spec``
    differs between the documents are *incomparable* (the workload
    changed, so the numbers do not gate); a drifted fingerprint digest
    under an identical spec is annotated but still timed — it means the
    model's outputs changed, which the golden tests gate separately.
    """
    if not 0 < threshold < 1:
        raise BenchmarkError(f"threshold must be in (0, 1): {threshold}")
    validate_report(old)
    validate_report(new)
    result = Comparison(threshold=threshold)
    old_suites, new_suites = old["suites"], new["suites"]
    for name, new_suite in new_suites.items():
        old_suite = old_suites.get(name)
        if old_suite is None:
            result.rows.append(ComparisonRow(
                suite=name, status="added",
                new_throughput=new_suite["timing"]["throughput"],
                note="no baseline entry"))
            continue
        old_tp = old_suite["timing"]["throughput"]
        new_tp = new_suite["timing"]["throughput"]
        if old_suite["spec"] != new_suite["spec"]:
            result.rows.append(ComparisonRow(
                suite=name, status="incomparable", old_throughput=old_tp,
                new_throughput=new_tp, note="workload spec changed"))
            continue
        note = ""
        if old_suite["fingerprint"] != new_suite["fingerprint"]:
            note = "fingerprint drifted (model output changed)"
        ratio = new_tp / old_tp
        if ratio < 1.0 - threshold:
            status = REGRESSED
        elif ratio > 1.0 + threshold:
            status = "improved"
        else:
            status = "ok"
        result.rows.append(ComparisonRow(
            suite=name, status=status, old_throughput=old_tp,
            new_throughput=new_tp, note=note))
    for name, old_suite in old_suites.items():
        if name not in new_suites:
            result.rows.append(ComparisonRow(
                suite=name, status="removed",
                old_throughput=old_suite["timing"]["throughput"],
                note="suite missing from the new run"))
    return result


# -- rendering --------------------------------------------------------------------


def render_report(doc: Dict[str, Any]) -> str:
    """Human-readable summary of one trajectory document."""
    env = doc["env"]
    lines = [
        f"bench #{doc['bench_index']}: {len(doc['suites'])} suites, "
        f"median of {doc['repeats']}"
        f"{' (quick)' if doc['quick'] else ''} — "
        f"python {env['python']} on {env['machine']}, "
        f"{env['cpu_count']} cpus",
    ]
    name_width = max(len(name) for name in doc["suites"])
    lines.append(f"{'suite':<{name_width}} {'throughput':>16} "
                 f"{'units':<9} {'median':>12} {'spread':>8}")
    for name, suite in doc["suites"].items():
        timing = suite["timing"]
        spread = (max(timing["wall_s"]) - min(timing["wall_s"])) \
            / timing["median_wall_s"] if timing["median_wall_s"] else 0.0
        lines.append(
            f"{name:<{name_width}} {timing['throughput']:>16,.1f} "
            f"{suite['units'] + '/s':<9} {timing['median_wall_s']:>12.6f} "
            f"{spread:>7.1%}")
    return "\n".join(lines)


def render_comparison(comparison: Comparison, old_label: str = "baseline",
                      new_label: str = "new") -> str:
    """Human-readable comparison table plus the verdict line."""
    lines = [f"bench check: {new_label} vs {old_label} "
             f"(threshold {comparison.threshold:.0%})"]
    name_width = max([len(row.suite) for row in comparison.rows] + [5])
    lines.append(f"{'suite':<{name_width}} {'old/s':>16} {'new/s':>16} "
                 f"{'ratio':>8}  status")
    for row in comparison.rows:
        old_text = (f"{row.old_throughput:,.1f}"
                    if row.old_throughput is not None else "-")
        new_text = (f"{row.new_throughput:,.1f}"
                    if row.new_throughput is not None else "-")
        ratio_text = f"{row.ratio:.3f}" if row.ratio is not None else "-"
        note = f"  ({row.note})" if row.note else ""
        lines.append(f"{row.suite:<{name_width}} {old_text:>16} "
                     f"{new_text:>16} {ratio_text:>8}  {row.status}{note}")
    if comparison.ok:
        lines.append("verdict: OK — no suite regressed beyond the threshold")
    else:
        lines.append("verdict: REGRESSION in "
                     + ", ".join(comparison.regressions))
    return "\n".join(lines)
