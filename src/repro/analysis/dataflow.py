"""Classic forward/backward dataflow over the OR10N-mini CFG.

Two register-level analyses drive the lint rules:

* **Initialization** (a reaching-definitions projection): for every
  block entry, which registers *may* hold a written value (union over
  predecessors) and which *must* (intersection).  A read outside the
  *may* set is a definite use of garbage; outside the *must* set, a
  use that is uninitialized on at least one path.
* **Liveness**: which registers may still be read between a program
  point and the exit.  A definition that is dead (not live-out at the
  defining instruction) is either a redundant store or a result the
  caller never declared.

Both are solved with the standard round-robin iteration to a fixpoint;
the lattices are subsets of the 32-register file, so termination is
bounded and fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set

from repro.machine.encoding import (
    REGISTERS,
    Instruction,
    dest_register,
    source_registers,
)

from repro.analysis.cfg import CFG, EXIT

ALL_REGISTERS: FrozenSet[int] = frozenset(range(REGISTERS))


def _block_gen(program: Sequence[Instruction], start: int,
               end: int) -> Set[int]:
    """Registers written anywhere in ``[start, end)``."""
    written: Set[int] = set()
    for pc in range(start, end):
        rd = dest_register(program[pc])
        if rd is not None and rd != 0:
            written.add(rd)
    return written


@dataclass
class InitState:
    """Per-block initialization facts (register index sets)."""

    may_in: List[Set[int]]
    must_in: List[Set[int]]

    def at(self, index: int):
        """(may, must) initialized-register sets entering block *index*."""
        return self.may_in[index], self.must_in[index]


def initialized_registers(cfg: CFG,
                          entry_regs: FrozenSet[int] = frozenset()
                          ) -> InitState:
    """Solve the forward initialization analysis.

    *entry_regs* are the registers the runtime presets before the first
    instruction (kernel arguments); ``r0`` is always initialized.
    """
    entry = set(entry_regs) | {0}
    blocks = cfg.blocks
    gens = [_block_gen(cfg.program, b.start, b.end) for b in blocks]
    may_in = [set() for _ in blocks]
    must_in = [set(ALL_REGISTERS) for _ in blocks]
    if blocks:
        may_in[0] = set(entry)
        must_in[0] = set(entry)

    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block.index == 0:
                may = set(entry)
                must = set(entry)
            else:
                preds = [p for p in block.predecessors if p != EXIT]
                if preds:
                    may = set().union(*(may_in[p] | gens[p] for p in preds))
                    must = set(ALL_REGISTERS)
                    for p in preds:
                        must &= must_in[p] | gens[p]
                else:
                    may, must = set(), set()
                may |= {0}
                must |= {0}
            if may != may_in[block.index] or must != must_in[block.index]:
                may_in[block.index] = may
                must_in[block.index] = must
                changed = True
    return InitState(may_in=may_in, must_in=must_in)


@dataclass
class LivenessState:
    """Per-block liveness facts (register index sets)."""

    live_in: List[Set[int]]
    live_out: List[Set[int]]


def live_registers(cfg: CFG,
                   exit_live: FrozenSet[int] = ALL_REGISTERS
                   ) -> LivenessState:
    """Solve backward liveness.

    *exit_live* is the set of registers still observable after the
    program halts (a runner reading ``result.registers[10]`` makes
    ``r10`` exit-live).  The default — everything — makes dead-store
    detection conservative: only values overwritten before any read on
    every path are flagged.
    """
    blocks = cfg.blocks
    use = [set() for _ in blocks]
    define = [set() for _ in blocks]
    for block in blocks:
        seen_def: Set[int] = set()
        for pc in block.pcs():
            instruction = cfg.program[pc]
            for reg in source_registers(instruction):
                if reg not in seen_def:
                    use[block.index].add(reg)
            rd = dest_register(instruction)
            if rd is not None and rd != 0:
                seen_def.add(rd)
        define[block.index] = seen_def

    live_in = [set() for _ in blocks]
    live_out = [set() for _ in blocks]
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out: Set[int] = set()
            for successor in block.successors:
                if successor == EXIT:
                    out |= exit_live
                else:
                    out |= live_in[successor]
            if not block.successors:
                out |= exit_live
            new_in = use[block.index] | (out - define[block.index])
            if out != live_out[block.index] \
                    or new_in != live_in[block.index]:
                live_out[block.index] = out
                live_in[block.index] = new_in
                changed = True
    return LivenessState(live_in=live_in, live_out=live_out)


@dataclass(frozen=True)
class RegisterEvent:
    """One suspicious register access found by the instruction walk."""

    pc: int
    register: int
    definite: bool


def uninitialized_reads(cfg: CFG, init: InitState,
                        restrict_to: Optional[Set[int]] = None
                        ) -> List[RegisterEvent]:
    """Reads of registers not written on every (or any) incoming path.

    Returns one event per (pc, register); ``definite`` is True when no
    path writes the register first.  Only reachable blocks are walked —
    unreachable code gets its own rule.
    """
    events: List[RegisterEvent] = []
    reported: Set[tuple] = set()
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        may, must = init.at(block.index)
        may, must = set(may), set(must)
        for pc in block.pcs():
            instruction = cfg.program[pc]
            for reg in source_registers(instruction):
                if reg in must or (restrict_to and reg not in restrict_to):
                    continue
                key = (pc, reg)
                if key in reported:
                    continue
                reported.add(key)
                events.append(RegisterEvent(pc=pc, register=reg,
                                            definite=reg not in may))
            rd = dest_register(instruction)
            if rd is not None and rd != 0:
                may.add(rd)
                must.add(rd)
    return events


def dead_stores(cfg: CFG, liveness: LivenessState) -> List[RegisterEvent]:
    """Definitions never read before being overwritten (or exit).

    ``definite`` is always True: with the conservative exit-liveness
    default, anything reported is overwritten before use on every path.
    """
    events: List[RegisterEvent] = []
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        live = set(liveness.live_out[block.index])
        for pc in reversed(block.pcs()):
            instruction = cfg.program[pc]
            rd = dest_register(instruction)
            if rd is not None and rd != 0:
                if rd not in live:
                    events.append(RegisterEvent(pc=pc, register=rd,
                                                definite=True))
                live.discard(rd)
            live.update(source_registers(instruction))
    events.sort(key=lambda event: event.pc)
    return events
