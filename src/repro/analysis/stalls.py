"""Static load-use stall accounting.

The OR10N-mini interpreter charges every load two cycles — TCDM latency
plus an *average* load-use stall — but separately counts the loads whose
destination really is consumed by the very next instruction
(:attr:`repro.machine.interpreter.ExecutionResult.load_use_stalls`).
This module predicts those events statically: a *stall site* is a load
whose value the instruction fetched immediately afterwards reads.

Multiplying each site's static verdict by the per-pc execution counts of
:class:`repro.machine.profiler.ProfilingMachine` must reproduce the
interpreter's dynamic stall total exactly; ``tests/test_analysis.py``
cross-validates this on the built-in kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.machine.encoding import LOADS, source_registers

from repro.analysis.cfg import CFG


@dataclass(frozen=True)
class StallSite:
    """One static load-use hazard."""

    pc: int
    register: int
    #: pcs of the instructions that may execute next and read the value.
    consumers: Sequence[int]


def _next_pcs(cfg: CFG, pc: int) -> List[int]:
    """The pcs that can be fetched immediately after *pc*.

    Fall-through, plus the hardware back-edge when *pc* closes a loop
    body.  Loads never branch, so their only successors are these.
    """
    nexts = [pc + 1] if pc + 1 < len(cfg.program) else []
    for span in cfg.hwloops:
        if span.contains(pc) and pc + 1 == span.end:
            nexts.append(span.start)
    return nexts


def stall_sites(cfg: CFG) -> List[StallSite]:
    """All loads whose destination is read by a possible next fetch."""
    sites: List[StallSite] = []
    for pc, instruction in enumerate(cfg.program):
        if instruction.opcode not in LOADS or instruction.rd == 0:
            continue
        consumers = [
            next_pc for next_pc in _next_pcs(cfg, pc)
            if instruction.rd in source_registers(cfg.program[next_pc])
        ]
        if consumers:
            sites.append(StallSite(pc=pc, register=instruction.rd,
                                   consumers=tuple(consumers)))
    return sites


def stalls_by_block(cfg: CFG) -> Dict[int, int]:
    """Static stall-site count per basic block (block index -> count)."""
    counts: Dict[int, int] = {block.index: 0 for block in cfg.blocks}
    for site in stall_sites(cfg):
        counts[cfg.block_of[site.pc]] += 1
    return counts


def predicted_stalls(cfg: CFG,
                     executions_by_pc: Sequence[int]) -> int:
    """Dynamic stall total implied by static sites x execution counts.

    For a site whose consumer set covers *every* possible next fetch the
    prediction is exact; for a site with a partial consumer set (a load
    closing a hardware-loop body where only one of back-edge target and
    fall-through reads the value) the consumers' own execution counts
    apportion the estimate.
    """
    total = 0
    for site in stall_sites(cfg):
        nexts = _next_pcs(cfg, site.pc)
        if len(site.consumers) == len(nexts):
            total += executions_by_pc[site.pc]
        else:
            total += min(executions_by_pc[site.pc],
                         sum(executions_by_pc[pc] for pc in site.consumers))
    return total
