"""Static analysis of OR10N-mini machine programs.

The correctness gate between the assembler and everything that trusts
its cycle counts: a CFG builder (:mod:`~repro.analysis.cfg`), reaching
definitions and liveness (:mod:`~repro.analysis.dataflow`), a static
load-use stall model cross-validated against the interpreter
(:mod:`~repro.analysis.stalls`), a coded rule engine
(:mod:`~repro.analysis.rules`, ``OR001``..``OR010``) sharing the
:class:`~repro.isa.validate.Finding` vocabulary with the loop-nest IR
validator, a value-range/congruence domain
(:mod:`~repro.analysis.ranges`), and an SPMD concurrency analyzer
(:mod:`~repro.analysis.concurrency`, ``OR011``..``OR014``) whose
verdicts are cross-validated against the cluster DES by a dynamic
happens-before checker (:mod:`repro.pulp.hbcheck`).  Findings export to
SARIF 2.1.0 (:mod:`~repro.analysis.sarif`); the schema-stable
:func:`~repro.analysis.features.features` dict feeds cost models.
``python -m repro lint`` is the CLI surface.
"""

# The machine package's import-time strict gating re-enters this
# package (programs.py lints every built-in kernel as it assembles
# them).  Importing repro.machine first lets that re-entry find our
# submodules fully initialized regardless of which side is imported
# first.
import repro.machine  # noqa: F401  (import order, see above)

from repro.analysis.cfg import CFG, EXIT, BasicBlock, HwLoopSpan, build_cfg
from repro.analysis.concurrency import (
    AccessSite,
    ConcurrencyReport,
    analyze_spmd,
    barrier_phases,
)
from repro.analysis.dataflow import (
    ALL_REGISTERS,
    dead_stores,
    initialized_registers,
    live_registers,
    uninitialized_reads,
)
from repro.analysis.linter import (
    AnalysisReport,
    lint_instructions,
    lint_source,
    lint_unit,
)
from repro.analysis.features import (
    FEATURES_VERSION,
    FeatureDict,
    feature_schema,
    features,
    lint_features,
    mix_features,
)
from repro.analysis.ranges import (
    RangeAnalysis,
    ValueRange,
    analyze_ranges,
    transfer,
)
from repro.analysis.rules import analyze_program, check_targets, run_rules
from repro.analysis.sarif import (
    RULE_DESCRIPTIONS,
    findings_from_sarif,
    render_sarif,
    to_sarif,
)
from repro.analysis.stalls import (
    StallSite,
    predicted_stalls,
    stall_sites,
    stalls_by_block,
)

__all__ = [
    "CFG",
    "EXIT",
    "BasicBlock",
    "HwLoopSpan",
    "build_cfg",
    "ALL_REGISTERS",
    "initialized_registers",
    "live_registers",
    "uninitialized_reads",
    "dead_stores",
    "AnalysisReport",
    "lint_source",
    "lint_unit",
    "lint_instructions",
    "analyze_program",
    "check_targets",
    "run_rules",
    "StallSite",
    "stall_sites",
    "stalls_by_block",
    "predicted_stalls",
    "AccessSite",
    "ConcurrencyReport",
    "analyze_spmd",
    "barrier_phases",
    "ValueRange",
    "RangeAnalysis",
    "analyze_ranges",
    "transfer",
    "FEATURES_VERSION",
    "FeatureDict",
    "feature_schema",
    "features",
    "lint_features",
    "mix_features",
    "RULE_DESCRIPTIONS",
    "to_sarif",
    "render_sarif",
    "findings_from_sarif",
]
