"""SARIF 2.1.0 export of analyzer findings.

The Static Analysis Results Interchange Format is the lingua franca of
code-scanning UIs (GitHub code scanning, VS Code SARIF viewer).  This
module serializes any list of :class:`~repro.isa.validate.Finding`
objects — the shared vocabulary of the loop-nest validator (``VPnnn``),
the machine-code linter (``OR001``..``OR010``) and the SPMD concurrency
analyzer (``OR011``..``OR014``) — into a single-run SARIF log, and can
read one back for round-trip testing.

``python -m repro lint --format sarif`` is the CLI surface.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.validate import Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "repro-lint"

#: Finding severity -> SARIF result level.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}
_SEVERITIES = {level: severity for severity, level in _LEVELS.items()}

#: One-line rule descriptions, surfaced as ``shortDescription`` in the
#: tool.driver.rules table.  Codes missing here still export (SARIF
#: requires only the id); the table covers every rule the repo emits.
RULE_DESCRIPTIONS: Dict[str, str] = {
    "OR001": "Register read before any write on some path",
    "OR002": "Dead store: value overwritten before any read",
    "OR003": "Write to r0 (architecturally discarded)",
    "OR004": "Unreachable instructions",
    "OR005": "Control can fall off the end without a HALT",
    "OR006": "Branch/jump/hwloop target outside the program",
    "OR007": "Hardware-loop nesting deeper than the two loop registers",
    "OR008": "Branch crossing a hardware-loop body boundary",
    "OR009": "Trip-count register written inside the loop body",
    "OR010": "Load-use stall site",
    "OR011": "Data race: conflicting same-phase TCDM accesses from "
             "different cores",
    "OR012": "Barrier divergence: cores may reach different barrier counts",
    "OR013": "Missing barrier between a shared store and the DMA handoff",
    "OR014": "Predicted TCDM bank-conflict hotspot",
}


def _rule_object(code: str) -> Dict[str, Any]:
    rule: Dict[str, Any] = {"id": code}
    description = RULE_DESCRIPTIONS.get(code)
    if description is not None:
        rule["shortDescription"] = {"text": description}
    return rule


def _result(finding: Finding, rule_index: Dict[str, int],
            uri: Optional[str]) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.code or "UNKNOWN",
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
    }
    if finding.code in rule_index:
        result["ruleIndex"] = rule_index[finding.code]
    physical: Dict[str, Any] = {}
    if uri is not None:
        physical["artifactLocation"] = {"uri": uri}
    if finding.line is not None:
        physical["region"] = {"startLine": finding.line}
    location: Dict[str, Any] = {}
    if physical:
        location["physicalLocation"] = physical
    # SARIF has no slot for our symbolic "pc N" locations other than a
    # logicalLocation; keep it so nothing is lost in the round trip.
    if finding.location:
        location["logicalLocations"] = [{"name": finding.location}]
    if location:
        result["locations"] = [location]
    return result


def to_sarif(findings: Iterable[Finding],
             uri: Optional[str] = None,
             tool_version: Optional[str] = None) -> Dict[str, Any]:
    """Build a SARIF 2.1.0 log dict from *findings*.

    *uri* names the analyzed artifact (source path or program name) and
    becomes every result's ``artifactLocation``.
    """
    findings = list(findings)
    codes: List[str] = []
    for finding in findings:
        code = finding.code or "UNKNOWN"
        if code not in codes:
            codes.append(code)
    rule_index = {code: i for i, code in enumerate(codes)}
    driver: Dict[str, Any] = {
        "name": TOOL_NAME,
        "rules": [_rule_object(code) for code in codes],
    }
    if tool_version is not None:
        driver["version"] = tool_version
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": driver},
            "results": [_result(f, rule_index, uri) for f in findings],
        }],
    }


def render_sarif(findings: Iterable[Finding],
                 uri: Optional[str] = None,
                 tool_version: Optional[str] = None) -> str:
    """JSON text of :func:`to_sarif`."""
    return json.dumps(to_sarif(findings, uri=uri, tool_version=tool_version),
                      indent=2)


def findings_from_sarif(document: Any) -> List[Finding]:
    """Reconstruct :class:`Finding` objects from a SARIF log.

    Accepts the dict from :func:`to_sarif` or its JSON text.  Inverse of
    the export for the fields a :class:`Finding` carries; used by the
    round-trip tests and handy for diffing two lint runs.
    """
    if isinstance(document, str):
        document = json.loads(document)
    findings: List[Finding] = []
    for run in document.get("runs", []):
        for result in run.get("results", []):
            level = result.get("level", "warning")
            message = result.get("message", {}).get("text", "")
            line: Optional[int] = None
            location = ""
            for loc in result.get("locations", []):
                region = loc.get("physicalLocation", {}).get("region", {})
                if "startLine" in region:
                    line = int(region["startLine"])
                logical = loc.get("logicalLocations", [])
                if logical and "name" in logical[0]:
                    location = logical[0]["name"]
            findings.append(Finding(
                severity=_SEVERITIES.get(level, Severity.WARNING),
                location=location,
                message=message,
                code=result.get("ruleId", ""),
                line=line,
            ))
    return findings


def sarif_round_trip_equal(findings: Sequence[Finding],
                           document: Any) -> Tuple[bool, str]:
    """Check that *document* decodes to exactly *findings*.

    Returns ``(ok, detail)`` where *detail* names the first mismatch.
    """
    decoded = findings_from_sarif(document)
    if len(decoded) != len(findings):
        return False, f"count mismatch: {len(findings)} != {len(decoded)}"
    for i, (a, b) in enumerate(zip(findings, decoded)):
        if (a.code, a.severity, a.message, a.line, a.location) != \
                (b.code, b.severity, b.message, b.line, b.location):
            return False, f"finding {i} mismatch: {a} != {b}"
    return True, ""
