"""SPMD concurrency analysis: races, barriers, bank conflicts.

The cluster runs the *same* program on every core with per-core
register presets (the SPMD model of the OpenMP runtime): core ``c``
gets its row range, its slice base, its chunk bound.  This module
answers, statically, the three questions that decide whether such a
program is correct and fast on the shared L1:

* **OR011 — data races.**  Per core, the value-range analysis
  (:mod:`repro.analysis.ranges`) bounds every load/store to an
  arithmetic progression of byte addresses; a *barrier-phase* dataflow
  bounds how many barriers the core has crossed when the access runs.
  Two accesses on different cores race when their phase intervals
  intersect (no barrier provably separates them), at least one is a
  store, and their address progressions can touch a common byte.
* **OR012 — barrier divergence.**  Each core's barrier count at exit
  must be a statically-constant number, equal across cores; a barrier
  under a data-dependent branch or in a loop with an unprovable trip
  count makes the interval non-singleton and is flagged (the dynamic
  twin deadlocks — see ``SharedMemoryCluster.run``).
* **OR013 — missing barrier before DMA handoff.**  A store into the
  DMA-out region with no barrier on some path to exit means the DMA
  can ship stale bytes.
* **OR014 — bank-conflict hotspots.**  Sampling each access
  progression over the word-interleaved bank map and weighting by
  estimated execution count predicts per-bank contention; banks where
  several cores pile up are reported with estimated lost cycles.

Everything is conservative in the sound direction for OR011..OR013:
*may*-overlap, *may*-be-concurrent.  OR014 is a performance estimate
and reports at INFO severity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.isa.validate import Finding, Severity
from repro.machine.encoding import (
    BRANCHES,
    LOADS,
    STORES,
    Instruction,
    Opcode,
)

from repro.analysis.cfg import CFG, EXIT, HwLoopSpan, build_cfg
from repro.analysis.ranges import (
    RangeAnalysis,
    ValueRange,
    analyze_ranges,
    get,
    may_overlap,
    refine_branch,
    transfer,
)

#: "Unboundedly many barriers" in phase intervals.
INF = 1 << 30
#: Assumed iteration count of software loops with unknown trip counts.
_SOFT_LOOP_DEFAULT = 8
#: Trip-count clamp for execution-count estimates.
_TRIP_CLAMP = 4096
#: Maximum addresses sampled per access progression for bank mapping.
_BANK_SAMPLES = 512
#: OR014 reports at most this many hotspot banks.
_MAX_HOTSPOTS = 4

Phase = Tuple[int, int]


def _location(pc: int) -> str:
    return f"pc {pc}"


def _line(lines: Optional[Sequence[int]], pc: int) -> Optional[int]:
    if lines is None or pc >= len(lines):
        return None
    return lines[pc]


# ---------------------------------------------------------------------------
# Per-core structural facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AccessSite:
    """One static memory access of one core's execution."""

    core: int
    pc: int
    address: ValueRange
    width: int
    is_store: bool
    #: Inclusive interval of barrier counts possible when this runs.
    phase: Phase
    #: Estimated dynamic executions (hwloop trips x software loops).
    count: int


def _edge_feasible(cfg: CFG, ranges: RangeAnalysis) -> Dict[Tuple[int, int],
                                                            bool]:
    """Which (block, successor) conditional edges this core can take.

    The per-core register presets often decide branches outright (a
    core-id compare, a chunk-bound check); an edge whose branch
    refinement yields the empty state is dropped from every dataflow
    below, which is what makes per-core barrier counts differ honestly
    between cores of one SPMD program.
    """
    feasible: Dict[Tuple[int, int], bool] = {}
    for block in cfg.blocks:
        state = ranges.block_in[block.index]
        if state is None:
            continue
        last_pc = block.end - 1
        last = cfg.program[last_pc]
        if last.opcode not in BRANCHES or last.opcode is Opcode.JUMP:
            continue
        out = dict(state)
        for pc in block.pcs():
            out = transfer(out, cfg.program[pc])
        taken_target = last_pc + 1 + last.imm
        taken_ok = refine_branch(out, last, taken=True) is not None
        fall_ok = refine_branch(out, last, taken=False) is not None
        for successor in block.successors:
            if successor == EXIT:
                continue
            succ_start = cfg.blocks[successor].start
            hits_taken = succ_start == taken_target \
                or any(span.contains(last_pc) and taken_target == span.end
                       and succ_start == span.start
                       for span in cfg.hwloops)
            hits_fall = succ_start == last_pc + 1 \
                or any(span.contains(last_pc) and last_pc + 1 == span.end
                       and succ_start == span.start
                       for span in cfg.hwloops)
            ok = (hits_taken and taken_ok) or (hits_fall and fall_ok)
            feasible[(block.index, successor)] = ok
    return feasible


def _trip_count(ranges: RangeAnalysis, span: HwLoopSpan) -> Optional[int]:
    """The span's trip count when statically constant for this core."""
    state = ranges.state_before(span.setup_pc)
    trips = get(state, span.trip_register)
    if trips.is_singleton:
        return max(0, trips.lo)
    return None


def _span_barriers(cfg: CFG, span: HwLoopSpan,
                   trips: Dict[HwLoopSpan, Optional[int]]) -> Optional[int]:
    """Barriers one iteration of *span* crosses, when constant.

    Zero-barrier bodies are constant regardless of internal control
    flow (the common compute loop).  Bodies with barriers must be
    branch-free; nested loops contribute ``trip x per-iteration`` when
    both are constant.
    """
    direct = [pc for pc in range(span.start, min(span.end, len(cfg.program)))
              if cfg.program[pc].opcode is Opcode.BARRIER]
    if not direct and not any(
            other.setup_pc != span.setup_pc and span.contains(other.setup_pc)
            and _span_barriers(cfg, other, trips)
            for other in cfg.hwloops):
        return 0
    nested = [other for other in cfg.hwloops
              if other.setup_pc != span.setup_pc
              and span.contains(other.setup_pc)]
    own = [pc for pc in direct
           if not any(other.contains(pc) for other in nested)]
    for pc in range(span.start, min(span.end, len(cfg.program))):
        if cfg.program[pc].opcode in BRANCHES \
                and not any(other.contains(pc) for other in nested):
            return None
    total = len(own)
    for other in nested:
        per_iteration = _span_barriers(cfg, other, trips)
        if per_iteration is None:
            return None
        if per_iteration == 0:
            continue
        t = trips.get(other)
        if t is None:
            return None
        total += t * per_iteration
    return total


# ---------------------------------------------------------------------------
# Barrier-phase dataflow
# ---------------------------------------------------------------------------


@dataclass
class PhaseAnalysis:
    """Barrier-count intervals for one core's run of the program."""

    cfg: CFG
    block_in: List[Optional[Phase]]
    exit_phase: Optional[Phase]

    def phase_at(self, pc: int) -> Optional[Phase]:
        """Barrier-count interval just before executing *pc*."""
        block = self.cfg.block_at(pc)
        interval = self.block_in[block.index]
        if interval is None:
            return None
        crossed = sum(1 for walk in range(block.start, pc)
                      if self.cfg.program[walk].opcode is Opcode.BARRIER)
        return (interval[0] + crossed, min(INF, interval[1] + crossed))


def _phase_join(a: Optional[Phase], b: Phase) -> Phase:
    if a is None:
        return b
    return (min(a[0], b[0]), max(a[1], b[1]))


def barrier_phases(cfg: CFG, ranges: RangeAnalysis) -> PhaseAnalysis:
    """Solve the barrier-phase intervals for one core.

    Mirrors the range fixpoint: hardware loops with a constant trip
    count and a constant per-iteration barrier count are summarized in
    closed form (body phases ``[in, in + (T-1)B]``, exit exactly
    ``in + TB``); anything less regular widens to :data:`INF`, which
    downstream rules read as "not statically constant".
    """
    blocks = cfg.blocks
    block_in: List[Optional[Phase]] = [None] * len(blocks)
    if not blocks:
        return PhaseAnalysis(cfg=cfg, block_in=block_in, exit_phase=(0, 0))
    block_in[0] = (0, 0)

    trips = {span: _trip_count(ranges, span) for span in cfg.hwloops}
    per_iteration = {span: _span_barriers(cfg, span, trips)
                     for span in cfg.hwloops}
    feasible = _edge_feasible(cfg, ranges)
    block_barriers = [sum(1 for pc in block.pcs()
                          if cfg.program[pc].opcode is Opcode.BARRIER)
                      for block in blocks]
    head_block = {span: cfg.block_of[span.start]
                  for span in cfg.hwloops if span.start < len(cfg.program)}
    end_block = {span: cfg.block_of[span.end]
                 for span in cfg.hwloops if span.end < len(cfg.program)}
    span_entry: Dict[HwLoopSpan, Phase] = {}

    def summarized(span: HwLoopSpan) -> bool:
        return trips[span] is not None and per_iteration[span] is not None

    exit_phase: Optional[Phase] = None
    visits = [0] * len(blocks)
    worklist = [0]
    while worklist:
        index = worklist.pop(0)
        interval = block_in[index]
        if interval is None:
            continue
        visits[index] += 1
        block = blocks[index]
        out = (interval[0] + block_barriers[index],
               min(INF, interval[1] + block_barriers[index]))
        last_pc = block.end - 1
        last = cfg.program[last_pc]
        if last.opcode is Opcode.HWLOOP:
            for span in cfg.hwloops:
                if span.setup_pc == last_pc:
                    span_entry[span] = out
        if EXIT in block.successors:
            exit_phase = _phase_join(exit_phase, out)
        for successor in block.successors:
            if successor == EXIT:
                continue
            if not feasible.get((index, successor), True):
                continue
            edge: Phase = out
            for span in cfg.hwloops:
                if not summarized(span):
                    continue
                t = trips[span]
                b = per_iteration[span]
                if head_block.get(span) == successor:
                    if last_pc == span.setup_pc or span.contains(last_pc):
                        # Setup entry and hardware back-edge both carry
                        # the closed-form body interval.
                        base = span_entry.get(span, edge)
                        edge = (base[0],
                                min(INF, base[1] + max(0, t - 1) * b))
                elif end_block.get(span) == successor:
                    if last_pc == span.setup_pc and t > 0:
                        # Zero-trip skip edge is infeasible: T > 0.
                        edge = None  # type: ignore[assignment]
                    elif span.contains(last_pc):
                        base = span_entry.get(span, edge)
                        edge = (min(INF, base[0] + t * b),
                                min(INF, base[1] + t * b))
            if edge is None:
                continue
            previous = block_in[successor]
            merged = _phase_join(previous, edge)
            if previous is not None and visits[successor] > 8 \
                    and merged != previous:
                merged = (merged[0], INF)
            if merged != previous:
                block_in[successor] = merged
                if successor not in worklist:
                    worklist.append(successor)
    return PhaseAnalysis(cfg=cfg, block_in=block_in, exit_phase=exit_phase)


def _phases_intersect(a: Phase, b: Phase) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]


# ---------------------------------------------------------------------------
# Execution-count estimation (for OR014 weights)
# ---------------------------------------------------------------------------


def _cycle_blocks(cfg: CFG) -> Set[int]:
    """Blocks on a non-hwloop CFG cycle (software loops)."""
    spans = cfg.hwloops
    in_cycle: Set[int] = set()
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        # DFS: can this block reach itself without a hardware back-edge?
        stack = list(block.successors)
        seen: Set[int] = set()
        while stack:
            current = stack.pop()
            if current == EXIT or current in seen:
                continue
            if current == block.index:
                in_cycle.add(block.index)
                break
            seen.add(current)
            source = cfg.blocks[current]
            last_pc = source.end - 1
            for successor in source.successors:
                if successor == EXIT:
                    continue
                is_back = any(
                    span.contains(last_pc)
                    and cfg.blocks[successor].start == span.start
                    and span.contains(source.start)
                    for span in spans)
                if not is_back:
                    stack.append(successor)
    return in_cycle


def _site_count(cfg: CFG, pc: int,
                trips: Dict[HwLoopSpan, Optional[int]],
                cycles: Set[int]) -> int:
    count = 1
    for span in cfg.loops_containing(pc):
        t = trips.get(span)
        count *= min(_TRIP_CLAMP, max(1, t)) if t is not None \
            else _SOFT_LOOP_DEFAULT
    if cfg.block_of[pc] in cycles:
        count *= _SOFT_LOOP_DEFAULT
    return min(count, _TRIP_CLAMP * _TRIP_CLAMP)


def _sample_addresses(address: ValueRange) -> List[int]:
    if address.is_singleton:
        return [address.lo]
    stride = max(1, address.stride)
    total = (address.hi - address.lo) // stride + 1
    if total <= _BANK_SAMPLES:
        return list(range(address.lo, address.hi + 1, stride))
    step = total // _BANK_SAMPLES
    return [address.lo + i * step * stride for i in range(_BANK_SAMPLES)]


# ---------------------------------------------------------------------------
# The combined report
# ---------------------------------------------------------------------------


@dataclass
class ConcurrencyReport:
    """Everything one SPMD analysis produced."""

    cores: int
    banks: int
    findings: List[Finding]
    sites: List[AccessSite]
    #: Per-core barrier-count interval at program exit.
    exit_phases: List[Optional[Phase]]
    #: Racing site pairs behind the OR011 findings (deduplicated).
    races: List[Tuple[AccessSite, AccessSite]] = field(default_factory=list)
    #: Estimated accesses per bank, per core: ``bank_load[core][bank]``.
    bank_load: List[List[float]] = field(default_factory=list)
    #: Estimated lost cycles per bank (requests losing arbitration).
    bank_conflict_estimate: List[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no ERROR finding exists."""
        return not any(f.severity is Severity.ERROR for f in self.findings)

    def features(self) -> Dict[str, float]:
        """Stable feature dict for model training / regression tracking."""
        loads = [sum(core) for core in zip(*self.bank_load)] \
            if self.bank_load else [0.0] * self.banks
        total_load = sum(loads)
        mean_load = total_load / self.banks if self.banks else 0.0
        exit_lo = min((p[0] for p in self.exit_phases if p), default=0)
        exit_hi = max((p[1] for p in self.exit_phases if p), default=0)
        return {
            "concurrency.cores": float(self.cores),
            "concurrency.banks": float(self.banks),
            "concurrency.access_sites": float(len(self.sites)),
            "concurrency.shared_store_sites": float(
                len({(s.core, s.pc) for a, b in self.races
                     for s in (a, b) if s.is_store})),
            "concurrency.races": float(len(self.races)),
            "concurrency.barrier_phase_min": float(min(exit_lo, INF)),
            "concurrency.barrier_phase_max": float(min(exit_hi, INF)),
            "concurrency.bank_load_total": float(total_load),
            "concurrency.bank_load_max": float(max(loads, default=0.0)),
            "concurrency.bank_load_imbalance": float(
                max(loads, default=0.0) / mean_load) if mean_load else 0.0,
            "concurrency.predicted_conflict_cycles": float(
                sum(self.bank_conflict_estimate)),
        }


def analyze_spmd(program: Sequence[Instruction],
                 cores: int = 4,
                 presets: Optional[Sequence[Mapping[int, int]]] = None,
                 lines: Optional[Sequence[int]] = None,
                 dma_out: Optional[Tuple[int, int]] = None,
                 banks: int = 8) -> ConcurrencyReport:
    """Analyze *program* run SPMD on *cores* cores.

    ``presets[c]`` maps register -> entry value for core ``c`` (the
    runtime's per-core arguments); ``dma_out`` is the half-open byte
    region a DMA transfer ships out after the program ends.
    """
    if presets is None:
        presets = [{} for _ in range(cores)]
    if len(presets) != cores:
        raise ValueError(f"need {cores} preset dict(s), got {len(presets)}")
    cfg = build_cfg(program)
    per_core_ranges = [analyze_ranges(cfg, entry=dict(p)) for p in presets]
    per_core_phases = [barrier_phases(cfg, r) for r in per_core_ranges]
    findings: List[Finding] = []

    # -- access sites --------------------------------------------------------
    trips_by_core = [{span: _trip_count(r, span) for span in cfg.hwloops}
                     for r in per_core_ranges]
    cycles = _cycle_blocks(cfg)
    sites: List[AccessSite] = []
    reachable_pcs = sorted(cfg.reachable_pcs())
    for core in range(cores):
        ranges = per_core_ranges[core]
        phases = per_core_phases[core]
        for pc in reachable_pcs:
            instruction = program[pc]
            opcode = instruction.opcode
            if opcode not in LOADS and opcode not in STORES:
                continue
            phase = phases.phase_at(pc)
            if phase is None:  # unreachable for this core's presets
                continue
            sites.append(AccessSite(
                core=core,
                pc=pc,
                address=ranges.address_range(pc),
                width=LOADS.get(opcode) or STORES[opcode],
                is_store=opcode in STORES,
                phase=phase,
                count=_site_count(cfg, pc, trips_by_core[core], cycles)))

    # -- OR011: races --------------------------------------------------------
    races: List[Tuple[AccessSite, AccessSite]] = []
    reported: Set[Tuple[int, int]] = set()
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            if a.core == b.core:
                continue
            if not (a.is_store or b.is_store):
                continue
            if not _phases_intersect(a.phase, b.phase):
                continue
            if not may_overlap(a.address, a.width, b.address, b.width):
                continue
            races.append((a, b))
            key = (min(a.pc, b.pc), max(a.pc, b.pc))
            if key in reported:
                continue
            reported.add(key)
            store = a if a.is_store else b
            other = b if store is a else a
            kind = "store/store" if a.is_store and b.is_store \
                else "store/load"
            findings.append(Finding(
                Severity.ERROR, _location(store.pc),
                f"data race ({kind}): cores {store.core} and {other.core} "
                f"can touch overlapping bytes ({store.address} vs "
                f"{other.address}) with no barrier between them "
                f"(peer access at pc {other.pc})",
                code="OR011", line=_line(lines, store.pc)))

    # -- OR012: barrier divergence ------------------------------------------
    exit_phases = [p.exit_phase for p in per_core_phases]
    divergent = False
    for core, phase in enumerate(exit_phases):
        if phase is None:
            continue
        if phase[0] != phase[1]:
            divergent = True
            hi = "unbounded" if phase[1] >= INF else str(phase[1])
            findings.append(Finding(
                Severity.ERROR, "program",
                f"barrier divergence: core {core} crosses between "
                f"{phase[0]} and {hi} barriers depending on control flow "
                f"(every core must cross the same constant number)",
                code="OR012", line=None))
    if not divergent:
        constants = {phase[0] for phase in exit_phases if phase is not None}
        if len(constants) > 1:
            counts = ", ".join(
                f"core {core}: {phase[0]}"
                for core, phase in enumerate(exit_phases) if phase is not None)
            findings.append(Finding(
                Severity.ERROR, "program",
                f"barrier divergence: cores cross different numbers of "
                f"barriers ({counts}); the cluster barrier never completes",
                code="OR012", line=None))

    # -- OR013: missing barrier before DMA handoff ---------------------------
    if dma_out is not None:
        dma_lo, dma_hi = dma_out
        dma_range = ValueRange(dma_lo, max(dma_lo, dma_hi - 1),
                               1 if dma_hi - 1 > dma_lo else 0)
        flagged: Set[int] = set()
        for core in range(cores):
            after = _min_barriers_to_exit(
                cfg, _edge_feasible(cfg, per_core_ranges[core]))
            for site in sites:
                if site.core != core or not site.is_store:
                    continue
                if site.pc in flagged:
                    continue
                if not may_overlap(site.address, site.width, dma_range, 1):
                    continue
                if after.get(site.pc, 0) == 0:
                    flagged.add(site.pc)
                    findings.append(Finding(
                        Severity.ERROR, _location(site.pc),
                        f"store into the DMA-out region "
                        f"[{dma_lo:#x}, {dma_hi:#x}) can reach the handoff "
                        f"with no barrier after it; the DMA may ship stale "
                        f"data",
                        code="OR013", line=_line(lines, site.pc)))

    # -- OR014: bank-conflict hotspots --------------------------------------
    bank_load = [[0.0] * banks for _ in range(cores)]
    for site in sites:
        samples = _sample_addresses(site.address)
        weight = site.count / len(samples)
        for address in samples:
            bank_load[site.core][(address // 4) % banks] += weight
    conflict_estimate = []
    for bank in range(banks):
        loads = [bank_load[core][bank] for core in range(cores)]
        total = sum(loads)
        conflict_estimate.append(total - max(loads, default=0.0))
    hotspots = sorted(
        (bank for bank in range(banks) if conflict_estimate[bank] >= 1.0),
        key=lambda bank: -conflict_estimate[bank])[:_MAX_HOTSPOTS]
    for bank in hotspots:
        sharers = sum(1 for core in range(cores) if bank_load[core][bank] > 0)
        findings.append(Finding(
            Severity.INFO, f"bank {bank}",
            f"predicted TCDM hotspot: {sharers} core(s) direct "
            f"~{sum(bank_load[core][bank] for core in range(cores)):.0f} "
            f"accesses at bank {bank}; estimated "
            f"{conflict_estimate[bank]:.0f} contention cycle(s) lost to "
            f"arbitration",
            code="OR014", line=None))

    return ConcurrencyReport(
        cores=cores,
        banks=banks,
        findings=findings,
        sites=sites,
        exit_phases=exit_phases,
        races=races,
        bank_load=bank_load,
        bank_conflict_estimate=conflict_estimate,
    )


def _min_barriers_to_exit(cfg: CFG,
                          feasible: Dict[Tuple[int, int], bool]
                          ) -> Dict[int, int]:
    """Minimum barriers crossed from just after each pc to program exit.

    A store with value 0 here can be the last shared-memory write a
    core performs — nothing orders it before whatever consumes the
    data after the program (rule OR013's premise).
    """
    blocks = cfg.blocks
    # min barriers from block entry to exit
    entry_min: List[int] = [INF] * len(blocks)
    block_barriers = [sum(1 for pc in block.pcs()
                          if cfg.program[pc].opcode is Opcode.BARRIER)
                      for block in blocks]
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            best = INF
            if EXIT in block.successors:
                best = 0
            for successor in block.successors:
                if successor == EXIT:
                    continue
                if not feasible.get((block.index, successor), True):
                    continue
                best = min(best, entry_min[successor])
            value = min(INF, best + block_barriers[block.index])
            if value < entry_min[block.index]:
                entry_min[block.index] = value
                changed = True
    result: Dict[int, int] = {}
    for block in blocks:
        if block.index not in cfg.reachable:
            continue
        for pc in block.pcs():
            after_in_block = sum(
                1 for walk in range(pc + 1, block.end)
                if cfg.program[walk].opcode is Opcode.BARRIER)
            best = INF
            if EXIT in block.successors:
                best = 0
            for successor in block.successors:
                if successor == EXIT:
                    continue
                if not feasible.get((block.index, successor), True):
                    continue
                best = min(best, entry_min[successor])
            result[pc] = min(INF, after_in_block + best)
    return result
