"""Value-range / congruence analysis of OR10N-mini register contents.

The abstract domain is a bounded arithmetic progression: a register
holds some value in ``{lo, lo + stride, ..., hi}``.  That is exactly
the shape address computations take in strided kernels — a base plus a
loop index scaled by an element size — so the domain proves the two
facts the concurrency analysis needs about a memory access:

* an **interval** bound on the byte addresses it can touch, and
* a **congruence** (stride) that separates interleaved access streams
  whose intervals overlap (core 0 touching even words, core 1 odd).

Three pieces of machinery keep loops precise without giving up
soundness:

* **branch-edge refinement** — flowing along the taken edge of
  ``blt r5, r16`` clamps ``r5`` below ``r16``; this recovers bounds
  for induction variables of software loops;
* **hardware-loop summarization** — a register whose only writes in a
  straight-line ``hwloop`` body are self-increments with a statically
  constant delta is seeded at the body head with its closed-form range
  over all iterations, and the hardware back-edge is neutralized for
  it (otherwise the fixpoint would widen it to TOP);
* **widening** — any register still changing after several visits of a
  block is widened to the 32-bit clamp, bounding the iteration count.

Soundness caveat, by construction: a computation that would exceed the
32-bit two's-complement range goes straight to TOP (which covers every
representable value), so wrap-around never produces a value outside
the reported range.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from repro.machine.encoding import (
    BRANCHES,
    LOADS,
    STORES,
    Instruction,
    Opcode,
)

from repro.analysis.cfg import CFG, EXIT, HwLoopSpan

CLAMP_LO = -(1 << 31)
CLAMP_HI = (1 << 31) - 1

#: Times one register may change at one block before joins widen it.
#: Counted per (block, register) — a register that converges in two
#: joins must not be widened just because an inner loop churns the
#: block many times.
_WIDEN_AFTER = 8
#: Hard cap on fixpoint propagations (safety net; sound fallback TOP).
_MAX_STEPS = 20_000


@dataclass(frozen=True)
class ValueRange:
    """A bounded arithmetic progression ``{lo, lo+stride, ..., hi}``.

    ``stride == 0`` means the singleton ``{lo}`` (then ``hi == lo``).
    """

    lo: int
    hi: int
    stride: int = 1

    @property
    def is_singleton(self) -> bool:
        """Whether exactly one value is possible."""
        return self.lo == self.hi

    @property
    def is_top(self) -> bool:
        """Whether this is the full 32-bit range."""
        return self.lo <= CLAMP_LO and self.hi >= CLAMP_HI

    def count(self) -> int:
        """Number of values in the progression."""
        if self.is_singleton:
            return 1
        return (self.hi - self.lo) // max(1, self.stride) + 1

    def __str__(self) -> str:
        if self.is_singleton:
            return f"{{{self.lo}}}"
        return f"[{self.lo}, {self.hi}] step {self.stride}"


TOP = ValueRange(CLAMP_LO, CLAMP_HI, 1)
ZERO = ValueRange(0, 0, 0)


def make(lo: int, hi: int, stride: int = 1) -> ValueRange:
    """Normalized constructor; overflow beyond 32 bits becomes TOP."""
    if lo > hi:
        lo, hi = hi, lo
    if lo < CLAMP_LO or hi > CLAMP_HI:
        # The concrete machine wraps; TOP is the only sound answer.
        return TOP
    if lo == hi:
        return ValueRange(lo, hi, 0)
    stride = max(1, abs(stride))
    hi = lo + ((hi - lo) // stride) * stride
    if lo == hi:
        return ValueRange(lo, hi, 0)
    return ValueRange(lo, hi, stride)


def const(value: int) -> ValueRange:
    """The singleton range {value}."""
    return make(value, value, 0)


def add(a: ValueRange, b: ValueRange) -> ValueRange:
    """Abstract addition."""
    return make(a.lo + b.lo, a.hi + b.hi, gcd(a.stride, b.stride))


def negate(a: ValueRange) -> ValueRange:
    """Abstract negation."""
    return make(-a.hi, -a.lo, a.stride)


def sub(a: ValueRange, b: ValueRange) -> ValueRange:
    """Abstract subtraction."""
    return add(a, negate(b))


def mul_const(a: ValueRange, c: int) -> ValueRange:
    """Abstract multiplication by a constant."""
    if c == 0:
        return ZERO
    if c > 0:
        return make(a.lo * c, a.hi * c, a.stride * c)
    return make(a.hi * c, a.lo * c, a.stride * c)


def mul(a: ValueRange, b: ValueRange) -> ValueRange:
    """Abstract multiplication."""
    if a.is_singleton:
        return mul_const(b, a.lo)
    if b.is_singleton:
        return mul_const(a, b.lo)
    products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return make(min(products), max(products), 1)


def join(a: ValueRange, b: ValueRange) -> ValueRange:
    """Least upper bound of two progressions."""
    g = gcd(gcd(a.stride, b.stride), abs(a.lo - b.lo))
    return make(min(a.lo, b.lo), max(a.hi, b.hi), g if g else 0)


#: Staged widening threshold.  A moving bound first jumps here; only a
#: bound that keeps growing past it jumps to the 32-bit clamp.  Staying
#: clear of the clamp keeps small post-widening arithmetic (the +4 of
#: an induction step) from overflowing to TOP, so narrowing can recover
#: the refined bound.  Sound: the fixpoint keeps iterating, so values
#: beyond the threshold force one more widening step.
_WIDEN_THRESHOLD = 1 << 28


def widen(old: ValueRange, new: ValueRange) -> ValueRange:
    """Widen *new* against *old*: moving bounds jump outward in stages."""
    if new.lo >= old.lo:
        lo = new.lo
    elif new.lo >= -_WIDEN_THRESHOLD and old.lo > -_WIDEN_THRESHOLD:
        lo = -_WIDEN_THRESHOLD
    else:
        lo = CLAMP_LO
    if new.hi <= old.hi:
        hi = new.hi
    elif new.hi <= _WIDEN_THRESHOLD and old.hi < _WIDEN_THRESHOLD:
        hi = _WIDEN_THRESHOLD
    else:
        hi = CLAMP_HI
    return make(lo, hi, 1 if lo != hi else 0)


def clamp_upper(a: ValueRange, upper: int) -> Optional[ValueRange]:
    """Restrict to values <= *upper* (None when empty)."""
    if a.lo > upper:
        return None
    if a.hi <= upper:
        return a
    stride = max(1, a.stride)
    hi = a.lo + ((upper - a.lo) // stride) * stride
    return make(a.lo, hi, a.stride)


def clamp_lower(a: ValueRange, lower: int) -> Optional[ValueRange]:
    """Restrict to values >= *lower* (None when empty)."""
    if a.hi < lower:
        return None
    if a.lo >= lower:
        return a
    stride = max(1, a.stride)
    lo = a.lo + -(-(lower - a.lo) // stride) * stride
    if lo > a.hi:
        return None
    return make(lo, a.hi, a.stride)


def intersect(a: ValueRange, b: ValueRange) -> Optional[ValueRange]:
    """Interval intersection (congruence dropped — over-approximate)."""
    lo = max(a.lo, b.lo)
    hi = min(a.hi, b.hi)
    if lo > hi:
        return None
    return make(lo, hi, 1 if lo != hi else 0)


def may_overlap(a: ValueRange, width_a: int,
                b: ValueRange, width_b: int) -> bool:
    """Whether byte accesses of *width* at addresses in *a*/*b* can
    touch a common byte.

    Interval proximity first, then the congruence test: with strides
    ``sa``/``sb`` any pair of addresses differs by a multiple of
    ``gcd(sa, sb)`` from ``a.lo - b.lo``, so overlap needs a byte
    distance in ``(-width_b, width_a)`` compatible with that residue.
    Returns True whenever overlap cannot be *excluded* — the sound
    direction for race detection.
    """
    if a.lo > b.hi + width_b - 1 or b.lo > a.hi + width_a - 1:
        return False
    g = gcd(a.stride, b.stride)
    if g == 0:  # both singletons
        return -(width_b - 1) <= a.lo - b.lo <= width_a - 1
    if g == 1:
        return True
    base = a.lo - b.lo
    return any((d - base) % g == 0
               for d in range(-(width_b - 1), width_a))


# ---------------------------------------------------------------------------
# Transfer function
# ---------------------------------------------------------------------------

#: A register state: register index -> range; missing means TOP.
RegState = Dict[int, ValueRange]

#: Value ranges implied by load widths (sign-extended sub-word loads).
_LOAD_RANGES = {
    Opcode.LB: make(-128, 127, 1),
    Opcode.LH: make(-32768, 32767, 1),
    Opcode.LW: TOP,
}


def get(state: RegState, register: int) -> ValueRange:
    """The range of *register* in *state* (r0 is always zero)."""
    if register == 0:
        return ZERO
    return state.get(register, TOP)


def _set(state: RegState, register: int, value: ValueRange) -> None:
    if register == 0:
        return
    if value.is_top:
        state.pop(register, None)
    else:
        state[register] = value


def transfer(state: RegState, instruction: Instruction) -> RegState:
    """Apply one instruction to a copy of *state*."""
    state = dict(state)
    opcode = instruction.opcode
    rd, ra, rb, imm = (instruction.rd, instruction.ra,
                       instruction.rb, instruction.imm)
    if opcode in STORES or opcode in BRANCHES \
            or opcode in (Opcode.HALT, Opcode.HWLOOP, Opcode.BARRIER):
        return state
    if opcode in LOADS:
        _set(state, rd, _LOAD_RANGES[opcode])
        return state
    a = get(state, ra)
    b = get(state, rb)
    if opcode is Opcode.ADDI:
        value = add(a, const(imm))
    elif opcode is Opcode.ADD:
        value = add(a, b)
    elif opcode is Opcode.SUB:
        value = sub(a, b)
    elif opcode is Opcode.MULI:
        value = mul_const(a, imm)
    elif opcode is Opcode.MUL:
        value = mul(a, b)
    elif opcode is Opcode.SLLI:
        value = mul_const(a, 1 << (imm & 31))
    elif opcode is Opcode.SLL:
        value = mul_const(a, 1 << (b.lo & 31)) if b.is_singleton else TOP
    elif opcode is Opcode.SRAI:
        value = make(a.lo >> (imm & 31), a.hi >> (imm & 31), 1) \
            if not a.is_top else TOP
    elif opcode is Opcode.ANDI:
        value = make(0, imm, 1) if imm >= 0 else TOP
    elif opcode is Opcode.MIN:
        value = make(min(a.lo, b.lo), min(a.hi, b.hi), 1)
    elif opcode is Opcode.MAX:
        value = make(max(a.lo, b.lo), max(a.hi, b.hi), 1)
    elif opcode is Opcode.MAC:
        value = add(get(state, rd), mul(a, b))
    else:
        # AND/OR/XOR/SRA/ADD4/SUB4: no useful transfer.
        value = TOP
    _set(state, rd, value)
    return state


def refine_branch(state: RegState, instruction: Instruction,
                  taken: bool) -> Optional[RegState]:
    """Restrict *state* by a conditional branch outcome.

    Returns ``None`` when the outcome is statically infeasible (the
    edge then carries no state at all).
    """
    opcode = instruction.opcode
    if opcode is Opcode.JUMP or opcode not in BRANCHES:
        return state
    ra, rb = instruction.ra, instruction.rb
    a = get(state, ra)
    b = get(state, rb)
    equal = (opcode is Opcode.BEQ and taken) \
        or (opcode is Opcode.BNE and not taken)
    unequal = (opcode is Opcode.BNE and taken) \
        or (opcode is Opcode.BEQ and not taken)
    state = dict(state)
    if opcode is Opcode.BLT:
        if taken:  # a < b
            new_a = clamp_upper(a, b.hi - 1)
            new_b = clamp_lower(b, a.lo + 1)
        else:      # a >= b
            new_a = clamp_lower(a, b.lo)
            new_b = clamp_upper(b, a.hi)
        if new_a is None or new_b is None:
            return None
        _set(state, ra, new_a)
        _set(state, rb, new_b)
        return state
    if equal:
        both = intersect(a, b)
        if both is None:
            return None
        _set(state, ra, both)
        _set(state, rb, both)
        return state
    if unequal and a.is_singleton and b.is_singleton and a.lo == b.lo:
        return None
    return state


# ---------------------------------------------------------------------------
# Hardware-loop summarization
# ---------------------------------------------------------------------------

#: A per-iteration delta: list of (sign, register-or-None, immediate).
_DeltaTerms = List[Tuple[int, Optional[int], int]]


def _loop_delta_terms(program: Sequence[Instruction],
                      span: HwLoopSpan) -> Dict[int, _DeltaTerms]:
    """Symbolic per-iteration deltas of registers in a hwloop body.

    A register is summarizable when the body is straight-line (no
    branch, no nested hwloop) and all its writes are self-increments:
    ``addi r, r, c`` / ``add r, r, rX`` / ``sub r, r, rX`` where
    ``rX`` is not itself written in the body.  Returns an empty dict
    for unsummarizable bodies.
    """
    body = [program[pc] for pc in range(span.start, span.end)]
    if any(i.opcode in BRANCHES or i.opcode is Opcode.HWLOOP for i in body):
        return {}
    written = set()
    for instruction in body:
        opcode = instruction.opcode
        if opcode in STORES or opcode in (Opcode.HALT, Opcode.BARRIER):
            continue
        written.add(instruction.rd)
    terms: Dict[int, _DeltaTerms] = {}
    bad = set()
    for instruction in body:
        opcode = instruction.opcode
        if opcode in STORES or opcode in (Opcode.HALT, Opcode.BARRIER):
            continue
        rd = instruction.rd
        if rd == 0:
            continue
        if opcode is Opcode.ADDI and instruction.ra == rd:
            terms.setdefault(rd, []).append((1, None, instruction.imm))
        elif opcode is Opcode.ADD and instruction.ra == rd \
                and instruction.rb not in written:
            terms.setdefault(rd, []).append((1, instruction.rb, 0))
        elif opcode is Opcode.SUB and instruction.ra == rd \
                and instruction.rb not in written:
            terms.setdefault(rd, []).append((-1, instruction.rb, 0))
        else:
            bad.add(rd)
    return {reg: t for reg, t in terms.items() if reg not in bad}


def _evaluate_delta(terms: _DeltaTerms, state: RegState) -> Optional[int]:
    """Resolve delta terms to a constant under *state* (None if not)."""
    total = 0
    for sign, register, imm in terms:
        if register is None:
            total += sign * imm
        else:
            value = get(state, register)
            if not value.is_singleton:
                return None
            total += sign * value.lo
    return total


def _seed_span(state: RegState, span: HwLoopSpan,
               deltas: Dict[int, _DeltaTerms]) -> RegState:
    """Body-head state of *span* given the setup-exit state *state*.

    Summarizable registers get their closed-form range over all
    iterations; other body-written registers go to TOP (the back-edge
    is cut for seeded registers, so nothing else would account for
    their growth).
    """
    trips = get(state, span.trip_register)
    seeded = dict(state)
    for register, terms in deltas.items():
        v0 = get(state, register)
        delta = _evaluate_delta(terms, state)
        if delta is None or trips.hi >= (1 << 24):
            _set(seeded, register, TOP)
            continue
        last = max(trips.hi, 1) - 1
        lo = v0.lo + min(0, last * delta)
        hi = v0.hi + max(0, last * delta)
        _set(seeded, register, make(lo, hi, gcd(v0.stride, abs(delta))
                                    or abs(delta)))
    return seeded


# ---------------------------------------------------------------------------
# The fixpoint
# ---------------------------------------------------------------------------


@dataclass
class RangeAnalysis:
    """Solved value ranges for one program + entry assignment."""

    cfg: CFG
    block_in: List[Optional[RegState]]

    def state_before(self, pc: int) -> RegState:
        """The register state just before executing *pc*."""
        block = self.cfg.block_at(pc)
        state = self.block_in[block.index]
        if state is None:
            return {}
        for walk_pc in range(block.start, pc):
            state = transfer(state, self.cfg.program[walk_pc])
        return state

    def address_range(self, pc: int) -> ValueRange:
        """Byte-address range of the memory access at *pc*."""
        instruction = self.cfg.program[pc]
        if instruction.opcode not in LOADS and instruction.opcode not in STORES:
            raise ValueError(f"pc {pc} is not a memory access")
        state = self.state_before(pc)
        return add(get(state, instruction.ra), const(instruction.imm))


def _join_states(a: Optional[RegState], b: RegState) -> RegState:
    if a is None:
        return dict(b)
    return {register: join(a[register], b[register])
            for register in a.keys() & b.keys()
            if not join(a[register], b[register]).is_top}


#: Cap on decreasing iterations applied after the widened fixpoint;
#: branch refinement recovers bounds that widening threw away
#: (narrowing).  Each round propagates recovered bounds one block
#: further, so nested loops need several; convergence usually stops
#: the loop well before the cap.


def analyze_ranges(cfg: CFG,
                   entry: Optional[Dict[int, int]] = None) -> RangeAnalysis:
    """Solve the range analysis with *entry* register presets.

    Registers without a preset start at TOP; ``r0`` is the constant 0.
    """
    blocks = cfg.blocks
    block_in: List[Optional[RegState]] = [None] * len(blocks)
    if not blocks:
        return RangeAnalysis(cfg=cfg, block_in=block_in)
    entry_state: RegState = {}
    for register, value in (entry or {}).items():
        _set(entry_state, register, const(value))
    block_in[0] = entry_state

    spans = cfg.hwloops
    deltas = {span: _loop_delta_terms(cfg.program, span) for span in spans}
    setup_block = {span: cfg.block_of[span.setup_pc] for span in spans}
    head_block = {span: cfg.block_of[span.start]
                  for span in spans if span.start < len(cfg.program)}
    span_entry: Dict[HwLoopSpan, RegState] = {}

    def flow(index: int, state: RegState) -> List[Tuple[int, RegState]]:
        """Edge states leaving block *index* given its entry *state*."""
        block = blocks[index]
        out = dict(state)
        for pc in block.pcs():
            out = transfer(out, cfg.program[pc])
        last_pc = block.end - 1
        last = cfg.program[last_pc]
        if last.opcode is Opcode.HWLOOP:
            for span in spans:
                if span.setup_pc == last_pc:
                    span_entry[span] = out
        # Classify successor edges for refinement / loop seeding.
        taken_blocks = set()
        fall_blocks = set()
        if last.opcode in BRANCHES and last.opcode is not Opcode.JUMP:
            for target, bucket in ((last_pc + 1 + last.imm, taken_blocks),
                                   (last_pc + 1, fall_blocks)):
                resolved = [target]
                for span in spans:
                    if span.contains(last_pc) and target == span.end:
                        resolved.append(span.start)
                for t in resolved:
                    if 0 <= t < len(cfg.program):
                        bucket.add(cfg.block_of[t])
        edges: List[Tuple[int, RegState]] = []
        for successor in block.successors:
            if successor == EXIT:
                continue
            edge_state: Optional[RegState] = out
            if last.opcode in BRANCHES and last.opcode is not Opcode.JUMP:
                in_taken = successor in taken_blocks
                in_fall = successor in fall_blocks
                if in_taken and not in_fall:
                    edge_state = refine_branch(out, last, taken=True)
                elif in_fall and not in_taken:
                    edge_state = refine_branch(out, last, taken=False)
            if edge_state is None:
                continue
            for span in spans:
                if head_block.get(span) != successor:
                    continue
                if index == setup_block[span] and last_pc == span.setup_pc:
                    edge_state = _seed_span(edge_state, span, deltas[span])
                elif span.contains(last_pc):
                    # Hardware back-edge: re-seed from the remembered
                    # setup state so summarized registers stay closed.
                    base = span_entry.get(span, edge_state)
                    reseed = _seed_span(base, span, deltas[span])
                    edge_state = dict(edge_state)
                    for register in deltas[span]:
                        _set(edge_state, register,
                             get(reseed, register))
            edges.append((successor, edge_state))
        return edges

    changes: Dict[Tuple[int, int], int] = {}
    worklist = [0]
    steps = 0
    while worklist:
        steps += 1
        if steps > _MAX_STEPS:
            # Sound fallback: every remaining fact becomes TOP.
            for index in range(len(blocks)):
                if index in cfg.reachable:
                    block_in[index] = {}
            break
        index = worklist.pop(0)
        state = block_in[index]
        if state is None:
            continue
        for successor, edge_state in flow(index, state):
            previous = block_in[successor]
            merged = _join_states(previous, edge_state)
            if previous is not None:
                stabilized: RegState = {}
                for register, value in merged.items():
                    old = previous.get(register, TOP)
                    if value != old:
                        key = (successor, register)
                        changes[key] = changes.get(key, 0) + 1
                        if changes[key] > _WIDEN_AFTER:
                            value = widen(old, value)
                    if not value.is_top:
                        stabilized[register] = value
                merged = stabilized
            if merged != previous:
                block_in[successor] = merged
                if successor not in worklist:
                    worklist.append(successor)

    # Narrowing: re-apply the (monotone) flow to the widened solution a
    # few times, taking the fresh edge joins as-is.  Starting above the
    # least fixpoint keeps every round a sound over-approximation while
    # branch refinement pulls widened bounds back in.
    for _ in range(max(8, 2 * len(blocks))):
        fresh: List[Optional[RegState]] = [None] * len(blocks)
        fresh[0] = entry_state
        for index in range(len(blocks)):
            state = block_in[index]
            if state is None:
                continue
            for successor, edge_state in flow(index, state):
                fresh[successor] = _join_states(fresh[successor], edge_state)
        if fresh == block_in:
            break
        block_in = fresh
    return RangeAnalysis(cfg=cfg, block_in=block_in)
