"""Lint rules over the OR10N-mini CFG and dataflow results.

Rule catalog (see ``docs/ANALYSIS.md`` for the full write-up):

======  ========  ====================================================
code    severity  condition
======  ========  ====================================================
OR001   error     register read before any write on some path
                  (warning when only *some* paths miss the write)
OR002   warning   dead store: value overwritten before any read
OR003   warning   write to r0 (architecturally discarded)
OR004   warning   unreachable instructions
OR005   error     no reachable HALT (warning: control can fall off
                  the program end on some path)
OR006   error     branch/jump/hwloop target outside the program
OR007   error     hardware-loop nesting deeper than the two loop
                  register sets (or partially overlapping bodies)
OR008   error     branch crossing a hardware-loop body boundary
OR009   warning   trip-count register written inside the loop body
OR010   info      load-use stall site (value consumed by the next
                  instruction)
======  ========  ====================================================
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence

from repro.isa.validate import Finding, Severity
from repro.machine.encoding import (
    BRANCHES,
    Instruction,
    Opcode,
    dest_register,
)
from repro.machine.interpreter import Machine

from repro.analysis.cfg import CFG, EXIT, build_cfg
from repro.analysis.dataflow import (
    ALL_REGISTERS,
    dead_stores,
    initialized_registers,
    live_registers,
    uninitialized_reads,
)
from repro.analysis.stalls import stall_sites


def _location(pc: int) -> str:
    return f"pc {pc}"


def _line(lines: Optional[Sequence[int]], pc: int) -> Optional[int]:
    if lines is None or pc >= len(lines):
        return None
    return lines[pc]


def check_targets(program: Sequence[Instruction],
                  lines: Optional[Sequence[int]] = None) -> List[Finding]:
    """OR006: control transfers that resolve outside the program.

    This is the only rule that runs *before* CFG construction (an
    out-of-bounds edge has no graph representation); when it fires, the
    graph-based rules are skipped.
    """
    findings: List[Finding] = []
    length = len(program)
    for pc, instruction in enumerate(program):
        if instruction.opcode in BRANCHES:
            target = pc + 1 + instruction.imm
            if not 0 <= target <= length:
                findings.append(Finding(
                    Severity.ERROR, _location(pc),
                    f"{instruction.opcode.name} target {target} is outside "
                    f"the program [0, {length}]",
                    code="OR006", line=_line(lines, pc)))
        elif instruction.opcode is Opcode.HWLOOP:
            end = pc + 1 + instruction.imm
            if end > length:
                findings.append(Finding(
                    Severity.ERROR, _location(pc),
                    f"hwloop body ends at {end}, past the last "
                    f"instruction ({length - 1})",
                    code="OR006", line=_line(lines, pc)))
            elif end < pc + 1:
                findings.append(Finding(
                    Severity.ERROR, _location(pc),
                    f"hwloop body length {instruction.imm} is negative",
                    code="OR006", line=_line(lines, pc)))
    return findings


def run_rules(cfg: CFG,
              lines: Optional[Sequence[int]] = None,
              entry_regs: FrozenSet[int] = frozenset(),
              exit_live: FrozenSet[int] = ALL_REGISTERS) -> List[Finding]:
    """Run every CFG/dataflow rule and return the combined findings."""
    findings: List[Finding] = []
    findings += _rule_registers(cfg, lines, entry_regs, exit_live)
    findings += _rule_reachability(cfg, lines)
    findings += _rule_hwloops(cfg, lines)
    findings += _rule_stalls(cfg, lines)
    return findings


def _rule_registers(cfg: CFG, lines, entry_regs,
                    exit_live) -> List[Finding]:
    findings: List[Finding] = []
    init = initialized_registers(cfg, entry_regs=entry_regs)
    for event in uninitialized_reads(cfg, init):
        if event.definite:
            findings.append(Finding(
                Severity.ERROR, _location(event.pc),
                f"r{event.register} is read but never written on any "
                f"path from entry",
                code="OR001", line=_line(lines, event.pc)))
        else:
            findings.append(Finding(
                Severity.WARNING, _location(event.pc),
                f"r{event.register} may be read before initialization "
                f"(written on some paths only)",
                code="OR001", line=_line(lines, event.pc)))
    liveness = live_registers(cfg, exit_live=exit_live)
    for event in dead_stores(cfg, liveness):
        findings.append(Finding(
            Severity.WARNING, _location(event.pc),
            f"dead store: r{event.register} is overwritten before any "
            f"read",
            code="OR002", line=_line(lines, event.pc)))
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            continue
        for pc in block.pcs():
            if dest_register(cfg.program[pc]) == 0:
                findings.append(Finding(
                    Severity.WARNING, _location(pc),
                    "write to r0 is discarded (r0 is hard-wired zero)",
                    code="OR003", line=_line(lines, pc)))
    return findings


def _rule_reachability(cfg: CFG, lines) -> List[Finding]:
    findings: List[Finding] = []
    for block in cfg.blocks:
        if block.index in cfg.reachable:
            continue
        span = f"pc {block.start}" if len(block) == 1 \
            else f"pc {block.start}..{block.end - 1}"
        findings.append(Finding(
            Severity.WARNING, span,
            f"unreachable: {len(block)} instruction(s) can never execute",
            code="OR004", line=_line(lines, block.start)))

    halt_reachable = any(
        cfg.program[pc].opcode is Opcode.HALT
        for index in cfg.reachable
        for pc in cfg.blocks[index].pcs())
    if cfg.blocks and not halt_reachable:
        findings.append(Finding(
            Severity.ERROR, "program",
            "no HALT is reachable from entry: every path loops forever "
            "or falls off the end",
            code="OR005", line=None))
    else:
        for index in cfg.reachable:
            block = cfg.blocks[index]
            if EXIT in block.successors \
                    and cfg.program[block.end - 1].opcode is not Opcode.HALT:
                findings.append(Finding(
                    Severity.WARNING, _location(block.end - 1),
                    "control can fall off the end of the program without "
                    "reaching HALT",
                    code="OR005", line=_line(lines, block.end - 1)))
    return findings


def _rule_hwloops(cfg: CFG, lines) -> List[Finding]:
    findings: List[Finding] = []
    for span in cfg.hwloops:
        if span.depth > Machine.HW_LOOPS:
            findings.append(Finding(
                Severity.ERROR, _location(span.setup_pc),
                f"hardware loops nest {span.depth} deep; the core has "
                f"{Machine.HW_LOOPS} loop register sets",
                code="OR007", line=_line(lines, span.setup_pc)))
        for other in cfg.hwloops:
            if other.setup_pc <= span.setup_pc:
                continue
            overlaps = span.start < other.end and other.start < span.end
            nested = (span.start <= other.setup_pc and other.end <= span.end) \
                or (other.start <= span.setup_pc and span.end <= other.end)
            if overlaps and not nested:
                findings.append(Finding(
                    Severity.ERROR, _location(other.setup_pc),
                    f"hwloop bodies [{span.start}, {span.end}) and "
                    f"[{other.start}, {other.end}) overlap without nesting",
                    code="OR007", line=_line(lines, other.setup_pc)))
        for pc in range(span.start, min(span.end, len(cfg.program))):
            if dest_register(cfg.program[pc]) == span.trip_register \
                    and span.trip_register != 0:
                findings.append(Finding(
                    Severity.WARNING, _location(pc),
                    f"trip-count register r{span.trip_register} of the "
                    f"hwloop at pc {span.setup_pc} is written inside the "
                    f"loop body",
                    code="OR009", line=_line(lines, pc)))

    for pc, instruction in enumerate(cfg.program):
        if instruction.opcode not in BRANCHES:
            continue
        target = pc + 1 + instruction.imm
        for span in cfg.hwloops:
            inside_source = span.contains(pc)
            inside_target = span.contains(target)
            if inside_source and not inside_target and target != span.end:
                findings.append(Finding(
                    Severity.ERROR, _location(pc),
                    f"branch inside the hwloop body [{span.start}, "
                    f"{span.end}) targets pc {target} outside it",
                    code="OR008", line=_line(lines, pc)))
            elif inside_target and not inside_source \
                    and pc != span.setup_pc:
                findings.append(Finding(
                    Severity.ERROR, _location(pc),
                    f"branch from pc {pc} jumps into the hwloop body "
                    f"[{span.start}, {span.end}) without executing its "
                    f"setup",
                    code="OR008", line=_line(lines, pc)))
    return findings


def _rule_stalls(cfg: CFG, lines) -> List[Finding]:
    findings: List[Finding] = []
    for site in stall_sites(cfg):
        findings.append(Finding(
            Severity.INFO, _location(site.pc),
            f"load-use stall: r{site.register} is consumed by the next "
            f"instruction",
            code="OR010", line=_line(lines, site.pc)))
    return findings


def analyze_program(program: Sequence[Instruction],
                    lines: Optional[Sequence[int]] = None,
                    entry_regs: FrozenSet[int] = frozenset(),
                    exit_live: FrozenSet[int] = ALL_REGISTERS
                    ) -> List[Finding]:
    """Full pipeline over a bare instruction list: OR006 gate, then CFG
    construction and every dataflow rule."""
    findings = check_targets(program, lines)
    if any(f.severity is Severity.ERROR for f in findings):
        return findings
    cfg = build_cfg(program)
    findings += run_rules(cfg, lines=lines, entry_regs=entry_regs,
                          exit_live=exit_live)
    return findings
