"""Control-flow graph construction over assembled OR10N-mini programs.

The unit of the graph is the classic *basic block*: a maximal
straight-line run of instructions entered only at its first instruction
and left only at its last.  Edges come from four sources:

* fall-through from one block into the next,
* taken branches and jumps (offsets are relative to the next pc),
* the two edges out of a ``hwloop`` setup — into the body, and over it
  for a zero trip count,
* the *hardware back-edge*: any transfer that lands on a loop body's
  end pc from inside the body re-enters the body head while trips
  remain, exactly as in :meth:`repro.machine.interpreter.Machine.run`.

A virtual exit (:data:`EXIT`) collects ``halt`` instructions and any
control transfer to ``len(program)`` (falling off the end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set

from repro.errors import IsaError
from repro.machine.encoding import BRANCHES, Instruction, Opcode

#: Virtual exit-node index used in successor/predecessor lists.
EXIT = -1


@dataclass(frozen=True)
class HwLoopSpan:
    """One static hardware-loop region: body is ``[start, end)``."""

    setup_pc: int
    start: int
    end: int
    trip_register: int
    #: 1-based static nesting depth (1 = outermost).
    depth: int = 1

    def contains(self, pc: int) -> bool:
        """Whether *pc* lies inside the loop body."""
        return self.start <= pc < self.end


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run ``[start, end)``."""

    index: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def pcs(self) -> range:
        """The pcs covered by this block."""
        return range(self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class CFG:
    """The control-flow graph of one instruction sequence."""

    program: Sequence[Instruction]
    blocks: List[BasicBlock]
    block_of: List[int]
    hwloops: List[HwLoopSpan]
    reachable: Set[int]

    def block_at(self, pc: int) -> BasicBlock:
        """The basic block containing *pc*."""
        return self.blocks[self.block_of[pc]]

    def loops_containing(self, pc: int) -> List[HwLoopSpan]:
        """All hardware-loop bodies whose span covers *pc*."""
        return [span for span in self.hwloops if span.contains(pc)]

    def reachable_pcs(self) -> Set[int]:
        """All pcs inside reachable blocks."""
        pcs: Set[int] = set()
        for index in self.reachable:
            pcs.update(self.blocks[index].pcs())
        return pcs


def _branch_target(pc: int, instruction: Instruction) -> int:
    return pc + 1 + instruction.imm


def _hwloop_spans(program: Sequence[Instruction]) -> List[HwLoopSpan]:
    spans: List[HwLoopSpan] = []
    for pc, instruction in enumerate(program):
        if instruction.opcode is Opcode.HWLOOP:
            spans.append(HwLoopSpan(setup_pc=pc, start=pc + 1,
                                    end=pc + 1 + instruction.imm,
                                    trip_register=instruction.ra))
    # Static nesting depth: how many other spans fully enclose each one.
    with_depth = []
    for span in spans:
        depth = 1 + sum(1 for other in spans
                        if other is not span
                        and other.start <= span.setup_pc
                        and span.end <= other.end)
        with_depth.append(HwLoopSpan(span.setup_pc, span.start, span.end,
                                     span.trip_register, depth))
    return with_depth


def _leaders(program: Sequence[Instruction]) -> List[int]:
    length = len(program)
    leaders = {0} if length else set()
    for pc, instruction in enumerate(program):
        opcode = instruction.opcode
        if opcode in BRANCHES:
            target = _branch_target(pc, instruction)
            if 0 <= target < length:
                leaders.add(target)
            if pc + 1 < length:
                leaders.add(pc + 1)
        elif opcode is Opcode.HWLOOP:
            if pc + 1 < length:
                leaders.add(pc + 1)          # body head
            skip = pc + 1 + instruction.imm
            if 0 <= skip < length:
                leaders.add(skip)            # zero-trip skip / body end
        elif opcode is Opcode.HALT and pc + 1 < length:
            leaders.add(pc + 1)
    return sorted(leaders)


def build_cfg(program: Sequence[Instruction]) -> CFG:
    """Build the CFG of *program*.

    Control transfers that resolve outside ``[0, len(program)]`` raise
    :class:`~repro.errors.IsaError` — run rule OR006
    (:func:`repro.analysis.rules.run_rules`) first for a finding-based
    report instead of an exception.
    """
    length = len(program)
    for pc, instruction in enumerate(program):
        if instruction.opcode in BRANCHES:
            target = _branch_target(pc, instruction)
            if not 0 <= target <= length:
                raise IsaError(f"pc {pc}: branch target {target} outside "
                               f"program [0, {length}]")
        elif instruction.opcode is Opcode.HWLOOP:
            if not pc + 1 <= pc + 1 + instruction.imm <= length:
                raise IsaError(f"pc {pc}: hwloop body [{pc + 1}, "
                               f"{pc + 1 + instruction.imm}) is not a "
                               f"forward range inside the program")

    spans = _hwloop_spans(program)
    leaders = _leaders(program)
    blocks: List[BasicBlock] = []
    block_of = [0] * length
    for index, start in enumerate(leaders):
        end = leaders[index + 1] if index + 1 < len(leaders) else length
        block = BasicBlock(index=index, start=start, end=end)
        blocks.append(block)
        for pc in range(start, end):
            block_of[pc] = index

    def _edge_targets(pc: int, target: int) -> List[int]:
        """Resolve one transfer *pc* -> *target*, adding the hardware
        back-edge when the target is an enclosing loop's end pc."""
        targets = [target]
        for span in spans:
            if span.contains(pc) and target == span.end:
                targets.append(span.start)
        return targets

    for block in blocks:
        last_pc = block.end - 1
        last = program[last_pc]
        opcode = last.opcode
        raw_targets: List[int] = []
        if opcode is Opcode.HALT:
            raw_targets = []
        elif opcode is Opcode.JUMP:
            raw_targets = _edge_targets(last_pc,
                                        _branch_target(last_pc, last))
        elif opcode in BRANCHES:
            raw_targets = _edge_targets(last_pc,
                                        _branch_target(last_pc, last))
            raw_targets += _edge_targets(last_pc, last_pc + 1)
        elif opcode is Opcode.HWLOOP:
            raw_targets = [last_pc + 1, last_pc + 1 + last.imm]
        else:
            raw_targets = _edge_targets(last_pc, last_pc + 1)

        seen = set()
        for target in raw_targets:
            successor = EXIT if target >= length else block_of[target]
            if successor in seen:
                continue
            seen.add(successor)
            block.successors.append(successor)
            if successor is not EXIT:
                blocks[successor].predecessors.append(block.index)
        if opcode is Opcode.HALT:
            block.successors.append(EXIT)

    reachable: Set[int] = set()
    if blocks:
        stack = [0]
        while stack:
            index = stack.pop()
            if index in reachable or index == EXIT:
                continue
            reachable.add(index)
            stack.extend(s for s in blocks[index].successors
                         if s != EXIT and s not in reachable)

    return CFG(program=program, blocks=blocks, block_of=block_of,
               hwloops=spans, reachable=reachable)
