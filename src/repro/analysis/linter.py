"""User-facing entry points of the OR10N-mini static analyzer.

``lint_source`` takes assembly text; ``lint_instructions`` takes an
already-assembled list (register presets become *entry_regs*).  Both
return an :class:`AnalysisReport` bundling the findings with the CFG
and stall data, renderable as text or JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.errors import IsaError
from repro.isa.validate import Finding, Severity, render_findings
from repro.machine.assembler import AssemblyUnit, assemble_unit
from repro.machine.encoding import Instruction

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import ALL_REGISTERS
from repro.analysis.rules import check_targets, run_rules
from repro.analysis.stalls import stalls_by_block


@dataclass
class AnalysisReport:
    """Everything one lint run produced."""

    name: str
    findings: List[Finding]
    cfg: Optional[CFG] = None
    lines: Optional[Sequence[int]] = None
    #: Static load-use stall sites per basic block (block index -> count).
    stalls: Dict[int, int] = field(default_factory=dict)

    @property
    def errors(self) -> List[Finding]:
        """Only the ERROR-severity findings."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """True when no ERROR finding exists."""
        return not self.errors

    def render(self) -> str:
        """Human-readable report (shared pretty-printer)."""
        blocks = len(self.cfg.blocks) if self.cfg is not None else 0
        title = (f"{self.name}: {blocks} basic block(s), "
                 f"{sum(self.stalls.values())} static stall site(s)")
        return render_findings(self.findings, title=title)

    def to_json(self) -> str:
        """Machine-readable report."""
        payload = {
            "name": self.name,
            "ok": self.ok,
            "blocks": len(self.cfg.blocks) if self.cfg is not None else 0,
            "stall_sites": sum(self.stalls.values()),
            "findings": [
                {
                    "code": f.code,
                    "severity": f.severity.value,
                    "location": f.location,
                    "line": f.line,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }
        return json.dumps(payload, indent=2)

    def raise_on_error(self) -> "AnalysisReport":
        """Strict mode: raise :class:`IsaError` when any ERROR exists."""
        if not self.ok:
            raise IsaError(
                f"program {self.name!r} failed static analysis: "
                + "; ".join(str(f) for f in self.errors))
        return self


def lint_instructions(program: Sequence[Instruction],
                      name: str = "program",
                      lines: Optional[Sequence[int]] = None,
                      entry_regs: FrozenSet[int] = frozenset(),
                      exit_live: FrozenSet[int] = ALL_REGISTERS
                      ) -> AnalysisReport:
    """Analyze an assembled instruction list."""
    findings = check_targets(program, lines)
    if any(f.severity is Severity.ERROR for f in findings):
        # No CFG exists for a program with out-of-bounds edges.
        return AnalysisReport(name=name, findings=findings, lines=lines)
    cfg = build_cfg(program)
    findings = findings + run_rules(cfg, lines=lines, entry_regs=entry_regs,
                                    exit_live=exit_live)
    return AnalysisReport(name=name, findings=findings, cfg=cfg,
                          lines=lines, stalls=stalls_by_block(cfg))


def lint_unit(unit: AssemblyUnit,
              name: str = "program",
              entry_regs: FrozenSet[int] = frozenset(),
              exit_live: FrozenSet[int] = ALL_REGISTERS) -> AnalysisReport:
    """Analyze an :class:`~repro.machine.assembler.AssemblyUnit`."""
    return lint_instructions(unit.instructions, name=name, lines=unit.lines,
                             entry_regs=entry_regs, exit_live=exit_live)


def lint_source(source: str,
                name: str = "program",
                entry_regs: FrozenSet[int] = frozenset(),
                exit_live: FrozenSet[int] = ALL_REGISTERS
                ) -> AnalysisReport:
    """Assemble *source* and analyze it with line-accurate findings."""
    return lint_unit(assemble_unit(source), name=name,
                     entry_regs=entry_regs, exit_live=exit_live)
