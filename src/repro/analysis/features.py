"""A stable feature vector over one machine program.

``features()`` is the public, schema-stable summary the DSE cost models
and external tooling consume: structural CFG counts, the static
load-use stall model, per-rule lint counts, and (for SPMD programs
analyzed with ``cores >= 2``) the concurrency features of
:func:`repro.analysis.concurrency.analyze_spmd`.

Keys are flat dotted strings and every value is an ``int`` or
``float`` so the dict serializes losslessly to JSON and tabulates into
a dataframe without coercion.  The key set is fixed for a given
``cores`` mode — absent phenomena report ``0``, they do not drop keys.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Union

from repro.machine.assembler import AssemblyUnit, assemble_unit
from repro.machine.encoding import Instruction

from repro.analysis.concurrency import analyze_spmd
from repro.analysis.linter import AnalysisReport, lint_instructions
from repro.analysis.sarif import RULE_DESCRIPTIONS

FeatureDict = Dict[str, Union[int, float]]

#: Every rule code with a reserved ``lint.count.*`` slot, in order.
LINT_CODES = tuple(sorted(RULE_DESCRIPTIONS))

ProgramLike = Union[str, AssemblyUnit, Sequence[Instruction]]


def _as_unit(program: ProgramLike) -> AssemblyUnit:
    if isinstance(program, AssemblyUnit):
        return program
    if isinstance(program, str):
        return assemble_unit(program)
    instructions = list(program)
    return AssemblyUnit(instructions=instructions,
                        lines=[0] * len(instructions))


def lint_features(report: AnalysisReport) -> FeatureDict:
    """Lint + stall features of one :class:`AnalysisReport`."""
    out: FeatureDict = {
        "lint.findings": len(report.findings),
        "lint.errors": len(report.errors),
        "lint.ok": int(report.ok),
    }
    for code in LINT_CODES:
        out[f"lint.count.{code}"] = 0
    for finding in report.findings:
        key = f"lint.count.{finding.code}"
        if key in out:
            out[key] += 1
    blocks = len(report.cfg.blocks) if report.cfg is not None else 0
    hwloops = len(report.cfg.hwloops) if report.cfg is not None else 0
    out["cfg.blocks"] = blocks
    out["cfg.hwloops"] = hwloops
    out["stalls.sites"] = sum(report.stalls.values())
    out["stalls.max_per_block"] = max(report.stalls.values(), default=0)
    out["stalls.blocks_affected"] = sum(
        1 for count in report.stalls.values() if count)
    return out


def features(program: ProgramLike,
             name: str = "program",
             entry_regs: FrozenSet[int] = frozenset(),
             cores: int = 1,
             presets: Optional[Sequence[Dict[int, int]]] = None,
             dma_out: Optional[Sequence[int]] = None,
             banks: int = 8) -> FeatureDict:
    """Compute the full feature dict for *program*.

    *program* is assembly text, an :class:`AssemblyUnit`, or a bare
    instruction list.  With ``cores >= 2`` the program is additionally
    analyzed as an SPMD kernel (one logical copy per core, per-core
    register *presets*) and the ``concurrency.*`` features of
    :meth:`~repro.analysis.concurrency.ConcurrencyReport.features` are
    merged in; ``instructions`` counts the single program image either
    way.
    """
    unit = _as_unit(program)
    report = lint_instructions(unit.instructions, name=name,
                               lines=unit.lines, entry_regs=entry_regs)
    out: FeatureDict = {"instructions": len(unit.instructions)}
    out.update(lint_features(report))
    if cores >= 2:
        spmd = analyze_spmd(unit.instructions, cores=cores,
                            presets=presets, lines=unit.lines,
                            dma_out=tuple(dma_out) if dma_out else None,
                            banks=banks)
        out.update(spmd.features())
        out["lint.findings"] += len(spmd.findings)
        errors = sum(1 for f in spmd.findings
                     if f.severity.value == "error")
        out["lint.errors"] += errors
        out["lint.ok"] = int(out["lint.errors"] == 0)
        for finding in spmd.findings:
            key = f"lint.count.{finding.code}"
            if key in out:
                out[key] += 1
    return out
