"""A stable feature vector over one machine program.

``features()`` is the public, schema-stable summary the DSE cost models
and external tooling consume: structural CFG counts, the static
load-use stall model, per-rule lint counts, the ``mix.*`` instruction
mix (opcode-class counts plus a loop-depth-weighted arithmetic
intensity), and (for SPMD programs analyzed with ``cores >= 2``) the
concurrency features of :func:`repro.analysis.concurrency.analyze_spmd`.

Keys are flat dotted strings and every value is an ``int`` or
``float`` so the dict serializes losslessly to JSON and tabulates into
a dataframe without coercion.  The key set is fixed for a given
``cores`` mode — absent phenomena report ``0``, they do not drop keys.
:func:`feature_schema` returns that exact key tuple and
:data:`FEATURES_VERSION` stamps it, so persisted datasets and trained
models (``repro.learn``) can detect schema drift instead of silently
misaligning columns.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Tuple, Union

from repro.machine.assembler import AssemblyUnit, assemble_unit
from repro.machine.encoding import (
    BRANCHES, LOADS, STORES, Instruction, Opcode,
)

from repro.analysis.cfg import build_cfg
from repro.analysis.concurrency import analyze_spmd
from repro.analysis.linter import AnalysisReport, lint_instructions
from repro.analysis.sarif import RULE_DESCRIPTIONS

FeatureDict = Dict[str, Union[int, float]]

#: Version stamp of the feature schema.  Bump whenever a key is added,
#: removed, or its meaning changes; persisted datasets and trained
#: models carry this value and refuse to mix versions.
FEATURES_VERSION = 2

#: Every rule code with a reserved ``lint.count.*`` slot, in order.
LINT_CODES = tuple(sorted(RULE_DESCRIPTIONS))

#: Nominal trip count assumed for every static loop level when
#: weighting the instruction mix (the true trip count is a runtime
#: value; 16 keeps inner loops dominant without overflowing floats).
NOMINAL_TRIP = 16

#: Opcode classes of the ``mix.*`` features, in schema order.
_MIX_ARITH = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRA, Opcode.MIN, Opcode.MAX,
    Opcode.ADDI, Opcode.SLLI, Opcode.SRAI, Opcode.ANDI,
})
_MIX_MUL = frozenset({Opcode.MUL, Opcode.MULI})
_MIX_SIMD = frozenset({Opcode.ADD4, Opcode.SUB4})

#: ``concurrency.*`` keys merged in when ``cores >= 2`` (the key set of
#: :meth:`repro.analysis.concurrency.ConcurrencyReport.features`).
CONCURRENCY_KEYS: Tuple[str, ...] = (
    "concurrency.access_sites",
    "concurrency.bank_load_imbalance",
    "concurrency.bank_load_max",
    "concurrency.bank_load_total",
    "concurrency.banks",
    "concurrency.barrier_phase_max",
    "concurrency.barrier_phase_min",
    "concurrency.cores",
    "concurrency.predicted_conflict_cycles",
    "concurrency.races",
    "concurrency.shared_store_sites",
)

ProgramLike = Union[str, AssemblyUnit, Sequence[Instruction]]


def _as_unit(program: ProgramLike) -> AssemblyUnit:
    if isinstance(program, AssemblyUnit):
        return program
    if isinstance(program, str):
        return assemble_unit(program)
    instructions = list(program)
    return AssemblyUnit(instructions=instructions,
                        lines=[0] * len(instructions))


def lint_features(report: AnalysisReport) -> FeatureDict:
    """Lint + stall features of one :class:`AnalysisReport`."""
    out: FeatureDict = {
        "lint.findings": len(report.findings),
        "lint.errors": len(report.errors),
        "lint.ok": int(report.ok),
    }
    for code in LINT_CODES:
        out[f"lint.count.{code}"] = 0
    for finding in report.findings:
        key = f"lint.count.{finding.code}"
        if key in out:
            out[key] += 1
    blocks = len(report.cfg.blocks) if report.cfg is not None else 0
    hwloops = len(report.cfg.hwloops) if report.cfg is not None else 0
    out["cfg.blocks"] = blocks
    out["cfg.hwloops"] = hwloops
    out["stalls.sites"] = sum(report.stalls.values())
    out["stalls.max_per_block"] = max(report.stalls.values(), default=0)
    out["stalls.blocks_affected"] = sum(
        1 for count in report.stalls.values() if count)
    return out


def _loop_depths(instructions: Sequence[Instruction]) -> Sequence[int]:
    """Static loop depth per pc: covering hwloop bodies plus covering
    backward-branch intervals ``[target, branch]`` (software loops)."""
    depths = [0] * len(instructions)
    cfg = build_cfg(instructions)
    spans = [(span.start, span.end) for span in cfg.hwloops]
    for pc, instruction in enumerate(instructions):
        if instruction.opcode in BRANCHES and instruction.imm < 0:
            target = pc + 1 + instruction.imm
            if 0 <= target <= pc:
                spans.append((target, pc + 1))
    for start, end in spans:
        for pc in range(start, min(end, len(instructions))):
            depths[pc] += 1
    return depths


def mix_features(program: ProgramLike) -> FeatureDict:
    """Instruction-mix features of one program.

    Plain ``mix.*`` keys count opcodes by class over the whole image;
    the ``mix.weighted_*`` keys weight each instruction by
    ``NOMINAL_TRIP ** loop_depth`` so that inner-loop bodies dominate,
    and ``mix.ops_per_mem`` is the resulting arithmetic intensity
    (weighted non-memory compute ops per weighted memory access) — the
    static analogue of the ops/byte column of the paper's Table I.
    """
    unit = _as_unit(program)
    instructions = unit.instructions
    out: FeatureDict = {
        "mix.arith": 0, "mix.mul": 0, "mix.mac": 0, "mix.simd": 0,
        "mix.loads": 0, "mix.stores": 0, "mix.branches": 0,
        "mix.other": 0,
    }
    depths = _loop_depths(instructions)
    weighted_ops = 0.0
    weighted_mem = 0.0
    for instruction, depth in zip(instructions, depths):
        opcode = instruction.opcode
        weight = float(NOMINAL_TRIP ** depth)
        if opcode in _MIX_ARITH:
            out["mix.arith"] += 1
            weighted_ops += weight
        elif opcode in _MIX_MUL:
            out["mix.mul"] += 1
            weighted_ops += weight
        elif opcode is Opcode.MAC:
            out["mix.mac"] += 1
            weighted_ops += weight
        elif opcode in _MIX_SIMD:
            out["mix.simd"] += 1
            weighted_ops += weight
        elif opcode in LOADS:
            out["mix.loads"] += 1
            weighted_mem += weight
        elif opcode in STORES:
            out["mix.stores"] += 1
            weighted_mem += weight
        elif opcode in BRANCHES:
            out["mix.branches"] += 1
        else:
            out["mix.other"] += 1
    out["mix.mem"] = out["mix.loads"] + out["mix.stores"]
    out["mix.loop_depth_max"] = max(depths, default=0)
    out["mix.weighted_ops"] = weighted_ops
    out["mix.weighted_mem"] = weighted_mem
    out["mix.ops_per_mem"] = weighted_ops / max(weighted_mem, 1.0)
    return out


def feature_schema(cores: int = 1) -> Tuple[str, ...]:
    """The exact, sorted key tuple :func:`features` emits.

    The schema depends only on the ``cores`` mode: ``cores >= 2`` adds
    the ``concurrency.*`` keys, nothing else varies per program.
    """
    keys = ["instructions", "lint.findings", "lint.errors", "lint.ok"]
    keys += [f"lint.count.{code}" for code in LINT_CODES]
    keys += ["cfg.blocks", "cfg.hwloops",
             "stalls.sites", "stalls.max_per_block",
             "stalls.blocks_affected"]
    keys += list(mix_features(""))
    if cores >= 2:
        keys += list(CONCURRENCY_KEYS)
    return tuple(sorted(keys))


def features(program: ProgramLike,
             name: str = "program",
             entry_regs: FrozenSet[int] = frozenset(),
             cores: int = 1,
             presets: Optional[Sequence[Dict[int, int]]] = None,
             dma_out: Optional[Sequence[int]] = None,
             banks: int = 8) -> FeatureDict:
    """Compute the full feature dict for *program*.

    *program* is assembly text, an :class:`AssemblyUnit`, or a bare
    instruction list.  With ``cores >= 2`` the program is additionally
    analyzed as an SPMD kernel (one logical copy per core, per-core
    register *presets*) and the ``concurrency.*`` features of
    :meth:`~repro.analysis.concurrency.ConcurrencyReport.features` are
    merged in; ``instructions`` counts the single program image either
    way.
    """
    unit = _as_unit(program)
    report = lint_instructions(unit.instructions, name=name,
                               lines=unit.lines, entry_regs=entry_regs)
    out: FeatureDict = {"instructions": len(unit.instructions)}
    out.update(lint_features(report))
    out.update(mix_features(unit))
    if cores >= 2:
        spmd = analyze_spmd(unit.instructions, cores=cores,
                            presets=presets, lines=unit.lines,
                            dma_out=tuple(dma_out) if dma_out else None,
                            banks=banks)
        out.update(spmd.features())
        out["lint.findings"] += len(spmd.findings)
        errors = sum(1 for f in spmd.findings
                     if f.severity.value == "error")
        out["lint.errors"] += errors
        out["lint.ok"] = int(out["lint.errors"] == 0)
        for finding in spmd.findings:
            key = f"lint.count.{finding.code}"
            if key in out:
                out[key] += 1
    return out
