"""The pinned analytic-vs-DES validation grid (the CI gate).

The analytic fast path is only useful if it stays honest, so its
calibration is cross-validated against seeded :mod:`repro.serve` DES
runs on a pinned grid of scenarios — light/mid/hot load at 2, 4 and 6
nodes, a power-capped point exercising the eco tier, and three fault
mixes exercising the ladder corrections.  ``python -m repro capacity
validate`` runs the grid and **gates** the relative error of the two
headline observables:

* mean latency — within :data:`TOLERANCE` (10 %) of the DES;
* throughput — within :data:`TOLERANCE` of the DES.

p95 latency and energy per request are reported alongside but not
gated: p95 inherits the seeded run's tail noise at a few hundred
requests, and energy per request is already pinned (to much tighter
bounds) by the golden-results suite.  The run also reports the wall
times of both sides — the speedup is the whole point of the fast path.

Every grid point pins its seed, so a calibration regression fails the
gate deterministically instead of flaking.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.capacity.model import CapacityInputs, CapacityModel
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan

#: CI-gated relative-error bound on mean latency and throughput.
TOLERANCE = 0.10

#: The observables the gate enforces (relative error vs the DES).
GATED_METRICS = ("mean_latency_ms", "throughput_rps")

#: Named per-node fault-plan sets, cycled across the fleet exactly like
#: ``serve --faults``: a transient hang, a browned-out fleet, and one
#: node that hangs its way through the whole ladder and dies.
FAULT_SETS: Dict[str, Tuple[Tuple[str, Tuple[object, ...]], ...]] = {
    "hang": (("kernel_hang", (1,)), ("clean", ())),
    "brownout": (("brownout", (0.7,)),),
    "dead": (("kernel_hang", (3,)), ("clean", ()),
             ("clean", ()), ("clean", ())),
}


def fault_plans(name: str) -> List[FaultPlan]:
    """Materialize a :data:`FAULT_SETS` entry into live plans."""
    if name not in FAULT_SETS:
        raise ConfigurationError(
            f"unknown fault set {name!r}; known: {sorted(FAULT_SETS)}")
    return [getattr(FaultPlan, factory)(*args)
            for factory, args in FAULT_SETS[name]]


@dataclass(frozen=True)
class GridPoint:
    """One pinned validation scenario (homogeneous default fleet)."""

    name: str
    arrival_rate: float
    nodes: int
    requests: int
    seed: int
    #: Power-cap point: budget = ``default_power_budget(book, nodes,
    #: power_fraction)`` under the power-cap policy.  None = ungated.
    power_fraction: Optional[float] = None
    #: Key into :data:`FAULT_SETS`; None = clean fleet.
    faults: Optional[str] = None

    def config(self) -> Dict[str, object]:
        """JSON summary of the scenario (report row header)."""
        return {
            "arrival_rate": self.arrival_rate,
            "nodes": self.nodes,
            "requests": self.requests,
            "seed": self.seed,
            "power_fraction": self.power_fraction,
            "faults": self.faults,
        }


#: The pinned grid.  Loads span rho ~ 0.35..0.95 at three fleet sizes;
#: the seeds are fixed so the gate is deterministic.
VALIDATION_GRID: Tuple[GridPoint, ...] = (
    GridPoint("light-2", arrival_rate=100.0, nodes=2, requests=400, seed=5),
    GridPoint("mid-2", arrival_rate=150.0, nodes=2, requests=400, seed=3),
    GridPoint("light-4", arrival_rate=250.0, nodes=4, requests=400, seed=7),
    GridPoint("mid-4", arrival_rate=350.0, nodes=4, requests=500, seed=5),
    GridPoint("hot-4", arrival_rate=450.0, nodes=4, requests=500, seed=3),
    GridPoint("mid-6", arrival_rate=450.0, nodes=6, requests=500, seed=3),
    GridPoint("hot-6", arrival_rate=700.0, nodes=6, requests=700, seed=5),
    GridPoint("powercap-4", arrival_rate=300.0, nodes=4, requests=500,
              seed=7, power_fraction=0.5),
    GridPoint("faults-hang", arrival_rate=300.0, nodes=4, requests=500,
              seed=7, faults="hang"),
    GridPoint("faults-brownout", arrival_rate=300.0, nodes=4,
              requests=500, seed=7, faults="brownout"),
    GridPoint("faults-dead", arrival_rate=300.0, nodes=4, requests=500,
              seed=7, faults="dead"),
)


def _des_run(point: GridPoint, book, budget: Optional[float],
             plans: Optional[List[FaultPlan]]) -> Dict[str, object]:
    from repro.serve.engine import ServeConfig, ServeEngine
    from repro.serve.scheduler import Policy, SchedulerConfig
    from repro.serve.workload import PoissonWorkload

    policy = Policy.POWER_CAP if budget is not None else Policy.FIFO
    config = ServeConfig(
        workload=PoissonWorkload(rate=point.arrival_rate,
                                 requests=point.requests,
                                 seed=point.seed, deadline_factor=None),
        nodes=point.nodes,
        scheduler=SchedulerConfig(policy=policy, power_budget_w=budget),
        fault_plans=plans, seed=point.seed, book=book)
    return ServeEngine(config).run().metrics()


def _model_run(point: GridPoint, model: CapacityModel,
               budget: Optional[float],
               plans: Optional[List[FaultPlan]]) -> Dict[str, object]:
    prediction = model.predict(CapacityInputs(
        arrival_rate=point.arrival_rate, requests=point.requests,
        nodes=point.nodes, power_budget_w=budget, fault_plans=plans))
    return prediction.to_json_dict()


def _relative_error(model: float, des: float) -> float:
    if des == 0:
        return math.inf if model else 0.0
    return model / des - 1.0


def run_validation(tolerance: float = TOLERANCE,
                   grid: Sequence[GridPoint] = VALIDATION_GRID,
                   ) -> Dict[str, object]:
    """Run the grid; gate mean latency + throughput at *tolerance*.

    Returns a JSON-safe report: one row per point with the model and
    DES observables and their relative errors, the worst gated errors,
    the wall time of each side (and the resulting speedup), and the
    overall ``passed`` verdict.
    """
    from repro.serve import AnalyticServiceBook
    from repro.serve.engine import default_power_budget

    if not 0.0 < tolerance:
        raise ConfigurationError(
            f"tolerance must be positive, got {tolerance}")
    book = AnalyticServiceBook()
    model = CapacityModel(book)
    rows: List[Dict[str, object]] = []
    worst: Dict[str, float] = {name: 0.0 for name in GATED_METRICS}
    model_wall = 0.0
    des_wall = 0.0
    for point in grid:
        budget = None
        if point.power_fraction is not None:
            budget = default_power_budget(book, point.nodes,
                                          point.power_fraction)
        plans = fault_plans(point.faults) if point.faults else None
        start = time.perf_counter()
        predicted = _model_run(point, model, budget, plans)
        model_wall += time.perf_counter() - start
        start = time.perf_counter()
        des = _des_run(point, book, budget, plans)
        des_wall += time.perf_counter() - start
        errors = {
            name: round(_relative_error(float(predicted[name]),
                                        float(des[name])), 6)
            for name in ("mean_latency_ms", "throughput_rps",
                         "latency_p95_ms", "energy_per_request_uj")}
        gated_ok = all(abs(errors[name]) <= tolerance
                       for name in GATED_METRICS)
        for name in GATED_METRICS:
            worst[name] = max(worst[name], abs(errors[name]))
        rows.append({
            "name": point.name,
            "config": point.config(),
            "model": {name: predicted[name] for name in (
                "mean_latency_ms", "latency_p50_ms", "latency_p95_ms",
                "throughput_rps", "energy_per_request_uj",
                "utilization", "mean_batch", "eco_share", "dead_nodes")},
            "des": {name: des[name] for name in (
                "mean_latency_ms", "latency_p50_ms", "latency_p95_ms",
                "throughput_rps", "energy_per_request_uj")},
            "error": errors,
            "passed": gated_ok,
        })
    speedup = des_wall / model_wall if model_wall > 0 else math.inf
    return {
        "tolerance": tolerance,
        "gated_metrics": list(GATED_METRICS),
        "points": rows,
        "worst_error": {name: round(value, 6)
                        for name, value in worst.items()},
        "timing": {
            "model_wall_s": round(model_wall, 6),
            "des_wall_s": round(des_wall, 6),
            "speedup": round(speedup, 2),
        },
        "passed": all(row["passed"] for row in rows),
    }
