"""The fleet-composition planner: analytic search, DES-verified frontier.

The planner answers the provisioning question: *given a total power
budget, which mix of node archetypes serves the workload best?*  It
enumerates every in-budget :class:`~repro.capacity.composition
.Composition`, prices each one with the analytic
:class:`~repro.capacity.model.CapacityModel` (microseconds per
composition instead of a DES run), and keeps the Pareto frontier over

* **throughput** (maximize),
* **energy per request** (minimize),
* **p95 latency** (minimize),

through the generalized :func:`repro.dse.pareto.pareto_frontier`.  The
frontier — the only points anyone would deploy — is then re-verified
against the :mod:`repro.serve` DES with the composition's real
heterogeneous :class:`~repro.serve.archetype.FleetSpec` and routing
table, closing the loop the same way ``capacity validate`` gates the
homogeneous model.

Records carry the dse-record shape (``config`` / ``config_hash`` /
``model_version`` / ``feasible`` / ``error`` / ``metrics``) so the
pareto, export and learning tooling consume them unchanged.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.capacity.composition import (
    Composition,
    CompositionSpace,
    routed_compositions,
)
from repro.capacity.model import (
    CapacityInputs,
    CapacityModel,
    CapacityPrediction,
)
from repro.dse.pareto import pareto_frontier
from repro.errors import ConfigurationError, ReproError
from repro.serve.archetype import FleetSpec
from repro.serve.fleet import ServiceBook
from repro.serve.workload import DEFAULT_MIX

#: Version tag stamped into planner records (bump when the analytic
#: model's pricing changes in a way that invalidates cached plans).
MODEL_VERSION = "capacity-1"

#: Planner objectives, as keys into ``record["metrics"]``.
PLAN_MAXIMIZE: Tuple[str, ...] = ("throughput_rps",)
PLAN_MINIMIZE: Tuple[str, ...] = ("energy_per_request_uj",
                                  "latency_p95_ms")


@dataclass
class PlannerStats:
    """Search-side accounting of one planning run."""

    compositions: int = 0
    feasible: int = 0
    infeasible: int = 0
    elapsed_s: float = 0.0
    frontier_size: int = 0

    @property
    def compositions_per_second(self) -> float:
        return self.compositions / self.elapsed_s if self.elapsed_s > 0 \
            else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "compositions": self.compositions,
            "feasible": self.feasible,
            "infeasible": self.infeasible,
            "elapsed_s": round(self.elapsed_s, 6),
            "compositions_per_second": round(
                self.compositions_per_second, 3),
            "frontier_size": self.frontier_size,
        }


@dataclass
class PlanResult:
    """Everything one planning run produced."""

    spec: Dict[str, object]
    records: List[Dict[str, object]]
    frontier: List[Dict[str, object]]
    stats: PlannerStats
    #: One row per frontier point when DES verification ran.
    verify: List[Dict[str, object]] = field(default_factory=list)

    @property
    def verified_ok(self) -> bool:
        """Whether every DES-verified frontier point was in tolerance."""
        return all(row["verified"] for row in self.verify)


class FleetPlanner:
    """Search a :class:`CompositionSpace` for one workload point."""

    def __init__(self, space: CompositionSpace, arrival_rate: float,
                 mix: Optional[Dict[str, float]] = None,
                 requests: int = 2000, max_batch: int = 8,
                 iterations: int = 1, headroom: float = 0.85):
        if arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {arrival_rate}")
        if not 0.0 < headroom <= 1.0:
            raise ConfigurationError(
                f"headroom must be in (0, 1], got {headroom}")
        self.space = space
        self.arrival_rate = arrival_rate
        self.mix = dict(mix) if mix is not None else dict(DEFAULT_MIX)
        total = sum(self.mix.values())
        if total <= 0:
            raise ConfigurationError(f"arrival mix has no mass: {self.mix}")
        self.requests = requests
        self.max_batch = max_batch
        self.iterations = iterations
        #: Per-class utilization ceiling.  Nobody provisions a fleet at
        #: the saturation edge: the classic headroom rule keeps every
        #: class under ~85 % so load spikes have somewhere to go — and
        #: it keeps the planner inside the regime where the analytic
        #: model and the DES agree (deep metastable queues and routing
        #: spillover live above it).
        self.headroom = headroom
        self.kernels = tuple(sorted(k for k, w in self.mix.items() if w > 0))
        #: archetype name -> built book (missing = infeasible envelope).
        self.books: Dict[str, ServiceBook] = {}
        #: archetype name -> why its book would not build.
        self.build_errors: Dict[str, str] = {}
        self._models: Dict[str, CapacityModel] = {}
        for archetype in space.catalog:
            try:
                self.books[archetype.name] = archetype.build_book()
            except ReproError as exc:
                self.build_errors[archetype.name] = str(exc)
        for name, book in self.books.items():
            self._models[name] = CapacityModel(book)

    # -- analytic evaluation -----------------------------------------------------

    def _class_inputs(self, composition: Composition,
                      requests: int) -> List[Tuple[str, int, float,
                                                   CapacityInputs]]:
        """Per-archetype ``(name, count, share, inputs)`` for a routed
        composition; archetypes with no routed kernels are left idle."""
        total = sum(self.mix[k] for k in self.kernels)
        out = []
        for archetype, count in composition.groups:
            routed = {k: self.mix[k] for k in self.kernels
                      if composition.routing.get(k) == archetype.name}
            if not routed:
                continue
            share = sum(routed.values()) / total
            out.append((archetype.name, count, share, CapacityInputs(
                arrival_rate=self.arrival_rate * share,
                requests=max(1, round(requests * share)),
                mix=routed, iterations=self.iterations, nodes=count,
                max_batch=self.max_batch)))
        return out

    def evaluate(self, composition: Composition,
                 requests: Optional[int] = None) -> Dict[str, object]:
        """One dse-shaped record for *composition*."""
        requests = requests if requests is not None else self.requests
        record: Dict[str, object] = {
            "config": composition.config(),
            "config_hash": composition.config_hash(),
            "model_version": MODEL_VERSION,
            "feasible": False,
            "error": None,
            "metrics": None,
        }
        missing = [a.name for a, _ in composition.groups
                   if a.name not in self.books]
        if missing:
            record["error"] = "; ".join(
                f"{name}: {self.build_errors[name]}" for name in missing)
            return record
        classes = self._class_inputs(composition, requests)
        if not classes:
            record["error"] = "no kernel routed to any archetype"
            return record
        predictions: List[Tuple[str, int, float, CapacityPrediction]] = []
        for name, count, share, inputs in classes:
            prediction = self._models[name].predict(inputs)
            if not prediction.stable:
                record["error"] = (
                    f"saturated: {name} x{count} cannot carry "
                    f"{inputs.arrival_rate:.1f} rps")
                return record
            load = prediction.offered_load / max(prediction.servers, 1)
            if load > self.headroom:
                record["error"] = (
                    f"no headroom: {name} x{count} at "
                    f"{load:.0%} > {self.headroom:.0%} utilization")
                return record
            predictions.append((name, count, share, prediction))
        record["feasible"] = True
        record["metrics"] = self._merge(composition, predictions, requests)
        return record

    def _merge(self, composition: Composition,
               predictions: List[Tuple[str, int, float, CapacityPrediction]],
               requests: int) -> Dict[str, float]:
        """Fleet-level metrics from the per-class predictions.

        Classes serve disjoint kernel slices of one Poisson stream, so
        each class's share of requests finishes in about
        ``N_c / lambda_c = N / lambda`` plus its own drain; the fleet
        run ends with the slowest class.
        """
        lam = self.arrival_rate
        mean_latency = sum(share * p.mean_latency_s
                           for _, _, share, p in predictions)
        duration = requests / lam + max(p.mean_latency_s
                                        for _, _, _, p in predictions)
        energy = sum(share * p.energy_per_request_j
                     for _, _, share, p in predictions)
        nodes = composition.nodes
        busy = sum(count * p.utilization for _, count, _, p in predictions)
        p95 = self._merged_percentile(predictions, 0.95)
        return {
            "throughput_rps": requests / duration,
            "mean_latency_ms": mean_latency * 1e3,
            "latency_p95_ms": p95 * 1e3,
            "energy_per_request_uj": energy * 1e6,
            "provisioned_power_mw": composition.provisioned_w * 1e3,
            "nodes": float(nodes),
            "utilization": busy / nodes,
        }

    @staticmethod
    def _merged_percentile(
            predictions: List[Tuple[str, int, float, CapacityPrediction]],
            q: float) -> float:
        """Fleet latency quantile off the share-weighted survival mix."""
        def survival(t: float) -> float:
            return sum(share * p.survival(t)
                       for _, _, share, p in predictions)

        target = 1.0 - q
        hi = max(p.latency_p95_s for _, _, _, p in predictions) + 1e-6
        while survival(hi) > target:
            hi *= 2.0
            if hi > 1e9:
                return math.inf
        lo = 0.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if survival(mid) > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    # -- the search --------------------------------------------------------------

    def plan(self) -> PlanResult:
        """Evaluate the whole space and keep the Pareto frontier."""
        stats = PlannerStats()
        started = time.perf_counter()
        records = []
        for composition in routed_compositions(self.space, self.books,
                                               self.kernels):
            record = self.evaluate(composition)
            stats.compositions += 1
            if record["feasible"]:
                stats.feasible += 1
            else:
                stats.infeasible += 1
            records.append(record)
        records.sort(key=lambda r: r["config_hash"])
        frontier = pareto_frontier(records, maximize=PLAN_MAXIMIZE,
                                   minimize=PLAN_MINIMIZE)
        stats.elapsed_s = time.perf_counter() - started
        stats.frontier_size = len(frontier)
        spec = {
            "arrival_rate": self.arrival_rate,
            "mix": dict(sorted(self.mix.items())),
            "requests": self.requests,
            "max_batch": self.max_batch,
            "iterations": self.iterations,
            "space": self.space.to_dict(),
            "model_version": MODEL_VERSION,
            "objectives": {"maximize": list(PLAN_MAXIMIZE),
                           "minimize": list(PLAN_MINIMIZE)},
        }
        return PlanResult(spec=spec, records=records, frontier=frontier,
                          stats=stats)

    # -- DES re-verification -----------------------------------------------------

    def composition_from_record(self,
                                record: Dict[str, object]) -> Composition:
        """Rebuild the :class:`Composition` a record was priced from."""
        config = record["config"]
        by_name = {a.name: a for a in self.space.catalog}
        groups = tuple((by_name[name], count)
                       for name, count in config["archetypes"].items())
        return Composition(groups=groups, routing=dict(config["routing"]))

    def fleet_spec(self, composition: Composition) -> FleetSpec:
        """The heterogeneous DES fleet of a composition."""
        return FleetSpec(groups=composition.groups,
                         routing=dict(composition.routing))

    def verify_frontier(self, result: PlanResult, seed: int = 7,
                        requests: int = 600,
                        tolerance: float = 0.15) -> PlanResult:
        """Re-run every frontier point through the serve DES.

        Appends one row per point to ``result.verify`` with the DES
        metrics and the relative analytic errors on the gated pair
        (mean latency, throughput).  The analytic side is re-evaluated
        at the verification request count so both sides price the same
        finite run.
        """
        from repro.serve.engine import ServeConfig, ServeEngine
        from repro.serve.scheduler import SchedulerConfig
        from repro.serve.workload import PoissonWorkload

        result.verify = []
        for record in result.frontier:
            composition = self.composition_from_record(record)
            analytic = self.evaluate(composition, requests=requests)
            config = ServeConfig(
                workload=PoissonWorkload(rate=self.arrival_rate,
                                         requests=requests, seed=seed,
                                         iterations=self.iterations,
                                         deadline_factor=None),
                scheduler=SchedulerConfig(max_batch=self.max_batch),
                fleet=self.fleet_spec(composition))
            report = ServeEngine(config).run()
            des = report.metrics()
            row: Dict[str, object] = {
                "config_hash": record["config_hash"],
                "label": composition.label(),
                "seed": seed,
                "requests": requests,
                "des": {
                    "throughput_rps": des["throughput_rps"],
                    "mean_latency_ms": des["mean_latency_ms"],
                    "latency_p95_ms": des["latency_p95_ms"],
                    "energy_per_request_uj": des["energy_per_request_uj"],
                },
            }
            if analytic["feasible"]:
                metrics = analytic["metrics"]
                errors = {
                    "mean_latency": metrics["mean_latency_ms"]
                    / des["mean_latency_ms"] - 1.0,
                    "throughput": metrics["throughput_rps"]
                    / des["throughput_rps"] - 1.0,
                }
                row["model"] = {k: metrics[k] for k in (
                    "throughput_rps", "mean_latency_ms", "latency_p95_ms",
                    "energy_per_request_uj")}
                row["error"] = {k: round(v, 6) for k, v in errors.items()}
                row["verified"] = all(abs(v) <= tolerance
                                      for v in errors.values())
            else:
                row["model"] = None
                row["error"] = None
                row["verified"] = False
            result.verify.append(row)
        return result
