"""The analytic capacity model of one node class.

Given the same inputs a :class:`~repro.serve.engine.ServeConfig` takes —
arrival rate and mix, node count, batch cap, optional power budget and
fault plans — predict what the DES would report, in microseconds of
wall time instead of a full event-by-event run:

1. price the mix through the class's service book
   (:func:`~repro.capacity.corrections.kernel_shapes`);
2. fold in the corrections: batch coalescing (cold amortization and
   batchmate latency), the eco power-cap tier, and fault overheads —
   iterated to a fixed point, since batch sizes depend on the queue
   length which depends on the service time which depends on the batch
   sizes;
3. read throughput, utilization, mean wait/latency and energy per
   request off the corrected M/M/k (Allen–Cunneen scaled for the
   deterministic service mixture);
4. get p50/p95 latency by bisecting the closed-form sojourn survival
   ``P(T > t) = sum_atoms pi_a P(D > t - v_a)`` where ``D`` is the
   Erlang-C delay and the atoms are the discrete (kernel x cold/warm)
   service-latency values.

The model is cross-validated against seeded DES runs by
``python -m repro capacity validate`` (CI-gated at <= 10 % on mean
latency and throughput; see ``docs/CAPACITY.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.faults.resilient import RetryPolicy
from repro.capacity.corrections import (
    FaultEffect,
    KernelShape,
    batch_sizes,
    blend_shapes,
    fault_effect,
    kernel_shapes,
    power_cap_effect,
    switch_probability,
)
from repro.capacity.queueing import (
    MMkQueue,
    allen_cunneen_factor,
    batch_drain_factor,
)
from repro.serve.fleet import ServiceBook
from repro.serve.workload import DEFAULT_MIX

#: Outer sweeps refreshing the eco power-cap split against the load.
_ECO_ROUNDS = 8
_ECO_TOL = 1e-9
#: Bisection depth for the self-consistent queue length (2^-40 of the
#: bracket: far below the calibration tolerance).
_BISECT_ITERS = 40


@dataclass
class CapacityInputs:
    """One node-class scenario, in ServeConfig vocabulary."""

    arrival_rate: float
    requests: int = 400
    mix: Optional[Dict[str, float]] = None
    iterations: int = 1
    nodes: int = 4
    max_batch: int = 8
    power_budget_w: Optional[float] = None
    fault_plans: Optional[List[FaultPlan]] = None
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {self.arrival_rate}")
        if self.requests < 1:
            raise ConfigurationError(
                f"need >= 1 requests, got {self.requests}")
        if self.nodes < 1:
            raise ConfigurationError(f"need >= 1 nodes, got {self.nodes}")
        if self.iterations < 1:
            raise ConfigurationError(
                f"iterations must be >= 1, got {self.iterations}")
        if self.mix is None:
            self.mix = dict(DEFAULT_MIX)


@dataclass(frozen=True)
class LatencyAtom:
    """One discrete service-latency value and its probability mass."""

    probability: float
    latency_s: float


@dataclass
class CapacityPrediction:
    """What the model expects the DES report to say."""

    stable: bool
    servers: int                 #: surviving, power-admitted servers
    offered_load: float          #: erlangs against those servers
    utilization: float           #: predicted busy fraction per node
    wait_probability: float      #: Erlang-C P(wait)
    mean_wait_s: float
    mean_latency_s: float
    latency_p50_s: float
    latency_p95_s: float
    throughput_rps: float
    duration_s: float
    energy_per_request_j: float
    mean_batch: float
    eco_share: float
    dead_nodes: int
    #: Conditional-delay rate of the wait tail (theta).
    delay_rate: float = 0.0
    atoms: Tuple[LatencyAtom, ...] = field(default_factory=tuple)

    def survival(self, t: float) -> float:
        """``P(latency > t)`` under the closed-form sojourn law."""
        if not self.stable:
            return 1.0
        total = 0.0
        for atom in self.atoms:
            x = t - atom.latency_s
            if x < 0:
                total += atom.probability
            elif self.delay_rate > 0:
                total += atom.probability * self.wait_probability \
                    * math.exp(-self.delay_rate * x)
        return total

    def percentile(self, q: float) -> float:
        """The q-quantile (q in [0, 1)) of latency, by bisection."""
        if not 0.0 <= q < 1.0:
            raise ConfigurationError(f"quantile out of range: {q}")
        if not self.stable or not self.atoms:
            return math.inf
        target = 1.0 - q
        lo, hi = 0.0, max(atom.latency_s for atom in self.atoms)
        while self.survival(hi) > target:
            hi *= 2.0
            if hi > 1e9:
                return math.inf
        for _ in range(50):
            mid = 0.5 * (lo + hi)
            if self.survival(mid) > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe summary (stable keys; rounded like ServeReport)."""
        return {
            "stable": self.stable,
            "servers": self.servers,
            "offered_load": round(self.offered_load, 6),
            "utilization": round(self.utilization, 6),
            "wait_probability": round(self.wait_probability, 6),
            "mean_wait_ms": round(self.mean_wait_s * 1e3, 6),
            "mean_latency_ms": round(self.mean_latency_s * 1e3, 6),
            "latency_p50_ms": round(self.latency_p50_s * 1e3, 6),
            "latency_p95_ms": round(self.latency_p95_s * 1e3, 6),
            "throughput_rps": round(self.throughput_rps, 6),
            "duration_s": round(self.duration_s, 9),
            "energy_per_request_uj": round(
                self.energy_per_request_j * 1e6, 6),
            "mean_batch": round(self.mean_batch, 6),
            "eco_share": round(self.eco_share, 6),
            "dead_nodes": self.dead_nodes,
        }


class CapacityModel:
    """Analytic fast path over one service book (one node archetype)."""

    def __init__(self, book: ServiceBook):
        self.book = book
        self._shape_cache: Dict[Tuple[int, str, Tuple[Tuple[str, float],
                                                      ...]],
                                Tuple[KernelShape, ...]] = {}

    def _shapes(self, mix: Dict[str, float], iterations: int,
                tier: str) -> Tuple[KernelShape, ...]:
        key = (iterations, tier, tuple(sorted(mix.items())))
        cached = self._shape_cache.get(key)
        if cached is None:
            cached = kernel_shapes(self.book, mix, iterations, tier)
            self._shape_cache[key] = cached
        return cached

    def predict(self, inputs: CapacityInputs) -> CapacityPrediction:
        """Steady-state prediction for one scenario."""
        fast = self._shapes(inputs.mix, inputs.iterations, "fast")
        eco = self._shapes(inputs.mix, inputs.iterations, "eco") \
            if "eco" in self.book.tiers() else fast
        lam = inputs.arrival_rate
        n = inputs.requests

        # Fault effects need a batch-compute scale; seed it from the
        # unbatched fast-tier mean and refine inside the fixed point.
        mean_compute = sum(s.probability * s.warm_compute_s for s in fast)
        mean_active = sum(s.probability * s.active_w for s in fast)
        faults = fault_effect(inputs.fault_plans, inputs.nodes,
                              inputs.retry, mean_compute, mean_active)
        alive = inputs.nodes - faults.dead_nodes
        if alive < 1:
            return self._saturated(inputs, faults, servers=0)

        stretch = faults.compute_stretch
        fast_active = sum(s.probability * s.active_w for s in fast)
        eco_active = sum(s.probability * s.active_w for s in eco) \
            if eco is not fast else None
        cap = power_cap_effect(inputs.power_budget_w, self.book.host_power,
                               self.book.idle_power, alive, float(alive),
                               fast_active, eco_active)
        servers = min(alive, cap.server_cap) if cap.server_cap else 0
        if servers < 1:
            return self._saturated(inputs, faults, servers=0)
        eco_share = cap.eco_share

        wq = 0.0
        queue_len = 0.0
        shapes = fast
        sizes: Dict[str, float] = {}
        occupancy = 0.0
        queue: Optional[MMkQueue] = None
        for _ in range(_ECO_ROUNDS):
            shapes = blend_shapes(fast, eco, eco_share)
            solved = self._solve_queue(shapes, lam, servers, stretch,
                                       inputs.max_batch)
            if solved is None:
                # Saturated even at full batching: the true capacity
                # limit, not the singleton-batch one.
                occ_fb = self._occupancy(
                    shapes, self._full_sizes(shapes, inputs.max_batch),
                    stretch)
                return self._saturated(inputs, faults, servers=servers,
                                       occupancy=occ_fb)
            wq, queue_len, occupancy, queue, sizes = solved
            # Refresh the eco split against the expected concurrency.
            cap = power_cap_effect(inputs.power_budget_w,
                                   self.book.host_power,
                                   self.book.idle_power, alive,
                                   queue.offered_load, fast_active,
                                   eco_active)
            new_servers = min(alive, cap.server_cap) if cap.server_cap else 0
            if new_servers < 1:
                return self._saturated(inputs, faults, servers=0)
            if new_servers == servers \
                    and abs(cap.eco_share - eco_share) < _ECO_TOL:
                break
            servers = new_servers
            eco_share = cap.eco_share
            shapes = blend_shapes(fast, eco, eco_share)

        # Latency atoms: a request in a batch of size b experiences the
        # whole batch service (members share start and end), cold start
        # included when the lead switched the resident binary.  The
        # experienced size is *size-biased* — requests land in big
        # batches in proportion to their size.  With geometric
        # batchmate counts of mean m the size-biased mean batch is
        # 1 + 2m, while the batch-weighted mean (1 + m) keeps pricing
        # occupancy and energy, where cold costs amortize per batch.
        atoms: List[LatencyAtom] = []
        for s in shapes:
            mates = min(float(inputs.max_batch - 1),
                        2.0 * (sizes[s.kernel] - 1.0))
            base = (1.0 + mates) * s.warm_at(stretch)
            p_switch = switch_probability(s)
            if p_switch > 0:
                atoms.append(LatencyAtom(s.probability * p_switch,
                                         base + s.cold_s))
            if p_switch < 1:
                atoms.append(LatencyAtom(s.probability * (1 - p_switch),
                                         base))
        mean_service_lat = sum(a.probability * a.latency_s for a in atoms)
        # Ladder overheads block whole batches: the requests of the
        # affected first batches (plus one extra wait for requeued
        # batches off dying nodes) see them; the mean amortizes.
        mean_batch = sum(s.probability * sizes[s.kernel] for s in shapes)
        overhead_lat = (faults.overhead_s * mean_batch
                        + faults.requeued_batches * mean_batch * wq) / n
        mean_latency = wq + mean_service_lat + overhead_lat

        duration = n / lam + mean_latency + faults.overhead_s / max(
            1, servers)
        throughput = n / duration
        busy = n * occupancy + faults.overhead_s
        utilization = busy / (inputs.nodes * duration)
        energy = sum(
            s.probability * (s.warm_energy_at(stretch)
                             + switch_probability(s) * s.cold_energy_j
                             / sizes[s.kernel])
            for s in shapes) + faults.overhead_energy_j / n

        prediction = CapacityPrediction(
            stable=True,
            servers=servers,
            offered_load=queue.offered_load,
            utilization=utilization,
            wait_probability=queue.wait_probability,
            mean_wait_s=wq,
            mean_latency_s=mean_latency,
            latency_p50_s=0.0,
            latency_p95_s=0.0,
            throughput_rps=throughput,
            duration_s=duration,
            energy_per_request_j=energy,
            mean_batch=mean_batch,
            eco_share=eco_share,
            dead_nodes=faults.dead_nodes,
            delay_rate=(queue.wait_probability / wq if wq > 0 else 0.0),
            atoms=tuple(atoms))
        prediction.latency_p50_s = prediction.percentile(0.50)
        prediction.latency_p95_s = prediction.percentile(0.95)
        return prediction

    @staticmethod
    def _full_sizes(shapes: Tuple[KernelShape, ...],
                    max_batch: int) -> Dict[str, float]:
        return {s.kernel: float(max_batch) for s in shapes}

    @staticmethod
    def _occupancy(shapes: Tuple[KernelShape, ...], sizes: Dict[str, float],
                   stretch: float) -> float:
        """Per-request server occupancy: warm service plus the cold
        start amortized over the coalesced batch."""
        return sum(s.probability * (s.warm_at(stretch)
                                    + switch_probability(s) * s.cold_s
                                    / sizes[s.kernel])
                   for s in shapes)

    def _wait_at(self, shapes: Tuple[KernelShape, ...], lam: float,
                 servers: int, stretch: float, max_batch: int,
                 queue_len: float):
        """``(wq, occupancy, queue, sizes)`` at an assumed queue length.

        The wait is the M/M/k mean scaled by Allen–Cunneen (the
        deterministic per-kernel mixture's variability) and by the
        calibrated batch-drain factor; infinite when the class is
        unstable at these batch sizes.
        """
        sizes = batch_sizes(shapes, queue_len, max_batch)
        occupancy = self._occupancy(shapes, sizes, stretch)
        queue = MMkQueue(arrival_rate=lam, service_rate=1.0 / occupancy,
                         servers=servers)
        if not queue.stable:
            return math.inf, occupancy, queue, sizes
        values = [(s.probability,
                   s.warm_at(stretch) + switch_probability(s) * s.cold_s
                   / sizes[s.kernel]) for s in shapes]
        mean = sum(p * v for p, v in values)
        var = sum(p * (v - mean) ** 2 for p, v in values)
        scv = var / (mean * mean) if mean > 0 else 0.0
        wq = queue.mean_wait * allen_cunneen_factor(1.0, scv) \
            * batch_drain_factor(servers, queue.utilization)
        return wq, occupancy, queue, sizes

    def _solve_queue(self, shapes: Tuple[KernelShape, ...], lam: float,
                     servers: int, stretch: float, max_batch: int):
        """Self-consistent ``(wait, queue length)`` under coalescing.

        The expected queue length sets the batch sizes (deeper queues
        coalesce more), which set the occupancy, which sets the wait,
        which — by Little's law — sets the queue length back.  The gap
        ``h(L) = lam Wq(L) - L`` is strictly decreasing (longer queues
        mean bigger batches, lower occupancy, shorter waits), so the
        unique fixed point falls to bisection.  Past the length where
        every kernel's batch is capped the wait is constant and the
        root is ``lam Wq`` directly.

        Returns ``None`` when the class is saturated even at full
        batching — the true capacity limit.  A queue unstable at
        singleton batches may still stabilize itself by coalescing;
        that metastable high-load regime is exactly where the DES keeps
        completing while a naive M/M/k check declares overload.
        """
        min_p = min(s.probability for s in shapes)
        cap_len = (max_batch - 1) / min_p + 1.0
        wq_fb, _, _, _ = self._wait_at(shapes, lam, servers, stretch,
                                       max_batch, cap_len)
        if not math.isfinite(wq_fb):
            return None
        if lam * wq_fb >= cap_len:
            queue_len = lam * wq_fb
        else:
            lo, hi = 0.0, cap_len
            for _ in range(_BISECT_ITERS):
                mid = 0.5 * (lo + hi)
                wq_mid = self._wait_at(shapes, lam, servers, stretch,
                                       max_batch, mid)[0]
                if lam * wq_mid > mid:
                    lo = mid
                else:
                    hi = mid
            # Converge onto the stable side of the root.
            queue_len = hi
        wq, occupancy, queue, sizes = self._wait_at(
            shapes, lam, servers, stretch, max_batch, queue_len)
        return wq, queue_len, occupancy, queue, sizes

    def _saturated(self, inputs: CapacityInputs, faults: FaultEffect,
                   servers: int,
                   occupancy: Optional[float] = None) -> CapacityPrediction:
        """An unstable (or dead) class: report the saturation point."""
        if servers > 0 and occupancy:
            throughput = servers / occupancy
            duration = inputs.requests / throughput
        else:
            throughput = 0.0
            duration = math.inf
        return CapacityPrediction(
            stable=False,
            servers=servers,
            offered_load=math.inf,
            utilization=1.0 if servers else 0.0,
            wait_probability=1.0,
            mean_wait_s=math.inf,
            mean_latency_s=math.inf,
            latency_p50_s=math.inf,
            latency_p95_s=math.inf,
            throughput_rps=throughput,
            duration_s=duration,
            energy_per_request_j=0.0,
            mean_batch=float(inputs.max_batch),
            eco_share=0.0,
            dead_nodes=faults.dead_nodes)
