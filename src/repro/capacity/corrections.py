"""Serving-reality corrections layered on the M/M/k core.

The DES fleet is not a textbook queue: requests coalesce into
same-kernel batches (cold costs amortize, batchmates share the service
interval), the power-cap scheduler throttles nodes onto the eco tier
when the fleet budget is tight, and fault plans burn capacity on
watchdogs, reboots and dead nodes.  This module prices each effect from
the same inputs the DES uses — the
:class:`~repro.serve.fleet.ServiceBook`, the
:class:`~repro.serve.scheduler.SchedulerConfig` and the
:class:`~repro.faults.plan.FaultPlan` taxonomy — so the analytic model
and the simulator disagree only in stochastic noise, not in pricing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.resilient import RetryPolicy
from repro.serve.fleet import LADDER, ServiceBook


@dataclass(frozen=True)
class KernelShape:
    """Per-(kernel, tier) service statistics of one request."""

    kernel: str
    probability: float          #: share of the arrival mix
    warm_io_s: float            #: per-request io+sync (not drooped)
    warm_compute_s: float       #: per-request compute (droop-stretched)
    cold_s: float               #: per-batch cold start (upload + boot)
    warm_io_energy_j: float
    warm_compute_energy_j: float
    cold_energy_j: float
    active_w: float             #: node draw while serving this kernel

    @property
    def warm_s(self) -> float:
        """Warm per-request service seconds at nominal clock."""
        return self.warm_io_s + self.warm_compute_s

    @property
    def warm_energy_j(self) -> float:
        """Warm per-request joules at nominal clock."""
        return self.warm_io_energy_j + self.warm_compute_energy_j

    def warm_at(self, compute_stretch: float) -> float:
        """Warm service with the compute portion stretched (brownout)."""
        return self.warm_io_s + self.warm_compute_s * compute_stretch

    def warm_energy_at(self, compute_stretch: float) -> float:
        """Warm energy with the compute share stretched, mirroring
        :meth:`~repro.serve.fleet.ServiceProfile.request_energy`."""
        return self.warm_io_energy_j \
            + self.warm_compute_energy_j * compute_stretch


def kernel_shapes(book: ServiceBook, mix: Dict[str, float],
                  iterations: int, tier: str) -> Tuple[KernelShape, ...]:
    """Price the arrival mix through *book* at *tier*.

    Mix weights are normalized; kernels appear in sorted-name order so
    downstream sums are deterministic.
    """
    total = sum(mix.values())
    if total <= 0:
        raise ConfigurationError(f"arrival mix has no mass: {mix}")
    shapes = []
    for kernel in sorted(mix):
        weight = mix[kernel]
        if weight < 0:
            raise ConfigurationError(
                f"negative mix weight for {kernel!r}: {weight}")
        if weight == 0:
            continue
        profile = book.profile(kernel, tier)
        shapes.append(KernelShape(
            kernel=kernel,
            probability=weight / total,
            warm_io_s=profile.unit_io_time * iterations,
            warm_compute_s=profile.unit_compute_time * iterations,
            cold_s=profile.cold_time,
            warm_io_energy_j=profile.unit_io_energy * iterations,
            warm_compute_energy_j=profile.unit_compute_energy * iterations,
            cold_energy_j=profile.cold_energy,
            active_w=profile.active_power))
    return tuple(shapes)


def blend_shapes(fast: Sequence[KernelShape], eco: Sequence[KernelShape],
                 eco_share: float) -> Tuple[KernelShape, ...]:
    """Mix fast- and eco-tier shapes by the expected eco dispatch share."""
    if not 0.0 <= eco_share <= 1.0:
        raise ConfigurationError(f"eco share out of range: {eco_share}")
    if eco_share == 0.0:
        return tuple(fast)
    blended = []
    for f, e in zip(fast, eco):
        w = eco_share
        blended.append(KernelShape(
            kernel=f.kernel,
            probability=f.probability,
            warm_io_s=(1 - w) * f.warm_io_s + w * e.warm_io_s,
            warm_compute_s=(1 - w) * f.warm_compute_s + w * e.warm_compute_s,
            cold_s=(1 - w) * f.cold_s + w * e.cold_s,
            warm_io_energy_j=(1 - w) * f.warm_io_energy_j
            + w * e.warm_io_energy_j,
            warm_compute_energy_j=(1 - w) * f.warm_compute_energy_j
            + w * e.warm_compute_energy_j,
            cold_energy_j=(1 - w) * f.cold_energy_j + w * e.cold_energy_j,
            active_w=(1 - w) * f.active_w + w * e.active_w))
    return tuple(blended)


# -- batch coalescing ------------------------------------------------------------

def batch_sizes(shapes: Sequence[KernelShape], queue_length: float,
                max_batch: int) -> Dict[str, float]:
    """Expected coalesced batch size per lead kernel.

    The scheduler pulls every queued same-kernel request (up to
    ``max_batch``) behind the lead; with ``Lq`` requests queued on
    average, a lead of kernel ``j`` finds about ``Lq p_j`` batchmates.
    """
    if max_batch < 1:
        raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
    return {shape.kernel: 1.0 + min(float(max_batch - 1),
                                    max(0.0, queue_length)
                                    * shape.probability)
            for shape in shapes}


def switch_probability(shape: KernelShape) -> float:
    """P(the serving node's resident binary is not this kernel).

    Consecutive batches on a node are approximately independent draws
    from the lead-kernel distribution, so a lead of kernel ``j`` pays
    the cold cost with probability ``1 - p_j``.
    """
    return 1.0 - shape.probability


# -- the eco power-cap tier ------------------------------------------------------

@dataclass(frozen=True)
class PowerCapEffect:
    """What a fleet power budget does to the node class."""

    #: Max nodes simultaneously serving on the fast tier.
    fast_slots: int
    #: Further nodes that still fit on the eco tier.
    eco_slots: int
    #: Fraction of dispatches expected to run eco.
    eco_share: float

    @property
    def server_cap(self) -> int:
        """Concurrency the budget admits (beyond it, dispatch defers)."""
        return self.fast_slots + self.eco_slots


def power_cap_effect(power_budget_w: Optional[float], host_power_w: float,
                     idle_w: float, servers: int, expected_busy: float,
                     fast_active_w: float,
                     eco_active_w: Optional[float]) -> PowerCapEffect:
    """Size the fast/eco split under a fleet power budget.

    Mirrors :meth:`repro.serve.scheduler.Scheduler.tier_for`: a dispatch
    runs fast while the fleet draw (host + every node's idle draw +
    the busy nodes' increments) stays under budget, falls back to eco
    when only the throttled increment fits, and defers otherwise.
    """
    if power_budget_w is None:
        return PowerCapEffect(fast_slots=servers, eco_slots=0,
                              eco_share=0.0)
    floor_w = host_power_w + servers * idle_w
    headroom = power_budget_w - floor_w
    fast_step = max(fast_active_w - idle_w, 1e-12)
    fast_slots = min(servers, max(0, int(headroom / fast_step + 1e-9)))
    eco_slots = 0
    if eco_active_w is not None and eco_active_w < fast_active_w:
        eco_step = max(eco_active_w - idle_w, 1e-12)
        left = headroom - fast_slots * fast_step
        eco_slots = min(servers - fast_slots,
                        max(0, int(left / eco_step + 1e-9)))
    busy = min(expected_busy, float(fast_slots + eco_slots))
    if busy <= 0 or busy <= fast_slots:
        share = 0.0
    else:
        share = (busy - fast_slots) / busy
    return PowerCapEffect(fast_slots=fast_slots, eco_slots=eco_slots,
                          eco_share=share)


# -- fault plans -----------------------------------------------------------------

@dataclass(frozen=True)
class FaultEffect:
    """Availability-discounted capacity under a set of fault plans."""

    #: Nodes whose recovery ladder exhausts on first contact (3+ faults).
    dead_nodes: int
    #: Mean compute stretch ``E[1/droop]`` across surviving nodes.
    compute_stretch: float
    #: One-time blocking overhead (watchdogs + reboots), whole fleet.
    overhead_s: float
    #: Energy burned by that overhead.
    overhead_energy_j: float
    #: Batches lost to dying nodes and requeued (adds one extra wait).
    requeued_batches: int


def fault_effect(plans: Optional[List[FaultPlan]], servers: int,
                 retry: Optional[RetryPolicy],
                 batch_compute_s: float,
                 mean_active_w: float) -> FaultEffect:
    """Price the fleet's fault plans the way the node ladder replays them.

    Plans cycle across node indices exactly as
    :class:`~repro.serve.fleet.Fleet` assigns them.  Attempt faults
    (``boot-failure``, ``kernel-hang``) carry deterministic budgets: the
    ladder has ``len(LADDER)`` rungs, so a node whose combined budget
    reaches that count dies on its first batch (the batch requeues);
    smaller budgets cost watchdog/boot timeouts once per run.  Brownout
    droop stretches every surviving node's compute for the whole run.
    """
    retry = retry if retry is not None else RetryPolicy()
    if not plans:
        return FaultEffect(dead_nodes=0, compute_stretch=1.0,
                           overhead_s=0.0, overhead_energy_j=0.0,
                           requeued_batches=0)
    dead = 0
    stretches = []
    overhead_s = 0.0
    overhead_j = 0.0
    requeued = 0
    rungs = len(LADDER)
    for index in range(servers):
        plan = plans[index % len(plans)]
        boot = hang = 0
        droop = 1.0
        for spec in plan.specs:
            if spec.kind is FaultKind.BOOT_FAILURE:
                boot = spec.count
            elif spec.kind is FaultKind.KERNEL_HANG:
                hang = spec.count
            elif spec.kind is FaultKind.BROWNOUT:
                droop = spec.droop
        if boot + hang >= rungs:
            dead += 1
            requeued += 1
            # The dying node still burns its ladder before giving up.
            hangs_spent = min(hang, rungs)
            boots_spent = min(boot, rungs - hangs_spent)
            watchdog = max(retry.watchdog_floor_s,
                           retry.watchdog_factor * batch_compute_s / droop)
            overhead_s += hangs_spent * watchdog \
                + boots_spent * retry.boot_timeout_s \
                + retry.boot_timeout_s  # the reboot rung's wait
            overhead_j += (hangs_spent * watchdog
                           + boots_spent * retry.boot_timeout_s) \
                * mean_active_w
            continue
        stretches.append(1.0 / droop)
        watchdog = max(retry.watchdog_floor_s,
                       retry.watchdog_factor * batch_compute_s / droop)
        node_overhead = hang * watchdog + boot * retry.boot_timeout_s
        if hang + boot >= 2:
            # The second failure pushes the ladder to its reboot rung.
            node_overhead += retry.boot_timeout_s
        overhead_s += node_overhead
        overhead_j += node_overhead * mean_active_w
    if not stretches:
        stretches = [1.0]
    return FaultEffect(
        dead_nodes=dead,
        compute_stretch=math.fsum(stretches) / len(stretches),
        overhead_s=overhead_s,
        overhead_energy_j=overhead_j,
        requeued_batches=requeued)
