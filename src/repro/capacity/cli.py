"""``python -m repro capacity`` — plan / validate / sweep.

Three subcommands over the analytic fast path:

- ``plan`` searches a fleet-composition space under a power budget and
  prints the Pareto frontier (throughput x energy/request x p95); by
  default every frontier point is re-verified through the serve DES,
  and a verification breach exits :data:`CAPACITY_EXIT_TOLERANCE`;
- ``validate`` runs the pinned analytic-vs-DES grid and exits
  :data:`CAPACITY_EXIT_TOLERANCE` when the gated errors (mean latency,
  throughput) breach the tolerance — the CI calibration gate;
- ``sweep`` walks a homogeneous fleet across arrival rates entirely
  analytically: the what-if loop a DES would take minutes to answer.

``--json`` payloads are deterministic (same inputs => byte-identical
documents; wall-clock only appears in the human render), so reruns can
be compared with a plain ``cmp``.
"""

from __future__ import annotations

import json
import math
import time

#: Exit code when a validation or verification tolerance is breached.
CAPACITY_EXIT_TOLERANCE = 3


def _json_dump(payload) -> str:
    return json.dumps(payload, indent=2, sort_keys=True)


def _cmd_plan(args) -> str:
    from repro.capacity.composition import CompositionSpace
    from repro.capacity.planner import FleetPlanner
    from repro.capacity.report import plan_json_dict, render_plan
    from repro.units import mw

    budget = mw(args.power_budget) if args.power_budget is not None \
        else None
    space = CompositionSpace(
        min_nodes=args.min_nodes, max_nodes=args.max_nodes,
        max_per_archetype=args.max_per_archetype, power_budget_w=budget)
    planner = FleetPlanner(space, arrival_rate=args.arrival_rate,
                           requests=args.requests,
                           max_batch=args.max_batch,
                           headroom=args.headroom)
    result = planner.plan()
    if not args.no_verify:
        planner.verify_frontier(result, seed=args.verify_seed,
                                requests=args.verify_requests,
                                tolerance=args.tolerance)
        if not result.verified_ok:
            args._exit_code = CAPACITY_EXIT_TOLERANCE
    if getattr(args, "json", False):
        return _json_dump(plan_json_dict(result))
    return render_plan(result, verbose=args.verbose)


def _cmd_validate(args) -> str:
    from repro.capacity.report import render_validation
    from repro.capacity.validation import TOLERANCE, run_validation

    tolerance = args.tolerance if args.tolerance is not None else TOLERANCE
    report = run_validation(tolerance=tolerance)
    if not report["passed"]:
        args._exit_code = CAPACITY_EXIT_TOLERANCE
    if getattr(args, "json", False):
        return _json_dump(report)
    return render_validation(report)


def _parse_rates(spec: str):
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) != 3:
            raise SystemExit(
                f"capacity: bad --rates {spec!r} (want lo:hi:step)")
        lo, hi, step = (float(part) for part in parts)
        if step <= 0 or hi < lo:
            raise SystemExit(
                f"capacity: bad --rates {spec!r} (want lo:hi:step)")
        count = int(math.floor((hi - lo) / step + 1e-9)) + 1
        return [lo + index * step for index in range(count)]
    return [float(token) for token in spec.split(",") if token.strip()]


def _cmd_sweep(args) -> str:
    from repro.capacity.model import CapacityInputs, CapacityModel
    from repro.capacity.report import render_sweep
    from repro.serve import AnalyticServiceBook
    from repro.serve.engine import default_power_budget

    rates = _parse_rates(args.rates)
    book = AnalyticServiceBook()
    model = CapacityModel(book)
    budget = None
    if args.power_fraction is not None:
        budget = default_power_budget(book, args.nodes,
                                      args.power_fraction)
    points = []
    saturation = None
    started = time.perf_counter()
    for rate in rates:
        prediction = model.predict(CapacityInputs(
            arrival_rate=rate, requests=args.requests, nodes=args.nodes,
            max_batch=args.max_batch, power_budget_w=budget))
        row = prediction.to_json_dict()
        row["arrival_rate"] = rate
        points.append(row)
        if saturation is None and not prediction.stable:
            previous = rates[max(0, len(points) - 2)]
            saturation = [previous, rate]
    wall_ms = (time.perf_counter() - started) * 1e3
    payload = {
        "nodes": args.nodes,
        "max_batch": args.max_batch,
        "requests": args.requests,
        "power_fraction": args.power_fraction,
        "points": points,
        "saturation_rate": saturation,
    }
    if getattr(args, "json", False):
        return _json_dump(payload)
    return render_sweep({**payload, "wall_ms": wall_ms})


_CAPACITY_COMMANDS = {
    "plan": _cmd_plan,
    "validate": _cmd_validate,
    "sweep": _cmd_sweep,
}


def cmd_capacity(args) -> str:
    """Dispatch one ``repro capacity`` subcommand."""
    return _CAPACITY_COMMANDS[args.capacity_command](args)


def add_capacity_parser(sub) -> None:
    """Attach the ``capacity`` subcommand tree to the CLI parser."""
    capacity = sub.add_parser(
        "capacity", help="analytic capacity model: fleet-composition "
                         "planning, DES cross-validation, rate sweeps")
    capacity_sub = capacity.add_subparsers(dest="capacity_command",
                                           required=True)

    plan = capacity_sub.add_parser(
        "plan", help="search archetype compositions under a power "
                     "budget; Pareto frontier, DES-verified")
    plan.add_argument("--arrival-rate", type=float, default=300.0,
                      help="workload arrival rate (requests/s)")
    plan.add_argument("--power-budget", type=float, default=None,
                      metavar="MW", help="fleet provisioned-power budget "
                                         "in milliwatts (default: "
                                         "unbounded)")
    plan.add_argument("--min-nodes", type=int, default=1)
    plan.add_argument("--max-nodes", type=int, default=6,
                      help="total fleet size ceiling")
    plan.add_argument("--max-per-archetype", type=int, default=4)
    plan.add_argument("--requests", type=int, default=2000,
                      help="run length the analytic model prices")
    plan.add_argument("--max-batch", type=int, default=8)
    plan.add_argument("--headroom", type=float, default=0.85,
                      help="per-class utilization ceiling for "
                           "feasibility")
    plan.add_argument("--no-verify", action="store_true",
                      help="skip the DES re-verification of the frontier")
    plan.add_argument("--verify-requests", type=int, default=600,
                      help="request count of the verification DES runs")
    plan.add_argument("--verify-seed", type=int, default=7)
    plan.add_argument("--tolerance", type=float, default=0.15,
                      help="verification error bound before exiting "
                           f"{CAPACITY_EXIT_TOLERANCE}")
    plan.add_argument("--verbose", action="store_true",
                      help="histogram the infeasibility reasons")
    plan.add_argument("--json", action="store_true",
                      help="deterministic machine-readable payload")

    validate = capacity_sub.add_parser(
        "validate", help="pinned analytic-vs-DES grid; the CI "
                         "calibration gate")
    validate.add_argument("--tolerance", type=float, default=None,
                          help="gated relative-error bound (default: "
                               "the pinned 10%%); breach exits "
                               f"{CAPACITY_EXIT_TOLERANCE}")
    validate.add_argument("--json", action="store_true",
                          help="machine-readable JSON report")

    sweep = capacity_sub.add_parser(
        "sweep", help="analytic arrival-rate sweep of a homogeneous "
                      "fleet (no DES)")
    sweep.add_argument("--rates", default="50:700:50",
                       help="lo:hi:step or comma-separated rates "
                            "(requests/s)")
    sweep.add_argument("--nodes", type=int, default=4)
    sweep.add_argument("--requests", type=int, default=2000)
    sweep.add_argument("--max-batch", type=int, default=8)
    sweep.add_argument("--power-fraction", type=float, default=None,
                       help="power-cap the fleet at "
                            "default_power_budget(book, nodes, FRACTION)")
    sweep.add_argument("--json", action="store_true",
                       help="deterministic machine-readable payload")
