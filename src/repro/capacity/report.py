"""Report rendering for the capacity CLI.

Two output shapes per subcommand, same data:

* ``render_*`` — the human tables;
* ``*_json_dict`` — the machine payloads behind ``--json``.

The plan payload is **deterministic**: same space + workload gives a
byte-identical JSON document (wall-clock fields live only in the human
render), so CI can assert bit-identical reruns with a plain ``cmp``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.capacity.planner import PlanResult


def _pct(value: Optional[float]) -> str:
    return f"{value:+.1%}" if value is not None else "--"


# -- plan ------------------------------------------------------------------------

def plan_json_dict(result: PlanResult) -> Dict[str, object]:
    """The deterministic machine payload of one planning run."""
    return {
        "spec": result.spec,
        "stats": {
            "compositions": result.stats.compositions,
            "feasible": result.stats.feasible,
            "infeasible": result.stats.infeasible,
            "frontier_size": result.stats.frontier_size,
        },
        "frontier": result.frontier,
        "verify": result.verify,
    }


def render_plan(result: PlanResult, verbose: bool = False) -> str:
    """Human summary: the frontier table plus the search accounting."""
    stats = result.stats
    lines = [
        "fleet-composition plan",
        f"  workload   : {result.spec['arrival_rate']:.1f} rps, "
        f"mix {result.spec['mix']}",
        f"  space      : {stats.compositions} compositions "
        f"({stats.feasible} feasible, {stats.infeasible} infeasible), "
        f"budget "
        f"{result.spec['space']['power_budget_mw'] or 'unbounded'} mW",
        f"  search     : {stats.elapsed_s * 1e3:.1f} ms analytic "
        f"({stats.compositions_per_second:.0f} compositions/s)",
        f"  frontier   : {stats.frontier_size} Pareto points "
        "(max throughput, min energy/request, min p95)",
    ]
    for record in result.frontier:
        metrics = record["metrics"]
        label = " + ".join(f"{count}*{name}" for name, count
                           in record["config"]["archetypes"].items())
        lines.append(
            f"    {label:<34} {metrics['throughput_rps']:8.1f} rps  "
            f"{metrics['mean_latency_ms']:7.2f} ms mean  "
            f"{metrics['latency_p95_ms']:7.2f} ms p95  "
            f"{metrics['energy_per_request_uj']:7.2f} uJ/req  "
            f"{metrics['provisioned_power_mw']:5.1f} mW")
    if result.verify:
        lines.append("  verify     : frontier re-run through the serve DES")
        for row in result.verify:
            error = row["error"]
            if error is None:
                lines.append(f"    {row['label']:<34} infeasible at the "
                             "verification request count")
                continue
            lines.append(
                f"    {row['label']:<34} "
                f"latency {_pct(error['mean_latency'])}  "
                f"throughput {_pct(error['throughput'])}  "
                f"{'ok' if row['verified'] else 'BREACH'}")
        lines.append(f"  verified   : "
                     f"{'yes' if result.verified_ok else 'NO'}")
    if verbose:
        lines.append("  infeasible reasons:")
        reasons: Dict[str, int] = {}
        for record in result.records:
            if record["feasible"]:
                continue
            key = str(record["error"]).split(":")[0]
            reasons[key] = reasons.get(key, 0) + 1
        for key in sorted(reasons):
            lines.append(f"    {reasons[key]:4d} x {key}")
    return "\n".join(lines)


# -- validate --------------------------------------------------------------------

def render_validation(report: Dict[str, object]) -> str:
    """Human table of the analytic-vs-DES validation grid."""
    lines = [
        "capacity validation: analytic model vs the serve DES",
        f"  gate       : |error| <= {report['tolerance']:.0%} on "
        + ", ".join(report["gated_metrics"]),
        f"  {'point':<16} {'mean lat':>9} {'thruput':>9} "
        f"{'p95':>9} {'energy':>9}   gate",
    ]
    for row in report["points"]:
        error = row["error"]
        lines.append(
            f"  {row['name']:<16} "
            f"{_pct(error['mean_latency_ms']):>9} "
            f"{_pct(error['throughput_rps']):>9} "
            f"{_pct(error['latency_p95_ms']):>9} "
            f"{_pct(error['energy_per_request_uj']):>9}   "
            f"{'ok' if row['passed'] else 'BREACH'}")
    worst = report["worst_error"]
    timing = report["timing"]
    lines.append(f"  worst      : latency {worst['mean_latency_ms']:.1%}, "
                 f"throughput {worst['throughput_rps']:.1%}")
    lines.append(f"  wall       : analytic {timing['model_wall_s']*1e3:.1f} "
                 f"ms vs DES {timing['des_wall_s']*1e3:.1f} ms "
                 f"({timing['speedup']:.1f}x)")
    lines.append(f"  verdict    : "
                 f"{'PASS' if report['passed'] else 'FAIL'}")
    return "\n".join(lines)


# -- sweep -----------------------------------------------------------------------

def render_sweep(report: Dict[str, object]) -> str:
    """Human table of an analytic arrival-rate sweep."""
    lines = [
        f"capacity sweep: {report['nodes']} nodes, "
        f"max batch {report['max_batch']}"
        + (f", power fraction {report['power_fraction']}"
           if report.get("power_fraction") is not None else ""),
        f"  {'rate':>6} {'util':>6} {'batch':>6} {'mean':>9} {'p50':>9} "
        f"{'p95':>9} {'thruput':>9} {'energy':>9}",
    ]
    for row in report["points"]:
        if not row["stable"]:
            lines.append(f"  {row['arrival_rate']:>6.0f} "
                         "-- saturated --")
            continue
        lines.append(
            f"  {row['arrival_rate']:>6.0f} {row['utilization']:>6.2f} "
            f"{row['mean_batch']:>6.2f} "
            f"{row['mean_latency_ms']:>7.2f}ms {row['latency_p50_ms']:>7.2f}ms "
            f"{row['latency_p95_ms']:>7.2f}ms "
            f"{row['throughput_rps']:>9.1f} "
            f"{row['energy_per_request_uj']:>7.2f}uJ")
    knee = report.get("saturation_rate")
    if knee is not None:
        lines.append(f"  saturates between {knee[0]:.0f} and "
                     f"{knee[1]:.0f} rps")
    lines.append(f"  wall       : {report['wall_ms']:.1f} ms analytic for "
                 f"{len(report['points'])} operating points")
    return "\n".join(lines)
