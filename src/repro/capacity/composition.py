"""The fleet-composition search space: archetype mixes + routing.

A *composition* is a count vector over node archetypes — how many
nodes of each :class:`~repro.serve.archetype.NodeArchetype` the fleet
provisions — plus a per-kernel routing table steering each kernel of
the arrival mix to one archetype.  The space enumerates every count
vector inside the node bound whose provisioned power fits the fleet
budget; routing is derived (not enumerated): each kernel goes to the
composition archetype with the best fast-tier energy-delay product,
the classic single-number compromise between serving it fast and
serving it cheap.

Provisioned power is the static worst case an operator must budget
for: every node lit at its envelope's fast-tier budget (the envelope
solver packs host + accelerator draw to exactly that budget, so a
node's peak draw *is* its ``fast_budget_mw``).

Configurations canonicalize to plain JSON dicts and hash with the same
content-hash idiom as :mod:`repro.dse.space`, so planner records,
caches and reruns agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dse.space import config_hash
from repro.errors import ConfigurationError
from repro.serve.archetype import NodeArchetype
from repro.serve.fleet import ServiceBook
from repro.units import mw

#: The default archetype catalog the planner searches over: the
#: reference L476 fleet node, the low-power Apollo host at full and
#: half cluster width, the EFM32 energy-lean option, and a throttled
#: 8 mW L476 envelope.  All verified buildable against the calibrated
#: power envelopes.
DEFAULT_CATALOG: Tuple[NodeArchetype, ...] = (
    NodeArchetype(name="l476-x4"),
    NodeArchetype(name="apollo-x4", mcu="Ambiq Apollo"),
    NodeArchetype(name="apollo-x2", mcu="Ambiq Apollo", cluster_size=2),
    NodeArchetype(name="efm32-x4", mcu="EFM32"),
    NodeArchetype(name="l476-x4-lean", fast_budget_mw=8.0,
                  eco_budget_mw=5.0),
)


def provisioned_node_w(archetype: NodeArchetype) -> float:
    """Peak provisioned draw of one node: its fast-tier envelope."""
    return mw(archetype.fast_budget_mw)


def routing_for(books: Dict[str, ServiceBook], kernels: Tuple[str, ...],
                ) -> Dict[str, str]:
    """Route each kernel to the archetype with the best fast-tier EDP.

    Energy-delay product per warm request — ties break on archetype
    name so the table is deterministic for any dict order of *books*.
    """
    if not books:
        raise ConfigurationError("routing needs at least one archetype")
    table: Dict[str, str] = {}
    for kernel in kernels:
        best: Optional[Tuple[float, str]] = None
        for name in sorted(books):
            profile = books[name].profile(kernel, "fast")
            warm_s = profile.unit_io_time + profile.unit_compute_time
            warm_j = profile.unit_io_energy + profile.unit_compute_energy
            edp = warm_s * warm_j
            if best is None or (edp, name) < best:
                best = (edp, name)
        table[kernel] = best[1]
    return table


@dataclass(frozen=True)
class Composition:
    """One candidate fleet: named archetype counts plus routing."""

    #: ``(archetype, count)`` with count >= 1, in catalog order.
    groups: Tuple[Tuple[NodeArchetype, int], ...]
    #: kernel -> archetype name (every name present in ``groups``).
    routing: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("a composition needs >= 1 group")
        names = [a.name for a, _ in self.groups]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate archetypes: {names}")
        for archetype, count in self.groups:
            if count < 1:
                raise ConfigurationError(
                    f"{archetype.name}: count must be >= 1, got {count}")
        for kernel, target in self.routing.items():
            if target not in names:
                raise ConfigurationError(
                    f"kernel {kernel!r} routed to unknown archetype "
                    f"{target!r}; composition has {names}")

    @property
    def nodes(self) -> int:
        """Total node count across the groups."""
        return sum(count for _, count in self.groups)

    @property
    def provisioned_w(self) -> float:
        """Static worst-case fleet draw (every node at its envelope)."""
        return sum(count * provisioned_node_w(archetype)
                   for archetype, count in self.groups)

    def config(self) -> Dict[str, object]:
        """The canonical JSON configuration (hash input)."""
        return {
            "archetypes": {archetype.name: count
                           for archetype, count in self.groups},
            "routing": dict(sorted(self.routing.items())),
        }

    def config_hash(self) -> str:
        """Stable content hash of :meth:`config`."""
        return config_hash(self.config())

    def label(self) -> str:
        """Compact human-readable form, e.g. ``2*l476-x4 + 1*efm32-x4``."""
        return " + ".join(f"{count}*{archetype.name}"
                          for archetype, count in self.groups)


@dataclass(frozen=True)
class CompositionSpace:
    """Every archetype mix inside the node and power bounds."""

    catalog: Tuple[NodeArchetype, ...] = DEFAULT_CATALOG
    #: Fleet size bounds (total nodes across archetypes).
    min_nodes: int = 1
    max_nodes: int = 6
    #: Per-archetype count ceiling (keeps the enumeration polynomial).
    max_per_archetype: int = 4
    #: Fleet power budget in watts; None = unbounded.
    power_budget_w: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.catalog:
            raise ConfigurationError("the catalog cannot be empty")
        names = [a.name for a in self.catalog]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate archetype names in catalog: {names}")
        if self.min_nodes < 1:
            raise ConfigurationError(
                f"min_nodes must be >= 1, got {self.min_nodes}")
        if self.max_nodes < self.min_nodes:
            raise ConfigurationError(
                f"max_nodes {self.max_nodes} < min_nodes {self.min_nodes}")
        if self.max_per_archetype < 1:
            raise ConfigurationError(
                f"max_per_archetype must be >= 1, "
                f"got {self.max_per_archetype}")
        if self.power_budget_w is not None and self.power_budget_w <= 0:
            raise ConfigurationError(
                f"power budget must be > 0, got {self.power_budget_w}")

    def count_vectors(self) -> Iterator[Tuple[int, ...]]:
        """All per-archetype count vectors inside the node bounds."""
        bounds = [min(self.max_per_archetype, self.max_nodes)] \
            * len(self.catalog)

        def rec(index: int, remaining: int,
                prefix: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
            if index == len(bounds):
                if sum(prefix) >= self.min_nodes:
                    yield prefix
                return
            for count in range(0, min(bounds[index], remaining) + 1):
                yield from rec(index + 1, remaining - count,
                               prefix + (count,))

        yield from rec(0, self.max_nodes, ())

    def compositions(self) -> Iterator[Composition]:
        """Every in-budget composition, routing left to the planner."""
        for vector in self.count_vectors():
            groups = tuple((archetype, count)
                           for archetype, count in zip(self.catalog, vector)
                           if count > 0)
            if not groups:
                continue
            composition = Composition(groups=groups)
            if self.power_budget_w is not None \
                    and composition.provisioned_w \
                    > self.power_budget_w * (1.0 + 1e-9):
                continue
            yield composition

    def to_dict(self) -> Dict[str, object]:
        """JSON summary of the space (for planner reports)."""
        return {
            "catalog": [archetype.to_dict() for archetype in self.catalog],
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "max_per_archetype": self.max_per_archetype,
            "power_budget_mw": (self.power_budget_w * 1e3
                                if self.power_budget_w is not None
                                else None),
        }


def routed_compositions(space: CompositionSpace,
                        books: Dict[str, ServiceBook],
                        kernels: Tuple[str, ...]) -> List[Composition]:
    """The space's compositions with their derived routing tables.

    *books* maps archetype name to built service book; compositions
    containing an archetype without a book (e.g. an infeasible power
    envelope) are returned unrouted so the planner can record them as
    infeasible rather than silently dropping them.
    """
    out: List[Composition] = []
    for composition in space.compositions():
        present = {a.name: books[a.name] for a, _ in composition.groups
                   if a.name in books}
        if len(present) == len(composition.groups):
            routing = routing_for(present, kernels)
            composition = Composition(groups=composition.groups,
                                      routing=routing)
        out.append(composition)
    return out
