"""``repro.capacity`` — analytic queueing fast path + fleet planner.

The serving stack of :mod:`repro.serve` runs one discrete event at a
time; sweeping million-request scenarios that way is intractable.  This
package is the closed-form fast path cross-validated against the DES —
the same signature move ``pulp.timing`` plays against ``pulp.cluster``:

* :mod:`repro.capacity.queueing` — Erlang B/C and the M/M/k laws
  (mean wait, waiting-time distribution, percentiles);
* :mod:`repro.capacity.corrections` — serving-reality corrections:
  batch coalescing, the eco power-cap tier, fault/retry overheads;
* :mod:`repro.capacity.model` — :class:`CapacityModel` predicting
  throughput, utilization, p50/p95 latency and energy/request for one
  node class, in microseconds instead of a DES run;
* :mod:`repro.capacity.composition` — :class:`CompositionSpace` over
  :class:`~repro.serve.archetype.NodeArchetype` mixes with per-kernel
  routing;
* :mod:`repro.capacity.planner` — the budget-driven search (analytic
  inner loop, DES re-verification of the Pareto frontier);
* :mod:`repro.capacity.validation` — the pinned analytic-vs-DES grid
  behind ``python -m repro capacity validate`` (CI-gated tolerance).

Everything is seeded and deterministic; ``python -m repro capacity``
exposes ``plan``, ``validate`` and ``sweep``.
"""

from repro.capacity.composition import (
    DEFAULT_CATALOG,
    Composition,
    CompositionSpace,
    routed_compositions,
    routing_for,
)
from repro.capacity.corrections import (
    FaultEffect,
    KernelShape,
    PowerCapEffect,
    blend_shapes,
    fault_effect,
    kernel_shapes,
    power_cap_effect,
)
from repro.capacity.model import (
    CapacityInputs,
    CapacityModel,
    CapacityPrediction,
)
from repro.capacity.planner import (
    MODEL_VERSION,
    FleetPlanner,
    PlanResult,
    PlannerStats,
)
from repro.capacity.queueing import (
    MMkQueue,
    allen_cunneen_factor,
    batch_drain_factor,
    erlang_b,
    erlang_c,
)
from repro.capacity.validation import (
    TOLERANCE,
    VALIDATION_GRID,
    GridPoint,
    run_validation,
)

__all__ = [
    "CapacityInputs",
    "CapacityModel",
    "CapacityPrediction",
    "Composition",
    "CompositionSpace",
    "DEFAULT_CATALOG",
    "FaultEffect",
    "FleetPlanner",
    "GridPoint",
    "KernelShape",
    "MMkQueue",
    "MODEL_VERSION",
    "PlanResult",
    "PlannerStats",
    "PowerCapEffect",
    "TOLERANCE",
    "VALIDATION_GRID",
    "allen_cunneen_factor",
    "batch_drain_factor",
    "blend_shapes",
    "erlang_b",
    "erlang_c",
    "fault_effect",
    "kernel_shapes",
    "power_cap_effect",
    "routed_compositions",
    "routing_for",
    "run_validation",
]
