"""Closed-form M/M/k queueing: Erlang B/C and waiting-time laws.

The analytic fast path models each node class of the serving fleet as
an M/M/k queue — Poisson arrivals at rate ``lambda``, ``k`` parallel
servers, exponential service at rate ``mu`` each — and reads its
steady-state observables off the classical closed forms:

* **Erlang B** ``B(k, a)`` — blocking probability of the loss system,
  computed with the numerically stable recurrence
  ``B(0) = 1``, ``B(j) = a B(j-1) / (j + a B(j-1))`` (no factorials,
  no overflow at large ``k``);
* **Erlang C** ``C(k, a) = k B / (k - a (1 - B))`` — probability an
  arrival waits (all servers busy);
* **mean wait** ``Wq = C / (k mu - lambda)`` and Little's law
  ``Lq = lambda Wq``;
* the **waiting-time law**: the delay is 0 with probability ``1 - C``
  and exponential with rate ``theta = k mu - lambda`` otherwise, so
  ``P(D > t) = C exp(-theta t)`` — which gives closed-form wait
  percentiles and, convolved with the service mixture, latency
  percentiles (:mod:`repro.capacity.model`).

Deterministic per-kernel service times make the real system M/G/k; the
model corrects the mean wait with the Allen–Cunneen scaling
``(C2a + C2s) / 2`` (:func:`allen_cunneen_factor`), the standard
two-moment approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def erlang_b(servers: int, offered: float) -> float:
    """Erlang-B blocking probability ``B(servers, offered)``.

    *offered* is the offered load ``a = lambda / mu`` in erlangs.
    """
    if servers < 1:
        raise ConfigurationError(f"need >= 1 servers, got {servers}")
    if offered < 0:
        raise ConfigurationError(f"negative offered load {offered}")
    if offered == 0.0:
        return 0.0
    blocking = 1.0
    for j in range(1, servers + 1):
        blocking = offered * blocking / (j + offered * blocking)
    return blocking


def erlang_c(servers: int, offered: float) -> float:
    """Erlang-C waiting probability ``C(servers, offered)``.

    Defined for stable systems (``offered < servers``); saturated or
    overloaded systems wait with probability 1.
    """
    if offered >= servers:
        return 1.0
    blocking = erlang_b(servers, offered)
    return servers * blocking / (servers - offered * (1.0 - blocking))


def allen_cunneen_factor(arrival_scv: float, service_scv: float) -> float:
    """The two-moment G/G/k mean-wait scaling ``(C2a + C2s) / 2``."""
    if arrival_scv < 0 or service_scv < 0:
        raise ConfigurationError("squared coefficients of variation "
                                 "cannot be negative")
    return (arrival_scv + service_scv) / 2.0


#: Calibrated constants of :func:`batch_drain_factor` (see docstring).
DRAIN_COEF = 1.3
DRAIN_RHO_EXP = 0.4
DRAIN_SERVER_EXP = 0.35


def batch_drain_factor(servers: int, utilization: float) -> float:
    """Residual mean-wait scaling for the batching, near-deterministic fleet.

    Two-moment scalings (Allen–Cunneen) assume head-of-line service of
    single requests.  The DES fleet drains differently: a freeing node
    absorbs every queued same-kernel request in one batch, and the
    per-kernel service times are deterministic, so both the delay
    probability and the conditional delay sit well below the M/M/k (and
    even the M/D/k) laws — the gap widens with more servers and deeper
    queues.  This factor is the calibrated remainder,

    ``min(1, 1.3 (1 - rho)^0.4 / k^0.35)``,

    fitted once against seeded :mod:`repro.serve` runs across
    ``k in {2, 4, 6}`` and ``rho in [0.34, 0.97]`` (mean-wait ratios
    within ~25 % everywhere, which keeps the gated mean-latency error
    under 10 % since waiting is a minor latency component below
    saturation).  The pinned grid behind ``python -m repro capacity
    validate`` re-checks the calibration on every CI run.
    """
    if servers < 1:
        raise ConfigurationError(f"need >= 1 servers, got {servers}")
    if utilization >= 1.0:
        return 1.0
    rho = max(utilization, 0.0)
    return min(1.0, DRAIN_COEF * (1.0 - rho) ** DRAIN_RHO_EXP
               / servers ** DRAIN_SERVER_EXP)


@dataclass(frozen=True)
class MMkQueue:
    """One M/M/k station: Poisson(lambda) arrivals, k Exp(mu) servers."""

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ConfigurationError(
                f"negative arrival rate {self.arrival_rate}")
        if self.service_rate <= 0:
            raise ConfigurationError(
                f"service rate must be positive, got {self.service_rate}")
        if self.servers < 1:
            raise ConfigurationError(f"need >= 1 servers, got {self.servers}")

    @property
    def offered_load(self) -> float:
        """Offered load ``a = lambda / mu`` (erlangs)."""
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        """Per-server utilization ``rho = a / k``."""
        return self.offered_load / self.servers

    @property
    def stable(self) -> bool:
        """Whether the queue has a steady state (``rho < 1``)."""
        return self.utilization < 1.0

    @property
    def wait_probability(self) -> float:
        """Erlang-C probability an arrival finds every server busy."""
        return erlang_c(self.servers, self.offered_load)

    @property
    def delay_rate(self) -> float:
        """Conditional-delay rate ``theta = k mu - lambda``."""
        return self.servers * self.service_rate - self.arrival_rate

    @property
    def mean_wait(self) -> float:
        """Mean queueing delay ``Wq = C / theta`` (infinite if unstable)."""
        if not self.stable:
            return math.inf
        return self.wait_probability / self.delay_rate

    @property
    def mean_queue_length(self) -> float:
        """``Lq = lambda Wq`` by Little's law."""
        wq = self.mean_wait
        return self.arrival_rate * wq if math.isfinite(wq) else math.inf

    @property
    def mean_sojourn(self) -> float:
        """Mean time in system ``W = Wq + 1/mu``."""
        return self.mean_wait + 1.0 / self.service_rate

    def wait_survival(self, t: float) -> float:
        """``P(D > t)`` of the queueing delay (``C e^{-theta t}``)."""
        if t < 0:
            return 1.0
        if not self.stable:
            return 1.0
        return self.wait_probability * math.exp(-self.delay_rate * t)

    def wait_percentile(self, q: float) -> float:
        """The q-quantile (q in [0, 1)) of the queueing delay, exactly."""
        if not 0.0 <= q < 1.0:
            raise ConfigurationError(f"quantile out of range: {q}")
        if not self.stable:
            return math.inf
        c = self.wait_probability
        if q <= 1.0 - c:
            return 0.0
        return -math.log((1.0 - q) / c) / self.delay_rate
