"""Event tracing for discrete-event simulations.

A :class:`TraceRecorder` collects timestamped events (per actor) during
a simulation; :func:`render_timeline` draws a compact per-actor lane
view.  The cluster uses it optionally — tracing every TCDM access of a
full kernel would drown the signal, so recorders support windowing and
per-kind filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    actor: str
    kind: str
    detail: str = ""


class TraceRecorder:
    """Collects events, optionally filtered and windowed."""

    def __init__(self, kinds: Optional[Iterable[str]] = None,
                 window: Optional[Tuple[float, float]] = None,
                 capacity: int = 100_000):
        if capacity < 1:
            raise SimulationError(f"invalid trace capacity {capacity}")
        self.kinds: Optional[Set[str]] = set(kinds) if kinds else None
        self.window = window
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, time: float, actor: str, kind: str,
               detail: str = "") -> None:
        """Record one event (subject to filter/window/capacity)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.window is not None:
            start, end = self.window
            if not start <= time <= end:
                return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, actor, kind, detail))

    def by_actor(self) -> Dict[str, List[TraceEvent]]:
        """Events grouped per actor, time-ordered."""
        grouped: Dict[str, List[TraceEvent]] = {}
        for event in sorted(self.events, key=lambda e: e.time):
            grouped.setdefault(event.actor, []).append(event)
        return grouped

    def count(self, kind: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for event in self.events if event.kind == kind)


_KIND_GLYPHS = {
    "compute": "=",
    "memory": "m",
    "stall": "x",
    "barrier": "|",
    "dma": "d",
}


def render_timeline(recorder: TraceRecorder, width: int = 72) -> str:
    """Per-actor lanes with one glyph per event bucket."""
    if not recorder.events:
        return "(no events recorded)"
    if width < 8:
        raise SimulationError(f"timeline width too small: {width}")
    times = [event.time for event in recorder.events]
    start, end = min(times), max(times)
    span = max(end - start, 1e-12)
    lanes = []
    grouped = recorder.by_actor()
    label_width = max(len(actor) for actor in grouped)
    for actor, events in sorted(grouped.items()):
        lane = [" "] * width
        for event in events:
            column = min(width - 1,
                         int((event.time - start) / span * (width - 1)))
            lane[column] = _KIND_GLYPHS.get(event.kind, "*")
        lanes.append(f"{actor:<{label_width}} |{''.join(lane)}|")
    footer = (f"{'':<{label_width}}  {start:.0f} .. {end:.0f} cycles, "
              f"{len(recorder.events)} events"
              + (f" ({recorder.dropped} dropped)" if recorder.dropped else ""))
    lanes.append(footer)
    return "\n".join(lanes)


def trace_cluster_run(streams, banks: int = 8,
                      kinds: Optional[Iterable[str]] = None
                      ) -> Tuple["object", TraceRecorder]:
    """Run op streams on an instrumented cluster, recording events.

    A convenience wrapper: builds a fresh DES cluster whose cores report
    compute bursts, granted accesses, stalls and barrier crossings into
    a recorder. Returns ``(ClusterRun, TraceRecorder)``.
    """
    from repro.pulp.core import ComputeOp, MemOp, Or10nCore
    from repro.pulp.synchronizer import HardwareSynchronizer
    from repro.pulp.tcdm import Tcdm
    from repro.sim.engine import Simulator, Timeout

    recorder = TraceRecorder(kinds=kinds)
    simulator = Simulator()
    tcdm = Tcdm(simulator, banks=banks)
    synchronizer = HardwareSynchronizer(simulator, participants=len(streams))
    cores = [Or10nCore(simulator, tcdm, index)
             for index in range(len(streams))]

    def traced(core, stream):
        actor = f"core{core.core_id}"
        for op in stream:
            if isinstance(op, ComputeOp):
                recorder.record(simulator.now, actor, "compute",
                                f"{op.cycles:.0f}cy")
                if op.cycles > 0:
                    yield Timeout(op.cycles)
                core.stats.compute_cycles += op.cycles
            elif isinstance(op, MemOp):
                resource = tcdm.bank_resource(op.address)
                requested = simulator.now
                yield resource.request()
                waited = simulator.now - requested
                if waited > 0:
                    recorder.record(requested, actor, "stall",
                                    f"{waited:.0f}cy")
                core.stats.stall_cycles += waited
                recorder.record(simulator.now, actor, "memory",
                                f"@{op.address:#x}")
                yield Timeout(1.0)
                resource.release()
                core.stats.memory_cycles += 1.0
                core.stats.accesses += 1
        recorder.record(simulator.now, actor, "barrier")
        before = simulator.now
        yield from synchronizer.barrier()
        core.stats.barrier_cycles += simulator.now - before

    for core, stream in zip(cores, streams):
        simulator.add_process(traced(core, stream), name=f"core{core.core_id}")
    wall = simulator.run_all()

    from repro.pulp.cluster import ClusterRun
    from repro.pulp.dma import DmaStats
    run = ClusterRun(
        wall_cycles=wall,
        core_stats=[core.stats for core in cores],
        dma_stats=DmaStats(),
        conflict_rate=tcdm.conflict_rate(),
        barrier_count=synchronizer.barriers_completed,
    )
    return run, recorder
