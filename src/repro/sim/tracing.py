"""Event tracing for discrete-event simulations.

A :class:`TraceRecorder` collects timestamped events (per actor) during
a simulation; :func:`render_timeline` draws a compact per-actor lane
view.  The cluster uses it optionally — tracing every TCDM access of a
full kernel would drown the signal, so recorders support windowing and
per-kind filters.

Recorders are also the feed for the unified telemetry layer: route a
filled recorder into a :class:`~repro.obs.telemetry.Telemetry` hub with
:func:`repro.obs.bridge.route_recorder` to get per-core / per-bank /
per-channel lanes in the Chrome trace export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Events may carry a *duration* (compute bursts, granted accesses,
    DMA transfers); zero-duration events are instants (barriers).
    """

    time: float
    actor: str
    kind: str
    detail: str = ""
    duration: float = 0.0


class TraceRecorder:
    """Collects events, optionally filtered and windowed."""

    def __init__(self, kinds: Optional[Iterable[str]] = None,
                 window: Optional[Tuple[float, float]] = None,
                 capacity: int = 100_000):
        if capacity < 1:
            raise SimulationError(f"invalid trace capacity {capacity}")
        if window is not None and window[1] < window[0]:
            raise SimulationError(
                f"negative trace window: {window[0]} .. {window[1]}")
        self.kinds: Optional[Set[str]] = set(kinds) if kinds else None
        self.window = window
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, time: float, actor: str, kind: str,
               detail: str = "", duration: float = 0.0) -> None:
        """Record one event (subject to filter/window/capacity)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.window is not None:
            start, end = self.window
            if not start <= time <= end:
                return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, actor, kind, detail, duration))

    @property
    def truncated(self) -> bool:
        """Whether the recorder ran out of capacity and dropped events."""
        return self.dropped > 0

    def by_actor(self) -> Dict[str, List[TraceEvent]]:
        """Events grouped per actor, time-ordered."""
        grouped: Dict[str, List[TraceEvent]] = {}
        for event in sorted(self.events, key=lambda e: e.time):
            grouped.setdefault(event.actor, []).append(event)
        return grouped

    def count(self, kind: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for event in self.events if event.kind == kind)


_KIND_GLYPHS = {
    "compute": "=",
    "memory": "m",
    "stall": "x",
    "barrier": "|",
    "dma": "d",
    "bank": "b",
}


def render_timeline(recorder: TraceRecorder, width: int = 72) -> str:
    """Per-actor lanes with one glyph per event bucket."""
    if not recorder.events:
        if recorder.truncated:
            return (f"(no events retained; {recorder.dropped} beyond "
                    f"capacity {recorder.capacity} were dropped)")
        return "(no events recorded)"
    if width < 8:
        raise SimulationError(f"timeline width too small: {width}")
    times = [event.time for event in recorder.events]
    start, end = min(times), max(times)
    span = max(end - start, 1e-12)
    lanes = []
    grouped = recorder.by_actor()
    label_width = max(len(actor) for actor in grouped)
    for actor, events in sorted(grouped.items()):
        lane = [" "] * width
        for event in events:
            column = min(width - 1,
                         int((event.time - start) / span * (width - 1)))
            lane[column] = _KIND_GLYPHS.get(event.kind, "*")
        lanes.append(f"{actor:<{label_width}} |{''.join(lane)}|")
    footer = (f"{'':<{label_width}}  {start:.0f} .. {end:.0f} cycles, "
              f"{len(recorder.events)} events"
              + (f" ({recorder.dropped} dropped)" if recorder.dropped else ""))
    lanes.append(footer)
    if recorder.truncated:
        lanes.append(f"!! truncated: {recorder.dropped} events beyond "
                     f"capacity {recorder.capacity} were dropped")
    return "\n".join(lanes)


def trace_cluster_run(streams, banks: int = 8,
                      kinds: Optional[Iterable[str]] = None
                      ) -> Tuple["object", TraceRecorder]:
    """Run op streams on an instrumented cluster, recording events.

    A convenience wrapper over :meth:`repro.pulp.cluster.Cluster.run`
    with a fresh recorder attached: cores report compute bursts, granted
    accesses, stalls and barrier crossings (and TCDM banks report
    grants) into the recorder.  Returns ``(ClusterRun, TraceRecorder)``.
    """
    from repro.pulp.cluster import Cluster

    recorder = TraceRecorder(kinds=kinds)
    cluster = Cluster(banks=banks)
    run = cluster.run(streams, recorder=recorder)
    return run, recorder
