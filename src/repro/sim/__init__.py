"""A small generator-based discrete-event simulation engine.

Used by the cycle-level PULP cluster model (:mod:`repro.pulp`): cores,
DMA channels and the hardware synchronizer are processes; TCDM banks are
single-server resources; time is measured in clock cycles (floats).

The engine is deliberately minimal — processes are Python generators
that ``yield`` commands:

* ``Timeout(delay)`` — resume after *delay* time units;
* an :class:`Event` — resume when it is triggered;
* :class:`AnyOf` / :class:`AllOf` — resume when the first / every
  member event (or process) fires;
* ``Resource.request()`` — resume when granted (release explicitly).

Processes can also be interrupted (:meth:`Process.interrupt`), which
throws :class:`~repro.errors.Interrupt` into the generator and
invalidates the wait it was blocked on.
"""

from repro.sim.engine import AllOf, AnyOf, Event, Process, Simulator, Timeout
from repro.sim.resources import Resource

__all__ = ["Simulator", "Process", "Event", "Timeout", "AnyOf", "AllOf",
           "Resource"]
