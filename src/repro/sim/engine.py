"""Core of the discrete-event engine: simulator, processes, events.

Beyond the original one-shot :class:`Event`, the engine provides the
composition primitives a scheduler loop needs:

* :class:`AnyOf` — an event that fires when the *first* of its members
  fires (wait-for-next-completion-or-arrival);
* :class:`AllOf` — an event that fires when *every* member has fired
  (barrier / join);
* :meth:`Process.interrupt` — throw :class:`~repro.errors.Interrupt`
  into a waiting process, invalidating whatever it was waiting on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from repro.errors import DeadlockError, Interrupt, SimulationError


@dataclass(frozen=True)
class Timeout:
    """Yielded by a process to advance its local time."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


class Event:
    """A one-shot event processes can wait on.

    Triggering wakes every waiter at the current simulation time and
    delivers ``value`` as the result of their ``yield``.  Non-process
    observers (the :class:`AnyOf`/:class:`AllOf` combinators) can attach
    a callback with :meth:`subscribe`.
    """

    def __init__(self, simulator: "Simulator", name: str = ""):
        self._simulator = simulator
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Tuple["Process", int]] = []
        self._subscribers: List[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process, epoch in waiters:
            self._simulator.schedule(0.0, process._resume_if, epoch, value)
        subscribers, self._subscribers = self._subscribers, []
        for callback in subscribers:
            callback(value)

    def add_waiter(self, process: "Process") -> None:
        """Register a process; wakes immediately if already triggered."""
        if self.triggered:
            self._simulator.schedule(0.0, process._resume_if,
                                     process._epoch, self.value)
        else:
            self._waiters.append((process, process._epoch))

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Invoke *callback(value)* on trigger (immediately if fired)."""
        if self.triggered:
            callback(self.value)
        else:
            self._subscribers.append(callback)


def _member_event(member: Any) -> Event:
    """The waitable event behind a combinator member."""
    if isinstance(member, Process):
        return member.completion
    if isinstance(member, Event):
        return member
    raise SimulationError(
        f"combinator member must be an Event or Process, got {member!r}")


class AnyOf(Event):
    """Fires when the first member fires; value is ``(member, value)``.

    Members may be :class:`Event` or :class:`Process` instances (a
    process stands for its completion).  Later member triggers are
    ignored — the combinator is one-shot like any event.
    """

    def __init__(self, simulator: "Simulator", members: Sequence[Any],
                 name: str = "any-of"):
        super().__init__(simulator, name)
        if not members:
            raise SimulationError("AnyOf needs at least one member")
        self.members = tuple(members)
        for member in self.members:
            _member_event(member).subscribe(
                lambda value, member=member: self._on_member(member, value))

    def _on_member(self, member: Any, value: Any) -> None:
        if not self.triggered:
            self.trigger((member, value))


class AllOf(Event):
    """Fires when every member has fired; value lists member values in
    member order."""

    def __init__(self, simulator: "Simulator", members: Sequence[Any],
                 name: str = "all-of"):
        super().__init__(simulator, name)
        self.members = tuple(members)
        self._values: List[Any] = [None] * len(self.members)
        self._remaining = len(self.members)
        if self._remaining == 0:
            self.trigger([])
            return
        for index, member in enumerate(self.members):
            _member_event(member).subscribe(
                lambda value, index=index: self._on_member(index, value))

    def _on_member(self, index: int, value: Any) -> None:
        self._values[index] = value
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.trigger(list(self._values))


class Process:
    """A running generator inside the simulator.

    Every suspension (a ``yield``) opens a *wait epoch*; resuming or
    interrupting closes it.  Stale wakeups from an earlier epoch — e.g.
    the timeout a process was interrupted out of — are silently dropped,
    so interruption never double-resumes a process.
    """

    def __init__(self, simulator: "Simulator",
                 generator: Generator, name: str = ""):
        self._simulator = simulator
        self._generator = generator
        self.name = name
        self.finished = False
        self.interrupted = False
        self.result: Any = None
        self.completion = Event(simulator, name=f"{name}.done")
        self._epoch = 0

    def resume(self, value: Any = None) -> None:
        """Advance the generator by one command (engine-internal)."""
        self._step(self._generator.send, value)

    def _resume_if(self, epoch: int, value: Any = None) -> None:
        """Resume only if the wait that scheduled this is still current."""
        if epoch != self._epoch:
            return
        self.resume(value)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        Delivered at the current simulation time; whatever the process
        was waiting on (timeout, event, another process) is invalidated.
        A no-op on finished processes.  If the generator does not catch
        the interrupt, the process terminates with ``interrupted`` set
        and a ``None`` result.
        """
        if self.finished:
            return
        self._simulator.schedule(0.0, self._deliver_interrupt, self._epoch,
                                 cause)

    def _deliver_interrupt(self, epoch: int, cause: Any) -> None:
        if self.finished or epoch != self._epoch:
            return  # resumed (or finished) before delivery: stale
        self._step(self._generator.throw, Interrupt(cause))

    def _step(self, advance: Callable, argument: Any) -> None:
        if self.finished:
            return
        self._epoch += 1
        try:
            command = advance(argument)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.completion.trigger(stop.value)
            return
        except Interrupt:
            # The generator let the interrupt escape: the process dies.
            self.finished = True
            self.interrupted = True
            self.completion.trigger(None)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self._simulator.schedule(command.delay, self._resume_if,
                                     self._epoch, None)
        elif isinstance(command, Event):
            command.add_waiter(self)
        elif isinstance(command, Process):
            command.completion.add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command {command!r}")


class Simulator:
    """The event queue and clock."""

    def __init__(self):
        self._now = 0.0
        self._queue: List = []
        self._sequence = 0
        self._processes: List[Process] = []
        self._cancelled: set = set()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> int:
        """Run ``callback(*args)`` after *delay* time units.

        Returns a handle accepted by :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(self._queue, (self._now + delay, self._sequence,
                                     callback, args))
        handle = self._sequence
        self._sequence += 1
        return handle

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled callback before it fires.

        A cancelled entry is discarded without running and — critically —
        without advancing the clock, so speculative timers (health
        probes, chaos events past the drain) leave the final simulation
        time untouched.  Cancelling an already-fired or unknown handle
        is a no-op.
        """
        self._cancelled.add(handle)

    def event(self, name: str = "") -> Event:
        """Create a fresh event."""
        return Event(self, name)

    def any_of(self, members: Sequence[Any], name: str = "any-of") -> AnyOf:
        """An event firing when the first of *members* fires."""
        return AnyOf(self, members, name)

    def all_of(self, members: Sequence[Any], name: str = "all-of") -> AllOf:
        """An event firing when all of *members* have fired."""
        return AllOf(self, members, name)

    def timeout_event(self, delay: float, value: Any = None,
                      name: str = "timeout") -> Event:
        """An event that triggers *delay* time units from now."""
        event = self.event(name)
        self.schedule(delay, event.trigger, value)
        return event

    def add_process(self, generator: Generator, name: str = "") -> Process:
        """Register and start a process at the current time."""
        process = Process(self, generator, name or f"process-{len(self._processes)}")
        self._processes.append(process)
        self.schedule(0.0, process.resume, None)
        return process

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (or stop at time *until*); returns the
        final simulation time."""
        while self._queue:
            time, _seq, callback, args = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            if _seq in self._cancelled:
                # Dropped without running and without touching the clock.
                self._cancelled.discard(_seq)
                continue
            self._now = time
            callback(*args)
        return self._now

    def run_all(self) -> float:
        """Run to completion and verify every process finished.

        Raises :class:`~repro.errors.DeadlockError` when the queue drains
        while processes are still blocked (a lost wakeup in the model).
        """
        self.run()
        stuck = [p.name for p in self._processes if not p.finished]
        if stuck:
            raise DeadlockError(
                f"simulation drained with blocked processes: {stuck}")
        return self._now
