"""Core of the discrete-event engine: simulator, processes, events."""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.errors import DeadlockError, SimulationError


@dataclass(frozen=True)
class Timeout:
    """Yielded by a process to advance its local time."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


class Event:
    """A one-shot event processes can wait on.

    Triggering wakes every waiter at the current simulation time and
    delivers ``value`` as the result of their ``yield``.
    """

    def __init__(self, simulator: "Simulator", name: str = ""):
        self._simulator = simulator
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._simulator.schedule(0.0, process.resume, value)

    def add_waiter(self, process: "Process") -> None:
        """Register a process; wakes immediately if already triggered."""
        if self.triggered:
            self._simulator.schedule(0.0, process.resume, self.value)
        else:
            self._waiters.append(process)


class Process:
    """A running generator inside the simulator."""

    def __init__(self, simulator: "Simulator",
                 generator: Generator, name: str = ""):
        self._simulator = simulator
        self._generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.completion = Event(simulator, name=f"{name}.done")

    def resume(self, value: Any = None) -> None:
        """Advance the generator by one command (engine-internal)."""
        if self.finished:
            return
        try:
            command = self._generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.completion.trigger(stop.value)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self._simulator.schedule(command.delay, self.resume, None)
        elif isinstance(command, Event):
            command.add_waiter(self)
        elif isinstance(command, Process):
            command.completion.add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command {command!r}")


class Simulator:
    """The event queue and clock."""

    def __init__(self):
        self._now = 0.0
        self._queue: List = []
        self._sequence = 0
        self._processes: List[Process] = []

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after *delay* time units."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(self._queue, (self._now + delay, self._sequence,
                                     callback, args))
        self._sequence += 1

    def event(self, name: str = "") -> Event:
        """Create a fresh event."""
        return Event(self, name)

    def add_process(self, generator: Generator, name: str = "") -> Process:
        """Register and start a process at the current time."""
        process = Process(self, generator, name or f"process-{len(self._processes)}")
        self._processes.append(process)
        self.schedule(0.0, process.resume, None)
        return process

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (or stop at time *until*); returns the
        final simulation time."""
        while self._queue:
            time, _seq, callback, args = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            callback(*args)
        return self._now

    def run_all(self) -> float:
        """Run to completion and verify every process finished.

        Raises :class:`~repro.errors.DeadlockError` when the queue drains
        while processes are still blocked (a lost wakeup in the model).
        """
        self.run()
        stuck = [p.name for p in self._processes if not p.finished]
        if stuck:
            raise DeadlockError(
                f"simulation drained with blocked processes: {stuck}")
        return self._now
