"""Shared resources with FIFO queuing (e.g. TCDM banks, DMA channels)."""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator


class Resource:
    """A capacity-limited resource with FIFO grant order.

    Usage inside a process::

        grant = resource.request()
        yield grant            # blocks until granted
        yield Timeout(1.0)     # hold the resource
        resource.release()

    Statistics (`grants`, `waits`, `wait_time`) feed the contention
    analysis of the cluster model.
    """

    def __init__(self, simulator: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self._simulator = simulator
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Event] = deque()
        self._pending_times: dict = {}
        self.grants = 0
        self.waits = 0
        self.wait_time = 0.0

    @property
    def in_use(self) -> int:
        """Currently held units."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a grant."""
        return len(self._waiting)

    def request(self) -> Event:
        """An event that triggers when the resource is granted."""
        event = self._simulator.event(name=f"{self.name}.grant")
        if self._in_use < self.capacity and not self._waiting:
            self._in_use += 1
            self.grants += 1
            event.trigger(self)
        else:
            self.waits += 1
            self._pending_times[event] = self._simulator.now
            self._waiting.append(event)
        return event

    def release(self) -> None:
        """Return one unit, granting the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._waiting:
            event = self._waiting.popleft()
            self._in_use += 1
            self.grants += 1
            self.wait_time += self._simulator.now - self._pending_times.pop(event)
            event.trigger(self)

    @property
    def average_wait(self) -> float:
        """Mean queueing delay over all grants."""
        if self.grants == 0:
            return 0.0
        return self.wait_time / self.grants
