"""Activity profiles: the chi factors of the paper's power equation.

The FPGA emulation platform in the paper carries a performance monitoring
unit "used to measure active and idle cycles for cores, DMAs and
interconnects"; the measured ratios (chi) weight the per-state power
densities (rho).  Here an :class:`ActivityProfile` holds, for every
modeled SoC component, the fraction of benchmark cycles spent in each of
the three back-annotated states: *idle*, *run* and *dma*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.errors import PowerModelError


class PulpComponent(enum.Enum):
    """Power-relevant components of the PULP3 SoC."""

    CORE0 = "core0"
    CORE1 = "core1"
    CORE2 = "core2"
    CORE3 = "core3"
    ICACHE = "icache"
    TCDM = "tcdm"          #: L1 banks + low-latency interconnect
    DMA = "dma"
    L2 = "l2"
    SOC = "soc"            #: system bus, FLL, peripherals (always on)


CORES: Tuple[PulpComponent, ...] = (
    PulpComponent.CORE0, PulpComponent.CORE1,
    PulpComponent.CORE2, PulpComponent.CORE3,
)


@dataclass(frozen=True)
class StateFractions:
    """Fractions of cycles one component spends idle / running / in DMA
    traffic.  Must sum to 1 (the component is always in some state)."""

    idle: float = 1.0
    run: float = 0.0
    dma: float = 0.0

    def __post_init__(self) -> None:
        total = self.idle + self.run + self.dma
        if min(self.idle, self.run, self.dma) < -1e-9 or abs(total - 1.0) > 1e-6:
            raise PowerModelError(
                f"state fractions must be non-negative and sum to 1, got {self}")


@dataclass(frozen=True)
class ActivityProfile:
    """chi factors for every component (missing components default idle)."""

    name: str
    fractions: Mapping[PulpComponent, StateFractions] = field(default_factory=dict)

    def chi(self, component: PulpComponent) -> StateFractions:
        """State fractions for *component* (idle if unspecified)."""
        return self.fractions.get(component, StateFractions())

    # -- canonical profiles (the paper's power-analysis input vectors) ------

    @staticmethod
    def idle() -> "ActivityProfile":
        """All components idle: the paper's *idle* input vector."""
        return ActivityProfile("idle", {})

    @staticmethod
    def matmul() -> "ActivityProfile":
        """Cores running with moderate memory pressure: the paper's
        *matmul* input vector (the calibration anchor for Figure 3)."""
        return ActivityProfile.compute(cores_active=4, memory_intensity=0.5)

    @staticmethod
    def dma_transfer() -> "ActivityProfile":
        """DMA streaming with high memory pressure and idle cores: the
        paper's *dma* input vector."""
        run = StateFractions(idle=0.0, run=0.0, dma=1.0)
        return ActivityProfile("dma", {
            PulpComponent.DMA: run,
            PulpComponent.TCDM: run,
            PulpComponent.L2: run,
            PulpComponent.SOC: StateFractions(idle=0.0, run=1.0),
        })

    @staticmethod
    def compute(cores_active: int, memory_intensity: float,
                dma_overlap: float = 0.0, name: str = "compute") -> "ActivityProfile":
        """Profile for a compute phase.

        Parameters
        ----------
        cores_active:
            Number of cores executing (1..4); the rest are clock-gated.
        memory_intensity:
            Fraction of cycles with a TCDM access outstanding (from
            :meth:`repro.isa.report.LoweredReport.memory_intensity`,
            aggregated over the active cores and clamped to 1).
        dma_overlap:
            Fraction of cycles the cluster DMA is simultaneously moving
            double-buffered data.
        """
        if not 0 <= cores_active <= len(CORES):
            raise PowerModelError(f"cores_active out of range: {cores_active}")
        memory_intensity = min(max(float(memory_intensity), 0.0), 1.0)
        dma_overlap = min(max(float(dma_overlap), 0.0), 1.0)
        running = StateFractions(idle=0.0, run=1.0)
        fractions: Dict[PulpComponent, StateFractions] = {
            core: running for core in CORES[:cores_active]
        }
        fractions[PulpComponent.ICACHE] = running
        fractions[PulpComponent.TCDM] = StateFractions(
            idle=max(0.0, 1.0 - memory_intensity - dma_overlap),
            run=memory_intensity,
            dma=min(dma_overlap, 1.0 - memory_intensity),
        )
        if dma_overlap > 0:
            fractions[PulpComponent.DMA] = StateFractions(
                idle=1.0 - dma_overlap, run=0.0, dma=dma_overlap)
            fractions[PulpComponent.L2] = StateFractions(
                idle=1.0 - dma_overlap, run=0.0, dma=dma_overlap)
        fractions[PulpComponent.SOC] = running
        return ActivityProfile(name, fractions)
