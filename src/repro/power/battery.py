"""Battery lifetime estimation for duty-cycled nodes.

"IoT nodes are severely constrained in terms of cost and power delivery,
which is usually implemented with small batteries and/or harvesters"
(Section V).  This module turns the library's per-event energies into
deployment lifetimes: a battery, a duty cycle of timed activities, and
an optional harvester income.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

#: Seconds per year (Julian).
SECONDS_PER_YEAR = 31_557_600.0


@dataclass(frozen=True)
class Battery:
    """An energy store.

    ``capacity_mah`` at ``voltage`` with a usable fraction (cutoff and
    self-discharge folded into one derating).
    """

    name: str
    capacity_mah: float
    voltage: float
    usable_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage <= 0:
            raise ConfigurationError(f"invalid battery {self}")
        if not 0 < self.usable_fraction <= 1:
            raise ConfigurationError(
                f"usable fraction must be in (0, 1], got {self.usable_fraction}")

    @property
    def energy_joules(self) -> float:
        """Usable energy in joules."""
        return (self.capacity_mah * 1e-3 * 3600.0 * self.voltage
                * self.usable_fraction)


#: A CR2032 coin cell.
CR2032 = Battery("CR2032", capacity_mah=225, voltage=3.0)
#: Two AA alkaline cells.
AA_PAIR = Battery("2xAA", capacity_mah=2500, voltage=3.0)


@dataclass
class DutyCycle:
    """A periodic schedule of energy-consuming activities.

    Activities are (label, energy_joules, occurrences_per_period); the
    remainder of the period is spent at ``sleep_power``.
    """

    period: float
    sleep_power: float
    activities: List[Tuple[str, float, float]] = field(default_factory=list)
    active_time: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0 or self.sleep_power < 0:
            raise ConfigurationError("invalid duty cycle")

    def add(self, label: str, energy: float, occurrences: float = 1.0,
            duration: float = 0.0) -> "DutyCycle":
        """Add an activity; *duration* reduces the sleeping remainder."""
        if energy < 0 or occurrences < 0 or duration < 0:
            raise ConfigurationError(f"invalid activity {label!r}")
        self.activities.append((label, energy, occurrences))
        self.active_time += duration * occurrences
        if self.active_time > self.period:
            raise ConfigurationError(
                f"activities exceed the period ({self.active_time:.3g} s "
                f"of {self.period:.3g} s)")
        return self

    @property
    def energy_per_period(self) -> float:
        """Joules per period, sleep included."""
        active = sum(energy * occurrences
                     for _, energy, occurrences in self.activities)
        sleep = (self.period - self.active_time) * self.sleep_power
        return active + sleep

    @property
    def average_power(self) -> float:
        """Mean power over the period."""
        return self.energy_per_period / self.period

    def energy_shares(self) -> Dict[str, float]:
        """Fraction of the period energy per activity (plus 'sleep')."""
        total = self.energy_per_period
        if total == 0:
            return {}
        shares = {label: energy * occurrences / total
                  for label, energy, occurrences in self.activities}
        shares["sleep"] = (self.period - self.active_time) \
            * self.sleep_power / total
        return shares


def lifetime_years(battery: Battery, duty_cycle: DutyCycle,
                   harvest_power: float = 0.0) -> float:
    """Deployment lifetime in years (inf if harvesting covers the load)."""
    if harvest_power < 0:
        raise ConfigurationError(f"negative harvest power {harvest_power}")
    net_power = duty_cycle.average_power - harvest_power
    if net_power <= 0:
        return float("inf")
    return battery.energy_joules / net_power / SECONDS_PER_YEAR


def render_budget(battery: Battery, duty_cycle: DutyCycle,
                  harvest_power: float = 0.0) -> str:
    """Text summary of the deployment energy budget."""
    years = lifetime_years(battery, duty_cycle, harvest_power)
    lines = [f"energy budget on a {battery.name} "
             f"({battery.energy_joules:.0f} J usable):",
             f"  average power {duty_cycle.average_power * 1e6:.1f} uW"
             + (f" (minus {harvest_power * 1e6:.1f} uW harvested)"
                if harvest_power else "")]
    for label, share in sorted(duty_cycle.energy_shares().items(),
                               key=lambda item: -item[1]):
        lines.append(f"    {label:16s} {share:6.1%}")
    lifetime = "indefinite (harvest-covered)" if years == float("inf") \
        else f"{years:.1f} years"
    lines.append(f"  lifetime: {lifetime}")
    return "\n".join(lines)
