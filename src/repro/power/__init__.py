"""Power and energy models.

Implements the paper's Section IV-A methodology:

* a PULP3 operating-point table (voltage, f_max, leakage, per-component
  dynamic power densities) with polynomial f_max interpolation;
* the activity-weighted dynamic power equation
  ``P_d = f_clk * sum_i (chi_idle*rho_idle + chi_run*rho_run + chi_dma*rho_dma)``;
* the three reference power-analysis input vectors (*idle*, *matmul*,
  *dma*) the paper back-annotates against;
* energy integration helpers and the shared power-budget arithmetic used
  by the 10 mW envelope experiments.
"""

from repro.power.activity import ActivityProfile, PulpComponent
from repro.power.battery import AA_PAIR, CR2032, Battery, DutyCycle, lifetime_years
from repro.power.interpolation import PolynomialInterpolator
from repro.power.operating_point import OperatingPoint, OperatingPointTable
from repro.power.pulp_model import PULP3_TABLE, PulpPowerModel
from repro.power.energy import EnergyAccount

__all__ = [
    "PulpComponent",
    "ActivityProfile",
    "OperatingPoint",
    "OperatingPointTable",
    "PolynomialInterpolator",
    "PulpPowerModel",
    "PULP3_TABLE",
    "EnergyAccount",
    "Battery",
    "DutyCycle",
    "lifetime_years",
    "CR2032",
    "AA_PAIR",
]
