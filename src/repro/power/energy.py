"""Energy accounting over execution phases.

An :class:`EnergyAccount` accumulates (duration, power) phases — compute,
transfer, sleep — and reports total energy, average power and per-phase
breakdowns.  Used by the offload cost model and the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import PowerModelError


@dataclass(frozen=True)
class Phase:
    """One timed phase at constant average power."""

    label: str
    duration: float
    power: float

    def __post_init__(self) -> None:
        if self.duration < 0 or self.power < 0:
            raise PowerModelError(f"negative duration/power in phase {self}")

    @property
    def energy(self) -> float:
        """Energy of the phase in joules."""
        return self.duration * self.power


@dataclass
class EnergyAccount:
    """Accumulates phases and answers energy/power queries."""

    phases: List[Phase] = field(default_factory=list)

    def add(self, label: str, duration: float, power: float) -> None:
        """Record a phase."""
        self.phases.append(Phase(label, duration, power))

    def extend(self, other: "EnergyAccount") -> None:
        """Append all phases of another account."""
        self.phases.extend(other.phases)

    @property
    def total_time(self) -> float:
        """Sum of phase durations (phases are assumed sequential)."""
        return sum(p.duration for p in self.phases)

    @property
    def total_energy(self) -> float:
        """Total energy in joules."""
        return sum(p.energy for p in self.phases)

    @property
    def average_power(self) -> float:
        """Energy-weighted average power over the account."""
        time = self.total_time
        if time == 0:
            return 0.0
        return self.total_energy / time

    def energy_by_label(self) -> Dict[str, float]:
        """Energy per phase label."""
        result: Dict[str, float] = {}
        for phase in self.phases:
            result[phase.label] = result.get(phase.label, 0.0) + phase.energy
        return result

    def time_by_label(self) -> Dict[str, float]:
        """Time per phase label."""
        result: Dict[str, float] = {}
        for phase in self.phases:
            result[phase.label] = result.get(phase.label, 0.0) + phase.duration
        return result

    def power_by_label(self) -> Dict[str, float]:
        """Average power per phase label (energy over time).

        For the single-phase-per-label accounts the offload model
        builds, this is exactly the phase's constant power — the basis
        for attributing per-span energy in the telemetry layer so that
        span roll-ups reproduce :attr:`total_energy`.
        """
        powers: Dict[str, float] = {}
        mixed: Dict[str, bool] = {}
        for phase in self.phases:
            if phase.label not in powers:
                powers[phase.label] = phase.power
            elif powers[phase.label] != phase.power:
                mixed[phase.label] = True
        for label in mixed:
            time = self.time_by_label()[label]
            powers[label] = (self.energy_by_label()[label] / time
                             if time else 0.0)
        return powers

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable snapshot (for ``--json`` outputs)."""
        return {
            "total_time_s": self.total_time,
            "total_energy_j": self.total_energy,
            "average_power_w": self.average_power,
            "phases": [
                {"label": p.label, "duration_s": p.duration,
                 "power_w": p.power, "energy_j": p.energy}
                for p in self.phases
            ],
            "energy_by_label_j": self.energy_by_label(),
        }
