"""Operating-point tables for voltage/frequency scaling."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import OperatingPointError
from repro.power.interpolation import PolynomialInterpolator


@dataclass(frozen=True)
class OperatingPoint:
    """One (voltage, max frequency) point, with the leakage measured there."""

    voltage: float
    fmax: float
    leakage: float

    def __post_init__(self) -> None:
        if self.voltage <= 0 or self.fmax <= 0 or self.leakage < 0:
            raise OperatingPointError(f"invalid operating point: {self}")


class OperatingPointTable:
    """Anchored operating points plus interpolation between them.

    The paper's post-layout analysis covers V_DD = 0.5 V to 1.0 V in
    100 mV steps; frequencies between anchors come from the polynomial
    interpolation model, and leakage is interpolated log-linearly.
    """

    def __init__(self, points: Sequence[OperatingPoint], fmax_degree: int = None):
        points = sorted(points, key=lambda p: p.voltage)
        if len(points) < 3:
            raise OperatingPointError("need at least three anchored points")
        self.points: Tuple[OperatingPoint, ...] = tuple(points)
        if fmax_degree is None:
            # Exactly interpolate the anchors by default: the paper's
            # polynomial model only fills in *between* measured points.
            fmax_degree = len(points) - 1
        self._fmax = PolynomialInterpolator(
            [p.voltage for p in points], [p.fmax for p in points], fmax_degree)

    @property
    def v_min(self) -> float:
        """Lowest anchored voltage."""
        return self.points[0].voltage

    @property
    def v_max(self) -> float:
        """Highest anchored voltage."""
        return self.points[-1].voltage

    @property
    def f_min(self) -> float:
        """f_max at the lowest voltage."""
        return self.points[0].fmax

    @property
    def f_max(self) -> float:
        """f_max at the highest voltage."""
        return self.points[-1].fmax

    def fmax_at(self, voltage: float) -> float:
        """Maximum clock frequency sustainable at *voltage*."""
        return self._fmax(voltage)

    def voltage_for(self, frequency: float) -> float:
        """Minimum voltage sustaining *frequency*.

        Frequencies at or below the lowest anchored f_max run at the
        lowest voltage (the FLL and clock dividers allow any frequency
        below f_max).
        """
        if frequency <= 0:
            raise OperatingPointError(f"non-positive frequency: {frequency}")
        if frequency <= self.f_min:
            return self.v_min
        if frequency > self.f_max + 1e-3:
            raise OperatingPointError(
                f"frequency {frequency:.3e} Hz above the table maximum "
                f"{self.f_max:.3e} Hz")
        return self._fmax.inverse(min(frequency, self.f_max))

    def leakage_at(self, voltage: float) -> float:
        """Leakage power at *voltage*, log-linearly interpolated."""
        import math

        if voltage < self.v_min - 1e-9 or voltage > self.v_max + 1e-9:
            raise OperatingPointError(
                f"voltage {voltage} outside [{self.v_min}, {self.v_max}]")
        voltage = min(max(voltage, self.v_min), self.v_max)
        for low, high in zip(self.points, self.points[1:]):
            if voltage <= high.voltage + 1e-12:
                span = high.voltage - low.voltage
                t = (voltage - low.voltage) / span
                return math.exp((1 - t) * math.log(low.leakage)
                                + t * math.log(high.leakage))
        return self.points[-1].leakage
