"""The PULP3 power model.

Implements the paper's average dynamic power equation::

    P_d = f_clk * sum_i (chi_idle,i * rho_idle,i
                         + chi_run,i * rho_run,i
                         + chi_dma,i * rho_dma,i)

where ``chi_i`` is the ratio of active cycles of the i-th component over
the total benchmark cycles (an :class:`~repro.power.activity.ActivityProfile`)
and ``rho_i`` is the dynamic power density of that component in that
state.  Total power adds the leakage of the operating point's voltage.

Calibration (DESIGN.md section 4)
---------------------------------
The per-component densities and the operating-point anchors are synthetic
(the real ones come from post-layout analysis of the taped-out PULP3
chip, which we do not have).  They were solved against the five numbers
the paper prints:

* matmul activity at 0.5 V totals ~19.9 uW/MHz of dynamic density and
  0.55 mW leakage, so the 46 MHz @ 0.5 V point burns ~1.47 mW and, with
  the ~9.5 RISC-op/cycle 4-core matmul throughput of the ISA model,
  yields ~300 GOPS/W — the paper's 304 GOPS/W @ 1.48 mW peak;
* the same densities at ~0.7 V sustain ~200 MHz within ~9 mW, which is
  what the 10 mW envelope of Figure 5a requires for the 60x strassen
  speedup;
* leakage is substantial at low voltage because PULP applies forward
  body bias to reach frequency there (the "boost" knob of Section III-B).

Densities scale with voltage as ``(V / V_nom)**2`` (CV^2 dynamic power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.errors import OperatingPointError, PowerModelError
from repro.power.activity import ActivityProfile, PulpComponent
from repro.power.operating_point import OperatingPoint, OperatingPointTable
from repro.units import mhz, mw, uw_per_mhz

#: Nominal voltage at which densities are specified.
V_NOMINAL = 1.0


@dataclass(frozen=True)
class ComponentDensity:
    """Dynamic power density (W/Hz at V_NOMINAL) per back-annotated state."""

    idle: float
    run: float
    dma: float


#: Per-component dynamic power densities at 1.0 V (synthetic, calibrated).
PULP3_DENSITIES: Mapping[PulpComponent, ComponentDensity] = {
    PulpComponent.CORE0: ComponentDensity(uw_per_mhz(1.2), uw_per_mhz(13.0), uw_per_mhz(1.2)),
    PulpComponent.CORE1: ComponentDensity(uw_per_mhz(1.2), uw_per_mhz(13.0), uw_per_mhz(1.2)),
    PulpComponent.CORE2: ComponentDensity(uw_per_mhz(1.2), uw_per_mhz(13.0), uw_per_mhz(1.2)),
    PulpComponent.CORE3: ComponentDensity(uw_per_mhz(1.2), uw_per_mhz(13.0), uw_per_mhz(1.2)),
    PulpComponent.ICACHE: ComponentDensity(uw_per_mhz(1.0), uw_per_mhz(11.0), uw_per_mhz(1.0)),
    PulpComponent.TCDM: ComponentDensity(uw_per_mhz(2.0), uw_per_mhz(24.0), uw_per_mhz(24.0)),
    PulpComponent.DMA: ComponentDensity(uw_per_mhz(0.6), uw_per_mhz(8.0), uw_per_mhz(8.0)),
    PulpComponent.L2: ComponentDensity(uw_per_mhz(1.6), uw_per_mhz(12.0), uw_per_mhz(12.0)),
    PulpComponent.SOC: ComponentDensity(uw_per_mhz(1.4), uw_per_mhz(1.4), uw_per_mhz(1.4)),
}

#: PULP3 anchored operating points: post-layout-style table, 0.5-1.0 V in
#: 100 mV steps (voltage, f_max, leakage).
PULP3_TABLE = OperatingPointTable([
    OperatingPoint(0.5, mhz(46), mw(0.55)),
    OperatingPoint(0.6, mhz(115), mw(0.80)),
    OperatingPoint(0.7, mhz(195), mw(1.20)),
    OperatingPoint(0.8, mhz(285), mw(1.75)),
    OperatingPoint(0.9, mhz(370), mw(2.50)),
    OperatingPoint(1.0, mhz(450), mw(3.50)),
])


class PulpPowerModel:
    """Evaluate PULP power at any (frequency, voltage, activity) point."""

    def __init__(self,
                 table: OperatingPointTable = PULP3_TABLE,
                 densities: Mapping[PulpComponent, ComponentDensity] = PULP3_DENSITIES):
        missing = [c for c in PulpComponent if c not in densities]
        if missing:
            raise PowerModelError(f"missing densities for {missing}")
        self.table = table
        self.densities = densities

    # -- the paper's equation -------------------------------------------------

    def dynamic_density(self, activity: ActivityProfile,
                        voltage: float) -> float:
        """Activity-weighted dynamic density (W/Hz) at *voltage*."""
        scale = (voltage / V_NOMINAL) ** 2
        total = 0.0
        for component in PulpComponent:
            rho = self.densities[component]
            chi = activity.chi(component)
            total += chi.idle * rho.idle + chi.run * rho.run + chi.dma * rho.dma
        return total * scale

    def dynamic_power(self, frequency: float, voltage: float,
                      activity: ActivityProfile) -> float:
        """``P_d`` of the paper's equation, in watts."""
        self._check_point(frequency, voltage)
        return frequency * self.dynamic_density(activity, voltage)

    def leakage_power(self, voltage: float) -> float:
        """Leakage at *voltage* (interpolated from the anchored table)."""
        return self.table.leakage_at(voltage)

    def total_power(self, frequency: float, voltage: float,
                    activity: ActivityProfile) -> float:
        """Dynamic plus leakage power."""
        return self.dynamic_power(frequency, voltage, activity) \
            + self.leakage_power(voltage)

    # -- operating-point selection -------------------------------------------

    def power_at_frequency(self, frequency: float,
                           activity: ActivityProfile) -> float:
        """Total power running at *frequency* at the minimum voltage that
        sustains it (the FLL/divider pick the frequency, the regulator the
        voltage)."""
        voltage = self.table.voltage_for(frequency)
        return self.total_power(frequency, voltage, activity)

    def max_frequency_within(self, budget: float,
                             activity: ActivityProfile,
                             tolerance: float = 1e3) -> Tuple[float, float]:
        """Highest (frequency, voltage) whose total power fits *budget*.

        Returns ``(0.0, v_min)`` when even the minimum point exceeds the
        budget.  Power is monotonically increasing in frequency along the
        minimum-voltage locus, so a bisection suffices.
        """
        if budget <= 0:
            return 0.0, self.table.v_min
        lo, hi = 0.0, self.table.f_max
        f_floor = min(mhz(1), hi)
        if self.power_at_frequency(f_floor, activity) > budget:
            return 0.0, self.table.v_min
        if self.power_at_frequency(hi, activity) <= budget:
            return hi, self.table.voltage_for(hi)
        lo = f_floor
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if self.power_at_frequency(mid, activity) <= budget:
                lo = mid
            else:
                hi = mid
        frequency = lo
        return frequency, self.table.voltage_for(frequency)

    def anchored_points(self):
        """The anchored (voltage, f_max, leakage) points of the table."""
        return self.table.points

    def _check_point(self, frequency: float, voltage: float) -> None:
        if frequency < 0:
            raise OperatingPointError(f"negative frequency {frequency}")
        fmax = self.table.fmax_at(voltage)
        if frequency > fmax * (1 + 1e-6):
            raise OperatingPointError(
                f"{frequency:.3e} Hz exceeds f_max {fmax:.3e} Hz at {voltage} V")
