"""Polynomial interpolation of f_max over voltage.

The paper: "To estimate maximum frequency at operating points not covered
by timing analysis, we used a simple polynomial interpolation model."
This module provides that model, plus its (numerically bracketed)
inverse used to find the minimum voltage sustaining a target frequency.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import OperatingPointError


class PolynomialInterpolator:
    """Least-squares polynomial fit through (x, y) anchors.

    Used for f_max(V); monotonicity over the fitted range is validated at
    construction so the inverse is well defined.
    """

    def __init__(self, xs: Sequence[float], ys: Sequence[float], degree: int = 2):
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.ndim != 1 or xs.shape != ys.shape or len(xs) < degree + 1:
            raise OperatingPointError("need at least degree+1 matching anchors")
        if np.any(np.diff(xs) <= 0):
            raise OperatingPointError("anchor x values must be strictly increasing")
        self.x_min = float(xs[0])
        self.x_max = float(xs[-1])
        self.coefficients = np.polyfit(xs, ys, degree)
        probe = np.linspace(self.x_min, self.x_max, 256)
        values = np.polyval(self.coefficients, probe)
        if np.any(np.diff(values) <= 0):
            raise OperatingPointError(
                "fitted polynomial is not monotonically increasing over the range")

    def __call__(self, x: float) -> float:
        """Evaluate the fit at *x* (must lie within the anchored range)."""
        if x < self.x_min - 1e-12 or x > self.x_max + 1e-12:
            raise OperatingPointError(
                f"{x} outside interpolation range [{self.x_min}, {self.x_max}]")
        return float(np.polyval(self.coefficients, min(max(x, self.x_min), self.x_max)))

    def inverse(self, y: float, tolerance: float = 1e-9) -> float:
        """Find x such that f(x) = y by bisection (monotonic fit)."""
        lo, hi = self.x_min, self.x_max
        y_lo, y_hi = self(lo), self(hi)
        y_tol = 1e-9 * max(abs(y_lo), abs(y_hi), 1.0)
        if y < y_lo - y_tol or y > y_hi + y_tol:
            raise OperatingPointError(
                f"{y} outside invertible range [{y_lo}, {y_hi}]")
        y = min(max(y, y_lo), y_hi)
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self(mid) < y:
                lo = mid
            else:
                hi = mid
            if hi - lo < tolerance:
                break
        return 0.5 * (lo + hi)
