"""Performance monitoring unit: from counters to activity factors.

"The FPGA emulation platform is augmented with a performance monitoring
unit that is used to measure active and idle cycles for cores, DMAs and
interconnects."  This module is that unit's software twin: it turns the
statistics of a cycle-level :class:`~repro.pulp.cluster.ClusterRun`
into the chi activity factors the paper's power equation consumes —
closing the loop between the discrete-event simulator and the power
model exactly the way the paper closes it between the FPGA and the
post-layout data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import PowerModelError
from repro.power.activity import (
    ActivityProfile,
    CORES,
    PulpComponent,
    StateFractions,
)
from repro.pulp.cluster import ClusterRun


@dataclass(frozen=True)
class PmuCounters:
    """Raw counter snapshot, per the paper's measured quantities."""

    wall_cycles: float
    core_active_cycles: Dict[int, float]
    tcdm_access_cycles: float
    dma_busy_cycles: float

    def __post_init__(self) -> None:
        if self.wall_cycles <= 0:
            raise PowerModelError(f"non-positive wall cycles: {self.wall_cycles}")


class PerformanceMonitor:
    """Derives activity profiles from execution statistics."""

    @staticmethod
    def counters_from_run(run: ClusterRun) -> PmuCounters:
        """Snapshot the PMU counters of a finished cluster run."""
        return PmuCounters(
            wall_cycles=run.wall_cycles,
            core_active_cycles={
                index: stats.active_cycles
                for index, stats in enumerate(run.core_stats)
            },
            tcdm_access_cycles=float(
                sum(stats.accesses for stats in run.core_stats)
                + run.dma_stats.bytes_moved // 4),
            dma_busy_cycles=run.dma_stats.busy_cycles,
        )

    @staticmethod
    def profile_from_counters(counters: PmuCounters,
                              name: str = "measured") -> ActivityProfile:
        """The chi factors of the paper's power equation."""
        wall = counters.wall_cycles
        fractions: Dict[PulpComponent, StateFractions] = {}
        any_core_active = False
        for index, core in enumerate(CORES):
            active = counters.core_active_cycles.get(index, 0.0)
            run_fraction = min(1.0, active / wall)
            if run_fraction > 0:
                any_core_active = True
            fractions[core] = StateFractions(idle=1.0 - run_fraction,
                                             run=run_fraction)
        dma_fraction = min(1.0, counters.dma_busy_cycles / wall)
        memory_fraction = min(1.0, counters.tcdm_access_cycles / wall)
        # TCDM traffic splits between core-driven (run) and DMA-driven
        # (dma) states, proportionally to who is generating it.
        dma_share = min(memory_fraction, dma_fraction)
        fractions[PulpComponent.TCDM] = StateFractions(
            idle=1.0 - memory_fraction,
            run=memory_fraction - dma_share,
            dma=dma_share,
        )
        fractions[PulpComponent.DMA] = StateFractions(
            idle=1.0 - dma_fraction, dma=dma_fraction)
        fractions[PulpComponent.ICACHE] = StateFractions(
            idle=0.0 if any_core_active else 1.0,
            run=1.0 if any_core_active else 0.0)
        fractions[PulpComponent.L2] = StateFractions(
            idle=1.0 - dma_fraction, dma=dma_fraction)
        fractions[PulpComponent.SOC] = StateFractions(idle=0.0, run=1.0)
        return ActivityProfile(name, fractions)

    @classmethod
    def profile_from_run(cls, run: ClusterRun,
                         name: str = "measured") -> ActivityProfile:
        """Convenience: run -> counters -> profile."""
        return cls.profile_from_counters(cls.counters_from_run(run), name)
