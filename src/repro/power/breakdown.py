"""Energy breakdown: who burns what during an offload.

Splits an offload's :class:`~repro.power.energy.EnergyAccount` phases
into the contributions of the system's parties — host MCU, SPI link,
accelerator — which is the view the paper's discussion section reasons
in ("although energy efficiency is extremely important, absolute power
consumption is also a first-class citizen").
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import PowerModelError
from repro.core.offload import OffloadTiming


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-party energy of one offload (joules)."""

    transfer: float          #: binary + input + output link phases
    compute: float           #: accelerator number crunching
    sync: float              #: GPIO events + host wakeup
    idle_waits: float        #: accelerator-wait / host-sleep filler
    boot: float = 0.0        #: I$ warm-up + runtime init of a fresh binary

    @property
    def total(self) -> float:
        """Sum of all parts."""
        return (self.transfer + self.compute + self.sync
                + self.idle_waits + self.boot)

    def fraction(self, part: str) -> float:
        """One part's share of the total."""
        value = getattr(self, part)
        total = self.total
        if total == 0:
            return 0.0
        return value / total


_TRANSFER_LABELS = frozenset({"binary", "input", "output"})
_IDLE_LABELS = frozenset({"accelerator-wait", "host-sleep"})


def breakdown_offload(timing: OffloadTiming) -> EnergyBreakdown:
    """Classify the energy phases of an offload."""
    by_label = timing.energy.energy_by_label()
    transfer = compute = sync = idle = boot = 0.0
    for label, energy in by_label.items():
        if label in _TRANSFER_LABELS:
            transfer += energy
        elif label == "compute":
            compute += energy
        elif label == "boot":
            boot += energy
        elif label == "sync":
            sync += energy
        elif label in _IDLE_LABELS:
            idle += energy
        else:
            raise PowerModelError(f"unknown energy phase label {label!r}")
    return EnergyBreakdown(transfer=transfer, compute=compute,
                           sync=sync, idle_waits=idle, boot=boot)


def render_breakdown(breakdown: EnergyBreakdown) -> str:
    """One-liner-per-part text rendering."""
    lines = [f"energy breakdown ({breakdown.total * 1e6:.1f} uJ total):"]
    for part in ("compute", "transfer", "boot", "sync", "idle_waits"):
        value = getattr(breakdown, part)
        lines.append(f"  {part:12s} {value * 1e6:9.2f} uJ "
                     f"({breakdown.fraction(part):6.1%})")
    return "\n".join(lines)
