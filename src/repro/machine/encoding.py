"""Binary instruction encoding for OR10N-mini.

A fixed 32-bit word per instruction::

    [31:26] opcode   (6 bits)
    [25:21] rd       (5 bits)
    [20:16] ra       (5 bits)
    [15:11] rb       (5 bits)
    [10: 0] unused for R-type

    I-type reuses [15:0] as a signed 16-bit immediate:
    [31:26] opcode, [25:21] rd, [20:16] ra, [15:0] imm16

Branches encode their (instruction-count) offset in imm16; the hardware
loop setup encodes the body length in rb's slot and the trip-count
register in ra.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import IsaError

REGISTERS = 32
_IMM_MIN = -(1 << 15)
_IMM_MAX = (1 << 15) - 1


class Opcode(enum.IntEnum):
    """OR10N-mini opcodes."""

    # R-type ALU
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    MAC = 0x04          #: rd += ra * rb (the register-register MAC)
    AND = 0x05
    OR = 0x06
    XOR = 0x07
    SLL = 0x08
    SRA = 0x09
    MIN = 0x0A
    MAX = 0x0B
    # sub-word SIMD (4 x int8 lanes)
    ADD4 = 0x0C
    SUB4 = 0x0D
    # I-type ALU
    ADDI = 0x10
    MULI = 0x11
    SLLI = 0x12
    SRAI = 0x13
    ANDI = 0x14
    # memory (I-type: address = ra + imm)
    LW = 0x20
    LH = 0x21
    LB = 0x22
    SW = 0x23
    SH = 0x24
    SB = 0x25
    # control flow (I-type: offset in instructions)
    BEQ = 0x30
    BNE = 0x31
    BLT = 0x32
    JUMP = 0x33
    # hardware loop: ra = trip count register, rb slot = body length
    HWLOOP = 0x38
    # cluster-wide hardware barrier (no operands)
    BARRIER = 0x39
    # misc
    HALT = 0x3F


#: Opcodes whose third operand is an immediate.
I_TYPE = frozenset({
    Opcode.ADDI, Opcode.MULI, Opcode.SLLI, Opcode.SRAI, Opcode.ANDI,
    Opcode.LW, Opcode.LH, Opcode.LB, Opcode.SW, Opcode.SH, Opcode.SB,
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.JUMP,
})

#: Memory opcodes and their access widths.
LOADS = {Opcode.LW: 4, Opcode.LH: 2, Opcode.LB: 1}
STORES = {Opcode.SW: 4, Opcode.SH: 2, Opcode.SB: 1}
BRANCHES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.JUMP})


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: Opcode
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name, reg in (("rd", self.rd), ("ra", self.ra), ("rb", self.rb)):
            if not 0 <= reg < REGISTERS:
                raise IsaError(f"{name}={reg} out of range in {self.opcode.name}")
        if self.opcode in I_TYPE or self.opcode is Opcode.HWLOOP:
            if not _IMM_MIN <= self.imm <= _IMM_MAX:
                raise IsaError(f"immediate {self.imm} out of 16-bit range")

    def __str__(self) -> str:
        name = self.opcode.name.lower()
        if self.opcode is Opcode.HALT or self.opcode is Opcode.BARRIER:
            return name
        if self.opcode is Opcode.JUMP:
            return f"{name} {self.imm}"
        if self.opcode is Opcode.HWLOOP:
            return f"{name} r{self.ra}, {self.imm}"
        if self.opcode in BRANCHES:
            return f"{name} r{self.ra}, r{self.rb}, {self.imm}"
        if self.opcode in LOADS or self.opcode in STORES:
            return f"{name} r{self.rd}, {self.imm}(r{self.ra})"
        if self.opcode in I_TYPE:
            return f"{name} r{self.rd}, r{self.ra}, {self.imm}"
        return f"{name} r{self.rd}, r{self.ra}, r{self.rb}"


def source_registers(instruction: Instruction) -> Tuple[int, ...]:
    """Registers *read* by an instruction, in operand order.

    Stores read ``rd`` (the value being stored); MAC reads its
    destination as the accumulator; HWLOOP reads its trip-count
    register.  Shared by the interpreter's hazard accounting and the
    static dataflow analyses in :mod:`repro.analysis`.
    """
    opcode = instruction.opcode
    if opcode is Opcode.HALT or opcode is Opcode.JUMP \
            or opcode is Opcode.BARRIER:
        return ()
    if opcode is Opcode.HWLOOP:
        return (instruction.ra,)
    if opcode in LOADS:
        return (instruction.ra,)
    if opcode in STORES:
        return (instruction.rd, instruction.ra)
    if opcode in BRANCHES:
        return (instruction.ra, instruction.rb)
    if opcode in I_TYPE:
        return (instruction.ra,)
    if opcode is Opcode.MAC:
        return (instruction.rd, instruction.ra, instruction.rb)
    return (instruction.ra, instruction.rb)


def dest_register(instruction: Instruction) -> Optional[int]:
    """The register *written* by an instruction, or ``None``.

    ``r0`` writes are architecturally discarded but still reported here
    (the analyzer flags them); stores, branches, HWLOOP and HALT write
    nothing.
    """
    opcode = instruction.opcode
    if (opcode is Opcode.HALT or opcode is Opcode.HWLOOP
            or opcode is Opcode.BARRIER
            or opcode in STORES or opcode in BRANCHES):
        return None
    return instruction.rd


def encode(instruction: Instruction) -> int:
    """Instruction -> 32-bit word."""
    word = (int(instruction.opcode) & 0x3F) << 26
    word |= (instruction.rd & 0x1F) << 21
    word |= (instruction.ra & 0x1F) << 16
    if instruction.opcode in I_TYPE:
        word |= instruction.imm & 0xFFFF
    elif instruction.opcode is Opcode.HWLOOP:
        word |= (instruction.rb & 0x1F) << 11
        word |= instruction.imm & 0x7FF
    else:
        word |= (instruction.rb & 0x1F) << 11
    return word


def decode(word: int) -> Instruction:
    """32-bit word -> instruction."""
    if not 0 <= word < (1 << 32):
        raise IsaError(f"word {word:#x} is not a 32-bit value")
    opcode_value = (word >> 26) & 0x3F
    try:
        opcode = Opcode(opcode_value)
    except ValueError:
        raise IsaError(f"unknown opcode {opcode_value:#x}") from None
    rd = (word >> 21) & 0x1F
    ra = (word >> 16) & 0x1F
    if opcode in I_TYPE:
        imm = word & 0xFFFF
        if imm & 0x8000:
            imm -= 0x10000
        return Instruction(opcode, rd=rd, ra=ra, imm=imm)
    if opcode is Opcode.HWLOOP:
        rb = (word >> 11) & 0x1F
        imm = word & 0x7FF
        return Instruction(opcode, rd=rd, ra=ra, rb=rb, imm=imm)
    rb = (word >> 11) & 0x1F
    return Instruction(opcode, rd=rd, ra=ra, rb=rb)
