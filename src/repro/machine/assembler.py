"""Two-pass assembler for OR10N-mini.

Syntax, one instruction per line::

    ; comment                  (also '#' and everything after either)
    label:
        addi  r1, r0, 64
        lw    r2, 0(r4)
        mac   r5, r2, r3
        bne   r1, r0, label    ; branch targets may be labels or ints
        hwloop r6, body_end    ; hardware loop over the next N instrs
    body_end:
        halt

Registers are ``r0``..``r31`` (``r0`` reads as zero).  Branch offsets
are in instructions, relative to the *next* instruction, resolved from
labels in the second pass.  ``hwloop rN, label`` loops the instructions
between itself and the label ``rN`` times.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import IsaError
from repro.machine.encoding import (
    BRANCHES,
    I_TYPE,
    LOADS,
    STORES,
    Instruction,
    Opcode,
)


@dataclass(frozen=True)
class AssemblyUnit:
    """An assembled program plus the source metadata diagnostics need.

    ``lines[i]`` is the 1-based source line of ``instructions[i]``, so
    downstream tooling (the :mod:`repro.analysis` linter in particular)
    can point findings back at the text the author wrote.
    """

    instructions: Tuple[Instruction, ...]
    lines: Tuple[int, ...]
    labels: Dict[str, int] = field(default_factory=dict)
    source: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

_LABEL_RE = re.compile(r"^([A-Za-z_][\w]*)\s*:\s*(.*)$")
_MEM_RE = re.compile(r"^(-?\w+)\s*\(\s*(r\d+)\s*\)$")


def _strip(line: str) -> str:
    for marker in (";", "#"):
        if marker in line:
            line = line.split(marker, 1)[0]
    return line.strip()


def _parse_register(token: str) -> int:
    token = token.strip().lower()
    if not token.startswith("r"):
        raise IsaError(f"expected a register, got {token!r}")
    try:
        index = int(token[1:])
    except ValueError:
        raise IsaError(f"bad register {token!r}") from None
    if not 0 <= index < 32:
        raise IsaError(f"register {token!r} out of range")
    return index


def _parse_value(token: str, labels: Dict[str, int],
                 position: int, relative: bool) -> int:
    token = token.strip()
    if token.lstrip("-").isdigit():
        return int(token)
    if token.lstrip("-").lower().startswith("0x"):
        try:
            return int(token, 16)
        except ValueError:
            raise IsaError(f"bad hex value {token!r}") from None
    if token in labels:
        if relative:
            return labels[token] - (position + 1)
        return labels[token]
    raise IsaError(f"unknown label or value {token!r}")


def _first_pass(source: str) -> Tuple[List[Tuple[str, List[str], int]],
                                      Dict[str, int]]:
    statements: List[Tuple[str, List[str], int]] = []
    labels: Dict[str, int] = {}
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip(raw_line)
        while line:
            match = _LABEL_RE.match(line)
            if match:
                label, line = match.group(1), match.group(2).strip()
                if label in labels:
                    raise IsaError(
                        f"line {line_number}: duplicate label {label!r}")
                labels[label] = len(statements)
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            operands = [op.strip() for op in operand_text.split(",")] \
                if operand_text else []
            statements.append((mnemonic, operands, line_number))
            line = ""
    return statements, labels


def assemble_unit(source: str) -> AssemblyUnit:
    """Assemble *source* into an :class:`AssemblyUnit` with line info."""
    statements, labels = _first_pass(source)
    instructions: List[Instruction] = []
    lines: List[int] = []
    for position, (mnemonic, operands, line_number) in enumerate(statements):
        try:
            opcode = Opcode[mnemonic.upper()]
        except KeyError:
            raise IsaError(f"line {line_number}: "
                           f"unknown mnemonic {mnemonic!r}") from None
        try:
            instructions.append(_build(opcode, operands, labels, position))
        except IsaError as exc:
            raise IsaError(f"line {line_number}: {exc}") from None
        lines.append(line_number)
    _check_targets(instructions, lines)
    return AssemblyUnit(instructions=tuple(instructions), lines=tuple(lines),
                        labels=dict(labels), source=source)


def assemble(source: str) -> List[Instruction]:
    """Assemble *source* into an instruction list."""
    return list(assemble_unit(source).instructions)


def _check_targets(instructions: List[Instruction],
                   lines: List[int]) -> None:
    """Reject control transfers that resolve outside the program.

    A branch/jump target of exactly ``len(instructions)`` (falling off
    the end) is tolerated here — the interpreter terminates cleanly —
    and flagged by the analyzer instead (rule OR005).  A hardware loop
    whose body extends past the last instruction can never take its
    back-edge, so it is always an error.
    """
    length = len(instructions)
    for position, instruction in enumerate(instructions):
        line = lines[position]
        if instruction.opcode in BRANCHES:
            target = position + 1 + instruction.imm
            if not 0 <= target <= length:
                raise IsaError(
                    f"line {line}: {instruction.opcode.name} target "
                    f"{target} outside program [0, {length}]")
        elif instruction.opcode is Opcode.HWLOOP:
            end = position + 1 + instruction.imm
            if end > length:
                raise IsaError(
                    f"line {line}: hwloop body ends at {end}, past the "
                    f"last instruction ({length - 1})")


def _build(opcode: Opcode, operands: List[str], labels: Dict[str, int],
           position: int) -> Instruction:
    if opcode is Opcode.HALT or opcode is Opcode.BARRIER:
        _expect(operands, 0, opcode)
        return Instruction(opcode)
    if opcode is Opcode.JUMP:
        _expect(operands, 1, opcode)
        return Instruction(opcode, imm=_parse_value(operands[0], labels,
                                                    position, relative=True))
    if opcode is Opcode.HWLOOP:
        _expect(operands, 2, opcode)
        trips = _parse_register(operands[0])
        end = _parse_value(operands[1], labels, position, relative=False)
        body = end - (position + 1)
        if body < 1:
            raise IsaError("hwloop body must contain instructions "
                           "(end label before the loop?)")
        return Instruction(opcode, ra=trips, imm=body)
    if opcode in BRANCHES:
        _expect(operands, 3, opcode)
        return Instruction(
            opcode,
            ra=_parse_register(operands[0]),
            rb=_parse_register(operands[1]),
            imm=_parse_value(operands[2], labels, position, relative=True))
    if opcode in LOADS or opcode in STORES:
        _expect(operands, 2, opcode)
        rd = _parse_register(operands[0])
        match = _MEM_RE.match(operands[1])
        if not match:
            raise IsaError(f"bad memory operand {operands[1]!r}")
        imm = _parse_value(match.group(1), labels, position, relative=False)
        ra = _parse_register(match.group(2))
        return Instruction(opcode, rd=rd, ra=ra, imm=imm)
    if opcode in I_TYPE:
        _expect(operands, 3, opcode)
        return Instruction(
            opcode,
            rd=_parse_register(operands[0]),
            ra=_parse_register(operands[1]),
            imm=_parse_value(operands[2], labels, position, relative=False))
    # R-type
    _expect(operands, 3, opcode)
    return Instruction(
        opcode,
        rd=_parse_register(operands[0]),
        ra=_parse_register(operands[1]),
        rb=_parse_register(operands[2]))


def _expect(operands: List[str], count: int, opcode: Opcode) -> None:
    if len(operands) != count:
        raise IsaError(
            f"{opcode.name} expects {count} operand(s), got {len(operands)}")


def disassemble(instructions: List[Instruction]) -> str:
    """Instructions back to assemblable text.

    Branch offsets are emitted numerically (the assembler reads bare
    integers as ready-made relative offsets), but hardware-loop end
    positions must come back as labels: ``hwloop rN, <operand>`` parses
    its operand as an *absolute* end position while ``Instruction``
    stores the body *length*, so a synthetic ``Lk:`` label is placed at
    each loop end to keep ``assemble(disassemble(p)) == p``.
    """
    length = len(instructions)
    end_labels: Dict[int, str] = {}
    for position, instruction in enumerate(instructions):
        if instruction.opcode is Opcode.HWLOOP:
            end = position + 1 + instruction.imm
            if 0 <= end <= length:
                end_labels.setdefault(end, f"L{len(end_labels)}")
    lines: List[str] = []
    for position, instruction in enumerate(instructions):
        if position in end_labels:
            lines.append(f"{end_labels[position]}:")
        end = position + 1 + instruction.imm
        if instruction.opcode is Opcode.HWLOOP and end in end_labels:
            lines.append(f"hwloop r{instruction.ra}, {end_labels[end]}")
        else:
            lines.append(str(instruction))
    if length in end_labels:
        lines.append(f"{end_labels[length]}:")
    return "\n".join(lines)
