"""Barrier-synchronized SPMD kernels for the lockstep cluster.

Each registered program is the parallel twin of a built-in kernel: the
same instruction stream runs on every core with per-core register
presets carving up the data (the OpenMP static schedule written out in
assembly), ending in a cluster-wide ``barrier`` before the DMA hands
the results back.

Like :mod:`repro.machine.programs`, registration is an import-time
correctness gate — but a two-level one.  Every program must pass the
single-core analyzer (strict, rules OR001..OR010) **and** the SPMD
concurrency analyzer (:func:`repro.analysis.concurrency.analyze_spmd`)
with its canonical presets: a data race (OR011), a divergent barrier
(OR012) or an unsynchronized DMA handoff (OR013) in any kernel below
aborts the import.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.errors import KernelError
from repro.machine.assembler import AssemblyUnit, assemble_unit

#: Canonical geometry of the conv-cols kernel: H rows of W words.
CONV_ROWS = 16
CONV_COLS_WORDS = 16
#: Column worked by each core (chosen to collide pairwise on banks 0/1).
CONV_COLUMNS = (0, 8, 1, 9)

#: Canonical element counts.
_VECTOR_WORDS = 32
_MATMUL_N = 8


@dataclass(frozen=True)
class ParallelProgram:
    """One registered SPMD kernel plus its canonical launch recipe."""

    name: str
    unit: AssemblyUnit
    #: Registers every core's preset dict must provide.
    entry_regs: FrozenSet[int]
    #: cores -> per-core register presets (the canonical schedule).
    presets: Callable[[int], List[Dict[int, int]]]
    #: Canonical memory preload blocks: (address, bytes).
    setup: Callable[[], List[Tuple[int, bytes]]]
    #: Half-open byte region a DMA ships out after the run, if any.
    dma_out: Optional[Tuple[int, int]] = None

    @property
    def source(self) -> str:
        """The assembly source text."""
        return self.unit.source

    @property
    def instructions(self) -> Tuple:
        """The assembled instruction tuple."""
        return self.unit.instructions


#: Registry of SPMD programs by name, filled by :func:`_parallel`.
PARALLEL_PROGRAMS: Dict[str, ParallelProgram] = {}


def _parallel(name: str, source: str, entry_regs: FrozenSet[int],
              presets: Callable[[int], List[Dict[int, int]]],
              setup: Callable[[], List[Tuple[int, bytes]]],
              dma_out: Optional[Tuple[int, int]] = None,
              cores: int = 4) -> ParallelProgram:
    """Assemble, verify (single-core + SPMD), and register a kernel."""
    from repro.analysis.concurrency import analyze_spmd
    from repro.analysis.linter import lint_unit
    from repro.isa.validate import Severity

    unit = assemble_unit(source)
    lint_unit(unit, name=name, entry_regs=entry_regs).raise_on_error()
    report = analyze_spmd(unit.instructions, cores=cores,
                          presets=presets(cores), lines=unit.lines,
                          dma_out=dma_out)
    errors = [f for f in report.findings if f.severity is Severity.ERROR]
    if errors:
        raise KernelError(
            f"SPMD program {name!r} failed concurrency analysis: "
            + "; ".join(str(f) for f in errors))
    program = ParallelProgram(name=name, unit=unit, entry_regs=entry_regs,
                              presets=presets, setup=setup, dma_out=dma_out)
    PARALLEL_PROGRAMS[name] = program
    return program


def _chunks(total: int, cores: int) -> List[Tuple[int, int]]:
    """Static schedule: contiguous [lo, hi) chunk per core."""
    base = total // cores
    extra = total % cores
    bounds = []
    lo = 0
    for core in range(cores):
        hi = lo + base + (1 if core < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ---------------------------------------------------------------------------
# vector_add_sync_i8
# ---------------------------------------------------------------------------

_VEC_A, _VEC_B, _VEC_C = 0x100, 0x400, 0x700


def _vector_presets(cores: int) -> List[Dict[int, int]]:
    return [{1: _VEC_A, 2: _VEC_B, 3: _VEC_C, 5: lo, 16: hi}
            for lo, hi in _chunks(_VECTOR_WORDS, cores)]


def _vector_setup() -> List[Tuple[int, bytes]]:
    a = (np.arange(_VECTOR_WORDS * 4, dtype=np.int32) % 23 - 11).astype(np.int8)
    b = (np.arange(_VECTOR_WORDS * 4, dtype=np.int32) % 17 - 8).astype(np.int8)
    return [(_VEC_A, a.tobytes()), (_VEC_B, b.tobytes())]


#: Chunked lane-wise int8 vector add with a closing barrier: core c
#: adds words [r5, r16) of [r1] + [r2] into [r3].
VECTOR_ADD_SYNC_I8 = _parallel("vector_add_sync_i8", """
        sub   r6, r16, r5         ; words this core owns
        slli  r7, r5, 2           ; byte offset of the chunk
        add   r8, r1, r7
        add   r9, r2, r7
        add   r10, r3, r7
        hwloop r6, add_end
        lw    r11, 0(r8)
        lw    r12, 0(r9)
        add4  r13, r11, r12
        sw    r13, 0(r10)
        addi  r8, r8, 4
        addi  r9, r9, 4
        addi  r10, r10, 4
add_end:
        barrier                   ; results visible before DMA-out
        halt
""", entry_regs=frozenset({1, 2, 3, 5, 16}),
    presets=_vector_presets, setup=_vector_setup,
    dma_out=(_VEC_C, _VEC_C + _VECTOR_WORDS * 4))


# ---------------------------------------------------------------------------
# matmul_rows_sync_i8
# ---------------------------------------------------------------------------

_MM_A = 0x100
_MM_B = _MM_A + _MATMUL_N * _MATMUL_N + 64
_MM_C = _MM_A + 2 * (_MATMUL_N * _MATMUL_N + 64)


def _matmul_presets(cores: int) -> List[Dict[int, int]]:
    return [{1: _MM_A, 2: _MM_B, 3: _MM_C, 4: _MATMUL_N, 5: lo, 16: hi}
            for lo, hi in _chunks(_MATMUL_N, cores)]


def _matmul_setup() -> List[Tuple[int, bytes]]:
    n = _MATMUL_N
    a = (np.arange(n * n, dtype=np.int32) % 13 - 6).astype(np.int8)
    b = (np.arange(n * n, dtype=np.int32) % 11 - 5).astype(np.int8)
    return [(_MM_A, a.tobytes()), (_MM_B, b.tobytes())]


#: Row-partitioned char matmul with a closing barrier: as
#: ``matmul_rows_i8`` (rows [r5, r16) of C = sat8((A@B + 64) >> 7)),
#: plus the synchronization the DMA handoff of C needs.
MATMUL_ROWS_SYNC_I8 = _parallel("matmul_rows_sync_i8", """
i_loop:
        addi r6, r0, 0            ; j = 0
j_loop:
        addi r8, r0, 0            ; acc = 0
        mul  r9, r5, r4
        add  r9, r9, r1           ; &A[i*n]
        add  r11, r2, r6          ; &B[0*n + j]
        hwloop r4, k_end
        lb   r12, 0(r9)
        lb   r13, 0(r11)
        mac  r8, r12, r13
        addi r9, r9, 1
        add  r11, r11, r4
k_end:
        addi r8, r8, 64           ; round-half-up
        srai r8, r8, 7
        addi r14, r0, 127
        min  r8, r8, r14
        addi r14, r0, -128
        max  r8, r8, r14
        mul  r15, r5, r4
        add  r15, r15, r6
        add  r15, r15, r3
        sb   r8, 0(r15)
        addi r6, r6, 1
        blt  r6, r4, j_loop
        addi r5, r5, 1
        blt  r5, r16, i_loop
        barrier                   ; C complete before DMA-out
        halt
""", entry_regs=frozenset({1, 2, 3, 4, 5, 16}),
    presets=_matmul_presets, setup=_matmul_setup,
    dma_out=(_MM_C, _MM_C + _MATMUL_N * _MATMUL_N))


# ---------------------------------------------------------------------------
# conv_cols_i32
# ---------------------------------------------------------------------------

_CONV_IN = 0x400
_CONV_OUT = _CONV_IN + CONV_ROWS * CONV_COLS_WORDS * 4


def _conv_presets(cores: int) -> List[Dict[int, int]]:
    if cores > len(CONV_COLUMNS):
        raise KernelError(
            f"conv_cols_i32 defines {len(CONV_COLUMNS)} columns, "
            f"cannot launch {cores} cores")
    return [{1: _CONV_IN, 3: _CONV_OUT, 4: CONV_ROWS,
             5: CONV_COLUMNS[core]} for core in range(cores)]


def _conv_setup() -> List[Tuple[int, bytes]]:
    data = (np.arange(CONV_ROWS * CONV_COLS_WORDS, dtype=np.int32)
            % 19 - 9).astype(np.int32)
    return [(_CONV_IN, data.tobytes())]


#: Column-sum kernel with a deliberately skewed bank footprint: core c
#: sums column r5 of an H x W int32 image (row stride W*4 = 64 bytes,
#: a multiple of the 8-bank line, so a column lives entirely in bank
#: ``column % 8``).  The canonical columns (0, 8, 1, 9) collide core
#: pairs on banks 0 and 1 while banks 2..7 stay cold — the fixture the
#: OR014-vs-simulation ranking test is built on.
CONV_COLS_I32 = _parallel("conv_cols_i32", """
        slli r7, r5, 2            ; byte offset of the column
        add  r8, r1, r7           ; &in[0][col]
        addi r9, r0, 0            ; acc = 0
        hwloop r4, col_end
        lw   r10, 0(r8)
        add  r9, r9, r10
        addi r8, r8, 64           ; next row, same column
col_end:
        add  r11, r3, r7
        sw   r9, 0(r11)           ; out[col]
        barrier                   ; column sums visible before DMA-out
        halt
""", entry_regs=frozenset({1, 3, 4, 5}),
    presets=_conv_presets, setup=_conv_setup,
    dma_out=(_CONV_OUT, _CONV_OUT + CONV_COLS_WORDS * 4))


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------


def run_parallel_builtin(name: str, cores: int = 4, banks: int = 8,
                         record_trace: bool = False):
    """Run a registered SPMD kernel on the lockstep cluster.

    Returns ``(cluster, result)`` — the cluster for memory readback,
    the :class:`~repro.machine.multicore.MulticoreResult` with per-bank
    counters (and the byte-accurate trace when *record_trace*).
    """
    from repro.machine.multicore import SharedMemoryCluster

    program = parallel_program(name)
    cluster = SharedMemoryCluster(cores=cores, banks=banks)
    for address, data in program.setup():
        cluster.write_block(address, data)
    result = cluster.run([list(program.instructions)] * cores,
                         register_presets=program.presets(cores),
                         record_trace=record_trace)
    return cluster, result


def parallel_program(name: str) -> ParallelProgram:
    """Look up a registered SPMD kernel by name."""
    if name not in PARALLEL_PROGRAMS:
        raise KernelError(
            f"unknown parallel builtin {name!r}; "
            f"have {sorted(PARALLEL_PROGRAMS)}")
    return PARALLEL_PROGRAMS[name]


def expected_output(name: str) -> np.ndarray:
    """The numpy reference result of a kernel's canonical run."""
    if name == "vector_add_sync_i8":
        blocks = dict(_vector_setup())
        a = np.frombuffer(blocks[_VEC_A], dtype=np.int8)
        b = np.frombuffer(blocks[_VEC_B], dtype=np.int8)
        return (a.astype(np.int16) + b).astype(np.int8)
    if name == "matmul_rows_sync_i8":
        n = _MATMUL_N
        blocks = dict(_matmul_setup())
        a = np.frombuffer(blocks[_MM_A], dtype=np.int8).reshape(n, n)
        b = np.frombuffer(blocks[_MM_B], dtype=np.int8).reshape(n, n)
        wide = a.astype(np.int32) @ b.astype(np.int32)
        return np.clip((wide + 64) >> 7, -128, 127).astype(np.int8)
    if name == "conv_cols_i32":
        blocks = dict(_conv_setup())
        image = np.frombuffer(blocks[_CONV_IN], dtype=np.int32).reshape(
            CONV_ROWS, CONV_COLS_WORDS)
        return image.sum(axis=0, dtype=np.int32)
    raise KernelError(f"no reference output for {name!r}")


def read_output(name: str, cluster) -> np.ndarray:
    """Read a kernel's canonical output region back from *cluster*."""
    if name == "vector_add_sync_i8":
        return np.frombuffer(
            cluster.read_block(_VEC_C, _VECTOR_WORDS * 4), dtype=np.int8)
    if name == "matmul_rows_sync_i8":
        n = _MATMUL_N
        return np.frombuffer(
            cluster.read_block(_MM_C, n * n), dtype=np.int8).reshape(n, n)
    if name == "conv_cols_i32":
        out = np.frombuffer(
            cluster.read_block(_CONV_OUT, CONV_COLS_WORDS * 4),
            dtype=np.int32).copy()
        return out
    raise KernelError(f"no output region for {name!r}")
