"""OR10N-mini: a functional instruction-set simulator.

The rest of the library models cycles *analytically* from loop-nest IR.
This package goes one level deeper for validation and study: a small
register machine in the spirit of the OR10N core — 32 registers, a flat
data memory standing in for the TCDM, two hardware loops, a fused MAC
and sub-word SIMD adds — with

* a 32-bit binary instruction encoding (:mod:`~repro.machine.encoding`),
* a two-pass assembler with labels (:mod:`~repro.machine.assembler`),
* a cycle-counting interpreter (:mod:`~repro.machine.interpreter`),
* hand-written assembly kernels (:mod:`~repro.machine.programs`) whose
  results are validated against numpy and whose measured cycles
  cross-check the analytic OR10N cost tables.
"""

from repro.machine.assembler import assemble
from repro.machine.encoding import Instruction, Opcode, decode, encode
from repro.machine.interpreter import ExecutionResult, Machine
from repro.machine.multicore import (
    MemoryAccess,
    MulticoreResult,
    SharedMemoryCluster,
)
from repro.machine.parallel import (
    PARALLEL_PROGRAMS,
    ParallelProgram,
    parallel_program,
    run_parallel_builtin,
)
from repro.machine.programs import (
    DOT_PRODUCT_I8,
    MATMUL_I8,
    MATMUL_ROWS_I8,
    MEMCPY_WORDS,
    VECTOR_ADD_I8,
)

__all__ = [
    "Opcode",
    "Instruction",
    "encode",
    "decode",
    "assemble",
    "Machine",
    "ExecutionResult",
    "SharedMemoryCluster",
    "MulticoreResult",
    "MemoryAccess",
    "PARALLEL_PROGRAMS",
    "ParallelProgram",
    "parallel_program",
    "run_parallel_builtin",
    "MATMUL_I8",
    "MATMUL_ROWS_I8",
    "DOT_PRODUCT_I8",
    "VECTOR_ADD_I8",
    "MEMCPY_WORDS",
]
