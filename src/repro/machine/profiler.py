"""A sampling-free profiler for OR10N-mini programs.

Wraps the interpreter with per-PC cycle attribution: every executed
instruction's cost lands on its program-counter slot, producing the
hotspot histogram an embedded engineer would read before optimizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.machine.encoding import Instruction
from repro.machine.interpreter import ExecutionResult, Machine


@dataclass
class ProfiledRun:
    """Execution result plus per-PC cycle attribution."""

    result: ExecutionResult
    cycles_by_pc: List[float]
    executions_by_pc: List[int]
    program: Sequence[Instruction]

    def hotspots(self, count: int = 5) -> List[Tuple[int, float]]:
        """The *count* hottest PCs as (pc, cycle share) pairs."""
        total = sum(self.cycles_by_pc)
        if total == 0:
            return []
        ranked = sorted(range(len(self.cycles_by_pc)),
                        key=lambda pc: -self.cycles_by_pc[pc])
        return [(pc, self.cycles_by_pc[pc] / total)
                for pc in ranked[:count] if self.cycles_by_pc[pc] > 0]

    def collapsed(self, root: str = "program") -> List[str]:
        """Flamegraph collapsed-stack lines (``root;frame count``).

        One frame per hot PC, named ``pc_NNNN_<opcode>``; counts are
        attributed cycles rounded to at least one sample.  Feed the
        joined lines to any FlameGraph-compatible renderer.
        """
        lines = []
        for pc, cycles in enumerate(self.cycles_by_pc):
            if cycles <= 0:
                continue
            opcode = self.program[pc].opcode.name.lower()
            lines.append(f"{root};pc_{pc:04d}_{opcode} "
                         f"{max(1, round(cycles))}")
        return lines

    def render(self, count: int = 8) -> str:
        """Annotated hotspot listing."""
        lines = [f"profile: {self.result.cycles:,.0f} cycles, "
                 f"{self.result.instructions:,} instructions"]
        for pc, share in self.hotspots(count):
            lines.append(
                f"  pc {pc:4d}  {share:6.1%}  x{self.executions_by_pc[pc]:<8d}"
                f" {self.program[pc]}")
        return "\n".join(lines)


class ProfilingMachine(Machine):
    """A Machine that attributes every cycle to its instruction."""

    def run_profiled(self, program: Sequence[Instruction],
                     max_steps: int = 5_000_000) -> ProfiledRun:
        """Execute and profile *program*.

        Implemented by stepping the base interpreter one instruction at
        a time is impractical with its internal loop, so this re-runs
        the same semantics with cost attribution: it executes the
        program normally but snapshots ``cycles`` around each step via a
        lightweight shim.
        """
        cycles_by_pc = [0.0] * len(program)
        executions_by_pc = [0] * len(program)
        shim = _AttributingList(program, cycles_by_pc, executions_by_pc,
                                self)
        result = self.run(shim, max_steps=max_steps)
        shim.finish(result.cycles)
        return ProfiledRun(result=result, cycles_by_pc=cycles_by_pc,
                           executions_by_pc=executions_by_pc,
                           program=program)


class _AttributingList:
    """A sequence proxy: observing each fetch lets us attribute the
    cycles consumed since the previous fetch to the previous PC."""

    def __init__(self, program, cycles_by_pc, executions_by_pc, machine):
        self._program = program
        self._cycles_by_pc = cycles_by_pc
        self._executions_by_pc = executions_by_pc
        self._machine = machine
        self._previous_pc: Optional[int] = None
        self._elapsed = 0.0
        self._observed: List[Tuple[int, float]] = []

    def __len__(self) -> int:
        return len(self._program)

    def __getitem__(self, pc: int) -> Instruction:
        self._observed.append(pc)
        self._executions_by_pc[pc] += 1
        return self._program[pc]

    def finish(self, total_cycles: float) -> None:
        """Distribute the total cycles over the observed fetch sequence
        proportionally to each instruction's static cost class."""
        if not self._observed:
            return
        from repro.machine.encoding import BRANCHES, LOADS, Opcode

        weights = []
        for pc in self._observed:
            opcode = self._program[pc].opcode
            if opcode in LOADS or opcode is Opcode.HWLOOP:
                weights.append(2.0)
            elif opcode in BRANCHES:
                weights.append(1.5)
            else:
                weights.append(1.0)
        scale = total_cycles / sum(weights)
        for pc, weight in zip(self._observed, weights):
            self._cycles_by_pc[pc] += weight * scale
