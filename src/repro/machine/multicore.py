"""Lockstep multi-core execution of OR10N-mini programs.

Four cores share one word-interleaved banked memory; every cycle, each
core either advances its pipeline or stalls because a lower-priority...
rather: because another core won arbitration for the same bank (fixed
round-robin priority rotation, like the cluster's logarithmic
interconnect).  This is the instruction-level twin of the event-driven
:class:`repro.pulp.cluster.Cluster` — slower, but nothing is abstracted:
bank conflicts emerge from the actual addresses the code computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.machine.encoding import (
    BRANCHES,
    LOADS,
    STORES,
    Instruction,
    Opcode,
)
from repro.machine.interpreter import Machine


@dataclass(frozen=True)
class MemoryAccess:
    """One granted data-memory access of a lockstep run.

    ``epoch`` counts the barriers the core had crossed when the access
    happened; the happens-before race checker orders accesses by it.
    """

    cycle: int
    core: int
    pc: int
    epoch: int
    address: int
    width: int
    is_store: bool


@dataclass
class CoreState:
    """Architectural + pipeline state of one lockstep core."""

    core_id: int
    program: Sequence[Instruction]
    registers: List[int] = field(default_factory=lambda: [0] * 32)
    pc: int = 0
    halted: bool = False
    #: Remaining busy cycles of the current instruction (multi-cycle ops).
    busy: int = 0
    hw_loops: List = field(default_factory=list)
    #: Barriers crossed so far (the core's happens-before epoch).
    epoch: int = 0
    # statistics
    cycles_active: int = 0
    cycles_stalled: int = 0
    barrier_cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0


@dataclass
class _HwLoopState:
    start: int
    end: int
    remaining: int


@dataclass
class MulticoreResult:
    """Outcome of a lockstep cluster run."""

    wall_cycles: int
    cores: List[CoreState]
    bank_conflicts: int
    bank_accesses: int
    #: Per-bank stalled-request / attempted-request counts.
    conflicts_by_bank: List[int] = field(default_factory=list)
    accesses_by_bank: List[int] = field(default_factory=list)
    #: Cluster-wide barriers completed.
    barriers: int = 0
    #: Byte-accurate access trace, populated with ``record_trace=True``.
    trace: List[MemoryAccess] = field(default_factory=list)

    @property
    def conflict_rate(self) -> float:
        """Stalled accesses over all accesses."""
        if self.bank_accesses == 0:
            return 0.0
        return self.bank_conflicts / self.bank_accesses


class SharedMemoryCluster:
    """N OR10N-mini cores on a word-interleaved banked memory."""

    def __init__(self, cores: int = 4, memory_size: int = 48 * 1024,
                 banks: int = 8):
        if not 1 <= cores <= 8:
            raise SimulationError(f"cores must be 1..8, got {cores}")
        if banks < 1:
            raise SimulationError(f"banks must be >= 1, got {banks}")
        self.num_cores = cores
        self.banks = banks
        self.memory = Machine(memory_size)  # reuse its checked memory
        self._priority = 0
        self._trace: Optional[List[MemoryAccess]] = None
        self._cycle = 0

    # -- memory facade ----------------------------------------------------------

    def write_block(self, address: int, data: bytes) -> None:
        """Pre-load shared memory."""
        self.memory.write_block(address, data)

    def read_block(self, address: int, length: int) -> bytes:
        """Read back results."""
        return self.memory.read_block(address, length)

    # -- execution ----------------------------------------------------------------

    def run(self, programs: Sequence[Sequence[Instruction]],
            register_presets: Optional[Sequence[dict]] = None,
            max_cycles: int = 2_000_000,
            record_trace: bool = False) -> MulticoreResult:
        """Run one program per core to completion, lockstep.

        ``BARRIER`` instructions synchronize *all* cores of the run: a
        core reaching one sleeps until every other core arrives, then
        everyone crosses in the same cycle and bumps its barrier epoch.
        A core halting while others wait at a barrier can never be
        joined — that divergence raises :class:`SimulationError` (the
        dynamic twin of lint rule OR012).  ``record_trace=True``
        additionally records every granted access with its core, pc,
        epoch, byte address and width.
        """
        if not 1 <= len(programs) <= self.num_cores:
            raise SimulationError(
                f"need 1..{self.num_cores} programs, got {len(programs)}")
        states = [CoreState(core_id=i, program=p)
                  for i, p in enumerate(programs)]
        if register_presets:
            for state, presets in zip(states, register_presets):
                for register, value in presets.items():
                    state.registers[register] = value
        conflicts = 0
        accesses = 0
        conflicts_by_bank = [0] * self.banks
        accesses_by_bank = [0] * self.banks
        barriers_completed = 0
        trace: List[MemoryAccess] = []
        self._trace = trace if record_trace else None
        cycle = 0
        while any(not s.halted for s in states):
            if cycle >= max_cycles:
                raise SimulationError(f"cluster exceeded {max_cycles} cycles")
            self._cycle = cycle
            # Barrier resolution: who is waiting at a BARRIER this cycle?
            active = [s for s in states if not s.halted]
            waiting = [s for s in active if s.busy == 0
                       and s.program[s.pc].opcode is Opcode.BARRIER]
            crossing = bool(waiting) and len(waiting) == len(states)
            if waiting and not crossing and len(waiting) == len(active):
                halted_ids = [s.core_id for s in states if s.halted]
                waiting_ids = [s.core_id for s in waiting]
                raise SimulationError(
                    f"barrier divergence: core(s) {halted_ids} halted while "
                    f"core(s) {waiting_ids} wait at a barrier")
            if crossing:
                barriers_completed += 1
            # Arbitrate: collect this cycle's memory requests.
            requests = {}
            for state in states:
                if state.halted or state.busy > 0:
                    continue
                instruction = state.program[state.pc]
                if instruction.opcode in LOADS or instruction.opcode in STORES:
                    address = state.registers[instruction.ra] + instruction.imm
                    requests[state.core_id] = (address // 4) % self.banks
            granted_banks = {}
            order = [(self._priority + i) % self.num_cores
                     for i in range(self.num_cores)]
            granted = set()
            for core_id in order:
                if core_id not in requests:
                    continue
                bank = requests[core_id]
                if bank in granted_banks:
                    continue
                granted_banks[bank] = core_id
                granted.add(core_id)
            self._priority = (self._priority + 1) % self.num_cores
            # Execute.
            for state in states:
                if state.halted:
                    continue
                if state.busy > 0:
                    state.busy -= 1
                    state.cycles_active += 1
                    continue
                instruction = state.program[state.pc]
                if instruction.opcode is Opcode.BARRIER and not crossing:
                    state.barrier_cycles += 1
                    continue
                is_memory = instruction.opcode in LOADS \
                    or instruction.opcode in STORES
                if is_memory:
                    accesses += 1
                    accesses_by_bank[requests[state.core_id]] += 1
                    if state.core_id not in granted:
                        state.cycles_stalled += 1
                        conflicts += 1
                        conflicts_by_bank[requests[state.core_id]] += 1
                        continue
                self._execute(state, instruction)
                state.cycles_active += 1
            cycle += 1
        self._trace = None
        return MulticoreResult(
            wall_cycles=cycle,
            cores=states,
            bank_conflicts=conflicts,
            bank_accesses=accesses,
            conflicts_by_bank=conflicts_by_bank,
            accesses_by_bank=accesses_by_bank,
            barriers=barriers_completed,
            trace=trace,
        )

    # -- single-instruction semantics --------------------------------------------

    def _execute(self, state: CoreState, instruction: Instruction) -> None:
        opcode = instruction.opcode
        registers = state.registers
        state.instructions += 1
        next_pc = state.pc + 1
        if opcode is Opcode.HALT:
            state.halted = True
            return
        if opcode is Opcode.BARRIER:
            # Only ever executed in the cycle all cores cross together
            # (run() gates the call); the core just bumps its epoch.
            state.epoch += 1
        elif opcode is Opcode.HWLOOP:
            if len(state.hw_loops) >= Machine.HW_LOOPS:
                raise SimulationError("hardware loop nesting exceeded")
            trips = registers[instruction.ra]
            body_start = state.pc + 1
            body_end = state.pc + 1 + instruction.imm
            state.busy = 1  # lp.setup is 2 cycles total
            if trips <= 0:
                next_pc = body_end
            else:
                state.hw_loops.append(
                    _HwLoopState(body_start, body_end, trips))
        elif opcode in BRANCHES:
            taken = opcode is Opcode.JUMP
            if not taken:
                a = registers[instruction.ra]
                b = registers[instruction.rb]
                taken = ((opcode is Opcode.BEQ and a == b)
                         or (opcode is Opcode.BNE and a != b)
                         or (opcode is Opcode.BLT and a < b))
            if taken:
                next_pc = state.pc + 1 + instruction.imm
                state.busy = 1  # refill bubble
        elif opcode in LOADS:
            width = LOADS[opcode]
            address = registers[instruction.ra] + instruction.imm
            value = self.memory._load(address, width)
            if instruction.rd != 0:
                registers[instruction.rd] = value
            state.loads += 1
            state.busy = 1  # load-use stall, as in the 1-core ISS
            if self._trace is not None:
                self._trace.append(MemoryAccess(
                    cycle=self._cycle, core=state.core_id, pc=state.pc,
                    epoch=state.epoch, address=address, width=width,
                    is_store=False))
        elif opcode in STORES:
            width = STORES[opcode]
            address = registers[instruction.ra] + instruction.imm
            self.memory._store(address, width, registers[instruction.rd])
            state.stores += 1
            if self._trace is not None:
                self._trace.append(MemoryAccess(
                    cycle=self._cycle, core=state.core_id, pc=state.pc,
                    epoch=state.epoch, address=address, width=width,
                    is_store=True))
        else:
            Machine._alu(instruction, registers)
        # Hardware loop back edges.
        while state.hw_loops and next_pc == state.hw_loops[-1].end:
            loop = state.hw_loops[-1]
            loop.remaining -= 1
            if loop.remaining > 0:
                next_pc = loop.start
                break
            state.hw_loops.pop()
        state.pc = next_pc
        registers[0] = 0
