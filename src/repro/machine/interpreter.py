"""The OR10N-mini interpreter: functional execution + cycle accounting.

Cycle costs mirror the analytic cost table of
:func:`repro.isa.costs.or10n_costs`: single-cycle ALU/MAC/SIMD, 2-cycle
loads (the load-use stall), 1-cycle stores, 2-cycle taken branches and
zero-overhead hardware-loop back-edges — so cycle counts measured here
can be compared against the loop-nest model directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.machine.encoding import (
    BRANCHES,
    LOADS,
    STORES,
    Instruction,
    Opcode,
    source_registers,
)

_MASK32 = 0xFFFFFFFF


def _wrap32(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def _wrap8(value: int) -> int:
    value &= 0xFF
    return value - 256 if value & 0x80 else value


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    cycles: float
    instructions: int
    loads: int
    stores: int
    registers: List[int]
    halted: bool
    #: Loads whose destination is read by the very next instruction —
    #: the dynamic twin of :func:`repro.analysis.stalls.stall_sites`.
    load_use_stalls: int = 0
    #: BARRIER instructions crossed.  On a single core the barrier is a
    #: one-cycle no-op (there is nobody to wait for); the count lets the
    #: concurrency analysis cross-check per-core barrier sequences.
    barriers: int = 0

    @property
    def memory_accesses(self) -> int:
        """Total data memory operations."""
        return self.loads + self.stores


@dataclass
class _HwLoop:
    start: int
    end: int
    remaining: int


class Machine:
    """One OR10N-mini core with a private data memory."""

    #: Maximum nested hardware loops, as on OR10N.
    HW_LOOPS = 2

    def __init__(self, memory_size: int = 48 * 1024):
        if memory_size <= 0:
            raise SimulationError(f"invalid memory size {memory_size}")
        self.memory = bytearray(memory_size)
        self.registers = [0] * 32

    # -- memory helpers --------------------------------------------------------

    def write_block(self, address: int, data: bytes) -> None:
        """Load data into memory before a run."""
        self._check(address, len(data))
        self.memory[address:address + len(data)] = data

    def read_block(self, address: int, length: int) -> bytes:
        """Read results after a run."""
        self._check(address, length)
        return bytes(self.memory[address:address + length])

    def _check(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > len(self.memory):
            raise SimulationError(
                f"memory access out of range: {length} B at {address:#x}")

    def _load(self, address: int, width: int) -> int:
        self._check(address, width)
        raw = int.from_bytes(self.memory[address:address + width],
                             "little", signed=True)
        return raw

    def _store(self, address: int, width: int, value: int) -> None:
        self._check(address, width)
        self.memory[address:address + width] = \
            (value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")

    # -- execution ----------------------------------------------------------------

    def run(self, program: Sequence[Instruction],
            max_steps: int = 5_000_000) -> ExecutionResult:
        """Execute *program* from its first instruction until HALT."""
        registers = self.registers
        registers[0] = 0
        pc = 0
        cycles = 0.0
        executed = 0
        loads = 0
        stores = 0
        hw_loops: List[_HwLoop] = []
        halted = False
        load_use_stalls = 0
        barriers = 0
        pending_load_rd: Optional[int] = None

        while 0 <= pc < len(program):
            if executed >= max_steps:
                raise SimulationError(
                    f"program exceeded {max_steps} steps (runaway loop?)")
            instruction = program[pc]
            opcode = instruction.opcode
            executed += 1
            next_pc = pc + 1

            if pending_load_rd is not None:
                if pending_load_rd in source_registers(instruction):
                    load_use_stalls += 1
                pending_load_rd = None

            if opcode is Opcode.HALT:
                cycles += 1
                halted = True
                break
            elif opcode is Opcode.BARRIER:
                cycles += 1  # alone, a core crosses immediately
                barriers += 1
            elif opcode is Opcode.HWLOOP:
                if len(hw_loops) >= self.HW_LOOPS:
                    raise SimulationError("hardware loop nesting exceeded")
                trips = registers[instruction.ra]
                body_start = pc + 1
                body_end = pc + 1 + instruction.imm
                cycles += 2  # lp.setup
                if trips <= 0:
                    next_pc = body_end
                else:
                    hw_loops.append(_HwLoop(body_start, body_end, trips))
            elif opcode in BRANCHES:
                taken = False
                if opcode is Opcode.JUMP:
                    taken = True
                else:
                    a = registers[instruction.ra]
                    b = registers[instruction.rb]
                    taken = ((opcode is Opcode.BEQ and a == b)
                             or (opcode is Opcode.BNE and a != b)
                             or (opcode is Opcode.BLT and a < b))
                if taken:
                    next_pc = pc + 1 + instruction.imm
                    cycles += 2
                else:
                    cycles += 1
            elif opcode in LOADS:
                width = LOADS[opcode]
                address = registers[instruction.ra] + instruction.imm
                value = self._load(address, width)
                if instruction.rd != 0:
                    registers[instruction.rd] = value
                    pending_load_rd = instruction.rd
                loads += 1
                cycles += 2  # TCDM latency + average load-use stall
            elif opcode in STORES:
                width = STORES[opcode]
                address = registers[instruction.ra] + instruction.imm
                self._store(address, width, registers[instruction.rd])
                stores += 1
                cycles += 1
            else:
                self._alu(instruction, registers)
                cycles += 1

            # Hardware loop back-edges are free.
            while hw_loops and next_pc == hw_loops[-1].end:
                loop = hw_loops[-1]
                loop.remaining -= 1
                if loop.remaining > 0:
                    next_pc = loop.start
                    break
                hw_loops.pop()
            pc = next_pc
            registers[0] = 0

        return ExecutionResult(
            cycles=cycles,
            instructions=executed,
            loads=loads,
            stores=stores,
            registers=list(registers),
            halted=halted,
            load_use_stalls=load_use_stalls,
            barriers=barriers,
        )

    @staticmethod
    def _alu(instruction: Instruction, registers: List[int]) -> None:
        opcode = instruction.opcode
        a = registers[instruction.ra]
        b = registers[instruction.rb]
        imm = instruction.imm
        d = registers[instruction.rd]
        if opcode is Opcode.ADD:
            value = _wrap32(a + b)
        elif opcode is Opcode.SUB:
            value = _wrap32(a - b)
        elif opcode is Opcode.MUL:
            value = _wrap32(a * b)
        elif opcode is Opcode.MAC:
            value = _wrap32(d + a * b)
        elif opcode is Opcode.AND:
            value = _wrap32(a & b)
        elif opcode is Opcode.OR:
            value = _wrap32(a | b)
        elif opcode is Opcode.XOR:
            value = _wrap32(a ^ b)
        elif opcode is Opcode.SLL:
            value = _wrap32(a << (b & 31))
        elif opcode is Opcode.SRA:
            value = _wrap32(a >> (b & 31))
        elif opcode is Opcode.MIN:
            value = min(a, b)
        elif opcode is Opcode.MAX:
            value = max(a, b)
        elif opcode is Opcode.ADD4:
            value = Machine._simd(a, b, lambda x, y: x + y)
        elif opcode is Opcode.SUB4:
            value = Machine._simd(a, b, lambda x, y: x - y)
        elif opcode is Opcode.ADDI:
            value = _wrap32(a + imm)
        elif opcode is Opcode.MULI:
            value = _wrap32(a * imm)
        elif opcode is Opcode.SLLI:
            value = _wrap32(a << (imm & 31))
        elif opcode is Opcode.SRAI:
            value = _wrap32(a >> (imm & 31))
        elif opcode is Opcode.ANDI:
            value = _wrap32(a & (imm & 0xFFFF))
        else:
            raise SimulationError(f"unhandled opcode {opcode.name}")
        if instruction.rd != 0:
            registers[instruction.rd] = value

    @staticmethod
    def _simd(a: int, b: int, op) -> int:
        result = 0
        for lane in range(4):
            lane_a = _wrap8(a >> (8 * lane))
            lane_b = _wrap8(b >> (8 * lane))
            result |= (op(lane_a, lane_b) & 0xFF) << (8 * lane)
        return _wrap32(result)
