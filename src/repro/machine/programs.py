"""Hand-written OR10N-mini assembly kernels, with numpy-facing runners.

These are the instruction-level counterparts of the analytic kernels:
``run_matmul_i8`` computes exactly what
:meth:`repro.kernels.matmul.MatmulKernel.compute` computes (char
variant), instruction by instruction, so the two abstraction levels can
be validated against each other — both functionally and in cycles.

Every built-in program is gated through the static analyzer at import
time (:func:`repro.analysis.lint_unit` in strict mode): an
uninitialized-register read, an illegal hardware-loop shape, or
unreachable code in any kernel below is an :class:`~repro.errors.IsaError`
before anything can run it.  ``BUILTIN_PROGRAMS`` exposes the registry
(source text, entry registers, output registers) that both the gate and
``python -m repro lint --all-builtin`` use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.errors import KernelError
from repro.machine.assembler import AssemblyUnit, assemble_unit
from repro.machine.interpreter import ExecutionResult, Machine


@dataclass(frozen=True)
class BuiltinProgram:
    """One registered assembly kernel plus its register contract."""

    name: str
    unit: AssemblyUnit
    #: Registers the runner presets before execution (kernel arguments).
    entry_regs: FrozenSet[int]
    #: Registers the runner reads back afterwards; ``None`` = memory
    #: results only (every register is then treated as observable).
    exit_live: Optional[FrozenSet[int]] = None

    @property
    def source(self) -> str:
        """The assembly source text."""
        return self.unit.source

    @property
    def instructions(self) -> Tuple:
        """The assembled instruction tuple."""
        return self.unit.instructions


#: Registry of built-in programs by name, filled by :func:`_builtin`.
BUILTIN_PROGRAMS: Dict[str, BuiltinProgram] = {}


def _builtin(name: str, source: str, entry_regs: FrozenSet[int],
             exit_live: Optional[FrozenSet[int]] = None) -> List:
    """Assemble, statically verify, and register a built-in program.

    Returns the instruction list (module-level constants keep their
    historical ``List[Instruction]`` shape).  Analysis runs in strict
    mode: any ERROR finding aborts the import.
    """
    from repro.analysis.dataflow import ALL_REGISTERS
    from repro.analysis.linter import lint_unit

    unit = assemble_unit(source)
    lint_unit(unit, name=name, entry_regs=entry_regs,
              exit_live=exit_live if exit_live is not None
              else ALL_REGISTERS).raise_on_error()
    BUILTIN_PROGRAMS[name] = BuiltinProgram(
        name=name, unit=unit, entry_regs=entry_regs, exit_live=exit_live)
    return list(unit.instructions)


#: Copy r3 words from [r1] to [r2].
MEMCPY_WORDS = _builtin("memcpy_words", """
        hwloop r3, copy_end
        lw   r4, 0(r1)
        addi r1, r1, 4
        sw   r4, 0(r2)
        addi r2, r2, 4
copy_end:
        halt
""", entry_regs=frozenset({1, 2, 3}))

#: Lane-wise int8 vector add: r4 words from [r1] + [r2] -> [r3].
VECTOR_ADD_I8 = _builtin("vector_add_i8", """
        hwloop r4, add_end
        lw   r5, 0(r1)
        lw   r6, 0(r2)
        add4 r7, r5, r6
        sw   r7, 0(r3)
        addi r1, r1, 4
        addi r2, r2, 4
        addi r3, r3, 4
add_end:
        halt
""", entry_regs=frozenset({1, 2, 3, 4}))

#: int8 dot product of r3 elements at [r1], [r2]; result in r10.
DOT_PRODUCT_I8 = _builtin("dot_product_i8", """
        addi r10, r0, 0
        hwloop r3, dot_end
        lb   r4, 0(r1)
        lb   r5, 0(r2)
        mac  r10, r4, r5
        addi r1, r1, 1
        addi r2, r2, 1
dot_end:
        halt
""", entry_regs=frozenset({1, 2, 3}), exit_live=frozenset({10}))

#: char matmul: C = sat8((A @ B + 64) >> 7); bases in r1/r2/r3, n in r4.
MATMUL_I8 = _builtin("matmul_i8", """
        addi r5, r0, 0            ; i = 0
i_loop:
        addi r6, r0, 0            ; j = 0
j_loop:
        addi r8, r0, 0            ; acc = 0
        mul  r9, r5, r4
        add  r9, r9, r1           ; &A[i*n]
        add  r11, r2, r6          ; &B[0*n + j]
        hwloop r4, k_end
        lb   r12, 0(r9)
        lb   r13, 0(r11)
        mac  r8, r12, r13
        addi r9, r9, 1
        add  r11, r11, r4
k_end:
        addi r8, r8, 64           ; round-half-up
        srai r8, r8, 7
        addi r14, r0, 127
        min  r8, r8, r14
        addi r14, r0, -128
        max  r8, r8, r14
        mul  r15, r5, r4
        add  r15, r15, r6
        add  r15, r15, r3
        sb   r8, 0(r15)
        addi r6, r6, 1
        blt  r6, r4, j_loop
        addi r5, r5, 1
        blt  r5, r4, i_loop
        halt
""", entry_regs=frozenset({1, 2, 3, 4}))

#: Row-partitioned char matmul for the multicore cluster: as MATMUL_I8,
#: but computing rows [r5, r16) — each core gets its static chunk, the
#: OpenMP schedule written out in assembly.
MATMUL_ROWS_I8 = _builtin("matmul_rows_i8", """
i_loop:
        addi r6, r0, 0            ; j = 0
j_loop:
        addi r8, r0, 0            ; acc = 0
        mul  r9, r5, r4
        add  r9, r9, r1           ; &A[i*n]
        add  r11, r2, r6          ; &B[0*n + j]
        hwloop r4, k_end
        lb   r12, 0(r9)
        lb   r13, 0(r11)
        mac  r8, r12, r13
        addi r9, r9, 1
        add  r11, r11, r4
k_end:
        addi r8, r8, 64
        srai r8, r8, 7
        addi r14, r0, 127
        min  r8, r8, r14
        addi r14, r0, -128
        max  r8, r8, r14
        mul  r15, r5, r4
        add  r15, r15, r6
        add  r15, r15, r3
        sb   r8, 0(r15)
        addi r6, r6, 1
        blt  r6, r4, j_loop
        addi r5, r5, 1
        blt  r5, r16, i_loop
        halt
""", entry_regs=frozenset({1, 2, 3, 4, 5, 16}))

#: 3-tap int8 depthwise convolution (binomial 1-2-1 blur) with
#: round/shift/saturate requantization: r3 outputs from [r1] -> [r2].
#: The sliding window lives in registers, so each output costs one load
#: and one store against ~11 ALU ops — a compute-dense TinyAI building
#: block, unlike the streaming copy/add kernels above.
DWCONV3_I8 = _builtin("dwconv3_i8", """
        addi r12, r0, 1           ; taps 1 2 1
        addi r13, r0, 2
        addi r14, r0, 1
        addi r20, r0, 0           ; window: x[i-2], x[i-1]
        addi r21, r0, 0
        addi r15, r0, 127
        addi r16, r0, -128
        hwloop r3, conv_end
        lb   r4, 0(r1)
        addi r1, r1, 1
        addi r5, r0, 0
        mac  r5, r4, r12
        mac  r5, r21, r13
        mac  r5, r20, r14
        add  r20, r21, r0
        add  r21, r4, r0
        addi r5, r5, 2            ; round-half-up for >> 2
        srai r5, r5, 2
        min  r5, r5, r15
        max  r5, r5, r16
        sb   r5, 0(r2)
        addi r2, r2, 1
conv_end:
        halt
""", entry_regs=frozenset({1, 2, 3}))

#: 8-tap int32 FIR (binomial-ish 1 2 4 8 8 4 2 1 smoothing kernel):
#: r3 outputs from [r1] -> [r2].  Taps and the sample history both live
#: in registers; each output is one load + one store against 8 MACs
#: plus the window shift.
FIR8_I32 = _builtin("fir8_i32", """
        addi r12, r0, 1           ; taps 1 2 4 8 8 4 2 1
        addi r13, r0, 2
        addi r14, r0, 4
        addi r15, r0, 8
        addi r16, r0, 8
        addi r17, r0, 4
        addi r18, r0, 2
        addi r19, r0, 1
        addi r20, r0, 0           ; history x[i-1] .. x[i-7]
        addi r21, r0, 0
        addi r22, r0, 0
        addi r23, r0, 0
        addi r24, r0, 0
        addi r25, r0, 0
        addi r26, r0, 0
        hwloop r3, fir_end
        lw   r4, 0(r1)
        addi r1, r1, 4
        addi r5, r0, 0
        mac  r5, r4, r12
        mac  r5, r20, r13
        mac  r5, r21, r14
        mac  r5, r22, r15
        mac  r5, r23, r16
        mac  r5, r24, r17
        mac  r5, r25, r18
        mac  r5, r26, r19
        add  r26, r25, r0         ; shift the history window
        add  r25, r24, r0
        add  r24, r23, r0
        add  r23, r22, r0
        add  r22, r21, r0
        add  r21, r20, r0
        add  r20, r4, r0
        srai r5, r5, 5            ; normalize by the tap sum (30 -> >>5)
        sw   r5, 0(r2)
        addi r2, r2, 4
fir_end:
        halt
""", entry_regs=frozenset({1, 2, 3}))

#: Soft 4-bin orientation response (HOG-style cell descriptor): r3
#: packed gradient words ((gy << 16) | gx) at [r1], one response word
#: each -> [r2].  Each input costs a single load against ~26 ALU ops
#: (unpack + 4 projections with rectification) — the most arithmetic-
#: intense builtin.
MAG_HIST_I32 = _builtin("mag_hist_i32", """
        addi r12, r0, 4           ; bin 0: (4, 0)
        addi r13, r0, 0
        addi r14, r0, 3           ; bin 1: (3, 3)
        addi r15, r0, 3
        addi r16, r0, 0           ; bin 2: (0, 4)
        addi r17, r0, 4
        addi r18, r0, -3          ; bin 3: (-3, 3)
        addi r19, r0, 3
        hwloop r3, hist_end
        lw   r4, 0(r1)            ; packed (gy << 16) | gx
        addi r1, r1, 4
        slli r5, r4, 16
        srai r5, r5, 16           ; gx, sign-extended
        srai r6, r4, 16           ; gy
        addi r9, r0, 0            ; response accumulator
        addi r7, r0, 0
        mac  r7, r5, r12
        mac  r7, r6, r13
        max  r7, r7, r0
        add  r9, r9, r7
        addi r7, r0, 0
        mac  r7, r5, r14
        mac  r7, r6, r15
        max  r7, r7, r0
        add  r9, r9, r7
        addi r7, r0, 0
        mac  r7, r5, r16
        mac  r7, r6, r17
        max  r7, r7, r0
        add  r9, r9, r7
        addi r7, r0, 0
        mac  r7, r5, r18
        mac  r7, r6, r19
        max  r7, r7, r0
        add  r9, r9, r7
        srai r9, r9, 2
        sw   r9, 0(r2)
        addi r2, r2, 4
hist_end:
        halt
""", entry_regs=frozenset({1, 2, 3}))


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------


def run_memcpy(data: bytes, machine: Optional[Machine] = None
               ) -> Tuple[bytes, ExecutionResult]:
    """Copy *data* (a multiple of 4 bytes) through MEMCPY_WORDS."""
    if len(data) % 4:
        raise KernelError("memcpy operates on whole words")
    machine = machine if machine is not None else Machine()
    src, dst = 0x100, 0x100 + len(data) + 64
    machine.write_block(src, data)
    machine.registers[1] = src
    machine.registers[2] = dst
    machine.registers[3] = len(data) // 4
    result = machine.run(MEMCPY_WORDS)
    return machine.read_block(dst, len(data)), result


def run_vector_add_i8(a: np.ndarray, b: np.ndarray,
                      machine: Optional[Machine] = None
                      ) -> Tuple[np.ndarray, ExecutionResult]:
    """Lane-wise int8 add of two equal-length arrays (length % 4 == 0)."""
    a = np.asarray(a, dtype=np.int8)
    b = np.asarray(b, dtype=np.int8)
    if a.shape != b.shape or a.ndim != 1 or len(a) % 4:
        raise KernelError("vector add needs equal 1-D int8 arrays, len % 4 == 0")
    machine = machine if machine is not None else Machine()
    base_a, base_b, base_c = 0x100, 0x1100, 0x2100
    machine.write_block(base_a, a.tobytes())
    machine.write_block(base_b, b.tobytes())
    machine.registers[1] = base_a
    machine.registers[2] = base_b
    machine.registers[3] = base_c
    machine.registers[4] = len(a) // 4
    result = machine.run(VECTOR_ADD_I8)
    out = np.frombuffer(machine.read_block(base_c, len(a)), dtype=np.int8)
    return out.copy(), result


def run_dot_product_i8(a: np.ndarray, b: np.ndarray,
                       machine: Optional[Machine] = None
                       ) -> Tuple[int, ExecutionResult]:
    """int8 dot product; returns the 32-bit accumulator."""
    a = np.asarray(a, dtype=np.int8)
    b = np.asarray(b, dtype=np.int8)
    if a.shape != b.shape or a.ndim != 1:
        raise KernelError("dot product needs equal 1-D int8 arrays")
    machine = machine if machine is not None else Machine()
    base_a, base_b = 0x100, 0x1100
    machine.write_block(base_a, a.tobytes())
    machine.write_block(base_b, b.tobytes())
    machine.registers[1] = base_a
    machine.registers[2] = base_b
    machine.registers[3] = len(a)
    result = machine.run(DOT_PRODUCT_I8)
    return result.registers[10], result


def run_dwconv3_i8(x: np.ndarray, machine: Optional[Machine] = None
                   ) -> Tuple[np.ndarray, ExecutionResult]:
    """3-tap int8 depthwise conv: sat8((x[i] + 2x[i-1] + x[i-2] + 2) >> 2)."""
    x = np.asarray(x, dtype=np.int8)
    if x.ndim != 1 or not len(x):
        raise KernelError("dwconv3 needs a non-empty 1-D int8 array")
    machine = machine if machine is not None else Machine()
    base_x, base_y = 0x100, 0x1100
    machine.write_block(base_x, x.tobytes())
    machine.registers[1] = base_x
    machine.registers[2] = base_y
    machine.registers[3] = len(x)
    result = machine.run(DWCONV3_I8)
    out = np.frombuffer(machine.read_block(base_y, len(x)), dtype=np.int8)
    return out.copy(), result


def run_fir8_i32(x: np.ndarray, machine: Optional[Machine] = None
                 ) -> Tuple[np.ndarray, ExecutionResult]:
    """8-tap int32 FIR with taps (1 2 4 8 8 4 2 1), zero history, >> 5."""
    x = np.asarray(x, dtype=np.int32)
    if x.ndim != 1 or not len(x):
        raise KernelError("fir8 needs a non-empty 1-D int32 array")
    machine = machine if machine is not None else Machine()
    base_x, base_y = 0x100, 0x100 + 4 * len(x) + 64
    machine.write_block(base_x, x.tobytes())
    machine.registers[1] = base_x
    machine.registers[2] = base_y
    machine.registers[3] = len(x)
    result = machine.run(FIR8_I32)
    out = np.frombuffer(machine.read_block(base_y, 4 * len(x)),
                        dtype=np.int32)
    return out.copy(), result


def run_mag_hist_i32(gx: np.ndarray, gy: np.ndarray,
                     machine: Optional[Machine] = None
                     ) -> Tuple[np.ndarray, ExecutionResult]:
    """Soft 4-bin orientation response per (gx, gy) int16 gradient pair."""
    gx = np.asarray(gx, dtype=np.int16)
    gy = np.asarray(gy, dtype=np.int16)
    if gx.shape != gy.shape or gx.ndim != 1 or not len(gx):
        raise KernelError("mag_hist needs equal non-empty 1-D int16 arrays")
    machine = machine if machine is not None else Machine()
    packed = ((gy.astype(np.int32) << 16)
              | (gx.astype(np.int32) & 0xFFFF)).astype(np.int32)
    base_g, base_y = 0x100, 0x100 + 4 * len(gx) + 64
    machine.write_block(base_g, packed.tobytes())
    machine.registers[1] = base_g
    machine.registers[2] = base_y
    machine.registers[3] = len(gx)
    result = machine.run(MAG_HIST_I32)
    out = np.frombuffer(machine.read_block(base_y, 4 * len(gx)),
                        dtype=np.int32)
    return out.copy(), result


def run_matmul_i8_parallel(a: np.ndarray, b: np.ndarray, cores: int = 4,
                           banks: int = 8):
    """Row-partitioned char matmul on the lockstep multicore cluster.

    Returns ``(c, MulticoreResult)``; the result's per-core statistics
    expose the instruction-level bank-conflict behaviour the analytic
    contention model abstracts.
    """
    from repro.machine.multicore import SharedMemoryCluster
    from repro.pulp.timing import chunk_trips

    a = np.asarray(a, dtype=np.int8)
    b = np.asarray(b, dtype=np.int8)
    if a.ndim != 2 or a.shape != b.shape or a.shape[0] != a.shape[1]:
        raise KernelError("matmul needs two equal square int8 matrices")
    n = a.shape[0]
    cluster = SharedMemoryCluster(cores=cores, banks=banks)
    base_a, base_b, base_c = 0x100, 0x100 + n * n + 64, 0x100 + 2 * (n * n + 64)
    cluster.write_block(base_a, a.tobytes())
    cluster.write_block(base_b, b.tobytes())
    chunks = chunk_trips(n, cores)
    presets = []
    row = 0
    for chunk in chunks:
        presets.append({1: base_a, 2: base_b, 3: base_c,
                        4: n, 5: row, 16: row + chunk})
        row += chunk
    result = cluster.run([MATMUL_ROWS_I8] * len(chunks),
                         register_presets=presets)
    out = np.frombuffer(cluster.read_block(base_c, n * n), dtype=np.int8)
    return out.reshape(n, n).copy(), result


def profile_builtin(name: str):
    """Profile one built-in kernel on canonical deterministic inputs.

    Returns a :class:`~repro.machine.profiler.ProfiledRun` whose per-PC
    cycle attribution feeds the flamegraph exporter
    (:func:`repro.obs.export.collapsed_stacks`).
    """
    from repro.machine.profiler import ProfilingMachine

    if name not in BUILTIN_PROGRAMS:
        raise KernelError(
            f"unknown builtin {name!r}; have {sorted(BUILTIN_PROGRAMS)}")
    machine = ProfilingMachine()
    n = 8
    pattern = np.arange(64, dtype=np.int8)
    square = (np.arange(n * n, dtype=np.int32) % 13 - 6).astype(np.int8)
    if name == "memcpy_words":
        data = pattern.tobytes()
        src, dst = 0x100, 0x100 + len(data) + 64
        machine.write_block(src, data)
        machine.registers[1] = src
        machine.registers[2] = dst
        machine.registers[3] = len(data) // 4
        program = MEMCPY_WORDS
    elif name == "vector_add_i8":
        base_a, base_b, base_c = 0x100, 0x1100, 0x2100
        machine.write_block(base_a, pattern.tobytes())
        machine.write_block(base_b, pattern[::-1].copy().tobytes())
        machine.registers[1] = base_a
        machine.registers[2] = base_b
        machine.registers[3] = base_c
        machine.registers[4] = len(pattern) // 4
        program = VECTOR_ADD_I8
    elif name == "dot_product_i8":
        base_a, base_b = 0x100, 0x1100
        machine.write_block(base_a, pattern.tobytes())
        machine.write_block(base_b, pattern[::-1].copy().tobytes())
        machine.registers[1] = base_a
        machine.registers[2] = base_b
        machine.registers[3] = len(pattern)
        program = DOT_PRODUCT_I8
    elif name in ("dwconv3_i8", "fir8_i32", "mag_hist_i32"):
        base_a, base_b = 0x100, 0x1100
        machine.write_block(base_a, pattern.astype(np.int32).tobytes())
        machine.registers[1] = base_a
        machine.registers[2] = base_b
        machine.registers[3] = len(pattern)
        program = {"dwconv3_i8": DWCONV3_I8, "fir8_i32": FIR8_I32,
                   "mag_hist_i32": MAG_HIST_I32}[name]
    else:
        base_a = 0x100
        base_b = 0x100 + n * n + 64
        base_c = 0x100 + 2 * (n * n + 64)
        machine.write_block(base_a, square.tobytes())
        machine.write_block(base_b, square[::-1].copy().tobytes())
        machine.registers[1] = base_a
        machine.registers[2] = base_b
        machine.registers[3] = base_c
        machine.registers[4] = n
        if name == "matmul_rows_i8":
            machine.registers[5] = 0
            machine.registers[16] = n
            program = MATMUL_ROWS_I8
        else:
            program = MATMUL_I8
    return machine.run_profiled(program)


def run_matmul_i8(a: np.ndarray, b: np.ndarray,
                  machine: Optional[Machine] = None
                  ) -> Tuple[np.ndarray, ExecutionResult]:
    """char matmul, matching ``MatmulKernel("char").compute`` exactly."""
    a = np.asarray(a, dtype=np.int8)
    b = np.asarray(b, dtype=np.int8)
    if a.ndim != 2 or a.shape != b.shape or a.shape[0] != a.shape[1]:
        raise KernelError("matmul needs two equal square int8 matrices")
    n = a.shape[0]
    machine = machine if machine is not None else Machine()
    base_a, base_b, base_c = 0x100, 0x100 + n * n + 64, 0x100 + 2 * (n * n + 64)
    machine.write_block(base_a, a.tobytes())
    machine.write_block(base_b, b.tobytes())
    machine.registers[1] = base_a
    machine.registers[2] = base_b
    machine.registers[3] = base_c
    machine.registers[4] = n
    result = machine.run(MATMUL_I8)
    out = np.frombuffer(machine.read_block(base_c, n * n), dtype=np.int8)
    return out.reshape(n, n).copy(), result
