"""The accelerator fleet: service pricing and node lifecycle.

**Service pricing.**  The serving simulation never pushes bytes through
the wire protocol per request — at hundreds of requests per run that
would dominate wall time without changing the model.  Instead an
:class:`AnalyticServiceBook` prices each kernel once per *service tier*
through the exact same stack a single offload uses
(:class:`~repro.runtime.omp.DeviceOpenMp` execution,
:class:`~repro.core.envelope.PowerEnvelopeSolver` operating point,
:class:`~repro.core.offload.OffloadCostModel` latency/energy), and the
fleet replays those per-phase costs per request.  Two tiers exist:

* ``fast`` — the paper's 10 mW per-node envelope point;
* ``eco``  — a throttled envelope point (lower per-node power budget,
  lower frequency/voltage), used by the power-cap scheduler when the
  fast point does not fit under the fleet budget.

**Node lifecycle.**  A :class:`Node` is a discrete-event process:
``idle -> busy -> idle`` on the happy path, with a per-node
:class:`~repro.faults.plan.FaultPlan` injected through a seeded
:class:`~repro.faults.injector.FaultInjector`.  Faults replay the
resilient driver's escalation ladder at fleet granularity: a failed
attempt is retried (re-arm), then the node reboots (losing its resident
binary), and a third failure marks the node **dead** — its batch is
requeued by the engine, never silently lost.  A brownout plan droops the
node's clock for the whole run (compute stretches by ``1/droop``).

The :class:`PowerTracker` maintains the fleet's piecewise-constant power
draw (host + every node) so the scheduler can gate dispatches against a
budget and reports can plot the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.envelope import DEFAULT_BUDGET, PowerEnvelopeSolver
from repro.core.system import HeterogeneousSystem
from repro.errors import ConfigurationError, Interrupt
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.resilient import RetryPolicy
from repro.kernels import kernel_by_name
from repro.power.activity import ActivityProfile
from repro.pulp.binary import KernelBinary
from repro.serve.workload import Request
from repro.sim.engine import Simulator, Timeout
from repro.units import mhz, mw

import enum

#: Per-node envelope budgets of the two service tiers.
TIER_BUDGETS: Dict[str, float] = {"fast": DEFAULT_BUDGET, "eco": mw(6.5)}

#: Named service-book factories (``register_service_book``); factories
#: take keyword arguments forwarded from the caller (e.g. ``host_mhz``).
_BOOK_REGISTRY: Dict[str, Callable[..., "ServiceBook"]] = {}


def register_service_book(name: str,
                          factory: Callable[..., "ServiceBook"]) -> None:
    """Register a pricing backend under *name* (overwrites quietly)."""
    _BOOK_REGISTRY[name] = factory


def registered_service_books() -> Tuple[str, ...]:
    """Every registered pricing-backend name, sorted."""
    return tuple(sorted(_BOOK_REGISTRY))


def service_book_by_name(name: str, **kwargs) -> "ServiceBook":
    """Instantiate a registered pricing backend."""
    try:
        factory = _BOOK_REGISTRY[name]
    except KeyError:
        known = ", ".join(registered_service_books())
        raise ConfigurationError(
            f"unknown service book {name!r}; known: {known}") from None
    return factory(**kwargs)

#: The resilient ladder replayed at fleet granularity (then: node dead).
LADDER = ("initial", "re-arm", "reboot")


@dataclass(frozen=True)
class ServiceProfile:
    """Per-(kernel, tier) costs of serving one request on a node."""

    kernel: str
    tier: str
    cold_time: float            #: binary upload + boot, once per cold batch
    cold_energy: float
    unit_io_time: float         #: per-iteration input + sync + output
    unit_compute_time: float    #: per-iteration compute at nominal clock
    unit_io_energy: float
    unit_compute_energy: float
    active_power: float         #: node draw while serving (PULP + link)
    pulp_frequency: float
    pulp_voltage: float

    def request_time(self, iterations: int, droop: float = 1.0) -> float:
        """Warm service seconds for one request (compute drooped)."""
        return iterations * (self.unit_io_time
                             + self.unit_compute_time / droop)

    def request_energy(self, iterations: int, droop: float = 1.0) -> float:
        """Warm service joules for one request."""
        return iterations * (self.unit_io_energy
                             + self.unit_compute_energy / droop)


class ServiceBook:
    """Interface the fleet prices requests against.

    :class:`AnalyticServiceBook` is the production implementation;
    tests substitute synthetic books (e.g. exponential service times for
    the M/M/1 validation).
    """

    #: Node draw while parked (lowest operating point, idle activity).
    idle_power: float = 0.0
    #: Host draw (always on: it drives the fleet and runs fallbacks).
    host_power: float = 0.0

    def tiers(self) -> Tuple[str, ...]:
        """The service tiers this book can price."""
        return ("fast",)

    def profile(self, kernel: str, tier: str = "fast") -> ServiceProfile:
        """Costs of *kernel* at *tier*."""
        raise NotImplementedError

    def active_power(self, kernel: str, tier: str) -> float:
        """Node draw (watts) while serving *kernel* at *tier*."""
        return self.profile(kernel, tier).active_power

    def cold_cost(self, kernel: str, tier: str) -> Tuple[float, float]:
        """(seconds, joules) of a cold start: binary upload + boot."""
        profile = self.profile(kernel, tier)
        return profile.cold_time, profile.cold_energy

    def batch_compute(self, batch: List[Request], tier: str,
                      droop: float = 1.0) -> float:
        """Compute-only seconds of a batch (sizes the hang watchdog)."""
        profile = self.profile(batch[0].kernel, tier)
        return sum(profile.unit_compute_time * request.iterations
                   for request in batch) / droop

    def batch_service(self, batch: List[Request], tier: str,
                      droop: float = 1.0) -> Tuple[float, float]:
        """(seconds, joules) of the warm portion of a batch."""
        profile = self.profile(batch[0].kernel, tier)
        time = sum(profile.request_time(request.iterations, droop)
                   for request in batch)
        energy = sum(profile.request_energy(request.iterations, droop)
                     for request in batch)
        return time, energy

    def estimate(self, request: Request) -> float:
        """Expected warm fast-tier service seconds (SJF/EDF/deadlines)."""
        profile = self.profile(request.kernel, "fast")
        return profile.request_time(request.iterations)

    def host_time(self, request: Request) -> float:
        """Host-fallback execution seconds for one request."""
        raise NotImplementedError

    def host_energy(self, request: Request) -> float:
        """Extra host-fallback energy (host is already powered)."""
        return 0.0


class AnalyticServiceBook(ServiceBook):
    """Prices kernels through the calibrated offload stack, lazily."""

    def __init__(self, system: Optional[HeterogeneousSystem] = None,
                 host_mhz: float = 8.0,
                 tier_budgets: Optional[Dict[str, float]] = None):
        self.system = system if system is not None else HeterogeneousSystem()
        self.host_frequency = mhz(host_mhz)
        #: Per-tier envelope budgets; defaults to the module-level pair
        #: so archetypes can carry their own operating points.
        self.tier_budgets = dict(tier_budgets) if tier_budgets is not None \
            else dict(TIER_BUDGETS)
        self._profiles: Dict[Tuple[str, str], ServiceProfile] = {}
        self._host_runs: Dict[str, float] = {}
        power_model = self.system.soc.power_model
        table = power_model.table
        self.idle_power = power_model.total_power(
            table.f_min, table.v_min, ActivityProfile.idle())
        self.host_power = self.system.host.active_power(self.host_frequency)

    def tiers(self) -> Tuple[str, ...]:
        return tuple(self.tier_budgets)

    def profile(self, kernel: str, tier: str = "fast") -> ServiceProfile:
        key = (kernel, tier)
        cached = self._profiles.get(key)
        if cached is not None:
            return cached
        if tier not in self.tier_budgets:
            raise ConfigurationError(f"unknown service tier {tier!r}")
        built = self._build(kernel, tier)
        self._profiles[key] = built
        return built

    def _build(self, kernel_name: str, tier: str) -> ServiceProfile:
        # Pricing is calibration, not part of the serving timeline: keep
        # its offload spans out of any live telemetry hub.
        from repro.obs import Telemetry, use_telemetry

        with use_telemetry(Telemetry(enabled=False)):
            return self._build_quiet(kernel_name, tier)

    def _build_quiet(self, kernel_name: str, tier: str,
                     budget: Optional[float] = None,
                     system: Optional[HeterogeneousSystem] = None,
                     double_buffered: bool = False) -> ServiceProfile:
        """Price one (kernel, tier) through the offload stack.

        *budget*, *system* and *double_buffered* override the tier's
        default envelope budget, the book's system (e.g. a different
        cluster size) and the schedule — the hooks a learned book uses
        to price a predicted operating point through the identical
        stack.
        """
        system = system if system is not None else self.system
        budget = budget if budget is not None else self.tier_budgets[tier]
        kernel = kernel_by_name(kernel_name)
        program = kernel.build_program()
        binary = KernelBinary.from_program(program)
        execution = system.omp.execute(program)
        activity = ActivityProfile.compute(
            cores_active=system.omp.threads,
            memory_intensity=execution.memory_intensity,
            name=kernel.name)
        solver = PowerEnvelopeSolver(
            budget=budget,
            host_device=system.host.device,
            pulp_power=system.soc.power_model)
        point = solver.solve(self.host_frequency, activity)
        if not point.accelerator_usable:
            raise ConfigurationError(
                f"{kernel_name}: no accelerator power budget at tier "
                f"{tier!r} with the host at "
                f"{self.host_frequency / 1e6:.0f} MHz")
        timing = system.cost_model.offload_timing(
            binary_bytes=binary.image_bytes,
            input_bytes=program.input_bytes,
            output_bytes=program.output_bytes,
            compute_cycles=execution.wall_cycles,
            pulp_frequency=point.pulp_frequency,
            pulp_voltage=point.pulp_voltage,
            activity=activity,
            host_frequency=self.host_frequency,
            iterations=1,
            double_buffered=double_buffered,
            include_binary=True)
        energy = timing.energy.energy_by_label()
        return ServiceProfile(
            kernel=kernel_name,
            tier=tier,
            cold_time=timing.binary_time + timing.boot_time,
            cold_energy=energy.get("binary", 0.0) + energy.get("boot", 0.0),
            unit_io_time=(timing.input_time + timing.sync_time
                          + timing.output_time),
            unit_compute_time=timing.compute_time,
            unit_io_energy=(energy.get("input", 0.0)
                            + energy.get("sync", 0.0)
                            + energy.get("output", 0.0)),
            unit_compute_energy=energy.get("compute", 0.0),
            active_power=point.pulp_power + point.link_power,
            pulp_frequency=point.pulp_frequency,
            pulp_voltage=point.pulp_voltage)

    def host_time(self, request: Request) -> float:
        cached = self._host_runs.get(request.kernel)
        if cached is None:
            from repro.obs import Telemetry, use_telemetry

            with use_telemetry(Telemetry(enabled=False)):
                run = self.system.run_on_host(
                    kernel_by_name(request.kernel),
                    frequency=self.host_frequency)
            cached = run.time
            self._host_runs[request.kernel] = cached
        return cached * request.iterations


class NodeState(enum.Enum):
    """Lifecycle states of a fleet node."""

    IDLE = "idle"
    BUSY = "busy"
    REBOOTING = "rebooting"
    DEAD = "dead"


class PowerTracker:
    """Piecewise-constant fleet power: host plus every node's draw."""

    def __init__(self, simulator: Simulator, base_w: float):
        self._simulator = simulator
        self._draws: Dict[str, float] = {}
        self.base_w = base_w
        self.current_w = base_w
        self.peak_w = base_w
        self.timeline: List[Tuple[float, float]] = [(0.0, base_w)]

    def set_draw(self, key: str, watts: float) -> None:
        """Update one component's draw at the current simulation time.

        A no-op when the draw does not change, and same-time updates
        collapse into one entry — offsetting updates that return to the
        previous level pop their redundant entry — so timelines stay
        compact over long chaos runs (flapping nodes, storm recoveries).
        """
        previous = self._draws.get(key, 0.0)
        if watts == previous:
            return
        self._draws[key] = watts
        self.current_w += watts - previous
        now = self._simulator.now
        if self.timeline and self.timeline[-1][0] == now:
            self.timeline[-1] = (now, self.current_w)
            if len(self.timeline) >= 2 \
                    and self.timeline[-2][1] == self.current_w:
                self.timeline.pop()
        else:
            self.timeline.append((now, self.current_w))
        self.peak_w = max(self.peak_w, self.current_w)

    def energy(self, until: float) -> float:
        """Integral of the timeline up to *until* (joules)."""
        total = 0.0
        for index, (t, watts) in enumerate(self.timeline):
            t_next = self.timeline[index + 1][0] \
                if index + 1 < len(self.timeline) else until
            total += watts * max(0.0, min(t_next, until) - t)
        return total


@dataclass
class ServiceOutcome:
    """What one batch service ended as (delivered to the engine)."""

    node: "Node"
    batch: List[Request]
    tier: str
    start_s: float
    end_s: float
    fault_attempts: int
    recovery_actions: Tuple[str, ...]
    wasted_time_s: float
    wasted_energy_j: float
    energy_j: float
    died: bool


class Node:
    """One accelerator behind the host runtime, as a DES process."""

    def __init__(self, index: int, book: ServiceBook, simulator: Simulator,
                 tracker: PowerTracker,
                 plan: Optional[FaultPlan] = None, seed: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 on_outcome: Optional[Callable[[ServiceOutcome], None]] = None,
                 is_host: bool = False, archetype: Optional[str] = None):
        self.index = index
        self.name = "host-fallback" if is_host else f"node{index}"
        self.book = book
        #: Archetype name this node was built from (heterogeneous fleets
        #: route kernels by it); None on homogeneous fleets and the host.
        self.archetype = archetype
        self.simulator = simulator
        self.tracker = tracker
        self.retry = retry if retry is not None else RetryPolicy()
        self.is_host = is_host
        self.injector = FaultInjector(
            plan if plan is not None else FaultPlan.clean(), seed=seed)
        # Brownout is a supply condition, not an event stream: consult
        # once, droop the node's clock for the whole run.  Fleet-wide
        # chaos brownouts scale the *current* droop from this base.
        self.base_droop = self.injector.brownout_droop()
        self.droop = self.base_droop
        self.state = NodeState.IDLE
        self.resident: Optional[str] = None
        self.on_outcome = on_outcome
        self.busy_time = 0.0
        self.served_requests = 0
        self.served_batches = 0
        self.energy_j = 0.0
        self.reboots = 0
        self.process = None
        self._mailbox: Optional[Tuple[List[Request], str]] = None
        self._wake = None
        self._shutdown = False
        self._chaos_down = False
        if not is_host:
            tracker.set_draw(self.name, book.idle_power)

    @property
    def alive(self) -> bool:
        """Whether the node can still take work."""
        return self.state is not NodeState.DEAD

    @property
    def available(self) -> bool:
        """Idle, alive, and not already holding an assignment."""
        return self.state is NodeState.IDLE and self._mailbox is None

    def assign(self, batch: List[Request], tier: str) -> None:
        """Hand the node a batch (engine-side; node must be available).

        The busy draw is committed here, synchronously, so the power
        gate never over-dispatches on a stale fleet reading while the
        node's process wakeup is still in the event queue.
        """
        assert self.available, f"{self.name} is not available"
        self._mailbox = (batch, tier)
        if self.is_host:
            self.state = NodeState.BUSY
        else:
            self._set_state(NodeState.BUSY,
                            self.book.active_power(batch[0].kernel, tier))
        if self._wake is not None and not self._wake.triggered:
            self._wake.trigger()

    def shutdown(self) -> None:
        """Let the process exit once its mailbox is empty (drain)."""
        self._shutdown = True
        if self._wake is not None and not self._wake.triggered:
            self._wake.trigger()

    def crash(self) -> None:
        """Chaos: take the node down right now (engine-external).

        An in-flight batch dies with the node and is delivered as a
        ``died`` outcome for the engine to requeue.  A no-op on already
        dead nodes and on the host backend.
        """
        if self.is_host or not self.alive:
            return
        self._chaos_down = True
        if self.process is not None and not self.process.finished:
            self.process.interrupt("chaos-crash")

    def recover(self) -> None:
        """Chaos: bring a downed node back with a fresh boot.

        Caches are cold (``resident`` cleared) and a new process is
        started; recovery on a live node just clears a pending crash.
        """
        self._chaos_down = False
        if self.is_host or self.state is not NodeState.DEAD:
            return
        if self._shutdown:
            return  # the run drained while the node was down
        self.reboots += 1
        self.resident = None
        self._mailbox = None
        self._wake = None
        self._set_state(NodeState.IDLE, self.book.idle_power)
        self.process = self.simulator.add_process(
            self.run(), name=f"{self.name}.r{self.reboots}")

    def _set_state(self, state: NodeState, draw_w: float) -> None:
        self.state = state
        if not self.is_host:
            self.tracker.set_draw(self.name, draw_w)

    # -- the process -------------------------------------------------------------

    def run(self):
        """Generator body: wait for assignments, serve, repeat."""
        while True:
            while self._mailbox is None:
                if self._chaos_down and not self.is_host:
                    self._set_state(NodeState.DEAD, 0.0)
                    return
                if self._shutdown:
                    return
                self._wake = self.simulator.event(f"{self.name}.wake")
                try:
                    yield self._wake
                except Interrupt:
                    continue  # loop re-checks the crash flag
            batch, tier = self._mailbox
            self._mailbox = None
            if self._chaos_down and not self.is_host:
                # The crash landed between assignment and pickup: the
                # batch dies with the node before service starts.
                self._set_state(NodeState.DEAD, 0.0)
                self._deliver(ServiceOutcome(
                    node=self, batch=batch, tier=tier,
                    start_s=self.simulator.now, end_s=self.simulator.now,
                    fault_attempts=0, recovery_actions=("chaos-crash",),
                    wasted_time_s=0.0, wasted_energy_j=0.0, energy_j=0.0,
                    died=True))
                return
            yield from (self._serve_host(batch) if self.is_host
                        else self._serve(batch, tier))
            if self.state is NodeState.DEAD:
                return

    def _serve_host(self, batch: List[Request]):
        """OpenMP host fallback: sequential, reliable, no extra draw."""
        start = self.simulator.now
        self.state = NodeState.BUSY
        service = sum(self.book.host_time(request) for request in batch)
        energy = sum(self.book.host_energy(request) for request in batch)
        yield Timeout(service)
        self.state = NodeState.IDLE
        self.busy_time += service
        self.served_requests += len(batch)
        self.served_batches += 1
        self.energy_j += energy
        self._deliver(ServiceOutcome(
            node=self, batch=batch, tier="host", start_s=start,
            end_s=self.simulator.now, fault_attempts=0,
            recovery_actions=(), wasted_time_s=0.0, wasted_energy_j=0.0,
            energy_j=energy, died=False))

    def _serve(self, batch: List[Request], tier: str):
        """One batch through the fleet-level resilient ladder."""
        kernel = batch[0].kernel
        active_power = self.book.active_power(kernel, tier)
        start = self.simulator.now
        wasted_time = 0.0
        wasted_energy = 0.0
        failures = 0
        recovery: List[str] = []
        self._set_state(NodeState.BUSY, active_power)
        try:
            for rung in LADDER:
                if rung == "re-arm":
                    recovery.append("re-arm")
                elif rung == "reboot":
                    recovery.append("reboot")
                    self.reboots += 1
                    self.resident = None
                    self._set_state(NodeState.REBOOTING, self.book.idle_power)
                    yield Timeout(self.retry.boot_timeout_s)
                    wasted_time += self.retry.boot_timeout_s
                    wasted_energy += self.retry.boot_timeout_s \
                        * self.book.idle_power
                    self._set_state(NodeState.BUSY, active_power)
                if self.injector.boot_fails():
                    failures += 1
                    yield Timeout(self.retry.boot_timeout_s)
                    wasted_time += self.retry.boot_timeout_s
                    wasted_energy += self.retry.boot_timeout_s * active_power
                    continue
                if self.injector.kernel_hangs():
                    failures += 1
                    compute = self.book.batch_compute(batch, tier, self.droop)
                    watchdog = max(self.retry.watchdog_floor_s,
                                   self.retry.watchdog_factor * compute)
                    yield Timeout(watchdog)
                    recovery.append("watchdog")
                    wasted_time += watchdog
                    wasted_energy += watchdog * active_power
                    continue
                # Success: cold costs once per batch, warm per request.
                cold_time = cold_energy = 0.0
                if self.resident != kernel:
                    cold_time, cold_energy = self.book.cold_cost(kernel, tier)
                warm_time, warm_energy = self.book.batch_service(
                    batch, tier, self.droop)
                service = cold_time + warm_time
                energy = cold_energy + warm_energy
                yield Timeout(service)
                self.resident = kernel
                self._set_state(NodeState.IDLE, self.book.idle_power)
                self.busy_time += service + wasted_time
                self.served_requests += len(batch)
                self.served_batches += 1
                self.energy_j += energy + wasted_energy
                self._deliver(ServiceOutcome(
                    node=self, batch=batch, tier=tier, start_s=start,
                    end_s=self.simulator.now, fault_attempts=failures,
                    recovery_actions=tuple(recovery),
                    wasted_time_s=wasted_time, wasted_energy_j=wasted_energy,
                    energy_j=energy + wasted_energy, died=False))
                return
        except Interrupt:
            # Chaos crash mid-service: everything since batch start was
            # wasted.  Energy attribution approximates the whole span at
            # the active draw (the tracker's integral stays exact).
            elapsed = self.simulator.now - start
            wasted_energy += max(0.0, elapsed - wasted_time) * active_power
            wasted_time = elapsed
            self._set_state(NodeState.DEAD, 0.0)
            self.energy_j += wasted_energy
            self._deliver(ServiceOutcome(
                node=self, batch=batch, tier=tier, start_s=start,
                end_s=self.simulator.now, fault_attempts=failures,
                recovery_actions=tuple(recovery + ["chaos-crash"]),
                wasted_time_s=wasted_time, wasted_energy_j=wasted_energy,
                energy_j=wasted_energy, died=True))
            return
        # Ladder exhausted: the node is dead; the engine requeues.
        self._set_state(NodeState.DEAD, 0.0)
        self.energy_j += wasted_energy
        self._deliver(ServiceOutcome(
            node=self, batch=batch, tier=tier, start_s=start,
            end_s=self.simulator.now, fault_attempts=failures,
            recovery_actions=tuple(recovery + ["node-dead"]),
            wasted_time_s=wasted_time, wasted_energy_j=wasted_energy,
            energy_j=wasted_energy, died=True))

    def _deliver(self, outcome: ServiceOutcome) -> None:
        if self.on_outcome is not None:
            self.on_outcome(outcome)


class Fleet:
    """N accelerator nodes plus the host fallback backend.

    Homogeneous by default (every node prices through *book*); pass
    *groups* — an ordered list of ``(archetype_name, book, count)``
    triples — to build a heterogeneous fleet whose nodes carry
    per-archetype books.  *book* stays the host/default pricing (host
    fallback, scheduler estimates).  Group order assigns node indices
    (group 0 gets the lowest), matching how fault plans cycle.
    """

    def __init__(self, simulator: Simulator, book: ServiceBook,
                 nodes: int, plans: Optional[List[FaultPlan]] = None,
                 seed: int = 1, retry: Optional[RetryPolicy] = None,
                 on_outcome: Optional[Callable[[ServiceOutcome], None]] = None,
                 groups: Optional[
                     List[Tuple[Optional[str], ServiceBook, int]]] = None):
        if nodes < 1:
            raise ConfigurationError(f"fleet needs >= 1 nodes, got {nodes}")
        if groups is not None and sum(count for _, _, count in groups) \
                != nodes:
            raise ConfigurationError(
                f"fleet groups sum to "
                f"{sum(count for _, _, count in groups)} nodes, "
                f"but the fleet was sized for {nodes}")
        self.simulator = simulator
        self.book = book
        self.tracker = PowerTracker(simulator, base_w=book.host_power)
        self.nodes: List[Node] = []
        if groups is None:
            groups = [(None, book, nodes)]
        index = 0
        for archetype, group_book, count in groups:
            for _ in range(count):
                plan = None
                if plans:
                    plan = plans[index % len(plans)]
                self.nodes.append(Node(
                    index, group_book, simulator, self.tracker, plan=plan,
                    seed=seed * 1000 + index * 7919 + 1, retry=retry,
                    on_outcome=on_outcome, archetype=archetype))
                index += 1
        self.host = Node(nodes, book, simulator, self.tracker,
                         seed=seed, retry=retry, on_outcome=on_outcome,
                         is_host=True)

    def start(self) -> None:
        """Launch every node process (plus the host backend)."""
        for node in self.nodes:
            node.process = self.simulator.add_process(node.run(),
                                                      name=node.name)
        self.host.process = self.simulator.add_process(self.host.run(),
                                                       name=self.host.name)

    def shutdown(self) -> None:
        """Drain: let every idle process exit."""
        for node in self.nodes:
            node.shutdown()
        self.host.shutdown()

    def available_nodes(self) -> List[Node]:
        """Idle, alive accelerator nodes, lowest index first."""
        return [node for node in self.nodes if node.available]

    def alive_nodes(self) -> List[Node]:
        """Accelerator nodes that can still take work."""
        return [node for node in self.nodes if node.alive]

    @property
    def dead_nodes(self) -> int:
        """Accelerators lost to exhausted recovery ladders."""
        return sum(1 for node in self.nodes if not node.alive)


register_service_book(
    "analytic", lambda **kwargs: AnalyticServiceBook(**kwargs))
